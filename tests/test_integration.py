"""Cross-module integration: the full pipeline on programs combining
every feature, plus differential protected-vs-unprotected equivalence."""

import pytest

from repro import compile_and_run
from repro.softbound.config import FIGURE2_CONFIGS, FULL_SHADOW

KITCHEN_SINK = r'''
typedef struct entry { char key[12]; int value; struct entry *next; } entry_t;

entry_t *table[8];
int collisions;

int hash_key(char *key) {
    int h = 0;
    for (char *p = key; *p; p++) h = (h * 31 + *p) % 8;
    return h < 0 ? h + 8 : h;
}

void insert(char *key, int value) {
    int h = hash_key(key);
    if (table[h]) collisions++;
    entry_t *e = (entry_t *)malloc(sizeof(entry_t));
    strncpy(e->key, key, 11);
    e->key[11] = 0;
    e->value = value;
    e->next = table[h];
    table[h] = e;
}

int lookup(char *key) {
    for (entry_t *e = table[hash_key(key)]; e; e = e->next)
        if (strcmp(e->key, key) == 0) return e->value;
    return -1;
}

int apply_all(int (*fn)(int)) {
    int total = 0;
    for (int i = 0; i < 8; i++)
        for (entry_t *e = table[i]; e; e = e->next)
            total += fn(e->value);
    return total;
}

int double_it(int x) { return 2 * x; }

int main(void) {
    char name[12];
    for (int i = 0; i < 20; i++) {
        sprintf(name, "key%d", i);
        insert(name, i * i);
    }
    int found = lookup("key7") + lookup("key19");
    int missing = lookup("absent");
    int doubled = apply_all(double_it);
    printf("found=%d missing=%d doubled=%d collisions=%d\n",
           found, missing, doubled, collisions);
    return (found + doubled) % 256;
}
'''


def test_kitchen_sink_runs_unprotected():
    result = compile_and_run(KITCHEN_SINK)
    assert result.trap is None
    assert "found=410 missing=-1" in result.output


@pytest.mark.parametrize("config", FIGURE2_CONFIGS, ids=lambda c: c.label)
def test_kitchen_sink_identical_under_every_config(config):
    plain = compile_and_run(KITCHEN_SINK)
    protected = compile_and_run(KITCHEN_SINK, softbound=config)
    assert protected.trap is None
    assert protected.output == plain.output
    assert protected.exit_code == plain.exit_code


def test_protection_composes_with_every_feature_at_once():
    """setjmp + varargs + function pointers + sub-object pointers in one
    program, protected, with the bug at the very end still caught."""
    src = r'''
    jmp_buf env;
    int logsum(int n, ...) {
        va_list ap;
        va_start(&ap);
        int t = 0;
        for (int i = 0; i < n; i++) t += (int)va_arg_long(&ap);
        va_end(&ap);
        return t;
    }
    struct box { char tag[4]; int payload; };
    int main(void) {
        struct box b;
        b.payload = 5;
        if (setjmp(env) == 0) {
            int (*f)(int, ...) = logsum;
            int s = f(3, 1, 2, 3);
            if (s == 6) longjmp(env, 42);
            return 1;
        }
        char *t = b.tag;
        t[4] = 'x';            /* sub-object overflow into payload */
        return 2;
    }
    '''
    plain = compile_and_run(src)
    assert plain.trap is None and plain.exit_code == 2  # silent corruption
    protected = compile_and_run(src, softbound=FULL_SHADOW)
    assert protected.detected_violation


def test_deep_recursion_under_protection():
    src = r'''
    int depth(int n) { return n == 0 ? 0 : 1 + depth(n - 1); }
    int main(void) { return depth(200) == 200; }
    '''
    assert compile_and_run(src, softbound=FULL_SHADOW).exit_code == 1


def test_metadata_stats_track_activity():
    result = compile_and_run(KITCHEN_SINK, softbound=FULL_SHADOW)
    stats = result.stats
    assert stats.metadata_loads > 0
    assert stats.metadata_stores > 0
    assert stats.checks > stats.metadata_loads  # non-pointer ops checked too
