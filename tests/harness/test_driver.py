"""Driver and measurement-harness tests."""

import pytest

from repro import CheckMode, MetadataScheme, SoftBoundConfig, compile_and_run, compile_program
from repro.harness.stats import average, measure, overhead_matrix, pointer_fractions
from repro.harness.tables import render_metadata_ablation, render_table1
from repro.softbound.config import FIGURE2_CONFIGS, FULL_SHADOW


def test_top_level_api_reexports():
    result = compile_and_run("int main(void) { return 9; }")
    assert result.exit_code == 9
    config = SoftBoundConfig(mode=CheckMode.STORE_ONLY,
                             scheme=MetadataScheme.HASH_TABLE)
    assert config.label == "HashTable-Stores"


def test_compiled_program_is_reusable():
    compiled = compile_program(r'''
    int counter;
    int main(void) { counter++; return counter; }
    ''')
    # Fresh machine per run: no state leaks between executions.
    assert compiled.run().exit_code == 1
    assert compiled.run().exit_code == 1


def test_compiled_program_accepts_input_per_run():
    compiled = compile_program(r'''
    int main(void) { char b[32]; gets(b); return (int)strlen(b); }
    ''')
    assert compiled.run(input_data=b"abc\n").exit_code == 3
    assert compiled.run(input_data=b"longer line\n").exit_code == 11


def test_figure2_configs_cover_the_grid():
    labels = {c.label for c in FIGURE2_CONFIGS}
    assert labels == {"HashTable-Complete", "ShadowSpace-Complete",
                      "HashTable-Stores", "ShadowSpace-Stores"}


def test_measure_is_memoized():
    first = measure("health")
    second = measure("health")
    assert first is second


def test_measure_reports_instrumentation_stats():
    baseline = measure("health")
    protected = measure("health", FULL_SHADOW)
    assert baseline.checks == 0
    assert protected.checks > 0
    assert protected.metadata_loads > 0
    assert protected.cost > baseline.cost
    assert protected.metadata_bytes > 0


def test_pointer_fractions_cover_all_workloads():
    fractions = pointer_fractions()
    assert len(fractions) == 15
    assert all(0.0 <= f <= 1.0 for f in fractions.values())


def test_overhead_matrix_asserts_equivalence():
    matrix = overhead_matrix(configs=(FULL_SHADOW,), workload_names=("hmmer",))
    assert "ShadowSpace-Complete" in matrix
    assert matrix["ShadowSpace-Complete"]["hmmer"] > 0


def test_average_helper():
    assert average([1, 2, 3]) == 2
    assert average([]) == 0.0


def test_render_functions_produce_text():
    assert "SoftBound" in render_table1()
    assert "shadow_space" in render_metadata_ablation()


def test_entry_point_resolution_for_transformed_modules():
    compiled = compile_program("int main(void) { return 4; }", softbound=FULL_SHADOW)
    assert "_sb_main" in compiled.module.functions
    assert compiled.run().exit_code == 4  # run() resolves main -> _sb_main


def test_unknown_entry_raises():
    compiled = compile_program("int main(void) { return 0; }")
    with pytest.raises(KeyError):
        compiled.run(entry="nonexistent")
