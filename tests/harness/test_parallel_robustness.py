"""``run_tasks`` must not hang forever or die on a killed worker.

Regression suite for the pool-hardening: per-task wallclock deadlines,
worker-death detection (a worker SIGKILLed mid-run), requeue-once, and
:class:`ParallelTaskError` reporting instead of a bare
``BrokenProcessPool`` or an eternal wait.
"""

import time

import pytest

from repro.harness.parallel import (DEFAULT_TASK_TIMEOUT, ParallelTaskError,
                                    execute_task, run_tasks)

SQRT = ("py", "math:sqrt", 4.0)
KILL = ("py", "repro.fuzz._testhooks:kill_self")


class TestPyTaskKind:
    def test_dispatch(self):
        assert execute_task(("py", "math:sqrt", 9.0)) == 3.0

    def test_dotted_attribute(self):
        assert execute_task(("py", "os:path.basename", "/a/b")) == "b"

    def test_unknown_kind_still_rejected(self):
        with pytest.raises(ValueError):
            execute_task(("nonsense", "x"))


class TestHangProtection:
    def test_hung_task_times_out_instead_of_wedging(self):
        started = time.monotonic()
        with pytest.raises(ParallelTaskError) as info:
            run_tasks([SQRT, ("py", "time:sleep", 600)], jobs=2,
                      task_timeout=1.0)
        assert time.monotonic() - started < 30
        ((index, task, reason),) = info.value.failures
        assert index == 1
        assert task[1] == "time:sleep"
        assert "no result" in str(reason)

    def test_default_timeout_is_generous(self):
        # Matrix tasks compile+simulate whole benchmarks: the default
        # deadline must stay far above any legitimate task.
        assert DEFAULT_TASK_TIMEOUT >= 300

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "1.0")
        started = time.monotonic()
        with pytest.raises(ParallelTaskError):
            run_tasks([SQRT, ("py", "time:sleep", 600)], jobs=2)
        assert time.monotonic() - started < 30


class TestWorkerDeath:
    def test_sigkilled_worker_mid_run_is_reported_not_fatal(self):
        # One task SIGKILLs its worker mid-run.  Before the hardening
        # this surfaced as BrokenProcessPool (or poisoned every other
        # future); now the survivors complete and the killer is named.
        tasks = [SQRT, KILL, ("py", "math:sqrt", 25.0)]
        with pytest.raises(ParallelTaskError) as info:
            run_tasks(tasks, jobs=2, task_timeout=60.0)
        ((index, task, reason),) = info.value.failures
        assert index == 1
        assert "died" in str(reason)

    def test_interrupted_neighbours_are_requeued_and_complete(self, tmp_path):
        # A worker death that heals on retry: every result arrives,
        # index-aligned, with no exception.
        marker = str(tmp_path / "kill-once")
        tasks = [SQRT,
                 ("py", "repro.fuzz._testhooks:kill_self_once", marker),
                 ("py", "math:sqrt", 25.0)]
        results = run_tasks(tasks, jobs=2, task_timeout=60.0)
        assert results == [2.0, "recovered", 5.0]

    def test_flaky_task_retried_once(self, tmp_path):
        marker = str(tmp_path / "flaky-once")
        results = run_tasks(
            [SQRT, ("py", "repro.fuzz._testhooks:flaky_once", marker)],
            jobs=2, task_timeout=60.0)
        assert results == [2.0, "recovered"]

    def test_deterministic_failure_reported_with_exception(self):
        with pytest.raises(ParallelTaskError) as info:
            run_tasks([SQRT, ("py", "math:sqrt", -4.0)], jobs=2,
                      task_timeout=60.0)
        ((index, _, reason),) = info.value.failures
        assert index == 1
        assert isinstance(reason, ValueError)

    def test_error_message_names_tasks(self):
        with pytest.raises(ParallelTaskError) as info:
            run_tasks([("py", "math:sqrt", -1.0), SQRT], jobs=2,
                      task_timeout=60.0)
        assert "task[0]" in str(info.value)


class TestSerialPathUntouched:
    def test_serial_failures_propagate_raw(self):
        with pytest.raises(ValueError):
            run_tasks([("py", "math:sqrt", -1.0)], jobs=1)

    def test_serial_results_align(self):
        assert run_tasks([SQRT, ("py", "math:sqrt", 9.0)], jobs=1) == \
            [2.0, 3.0]
