"""Separate compilation and linking (paper Sections 3.3 / 5.2)."""

import pytest

from repro.harness.linker import (
    LinkError,
    compile_and_link,
    compile_module,
    link_modules,
)
from repro.softbound.config import FULL_SHADOW
from repro.vm.errors import TrapKind

LIBRARY = r'''
int sum(int *values, int n) {
    int total = 0;
    for (int i = 0; i < n; i++) total += values[i];
    return total;
}

char *duplicate(char *text) {
    char *copy = (char *)malloc(strlen(text) + 1);
    strcpy(copy, text);
    return copy;
}
'''

MAIN = r'''
int sum(int *values, int n);
char *duplicate(char *text);

int main(void) {
    int data[4];
    for (int i = 0; i < 4; i++) data[i] = i + 1;
    char *copy = duplicate("hi");
    return sum(data, 4) + (int)strlen(copy);
}
'''


class TestBasicLinking:
    def test_two_unit_program_runs(self):
        compiled = compile_and_link([LIBRARY, MAIN])
        result = compiled.run()
        assert result.trap is None
        assert result.exit_code == 12

    def test_transformed_units_link_and_run_clean(self):
        compiled = compile_and_link([LIBRARY, MAIN], softbound=FULL_SHADOW)
        result = compiled.run()
        assert result.trap is None
        assert result.exit_code == 12

    def test_metadata_crosses_the_unit_boundary(self):
        """A bug in the library overflows a buffer allocated in main:
        bounds created in one unit must be enforced in the other."""
        library = r'''
        void fill(int *out, int n) {
            for (int i = 0; i <= n; i++) out[i] = i;   /* <=: off by one */
        }
        '''
        main = r'''
        void fill(int *out, int n);
        int main(void) {
            int *buf = (int *)malloc(4 * sizeof(int));
            fill(buf, 4);
            return buf[0];
        }
        '''
        compiled = compile_and_link([library, main], softbound=FULL_SHADOW)
        result = compiled.run()
        assert result.trap is not None
        assert result.trap.kind is TrapKind.SPATIAL_VIOLATION

    def test_duplicate_function_rejected(self):
        one = "int f(void) { return 1; }"
        two = "int f(void) { return 2; } int main(void) { return f(); }"
        with pytest.raises(LinkError, match="duplicate definition of function"):
            compile_and_link([one, two])

    def test_duplicate_global_rejected(self):
        one = "int shared = 1;"
        two = "int shared = 2; int main(void) { return shared; }"
        with pytest.raises(LinkError, match="duplicate definition of global"):
            compile_and_link([one, two])

    def test_extern_global_resolves_across_units(self):
        definer = "int shared = 33;"
        user = "extern int shared; int main(void) { return shared; }"
        compiled = compile_and_link([definer, user])
        assert compiled.run().exit_code == 33


class TestStringLiteralMerging:
    def test_identical_literals_deduplicated(self):
        one = 'char *a(void) { return "same text"; }'
        two = ('char *a(void); '
               'int main(void) { return a()[0]; }')
        compiled = compile_and_link([one + ' char *b(void) { return "same text"; }',
                                     two])
        literals = [g for g in compiled.module.globals.values()
                    if g.is_string_literal]
        texts = [g.data for g in literals]
        assert texts.count(b"same text\x00") == 1
        assert compiled.run().exit_code == ord("s")

    def test_clashing_names_from_different_units_kept_distinct(self):
        # Both units intern their first literal as ".str0"; after the
        # link each function must still see its own text.
        one = 'int first(void) { return (int)strlen("aaaa"); }'
        two = ('int first(void); '
               'int main(void) { return first() + (int)strlen("bb"); }')
        compiled = compile_and_link([one, two])
        assert compiled.run().exit_code == 6


class TestMixedTransformedUntransformed:
    def test_untransformed_library_callable_from_transformed_main(self):
        """The paper's library story: code not yet recompiled with
        SoftBound still links and runs; it simply provides no bounds."""
        library = compile_module("int triple(int x) { return 3 * x; }",
                                 softbound=None, name="lib")
        main = compile_module(
            "int triple(int x); int main(void) { return triple(14); }",
            softbound=FULL_SHADOW, name="main")
        compiled = link_modules([library, main], softbound=FULL_SHADOW)
        result = compiled.run()
        assert result.trap is None
        assert result.exit_code == 42

    def test_pointer_from_untransformed_library_has_null_bounds(self):
        """Dereferencing a pointer produced by untransformed code traps
        under full checking — conservative, exactly why the paper
        recommends wrappers or recompiling the library."""
        library = compile_module(r'''
        int slot = 5;
        int *get_slot(void) { return &slot; }
        ''', softbound=None, name="lib")
        main = compile_module(r'''
        int *get_slot(void);
        int main(void) { return *get_slot(); }
        ''', softbound=FULL_SHADOW, name="main")
        compiled = link_modules([library, main], softbound=FULL_SHADOW)
        result = compiled.run()
        assert result.trap is not None
        assert result.trap.kind is TrapKind.SPATIAL_VIOLATION

    def test_transformed_library_extends_checking_into_library(self):
        """Recompiling the library with SoftBound (its distribution
        model, Section 5.2) restores full bounds through the boundary."""
        library = compile_module(r'''
        int slot = 5;
        int *get_slot(void) { return &slot; }
        ''', softbound=FULL_SHADOW, name="lib")
        main = compile_module(r'''
        int *get_slot(void);
        int main(void) { return *get_slot(); }
        ''', softbound=FULL_SHADOW, name="main")
        compiled = link_modules([library, main], softbound=FULL_SHADOW)
        result = compiled.run()
        assert result.trap is None
        assert result.exit_code == 5


class TestManyUnits:
    def test_five_unit_pipeline(self):
        units = [
            f"int stage{i}(int x) {{ return x + {i}; }}" for i in range(4)
        ]
        units.append(r'''
        int stage0(int x); int stage1(int x);
        int stage2(int x); int stage3(int x);
        int main(void) { return stage3(stage2(stage1(stage0(10)))); }
        ''')
        for config in (None, FULL_SHADOW):
            compiled = compile_and_link(units, softbound=config)
            assert compiled.run().exit_code == 16
