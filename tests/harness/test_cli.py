"""Tests for the ``python -m repro`` command-line interface."""

import io
import json

import pytest

from repro.cli import (
    EX_COMPILE,
    EX_SPATIAL,
    EX_TEMPORAL,
    EX_TRAP,
    EX_USAGE,
    main,
)

SAFE_PROGRAM = r'''
int main(void) {
    int a[4];
    for (int i = 0; i < 4; i++) a[i] = i;
    printf("sum %d\n", a[0] + a[1] + a[2] + a[3]);
    return 6;
}
'''

BUGGY_PROGRAM = r'''
int main(void) {
    char b[4];
    strcpy(b, "definitely too long");
    return 0;
}
'''


@pytest.fixture
def capture():
    return io.StringIO(), io.StringIO()


def write_program(tmp_path, text, name="prog.c"):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestExitCodeContract:
    def test_deterministic_codes_are_documented_values(self):
        assert (EX_SPATIAL, EX_TEMPORAL, EX_COMPILE) == (2, 3, 4)


class TestRun:
    def test_clean_run_returns_program_exit(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, SAFE_PROGRAM)
        assert main(["run", path], out, err) == 6
        assert "sum 6" in out.getvalue()

    def test_unprotected_buggy_run_may_finish_silently(self, tmp_path, capture):
        out, err = capture
        code = main(["run", write_program(tmp_path, BUGGY_PROGRAM)], out, err)
        # Without SoftBound the overflow corrupts silently (exit 0) or
        # segfaults (EX_TRAP) — never the violation codes.
        assert code in (0, EX_TRAP)

    def test_softbound_flag_catches_overflow(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, BUGGY_PROGRAM)
        assert main(["run", path, "--softbound"], out, err) == EX_SPATIAL
        assert "spatial_violation" in err.getvalue()

    def test_store_only_flag_implies_softbound(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, BUGGY_PROGRAM)
        assert main(["run", path, "--store-only"], out, err) == EX_SPATIAL

    def test_hash_table_flag(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, SAFE_PROGRAM)
        assert main(["run", path, "--hash-table", "--stats"], out, err) == 6
        assert "metadata" in out.getvalue()

    def test_stats_flag_prints_cost_model(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, SAFE_PROGRAM)
        main(["run", path, "--softbound", "--stats"], out, err)
        text = out.getvalue()
        assert "cost units" in text
        assert "bounds checks" in text

    def test_stdin_file(self, tmp_path, capture):
        out, err = capture
        program = write_program(tmp_path, r'''
        int main(void) { char b[32]; gets(b); puts(b); return 0; }
        ''')
        stdin_path = tmp_path / "input.txt"
        stdin_path.write_text("hello\n")
        code = main(["run", program, "--stdin-file", str(stdin_path)], out, err)
        assert code == 0
        assert "hello" in out.getvalue()

    def test_missing_file_is_usage_error(self, capture):
        out, err = capture
        assert main(["run", "/does/not/exist.c"], out, err) == EX_USAGE
        assert "cannot read" in err.getvalue()

    def test_compile_error_reported(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, "int main( { not C ;")
        assert main(["run", path], out, err) == EX_COMPILE
        assert "compile error" in err.getvalue()

    def test_no_optimize_flag_still_runs(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, SAFE_PROGRAM)
        assert main(["run", path, "--no-optimize"], out, err) == 6


class TestProfileFlag:
    def test_profile_selects_protection(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, BUGGY_PROGRAM)
        assert main(["run", path, "--profile", "spatial"], out, err) \
            == EX_SPATIAL

    def test_profile_none_runs_unprotected(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, SAFE_PROGRAM)
        assert main(["run", path, "--profile", "none"], out, err) == 6

    def test_unknown_profile_is_usage_error(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, SAFE_PROGRAM)
        assert main(["run", path, "--profile", "nope"], out, err) == EX_USAGE
        assert "unknown profile" in err.getvalue()

    def test_profile_conflicts_with_checking_flags(self, tmp_path, capture):
        """--profile must not silently discard an explicit checking flag
        (a user combining them would get downgraded protection)."""
        out, err = capture
        path = write_program(tmp_path, UAF_PROGRAM)
        code = main(["run", path, "--profile", "spatial", "--temporal"],
                    out, err)
        assert code == EX_USAGE
        assert "cannot be combined" in err.getvalue()

    def test_profiles_subcommand_lists_registry(self, capture):
        out, err = capture
        assert main(["profiles"], out, err) == 0
        text = out.getvalue()
        for name in ("none", "spatial", "temporal", "full", "mscc",
                     "valgrind", "jones-kelly"):
            assert name in text


class TestJsonFlag:
    def test_json_emits_run_report(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, SAFE_PROGRAM)
        assert main(["run", path, "--json"], out, err) == 6
        report = json.loads(out.getvalue())
        assert report["exit_code"] == 6
        assert report["ok"] is True
        assert report["profile"] == "none"
        assert report["stats"]["instructions"] > 0
        assert report["value"] == report["stats"]["cost"]

    def test_json_reports_trap(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, BUGGY_PROGRAM)
        code = main(["run", path, "--softbound", "--json"], out, err)
        assert code == EX_SPATIAL
        report = json.loads(out.getvalue())
        assert report["detected_violation"] is True
        assert report["trap"]["kind"] == "spatial_violation"
        assert report["trap"]["source"] == "softbound"


class TestCheck:
    def test_check_catches_overflow(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, BUGGY_PROGRAM)
        assert main(["check", path], out, err) == EX_SPATIAL

    def test_check_passes_clean_program(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, SAFE_PROGRAM)
        assert main(["check", path], out, err) == 6


UAF_PROGRAM = r'''
int main(void) {
    long *p = (long *)malloc(16);
    free(p);
    p[0] = 1;
    return 0;
}
'''


class TestTemporalFlag:
    def test_run_temporal_catches_uaf(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, UAF_PROGRAM)
        assert main(["run", path, "--temporal"], out, err) == EX_TEMPORAL
        assert "temporal_violation" in err.getvalue()

    def test_spatial_only_misses_uaf(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, UAF_PROGRAM)
        assert main(["run", path, "--softbound", "--no-temporal"],
                    out, err) == 0

    def test_check_temporal_flag(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, UAF_PROGRAM)
        assert main(["check", path, "--temporal"], out, err) == EX_TEMPORAL

    def test_temporal_exit_code_distinct_from_spatial(self, tmp_path, capture):
        out, err = capture
        uaf = write_program(tmp_path, UAF_PROGRAM, name="uaf.c")
        overflow = write_program(tmp_path, BUGGY_PROGRAM, name="ovf.c")
        assert main(["run", uaf, "--temporal"], out, err) == EX_TEMPORAL
        assert main(["run", overflow, "--temporal"], out, err) == EX_SPATIAL

    def test_temporal_transparent_on_clean_program(self, tmp_path, capture):
        out, err = capture
        path = write_program(tmp_path, SAFE_PROGRAM)
        assert main(["run", path, "--temporal"], out, err) == 6
        assert "sum 6" in out.getvalue()


class TestTablesAndWorkloads:
    def test_workloads_lists_all_fifteen(self, capture):
        out, err = capture
        assert main(["workloads"], out, err) == 0
        text = out.getvalue()
        for name in ("go", "compress", "treeadd", "bisort", "li"):
            assert name in text

    def test_workloads_lists_attack_and_bug_families(self, capture):
        out, err = capture
        assert main(["workloads"], out, err) == 0
        text = out.getvalue()
        for name in ("stack_direct_ret", "polymorph", "uaf_read",
                     "double_free"):
            assert name in text

    def test_workloads_group_filter(self, capture):
        out, err = capture
        assert main(["workloads", "--group", "temporal"], out, err) == 0
        text = out.getvalue()
        assert "uaf_read" in text and "key_collision_stress" in text
        assert "treeadd" not in text and "stack_direct_ret" not in text

    def test_workloads_group_filter_spec(self, capture):
        out, err = capture
        assert main(["workloads", "--group", "spec"], out, err) == 0
        text = out.getvalue()
        assert "compress" in text and "uaf_read" not in text

    def test_workloads_group_no_match(self, capture):
        out, err = capture
        assert main(["workloads", "--group", "zzz"], out, err) == 0
        assert "no workloads match" in out.getvalue()

    def test_temporal_table_renders(self, capture):
        out, err = capture
        assert main(["tables", "temporal"], out, err) == 0
        text = out.getvalue()
        assert "uaf_read" in text and "lock-and-key" in text

    def test_single_table_renders(self, capture):
        out, err = capture
        assert main(["tables", "table3"], out, err) == 0
        assert "attack" in out.getvalue().lower()

    def test_unknown_table_is_usage_error(self, capture):
        out, err = capture
        assert main(["tables", "nonexistent"], out, err) == EX_USAGE

    def test_usage_error_without_command(self, capture):
        out, err = capture
        assert main([], out, err) == EX_USAGE
