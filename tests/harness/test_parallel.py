"""Process-pool fan-out of the evaluation matrix (``--jobs``)."""

import os
import pickle

from repro.harness import tables
from repro.harness.parallel import execute_task, resolve_jobs, run_tasks
from repro.harness.stats import is_measurement_cached, measure
from repro.softbound.config import FULL_SHADOW
from repro.vm.errors import Trap, TrapKind


class TestResolveJobs:
    def test_explicit_wins(self):
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5
        assert resolve_jobs(2) == 2

    def test_serial_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert resolve_jobs() == 1


class TestTaskExecution:
    def test_measure_task_matches_direct_measurement(self):
        direct = measure("treeadd", FULL_SHADOW)
        via_task = execute_task(("measure", "treeadd", FULL_SHADOW))
        assert via_task.cost == direct.cost
        assert via_task.checks == direct.checks

    def test_run_tasks_preserves_submission_order(self):
        tasks = [("measure", "treeadd", None), ("measure", "compress", None)]
        results = run_tasks(tasks, jobs=1)
        assert [m.name for m in results] == ["treeadd", "compress"]

    def test_parallel_results_match_serial(self):
        tasks = [("measure", "treeadd", None),
                 ("attack", tables.all_attacks()[0].name)]
        serial = run_tasks(tasks, jobs=1)
        parallel = run_tasks(tasks, jobs=2)
        assert parallel[0].cost == serial[0].cost
        assert parallel[1] == serial[1]


class TestPrewarm:
    def test_prewarm_seeds_caches_and_is_idempotent(self):
        first = tables.prewarm(jobs=1, only="figure1")
        assert all(is_measurement_cached(name) for name in
                   __import__("repro.workloads.programs",
                              fromlist=["WORKLOADS"]).WORKLOADS)
        again = tables.prewarm(jobs=1, only="figure1")
        assert again == 0  # everything already memoized

    def test_prewarmed_render_equals_lazy_render(self):
        tables.prewarm(jobs=1, only="table4")
        warmed = tables.render_table4()
        assert "Table 4" in warmed
        # The memo is consulted, not recomputed: render again and
        # compare (deterministic content either way).
        assert tables.render_table4() == warmed


class TestTrapPickling:
    def test_trap_roundtrips(self):
        trap = Trap(TrapKind.SPATIAL_VIOLATION, "store of 4 bytes",
                    address=0x1234, source="softbound")
        clone = pickle.loads(pickle.dumps(trap))
        assert clone.kind == trap.kind
        assert clone.detail == trap.detail
        assert clone.address == trap.address
        assert clone.source == trap.source
