"""The shared fault-injection registry (`repro.harness.faults`):
arming semantics, environment parsing, the store fault points, and the
legacy `repro.fuzz._testhooks` alias."""

import errno
import subprocess
import sys

import pytest

from repro.harness import faults


@pytest.fixture(autouse=True)
def clean_registry():
    faults.clear()
    yield
    faults.clear()


class TestRegistry:
    def test_unarmed_points_are_free(self):
        assert not faults.consume("torn_write")
        assert faults.mangle_payload(b"data") == b"data"
        faults.check_write_open()  # no raise
        faults.maybe_die("replace")  # no kill

    def test_install_fires_exactly_count_times(self):
        faults.install("eperm", times=2)
        assert faults.armed("eperm") == 2
        assert faults.consume("eperm")
        assert faults.consume("eperm")
        assert not faults.consume("eperm")
        assert faults.fired("eperm") == 2

    def test_install_accumulates(self):
        faults.install("bitflip")
        faults.install("bitflip")
        assert faults.armed("bitflip") == 2

    def test_unknown_name_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown fault"):
            faults.install("tornwrite")

    def test_clear_disarms_and_forgets(self):
        faults.install("torn_write")
        faults.consume("torn_write")
        faults.clear()
        assert faults.armed("torn_write") == 0
        assert faults.fired("torn_write") == 0


class TestFaultPoints:
    def test_torn_write_commits_a_prefix(self):
        faults.install("torn_write")
        data = bytes(range(100))
        torn = faults.mangle_payload(data)
        assert torn == data[:50]
        assert faults.mangle_payload(data) == data  # disarmed now

    def test_torn_write_never_commits_zero_bytes_of_nonempty(self):
        faults.install("torn_write")
        assert faults.mangle_payload(b"x") == b"x"[:1]

    def test_bitflip_changes_exactly_one_byte(self):
        faults.install("bitflip")
        data = bytes(100)
        flipped = faults.mangle_payload(data)
        assert len(flipped) == len(data)
        assert sum(a != b for a, b in zip(flipped, data)) == 1

    def test_eperm(self):
        faults.install("eperm")
        with pytest.raises(PermissionError):
            faults.check_write_open()

    def test_disk_full(self):
        faults.install("disk_full")
        with pytest.raises(OSError) as excinfo:
            faults.check_write_open()
        assert excinfo.value.errno == errno.ENOSPC

    def test_maybe_die_kills_the_process(self):
        code = (
            "from repro.harness import faults\n"
            "faults.install('sigkill_replace')\n"
            "faults.maybe_die('replace')\n"
            "print('survived')\n"
        )
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, timeout=60)
        assert proc.returncode == -9
        assert "survived" not in proc.stdout


class TestEnvArming:
    def run_child(self, spec, body):
        proc = subprocess.run(
            [sys.executable, "-c",
             f"import os\nos.environ['{faults.ENV_VAR}'] = {spec!r}\n"
             f"from repro.harness import faults\n{body}"],
            capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_spec_parsing(self):
        out = self.run_child(
            "torn_write:2, eperm",
            "print(faults.armed('torn_write'), faults.armed('eperm'))")
        assert out.split() == ["2", "1"]

    def test_empty_spec(self):
        out = self.run_child("", "print(faults.armed('torn_write'))")
        assert out.strip() == "0"

    def test_clear_suppresses_env_rearming(self):
        out = self.run_child(
            "eperm:3",
            "faults.clear()\nprint(faults.armed('eperm'))")
        assert out.strip() == "0"


class TestLegacyAlias:
    def test_testhooks_module_still_resolves(self):
        """Recorded ``repro.fuzz._testhooks:name`` task paths must keep
        working: the shim re-exports the subprocess hooks."""
        from repro.fuzz import _testhooks

        for name in ("echo", "hang", "kill_self", "kill_self_once",
                     "flaky_once", "write_pid"):
            assert getattr(_testhooks, name) is getattr(faults, name)

    def test_echo_round_trip(self):
        assert faults.echo({"k": 1}) == {"k": 1}
