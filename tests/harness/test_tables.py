"""Structural tests for the table/figure renderers.

The benchmarks assert the experimental claims; these tests pin the
*artifact* structure so a rendering regression (dropped row, broken
bar, missing column) cannot slip through with the numbers still right.
"""

import pytest

from repro.harness import tables


class TestTable1:
    def test_six_schemes_in_paper_order(self):
        text = tables.render_table1()
        for scheme in ("SafeC", "JKRLDA", "CCured", "MSCC", "SoftBound"):
            assert scheme in text
        # SoftBound is the last data row of the *paper's* table; any
        # registered policy extension rows live in a separate block
        # below it so the paper block stays byte-stable.
        paper_block = text.split("\n\n")[0]
        data_lines = [l for l in paper_block.splitlines() if l.strip()]
        assert data_lines[-1].startswith("SoftBound")

    def test_extension_policies_render_below_the_paper_block(self):
        text = tables.render_table1()
        assert "Extension policies (repro.policy)" in text
        extension_block = text.split("\n\n")[1]
        assert "RedZone" in extension_block
        assert "SoftBound" not in extension_block

    def test_provenance_column_present(self):
        text = tables.render_table1()
        assert "measured" in text and "derived" in text


class TestTable3:
    def test_eighteen_attacks_rendered(self):
        matrix = tables.table3_matrix()
        assert len(matrix) == 18
        for name, (exploited, full, store) in matrix.items():
            assert exploited, f"{name} must exploit when unprotected"
            assert full and store, f"{name} must be detected in both modes"

    def test_four_group_banners(self):
        text = tables.render_table3()
        banners = [l for l in text.splitlines() if l.startswith("-- ")]
        assert len(banners) == 4


class TestTable4:
    def test_sixteen_cells_match_paper(self):
        text = tables.render_table4()
        assert "MISMATCH" not in text
        assert text.count("match") == 4

    def test_go_row_separates_full_from_store_only(self):
        matrix = tables.table4_matrix()
        valgrind, mudflap, store, full = matrix["go"]
        assert (valgrind, mudflap, store, full) == (False, False, False, True)


class TestFigures:
    def test_figure1_has_fifteen_bars(self):
        text = tables.render_figure1()
        bars = [l for l in text.splitlines() if "|" in l or "#" in l]
        assert len(bars) >= 15

    def test_figure1_sorted_ascending(self):
        from repro.harness.stats import pointer_fractions

        fractions = pointer_fractions()
        text = tables.render_figure1()
        order = []
        for line in text.splitlines():
            tokens = line.replace("[SPEC]", " ").split()
            if tokens and tokens[0] in fractions:
                order.append(tokens[0])
        assert len(order) == 15
        values = [fractions[name] for name in order]
        assert values == sorted(values)

    def test_figure2_has_four_config_columns(self):
        text = tables.render_figure2()
        for label in ("HashTable-Complete", "ShadowSpace-Complete",
                      "HashTable-Stores", "ShadowSpace-Stores"):
            assert label in text
        assert "average" in text

    def test_metadata_ablation_mentions_both_facilities(self):
        text = tables.render_metadata_ablation()
        assert "hash" in text.lower()
        assert "shadow" in text.lower()


class TestRenderAll:
    def test_render_all_concatenates_every_artifact(self):
        text = tables.render_all()
        for fragment in ("Table 1", "Table 3", "Table 4",
                         "Figure 1", "Figure 2"):
            assert fragment in text
