"""End-to-end contracts of the -O2 prove level.

The property the whole subsystem rests on: deleting a proven check is
*observationally invisible* — every (opt level, engine) cell agrees
byte-for-byte — while the deletions themselves are visible exactly
where they should be: in the stats, the certificates, the profiler's
elimination summary and the store's cache key.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.api import compile_source, run_compiled, run_source
from repro.api.profiles import UsageError
from repro.prove import (
    ProveConfig,
    ProveNotSupportedError,
    opt_level,
    prove_config_of,
    replay_certificate,
)
from repro.store.format import cache_key_text
from repro.api import as_profile

LOOP_PROGRAM = r'''
int main(void) {
    int a[100];
    long total = 0;
    int i;
    for (i = 0; i < 100; i++) a[i] = i;
    for (i = 0; i < 100; i++) total += a[i];
    printf("total=%ld\n", total);
    return 0;
}
'''

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def test_opt_level_normalization():
    assert opt_level(None) == opt_level(False) == opt_level(0) == 0
    assert opt_level(True) == opt_level(1) == 1
    assert opt_level(2) == opt_level(ProveConfig()) == 2
    with pytest.raises(UsageError):
        opt_level(3)
    assert prove_config_of(1) is None
    assert prove_config_of(2) == ProveConfig()
    custom = ProveConfig(case_split_limit=16)
    assert prove_config_of(custom) is custom


def test_o2_deletes_loop_checks_with_certificates():
    o1 = compile_source(LOOP_PROGRAM, profile="spatial", optimize=1)
    o2 = compile_source(LOOP_PROGRAM, profile="spatial", optimize=2)
    r1 = run_compiled(o1, profile="spatial")
    r2 = run_compiled(o2, profile="spatial")
    assert r1.trap is None and r2.trap is None
    assert (r1.exit_code, r1.output) == (r2.exit_code, r2.output)
    # -O1 already hoisted these loop checks out of the loop (they run
    # once, off the trip count); -O2 deletes them outright, so the
    # proved build is strictly cheaper and strictly shorter.
    assert r2.stats.cost < r1.stats.cost
    assert r2.stats.instructions < r1.stats.instructions

    certs = tuple(getattr(o2, "prove_certificates", None) or ())
    stats = o2.check_opt_stats
    proved = stats.proved_checks + stats.proved_temporal_checks
    assert proved == len(certs) > 0
    for cert in certs:
        ok, reason = replay_certificate(cert)
        assert ok, f"{cert.function}:{cert.site}: {reason}"


def test_matrix_byte_identity_across_levels_and_engines():
    rows = {}
    for engine in ("compiled", "interp"):
        for level in (0, 1, 2):
            report = run_source(LOOP_PROGRAM, profile="full",
                                engine=engine, optimize=level)
            assert report.trap is None
            rows[(engine, level)] = (report.exit_code, report.output)
    assert len(set(rows.values())) == 1, rows


def test_prove_config_spelling_reaches_the_pass():
    # max_blocks=0 skips the analysis for every function — a sound
    # no-op whose fingerprint (zero certificates) proves the tuned
    # config actually reached the pass.
    gated = compile_source(LOOP_PROGRAM, profile="spatial",
                           optimize=ProveConfig(max_blocks=0))
    full = compile_source(LOOP_PROGRAM, profile="spatial", optimize=2)
    assert not (getattr(gated, "prove_certificates", None) or ())
    assert len(getattr(full, "prove_certificates", None) or ()) > 0
    # skipping is sound: the gated build still runs correctly
    report = run_compiled(gated, profile="spatial")
    assert report.trap is None and report.exit_code == 0


def test_non_provable_policies_refuse_o2():
    for policy in ("mscc", "valgrind", "fatptr-naive"):
        with pytest.raises(ProveNotSupportedError):
            compile_source(LOOP_PROGRAM, profile=policy, optimize=2)
    # ...but still accept -O1 (nothing changed for them)
    report = run_source(LOOP_PROGRAM, profile="mscc", optimize=1)
    assert report.trap is None


def test_store_keys_keep_proved_builds_distinct():
    profile = as_profile("spatial")
    tokens = {cache_key_text(profile, optimize)
              for optimize in (False, True, 2, ProveConfig(),
                               ProveConfig(case_split_limit=8))}
    # O0, O1, O2-default and each tuned config are all distinct
    # artifacts; the historical bool spellings alias their int twins.
    assert len(tokens) == 5
    assert cache_key_text(profile, True) == cache_key_text(profile, 1)
    assert cache_key_text(profile, False) == cache_key_text(profile, 0)


def _cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src")
                         + (":" + env["PYTHONPATH"]
                            if env.get("PYTHONPATH") else ""))
    return subprocess.run([sys.executable, "-m", "repro", *argv],
                          cwd=REPO_ROOT, env=env, capture_output=True,
                          text=True, timeout=300)


def test_cli_opt_level_flag(tmp_path):
    source = tmp_path / "loop.c"
    source.write_text(LOOP_PROGRAM)
    ok = _cli("run", str(source), "--profile", "spatial", "-O", "2",
              "--json")
    assert ok.returncode == 0, ok.stderr
    assert json.loads(ok.stdout)["exit_code"] == 0
    # typed refusal for a non-provable policy: usage error, exit 64
    refused = _cli("run", str(source), "--profile", "valgrind", "-O", "2")
    assert refused.returncode == 64, (refused.returncode, refused.stderr)
    assert "provable" in refused.stderr


def test_cli_profile_emits_elimination_counters(tmp_path):
    source = tmp_path / "loop.c"
    source.write_text(LOOP_PROGRAM)
    proc = _cli("profile", str(source), "--json", "-O", "2")
    assert proc.returncode == 0, proc.stderr
    report = json.loads(proc.stdout)
    static = report["eliminated_static"]
    assert static["by_proof"]["sb_check"] > 0
    assert report["certificates"] == static["by_proof"]["sb_check"] \
        + static["by_proof"]["sb_temporal_check"]
    assert set(report["eliminated_dynamic"]) == {
        "hoisted_checks", "hoisted_meta_loads", "widened_checks"}
    # the proved sites keep a zero-total row instead of vanishing
    proved_rows = [row for row in report["sites"]
                   if row.get("proved", 0) > 0]
    assert proved_rows, "proved sites missing from the site table"
