"""Interval-lattice laws the abstract domain rests on."""

from repro.prove.intervals import NEG_INF, POS_INF, TOP, Interval


def test_constructors_and_predicates():
    c = Interval.const(5)
    assert c.is_const and c.is_finite and not c.is_top
    assert c.contains(5) and not c.contains(6)
    r = Interval.range(0, 9)
    assert r.within(0, 9) and not r.within(1, 9)
    assert TOP.is_top and not TOP.is_finite


def test_join_is_least_upper_bound():
    a, b = Interval(0, 4), Interval(2, 9)
    j = a.join(b)
    assert j == Interval(0, 9)
    assert a.issubset(j) and b.issubset(j)
    # commutative, idempotent, TOP absorbs
    assert b.join(a) == j
    assert a.join(a) == a
    assert a.join(TOP) == TOP


def test_meet_intersects_or_empties():
    assert Interval(0, 4).meet(Interval(2, 9)) == Interval(2, 4)
    assert Interval(0, 1).meet(Interval(5, 9)) is None
    assert Interval(3, 3).meet(TOP) == Interval(3, 3)


def test_widen_jumps_moving_endpoints_to_infinity():
    old, new = Interval(0, 4), Interval(0, 7)
    w = old.widen(new)
    assert w == Interval(0, POS_INF)
    new_lo = Interval(-2, 4)
    assert old.widen(new_lo) == Interval(NEG_INF, 4)
    # a stable chain stays put
    assert old.widen(Interval(1, 3)) == old


def test_widening_stabilizes_ascending_chains():
    """The fixpoint argument: widen at most twice per endpoint and any
    ascending chain is stationary."""
    state = Interval(0, 0)
    for step in range(1, 50):
        state = state.widen(state.join(Interval(0, step)))
    assert state == Interval(0, POS_INF)
    assert state.widen(state.join(Interval(0, 10 ** 9))) == state


def test_arithmetic_is_exact_on_finite_endpoints():
    a, b = Interval(1, 3), Interval(10, 20)
    assert a.add(b) == Interval(11, 23)
    assert b.sub(a) == Interval(7, 19)
    assert a.neg() == Interval(-3, -1)
    assert Interval(-2, 3).mul(Interval(4, 5)) == Interval(-10, 15)


def test_arithmetic_with_infinite_endpoints():
    half = Interval(0, POS_INF)
    assert half.add(Interval.const(5)) == Interval(5, POS_INF)
    assert half.neg() == Interval(NEG_INF, 0)
    assert half.mul(Interval.const(-1)) == Interval(NEG_INF, 0)
    assert TOP.mul(Interval.const(0)) == Interval(0, 0)


def test_shift_span_covers_the_counted_loop_recurrence():
    # i starts in [0, 0], loop does i += 4 at most 10 times.
    start = Interval.const(0)
    assert start.shift_span(4, 10) == Interval(0, 40)
    # negative step spans downward
    assert start.shift_span(-4, 10) == Interval(-40, 0)
    # zero trips is the identity
    assert start.shift_span(4, 0) == start
