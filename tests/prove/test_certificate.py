"""Certificates: round-trip, replay, and the tamper counterexamples.

``replay_certificate`` is the subsystem's trust anchor — a wrong proof
must fail here, loudly.  Every negative test below is a forged or
corrupted certificate that the two replay layers (arithmetic recheck,
formal-model execution) must reject.
"""

import dataclasses

from repro.prove import Certificate, replay_certificate
from repro.temporal.locks import GLOBAL_KEY, GLOBAL_LOCK


def spatial_cert(**overrides):
    fields = dict(
        kind="spatial", function="f", block="entry", site=("f", 3, 0),
        access_kind="load", method="difference-interval",
        region="alloca:1",
        facts=("ptr.lo(0) - base.hi(0) >= 0",
               "bound.lo(40) - ptr.hi(36) >= size(4)"),
        size=4, ptr_lo=0, ptr_hi=36, base_hi=0, bound_lo=40)
    fields.update(overrides)
    return Certificate(**fields)


def temporal_cert(**overrides):
    fields = dict(
        kind="temporal", function="f", block="entry", site=("f", 5, 0),
        access_kind="load", method="immortal-lock", region="lockspace",
        facts=("key == GLOBAL_KEY", "lock == GLOBAL_LOCK"),
        key=GLOBAL_KEY, lock=GLOBAL_LOCK)
    fields.update(overrides)
    return Certificate(**fields)


def test_json_round_trip_is_lossless():
    for cert in (spatial_cert(), temporal_cert()):
        clone = Certificate.from_json(cert.to_json())
        assert clone == cert


def test_valid_spatial_certificate_replays():
    ok, reason = replay_certificate(spatial_cert())
    assert ok, reason


def test_valid_temporal_certificate_replays():
    ok, reason = replay_certificate(temporal_cert())
    assert ok, reason


def test_tampered_underflow_margin_is_a_counterexample():
    # ptr.lo below base.hi: the deleted check could have fired low.
    ok, reason = replay_certificate(spatial_cert(ptr_lo=-1))
    assert not ok and reason.startswith("arithmetic")


def test_tampered_overflow_margin_is_a_counterexample():
    # ptr.hi + size crosses bound.lo by one byte.
    ok, reason = replay_certificate(spatial_cert(ptr_hi=37))
    assert not ok and reason.startswith("arithmetic")


def test_tampered_size_is_a_counterexample():
    ok, reason = replay_certificate(spatial_cert(size=0))
    assert not ok and reason.startswith("arithmetic")
    ok, reason = replay_certificate(spatial_cert(size=5))
    assert not ok


def test_empty_pointer_interval_is_a_counterexample():
    ok, reason = replay_certificate(spatial_cert(ptr_lo=8, ptr_hi=4))
    assert not ok and "empty" in reason


def test_huge_extent_replays_at_scaled_geometry():
    # A megabyte-scale object exceeds the formal memory; the replay
    # must scale while preserving the boundary margins.
    big = spatial_cert(ptr_lo=0, ptr_hi=1_048_572, base_hi=0,
                       bound_lo=1_048_576)
    ok, reason = replay_certificate(big)
    assert ok, reason
    # and the scaled replay still catches a forged high margin
    forged = spatial_cert(ptr_lo=0, ptr_hi=1_048_575, base_hi=0,
                          bound_lo=1_048_576)
    ok, _ = replay_certificate(forged)
    assert not ok


def test_non_immortal_lock_claim_is_a_counterexample():
    ok, reason = replay_certificate(temporal_cert(key=GLOBAL_KEY + 1,
                                                  lock=GLOBAL_LOCK + 1))
    assert not ok and reason.startswith("arithmetic")


def test_unknown_kind_is_rejected():
    cert = dataclasses.replace(spatial_cert(), kind="mystery")
    ok, reason = replay_certificate(cert)
    assert not ok and "unknown" in reason
