"""The SMT-lite decision procedure, one inequality at a time."""

from repro.prove.absint import AbsVal
from repro.prove.intervals import Interval, TOP
from repro.prove.solver import IMMORTAL, solve
from repro.prove.vcgen import Obligation

REGION = ("alloca", 7)


def spatial(ptr, base, bound, size, region=REGION):
    return Obligation(
        "spatial", instr=None, function="f", block="entry",
        site=("f", 1, 0),
        operands={"ptr": ptr, "base": base, "bound": bound, "size": size})


def temporal(key, lock):
    return Obligation(
        "temporal", instr=None, function="f", block="entry",
        site=("f", 1, 0), operands={"key": key, "lock": lock})


def av(lo, hi, region=REGION, recur=False):
    return AbsVal(region, Interval(lo, hi), recur)


def const(value, region=None):
    return AbsVal(region, Interval.const(value))


def test_in_bounds_access_is_discharged():
    proof = solve(spatial(ptr=av(0, 36), base=av(0, 0), bound=av(40, 40),
                          size=const(4)))
    assert proof is not None
    assert proof.method == "difference-interval"
    assert len(proof.facts) == 2


def test_recurrence_marked_operand_labels_the_method():
    proof = solve(spatial(ptr=av(0, 36, recur=True), base=av(0, 0),
                          bound=av(40, 40), size=const(4)))
    assert proof is not None and proof.method == "counted-loop-recurrence"


def test_one_byte_past_bound_is_refused():
    # ptr may reach offset 37; 37 + 4 > 40.
    assert solve(spatial(ptr=av(0, 37), base=av(0, 0), bound=av(40, 40),
                         size=const(4))) is None


def test_possible_underflow_is_refused():
    assert solve(spatial(ptr=av(-1, 36), base=av(0, 0), bound=av(40, 40),
                         size=const(4))) is None


def test_cross_region_operands_are_refused():
    other = ("alloca", 8)
    assert solve(spatial(ptr=av(0, 0), base=av(0, 0, region=other),
                         bound=av(40, 40), size=const(4))) is None


def test_unbounded_endpoints_are_refused():
    top_ptr = AbsVal(REGION, TOP)
    assert solve(spatial(ptr=top_ptr, base=av(0, 0), bound=av(40, 40),
                         size=const(4))) is None
    # an unbounded size can never be proven to fit
    assert solve(spatial(ptr=av(0, 0), base=av(0, 0), bound=av(40, 40),
                         size=AbsVal(None, Interval(1, float("inf"))))) \
        is None


def test_degenerate_size_is_refused():
    assert solve(spatial(ptr=av(0, 0), base=av(0, 0), bound=av(40, 40),
                         size=const(0))) is None


def test_immortal_lock_pair_is_discharged():
    key, lock = IMMORTAL
    proof = solve(temporal(key=const(key), lock=const(lock)))
    assert proof is not None and proof.method == "immortal-lock"


def test_heap_lock_pair_is_refused():
    key, lock = IMMORTAL
    # any non-global slot can die; the rule must not fire
    assert solve(temporal(key=const(key + 1), lock=const(lock + 1))) is None
    # a non-constant key admits dead states
    assert solve(temporal(key=AbsVal(None, Interval(0, 5)),
                          lock=const(lock))) is None
    # region-tainted operands are not integers the rule understands
    assert solve(temporal(key=const(key, region=REGION),
                          lock=const(lock))) is None
