"""Tracer semantics: JSON-lines schema, span nesting and ordering,
summaries, and the disabled null-object path."""

import json
import os

import pytest

from repro.obs.trace import (NULL_SPAN, NULL_TRACER, disable_tracing,
                             enable_tracing, tracer, tracing_enabled)

SCHEMA_KEYS = {"name", "span", "ts", "dur", "pid", "parent", "attrs"}
REQUIRED_KEYS = {"name", "span", "ts", "dur", "pid"}


def read_lines(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle]


@pytest.fixture
def sink(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    enable_tracing(path)
    yield path
    disable_tracing()


class TestDisabled:
    def test_null_tracer_by_default(self):
        assert tracer() is NULL_TRACER
        assert not tracing_enabled()

    def test_null_spans_are_inert(self):
        span = tracer().start_span("anything", k=1)
        assert span is NULL_SPAN
        span.set(x=2)
        span.finish()
        with tracer().span("scoped"):
            pass
        assert tracer().summary() == {}


class TestEnable:
    def test_enable_exports_env_for_workers(self, sink):
        assert tracing_enabled()
        assert os.environ["REPRO_TRACE"] == sink

    def test_disable_clears_env(self, sink):
        disable_tracing()
        assert "REPRO_TRACE" not in os.environ
        assert not tracing_enabled()

    def test_reenable_same_path_keeps_tracer(self, sink):
        first = tracer()
        assert enable_tracing(sink) is first


class TestSchema:
    def test_line_schema_round_trips(self, sink):
        with tracer().span("alpha", key="value"):
            pass
        (line,) = read_lines(sink)
        assert REQUIRED_KEYS <= set(line) <= SCHEMA_KEYS
        assert line["name"] == "alpha"
        assert line["attrs"] == {"key": "value"}
        assert line["pid"] == os.getpid()
        pid, seq = line["span"].split(":")
        assert int(pid) == os.getpid() and int(seq) >= 1
        assert line["dur"] >= 0

    def test_every_line_is_standalone_json(self, sink):
        for index in range(3):
            with tracer().span("s", i=index):
                pass
        assert [line["attrs"]["i"] for line in read_lines(sink)] == [0, 1, 2]


class TestNesting:
    def test_child_records_parent_and_finishes_first(self, sink):
        with tracer().span("outer") as outer:
            with tracer().span("inner"):
                pass
        inner_line, outer_line = read_lines(sink)
        assert inner_line["name"] == "inner"
        assert inner_line["parent"] == outer.span_id
        assert outer_line["name"] == "outer"
        assert "parent" not in outer_line

    def test_explicit_span_outlives_scope(self, sink):
        held = tracer().start_span("held")
        with tracer().span("sibling"):
            pass
        held.finish(done=True)
        names = [line["name"] for line in read_lines(sink)]
        assert names == ["sibling", "held"]

    def test_sibling_nests_under_held_span(self, sink):
        held = tracer().start_span("held")
        with tracer().span("child"):
            pass
        held.finish()
        child_line, _ = read_lines(sink)
        assert child_line["parent"] == held.span_id


class TestAttrs:
    def test_set_and_finish_attrs_merge(self, sink):
        span = tracer().start_span("s", a=1)
        span.set(b=2)
        span.finish(c=3)
        (line,) = read_lines(sink)
        assert line["attrs"] == {"a": 1, "b": 2, "c": 3}

    def test_exception_sets_error_attr(self, sink):
        with pytest.raises(RuntimeError):
            with tracer().span("failing"):
                raise RuntimeError("boom")
        (line,) = read_lines(sink)
        assert line["attrs"]["error"] == "RuntimeError"

    def test_double_finish_emits_once(self, sink):
        span = tracer().start_span("once")
        span.finish()
        span.finish()
        assert len(read_lines(sink)) == 1


class TestSummary:
    def test_counts_and_totals_per_name(self, sink):
        for _ in range(3):
            with tracer().span("hot"):
                pass
        with tracer().span("cold"):
            pass
        summary = tracer().summary()
        assert summary["hot"]["count"] == 3
        assert summary["cold"]["count"] == 1
        assert summary["hot"]["total_s"] >= 0
