"""The ``python -m repro profile`` subcommand and the global
``--trace`` flag."""

import io
import json

import pytest

from repro.cli import EX_COMPILE, EX_USAGE, main

GOOD = r"""
int main(void) {
    int a[8];
    for (int i = 0; i < 8; i++) a[i] = i;
    return a[7];
}
"""


@pytest.fixture
def capture():
    return io.StringIO(), io.StringIO()


def run_cli(argv, capture):
    stdout, stderr = capture
    code = main(argv, stdout=stdout, stderr=stderr)
    return code, stdout.getvalue(), stderr.getvalue()


class TestProfileCommand:
    def test_workload_by_name_renders_table(self, capture):
        code, out, _ = run_cli(["profile", "treeadd"], capture)
        assert code == 0
        assert "check-site profile: treeadd" in out
        assert "attribution:" in out

    def test_file_target(self, tmp_path, capture):
        path = tmp_path / "prog.c"
        path.write_text(GOOD)
        code, out, _ = run_cli(["profile", str(path)], capture)
        assert code == 0
        assert "sb_check" in out

    def test_json_schema(self, capture):
        code, out, _ = run_cli(["profile", "treeadd", "--json"], capture)
        assert code == 0
        row = json.loads(out)
        assert row["schema"] == "obs-profile-v1"
        assert row["sites"]

    def test_engines_agree_at_cli_level(self, capture):
        _, interp_out, _ = run_cli(
            ["profile", "treeadd", "--json", "--engine", "interp"], capture)
        stdout, stderr = io.StringIO(), io.StringIO()
        main(["profile", "treeadd", "--json", "--engine", "compiled"],
             stdout=stdout, stderr=stderr)
        interp_row = json.loads(interp_out)
        compiled_row = json.loads(stdout.getvalue())
        assert interp_row["sites"] == compiled_row["sites"]
        assert interp_row["totals"] == compiled_row["totals"]

    def test_missing_file_is_usage_error(self, capture):
        code, _, err = run_cli(["profile", "/no/such/file.c"], capture)
        assert code == EX_USAGE
        assert err

    def test_compile_error_exit_code(self, tmp_path, capture):
        path = tmp_path / "bad.c"
        path.write_text("int main( {")
        code, _, err = run_cli(["profile", str(path)], capture)
        assert code == EX_COMPILE
        assert "compile error" in err

    def test_top_limits_table_rows(self, capture):
        code, out, _ = run_cli(["profile", "treeadd", "--top", "1"], capture)
        assert code == 0
        assert "more sites" in out


class TestTraceFlag:
    def test_trace_flag_writes_spans(self, tmp_path, capture):
        prog = tmp_path / "prog.c"
        prog.write_text(GOOD)
        sink = tmp_path / "trace.jsonl"
        code, _, _ = run_cli(["--trace", str(sink), "run", str(prog)],
                             capture)
        assert code == 7  # the program's own exit code (a[7])
        lines = [json.loads(line) for line in sink.read_text().splitlines()]
        names = {line["name"] for line in lines}
        assert "vm.run" in names
        assert "stage.parse" in names

    def test_trace_flag_after_subcommand(self, tmp_path, capture):
        prog = tmp_path / "prog.c"
        prog.write_text(GOOD)
        sink = tmp_path / "trace.jsonl"
        code, _, _ = run_cli(["run", str(prog), "--trace", str(sink)],
                             capture)
        assert code == 7
        assert sink.read_text().strip()
