"""Golden invariance: with observability off, nothing observable leaks
into any recorded output format — run-report JSON rows keep the exact
key set of the recorded ``BENCH_*.json`` goldens, and the paper tables
render byte-identically whether or not obs is switched on."""

import json
import os

import pytest

from repro.api import run_source
from repro.harness import tables
from repro.obs import enable_metrics, enable_tracing
from repro.workloads.programs import WORKLOADS

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")

TINY = r"""
int main(void) {
    int a[4];
    for (int i = 0; i < 4; i++) a[i] = i;
    return a[3];
}
"""


class TestRunReportRows:
    def test_obs_off_emits_no_obs_key(self):
        row = run_source(TINY, profile="spatial").to_json()
        assert "obs" not in row

    def test_obs_on_emits_metrics_block(self):
        enable_metrics()
        row = run_source(TINY, profile="spatial").to_json()
        assert "metrics" in row["obs"]

    def test_tracing_adds_trace_summary(self, tmp_path):
        enable_tracing(str(tmp_path / "t.jsonl"))
        report = run_source(TINY, profile="spatial")
        assert "trace" in report.obs
        assert report.obs["trace"]["vm.run"]["count"] == 1

    def test_recorded_bench_goldens_carry_no_obs_series(self):
        # The recorded BENCH_*.json documents predate obs and must stay
        # that way: nothing in them mentions observability.
        for name in ("BENCH_interp.json", "BENCH_checkopt.json",
                     "BENCH_temporal.json"):
            with open(os.path.join(REPO_ROOT, name)) as handle:
                text = handle.read()
            assert json.loads(text)["schema"] == "bench-v2"
            assert "obs" not in json.loads(text)["workloads"] \
                and "repro_" not in text

    def test_batch_document_rows_have_no_obs_key(self):
        from repro.api import Session

        batch = Session().run_many([("tiny", TINY, "spatial")])
        doc = batch.to_json()
        assert doc["schema"] == "bench-v2"
        assert all("obs" not in row for row in doc["workloads"].values())


class TestTableInvariance:
    @pytest.fixture(scope="class")
    def rendered_off(self):
        # Render all four tables with obs fully off, before the enabled
        # renders warm anything differently.
        return {
            "table1": tables.render_table1(),
            "table3": tables.render_table3(),
            "table4": tables.render_table4(),
            "figure1": tables.render_figure1(),
        }

    def test_tables_identical_with_obs_enabled(self, rendered_off,
                                               tmp_path):
        enable_metrics()
        enable_tracing(str(tmp_path / "tables.jsonl"))
        assert tables.render_table1() == rendered_off["table1"]
        assert tables.render_table3() == rendered_off["table3"]
        assert tables.render_table4() == rendered_off["table4"]
        assert tables.render_figure1() == rendered_off["figure1"]
