"""Check-site profiler: per-site counts must be bit-identical across
the two VM engines — on clean workloads, trapping attacks and runs cut
short by the instruction limit — and attributing them to source lines
must cover the executed checks (the paper-facing acceptance bar is
>=80% of executed ``sb_meta_load``)."""

import pytest

from repro.api import compile_source
from repro.api.profiles import as_profile
from repro.obs.profiler import (SITE_KINDS, SiteProfile, build_report,
                                profile_source, render_table, site_of)
from repro.vm.errors import TrapKind
from repro.workloads.attacks import all_attacks
from repro.workloads.programs import WORKLOADS
from repro.workloads.temporal_attacks import all_temporal_attacks

WORKLOAD_NAMES = ("treeadd", "bisort", "em3d")


def profile_pair(source, profile="spatial", **kwargs):
    interp = profile_source(source, profile=profile, engine="interp",
                            **kwargs)
    compiled = profile_source(source, profile=profile, engine="compiled",
                              **kwargs)
    return interp, compiled


class TestEngineEquivalence:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_spatial_site_counts_identical(self, name):
        interp, compiled = profile_pair(WORKLOADS[name].source, program=name)
        assert interp.sites == compiled.sites
        assert interp.totals == compiled.totals
        assert interp.exit_code == compiled.exit_code

    def test_full_profile_counts_identical(self):
        interp, compiled = profile_pair(WORKLOADS["treeadd"].source,
                                        profile="full", program="treeadd")
        assert interp.sites == compiled.sites
        assert interp.totals["sb_temporal_check"] > 0

    def test_trapping_attack_counts_identical(self):
        attack = all_attacks()[0]
        interp, compiled = profile_pair(attack.source, program=attack.name)
        assert interp.trap == compiled.trap == TrapKind.SPATIAL_VIOLATION.name
        assert interp.sites == compiled.sites

    def test_temporal_attack_counts_identical(self):
        attack = all_temporal_attacks()[0]
        interp, compiled = profile_pair(attack.source, profile="full",
                                        program=attack.name)
        assert interp.sites == compiled.sites

    def test_resource_limit_cut_counts_identical(self):
        # The subtle edge: profiled compiled closures record *after* the
        # per-instruction limit check, interp handlers record after the
        # loop's limit check — so a run cut mid-flight by the budget
        # still tallies identically on both engines.
        interp, compiled = profile_pair(WORKLOADS["treeadd"].source,
                                        program="treeadd",
                                        max_instructions=5_000)
        assert interp.trap == compiled.trap == TrapKind.RESOURCE_LIMIT.name
        assert interp.sites == compiled.sites
        assert interp.totals == compiled.totals


class TestAttribution:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_meta_loads_attributed_to_source_sites(self, name):
        report = profile_source(WORKLOADS[name].source, engine="compiled",
                                program=name)
        assert report.attribution["sb_meta_load"] >= 0.80
        for row in report.sites:
            assert row["function"] != "?"
            assert row["line"] is not None

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_profiler_totals_match_cost_model(self, name):
        report = profile_source(WORKLOADS[name].source, engine="compiled",
                                program=name)
        assert report.totals == report.executed


class TestProfilingIsObservationOnly:
    @pytest.mark.parametrize("engine", ("interp", "compiled"))
    def test_cost_stats_unchanged_by_profiling(self, engine):
        profile = as_profile("spatial")
        compiled = compile_source(WORKLOADS["treeadd"].source,
                                  profile=profile)

        def run(attach):
            machine = compiled.instantiate(
                observers=profile.make_observers(), engine=engine)
            if attach:
                machine.attach_site_profile(SiteProfile())
            return machine.run()

        plain, profiled = run(False), run(True)
        assert plain.exit_code == profiled.exit_code
        assert plain.stats == profiled.stats

    def test_disabled_path_builds_no_profiling_closures(self):
        # The counting closure variants close over the profile's
        # ``counts`` dict; with no profile attached the compiled engine
        # must build zero of them — the disabled path runs the exact
        # pre-profiler closures, so its cost is unchanged by
        # construction.
        profile = as_profile("spatial")
        compiled = compile_source(WORKLOADS["treeadd"].source,
                                  profile=profile)

        def profiling_closures(attach):
            machine = compiled.instantiate(
                observers=profile.make_observers(), engine="compiled")
            if attach:
                machine.attach_site_profile(SiteProfile())
            machine.run()
            return sum(
                1
                for ops in machine._engine._code.values()
                for op in ops
                if getattr(op, "__code__", None) is not None
                and "counts" in op.__code__.co_freevars)

        assert profiling_closures(False) == 0
        assert profiling_closures(True) > 0


class TestSiteProfile:
    def test_record_and_totals(self):
        profile = SiteProfile()
        profile.record("sb_check", ("f", 3, 0))
        profile.record("sb_check", ("f", 3, 0))
        profile.record("sb_meta_load", ("f", 4, 1))
        assert profile.total("sb_check") == 2
        assert profile.attributed("sb_check") == 2

    def test_unknown_sites_not_attributed(self):
        profile = SiteProfile()
        profile.record("sb_check", ("?", None, -1))
        assert profile.total("sb_check") == 1
        assert profile.attributed("sb_check") == 0

    def test_merge_adds(self):
        left, right = SiteProfile(), SiteProfile()
        left.record("sb_check", ("f", 1, 0))
        right.record("sb_check", ("f", 1, 0))
        right.record("sb_meta_load", ("g", 2, 1))
        left.merge(right)
        assert left.counts[("sb_check", "f", 1, 0)] == 2
        assert left.counts[("sb_meta_load", "g", 2, 1)] == 1

    def test_site_of_fallbacks(self):
        class Instr:
            pass

        instr = Instr()
        assert site_of(instr) == ("?", None, -1)
        instr.src_line = 9
        assert site_of(instr) == ("?", 9, -1)
        instr.obs_site = ("main", 9, 2)
        assert site_of(instr) == ("main", 9, 2)


class TestReport:
    def test_json_schema(self):
        report = profile_source(WORKLOADS["treeadd"].source,
                                engine="compiled", program="treeadd")
        row = report.to_json()
        assert row["schema"] == "obs-profile-v1"
        assert row["program"] == "treeadd"
        assert set(SITE_KINDS) == set(row["totals"])
        assert set(SITE_KINDS) == set(row["attribution"])
        assert row["sites"] and row["sites"][0]["total"] >= \
            row["sites"][-1]["total"]
        assert "optimize" in row["eliminated"]

    def test_top_truncates_ranked_sites(self):
        full = profile_source(WORKLOADS["treeadd"].source,
                              engine="compiled", program="treeadd")
        cut = profile_source(WORKLOADS["treeadd"].source,
                             engine="compiled", program="treeadd", top=2)
        assert cut.sites == full.sites[:2]

    def test_render_table_mentions_hot_site_and_attribution(self):
        report = profile_source(WORKLOADS["treeadd"].source,
                                engine="compiled", program="treeadd")
        text = render_table(report)
        hottest = report.sites[0]
        assert "check-site profile: treeadd" in text
        assert "%s#%d" % (hottest["function"], hottest["seq"]) in text
        assert "attribution:" in text

    def test_build_report_without_stats(self):
        class Result:
            stats = None
            exit_code = 0
            trap = None

        report = build_report(SiteProfile(), Result(), program="p",
                              profile_name="spatial", engine="interp")
        assert report.executed == {}
        assert report.instructions == 0
