"""Worker metrics must merge back into the parent registry — exactly
once per successful attempt — including across a pool that lost a
worker to SIGKILL and recovered by requeueing."""

import pytest

from repro.harness.parallel import run_tasks
from repro.obs import enable_metrics
from repro.obs.metrics import default_registry

BUMP = ("py", "repro.harness.faults:bump_metric", 1)


def bump_delta(before):
    after = default_registry().snapshot()
    return (after.get("repro_test_bump_total", 0)
            - before.get("repro_test_bump_total", 0))


@pytest.fixture
def snapshot_before():
    return default_registry().snapshot()


class TestMerge:
    def test_parallel_bumps_merge_exactly(self, snapshot_before):
        enable_metrics()
        results = run_tasks([BUMP] * 4, jobs=2, task_timeout=60.0)
        assert results == [1, 1, 1, 1]
        assert bump_delta(snapshot_before) == 4

    def test_serial_path_counts_in_process(self, snapshot_before):
        enable_metrics()
        assert run_tasks([BUMP] * 3, jobs=1) == [1, 1, 1]
        assert bump_delta(snapshot_before) == 3

    def test_pool_task_counter_bumped(self, snapshot_before):
        run_tasks([BUMP] * 2, jobs=1)
        after = default_registry().snapshot()
        assert (after["repro_pool_tasks_total"]
                - snapshot_before.get("repro_pool_tasks_total", 0)) == 2

    def test_disabled_obs_skips_worker_merge(self, snapshot_before):
        # Without obs enabled workers run the plain executor: results
        # come back bare and their registries die with them.
        results = run_tasks([BUMP] * 2, jobs=2, task_timeout=60.0)
        assert results == [1, 1]
        assert bump_delta(snapshot_before) == 0


class TestSigkillRecovery:
    def test_merge_survives_killed_worker(self, tmp_path, snapshot_before):
        # One task SIGKILLs its worker on the first attempt; requeueing
        # heals it.  Every bump merges exactly once — interrupted
        # neighbours re-run, but only the successful attempt returns an
        # envelope, so nothing double-counts.
        enable_metrics()
        marker = str(tmp_path / "kill-once")
        tasks = [BUMP,
                 ("py", "repro.harness.faults:kill_self_once", marker),
                 BUMP, BUMP]
        results = run_tasks(tasks, jobs=2, task_timeout=60.0)
        assert results == [1, "recovered", 1, 1]
        assert bump_delta(snapshot_before) == 3
        after = default_registry().snapshot()
        assert after.get("repro_pool_retries_total", 0) >= \
            snapshot_before.get("repro_pool_retries_total", 0)
