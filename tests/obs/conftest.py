"""Shared obs-test hygiene: every test starts and ends with
observability switched off, so the suite's own obs tests can't leak
tracing or forced metrics into unrelated tests (the golden-invariance
tests depend on a genuinely disabled default state)."""

import pytest

from repro.obs import disable_metrics, disable_tracing


@pytest.fixture(autouse=True)
def _obs_off(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_METRICS", raising=False)
    disable_tracing()
    disable_metrics()
    yield
    disable_tracing()
    disable_metrics()
