"""Metrics registry semantics: series naming, instrument kinds,
snapshots, weakref sources and associative merging."""

import gc
import pickle

import pytest

from repro.obs.metrics import MetricsRegistry, default_registry, series_name


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestSeriesNaming:
    def test_bare_name(self):
        assert series_name("repro_x_total") == "repro_x_total"

    def test_labels_sorted(self):
        assert (series_name("seeds", {"verdict": "clean", "a": 1})
                == "seeds{a=1,verdict=clean}")

    def test_empty_labels_is_bare(self):
        assert series_name("x", {}) == "x"


class TestCounter:
    def test_inc(self, registry):
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot() == {"c_total": 5}

    def test_negative_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_get_or_create_identity(self, registry):
        first = registry.counter("c_total", {"k": "v"})
        second = registry.counter("c_total", {"k": "v"})
        assert first is second

    def test_distinct_labels_distinct_series(self, registry):
        registry.counter("c_total", {"k": "a"}).inc()
        registry.counter("c_total", {"k": "b"}).inc(2)
        assert registry.snapshot() == {"c_total{k=a}": 1, "c_total{k=b}": 2}

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("level")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert registry.snapshot()["level"] == 12


class TestHistogram:
    def test_cells(self, registry):
        histogram = registry.histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 20.0):
            histogram.observe(value)
        snap = registry.snapshot()
        assert snap["lat_count"] == 3
        assert snap["lat_sum"] == 22.5
        assert snap["lat_min"] == 0.5
        assert snap["lat_max"] == 20.0
        # Buckets are cumulative, closed with le=inf.
        assert snap["lat_bucket{le=1.0}"] == 1
        assert snap["lat_bucket{le=10.0}"] == 2
        assert snap["lat_bucket{le=inf}"] == 3

    def test_empty_histogram_has_no_min_max(self, registry):
        registry.histogram("lat")
        snap = registry.snapshot()
        assert snap["lat_count"] == 0
        assert "lat_min" not in snap


class TestSources:
    def test_live_source_folded_into_snapshot(self, registry):
        class Bag:
            pass

        bag = Bag()
        bag.hits = 3
        registry.register_source("repro_store_", bag,
                                 lambda b: {"hits": b.hits})
        assert registry.snapshot()["repro_store_hits"] == 3
        bag.hits = 7
        assert registry.snapshot()["repro_store_hits"] == 7

    def test_dead_source_dropped(self, registry):
        class Bag:
            pass

        bag = Bag()
        registry.register_source("p_", bag, lambda b: {"x": 1})
        assert registry.snapshot() == {"p_x": 1}
        del bag
        gc.collect()
        assert registry.snapshot() == {}


class TestMerge:
    def test_snapshots_pickle(self, registry):
        registry.counter("c").inc(2)
        snap = registry.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_additive(self, registry):
        registry.counter("c").inc(1)
        registry.merge({"c": 4, "other": 2})
        snap = registry.snapshot()
        assert snap["c"] == 5
        assert snap["other"] == 2

    def test_min_max_cells(self, registry):
        registry.merge({"lat_min": 2.0, "lat_max": 5.0})
        registry.merge({"lat_min": 1.0, "lat_max": 3.0})
        snap = registry.snapshot()
        assert snap["lat_min"] == 1.0
        assert snap["lat_max"] == 5.0

    def test_merge_order_independent(self):
        deltas = [{"c": 1, "lat_min": 3.0}, {"c": 4, "lat_min": 2.0},
                  {"c": 2}]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for delta in deltas:
            forward.merge(delta)
        for delta in reversed(deltas):
            backward.merge(delta)
        assert forward.snapshot() == backward.snapshot()

    def test_reset(self, registry):
        registry.counter("c").inc()
        registry.merge({"m": 1})
        registry.reset()
        assert registry.snapshot() == {}


class TestDefaultRegistry:
    def test_is_singleton(self):
        assert default_registry() is default_registry()


class TestHistogramQuantile:
    """The serve daemon's /metrics quantile estimator."""

    def _snapshot(self, registry, values, name="lat"):
        histogram = registry.histogram(name, buckets=(0.01, 0.1, 1.0))
        for value in values:
            histogram.observe(value)
        return registry.snapshot()

    def test_empty_or_absent_is_none(self, registry):
        from repro.obs.metrics import histogram_quantile

        assert histogram_quantile({}, "lat", 0.5) is None
        snap = self._snapshot(registry, [])
        assert histogram_quantile(snap, "lat", 0.5) is None

    def test_median_interpolates_within_bucket(self, registry):
        from repro.obs.metrics import histogram_quantile

        snap = self._snapshot(registry, [0.05] * 10)
        # All mass in the (0.01, 0.1] bucket: the estimate must land
        # inside it, never outside.
        value = histogram_quantile(snap, "lat", 0.5)
        assert 0.01 < value <= 0.1

    def test_p99_tracks_the_tail(self, registry):
        from repro.obs.metrics import histogram_quantile

        snap = self._snapshot(registry, [0.005] * 9 + [0.5])
        p50 = histogram_quantile(snap, "lat", 0.5)
        p99 = histogram_quantile(snap, "lat", 0.99)
        assert p50 <= 0.01
        assert p99 > 0.1

    def test_overflow_bucket_clamps_to_max(self, registry):
        from repro.obs.metrics import histogram_quantile

        snap = self._snapshot(registry, [5.0, 7.0])
        value = histogram_quantile(snap, "lat", 0.99)
        assert value == snap["lat_max"] == 7.0
