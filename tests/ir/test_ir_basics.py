"""IR container, printer and verifier unit tests."""

import pytest

from repro.ir import instructions as ins
from repro.ir.irtypes import F64, I8, I32, I64, PTR, VOID, from_ctype, int_type
from repro.ir.module import BasicBlock, Function, GlobalVar, Module
from repro.ir.printer import format_function, format_instruction
from repro.ir.values import Const, Register, SymbolRef
from repro.ir.verifier import VerifierError, verify_function
from repro.frontend import ctypes_ as ct


def test_irtype_properties():
    assert I32.is_int and not I32.is_float and not I32.is_ptr
    assert F64.is_float
    assert PTR.is_ptr and PTR.size == 8
    assert VOID.is_void


def test_int_type_by_width():
    assert int_type(1) is I8
    assert int_type(8) is I64


def test_from_ctype_mapping():
    assert from_ctype(ct.INT) is I32
    assert from_ctype(ct.CHAR) is I8
    assert from_ctype(ct.DOUBLE) is F64
    assert from_ctype(ct.PointerType(ct.INT)) is PTR
    assert from_ctype(ct.ArrayType(ct.INT, 4)) is PTR


def test_function_register_allocation():
    func = Function("f", I32)
    r1 = func.new_reg(I32, "a")
    r2 = func.new_reg(PTR)
    assert r1.uid != r2.uid
    assert r1.type is I32 and r2.type is PTR


def test_block_creation_unique_labels():
    func = Function("f", I32)
    b1 = func.new_block("bb")
    b2 = func.new_block("bb")
    assert b1.label != b2.label
    assert func.block(b1.label) is b1


def test_terminator_detection():
    block = BasicBlock("entry")
    block.append(ins.Mov(dst=Register(0, I32), src=Const(1, I32)))
    assert block.terminator is None
    block.append(ins.Ret(value=Const(0, I32)))
    assert block.terminator.opcode == "ret"


def test_module_string_interning_deduplicates():
    module = Module()
    a = module.intern_string(b"hello")
    b = module.intern_string(b"hello")
    c = module.intern_string(b"world")
    assert a == b
    assert a != c
    assert module.globals[a].data == b"hello\x00"


def test_verifier_accepts_valid_function():
    func = Function("f", I32)
    block = func.new_block("entry")
    reg = func.new_reg(I32)
    block.append(ins.Mov(dst=reg, src=Const(7, I32)))
    block.append(ins.Ret(value=reg))
    assert verify_function(func)


def test_verifier_rejects_missing_terminator():
    func = Function("f", I32)
    block = func.new_block("entry")
    block.append(ins.Mov(dst=func.new_reg(I32), src=Const(1, I32)))
    with pytest.raises(VerifierError):
        verify_function(func)


def test_verifier_rejects_undefined_register():
    func = Function("f", I32)
    block = func.new_block("entry")
    ghost = Register(99, I32)
    block.append(ins.Ret(value=ghost))
    with pytest.raises(VerifierError):
        verify_function(func)


def test_verifier_rejects_unknown_branch_target():
    func = Function("f", VOID)
    block = func.new_block("entry")
    block.append(ins.Br(label="nowhere"))
    with pytest.raises(VerifierError):
        verify_function(func)


def test_verifier_rejects_mid_block_terminator():
    func = Function("f", I32)
    block = func.new_block("entry")
    block.append(ins.Ret(value=Const(0, I32)))
    block.append(ins.Mov(dst=func.new_reg(I32), src=Const(1, I32)))
    block.append(ins.Ret(value=Const(0, I32)))
    with pytest.raises(VerifierError):
        verify_function(func)


def test_verifier_rejects_bad_opcode_variants():
    func = Function("f", VOID)
    block = func.new_block("entry")
    r = func.new_reg(I32)
    block.append(ins.BinOp(dst=r, op="frobnicate", a=Const(1, I32), b=Const(2, I32)))
    block.append(ins.Ret())
    with pytest.raises(VerifierError):
        verify_function(func)


def test_printer_formats_key_instructions():
    r = Register(3, PTR, "p")
    assert "gep" in format_instruction(ins.Gep(dst=r, base=r, offset=Const(8, I64)))
    assert "!field" in format_instruction(
        ins.Gep(dst=r, base=r, offset=Const(8, I64), field_extent=16))
    text = format_instruction(ins.Load(dst=Register(1, PTR), addr=r, type=PTR,
                                       is_pointer_value=True))
    assert "!ptr" in text
    check = ins.SbCheck(ptr=r, base=r, bound=r, size=Const(4, I64))
    assert format_instruction(check).startswith("sb_check load")
    tcheck = ins.SbTemporalCheck(ptr=r, key=Const(7, I64), lock=Const(3, I64))
    assert format_instruction(tcheck).startswith("sb_temporal_check load")


def test_format_function_includes_blocks():
    func = Function("f", I32)
    block = func.new_block("entry")
    block.append(ins.Ret(value=Const(0, I32)))
    text = format_function(func)
    assert "@f" in text and "entry" in text and "ret" in text


def test_symbolref_addend_display():
    assert "+8" in str(SymbolRef("g", addend=8))
    assert str(SymbolRef("g")) == "@g"
