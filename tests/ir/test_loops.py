"""Natural-loop analysis and structural loop utilities."""

from repro.frontend.typecheck import parse_and_check
from repro.ir.cfg import CFG, split_edge
from repro.ir.loops import ensure_preheader, find_loops, make_preheader
from repro.ir.verifier import verify_module
from repro.lower.lowering import lower
from repro.opt.pipeline import optimize_module


def build(source, name="f"):
    module = lower(parse_and_check(source))
    optimize_module(module)
    return module, module.functions[name]


class TestFindLoops:
    def test_straight_line_has_no_loops(self):
        _, func = build("int f(void) { return 3; }")
        assert find_loops(CFG(func)) == []

    def test_single_for_loop(self):
        _, func = build("""
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s = s + i;
            return s;
        }
        """)
        loops = find_loops(CFG(func))
        assert len(loops) == 1
        loop = loops[0]
        assert loop.depth == 1 and loop.is_innermost
        assert loop.header in loop.blocks
        assert len(loop.latches) == 1
        assert all(latch in loop.blocks for latch in loop.latches)

    def test_nested_loops_form_a_forest(self):
        _, func = build("""
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    s = s + j;
            return s;
        }
        """)
        loops = find_loops(CFG(func))
        assert len(loops) == 2
        outer = next(l for l in loops if l.depth == 1)
        inner = next(l for l in loops if l.depth == 2)
        assert inner.parent is outer and inner in outer.children
        assert inner.blocks < outer.blocks
        assert inner.is_innermost and not outer.is_innermost

    def test_while_loop_exit_edges(self):
        _, func = build("""
        int f(int n) {
            while (n > 0) { n = n - 1; }
            return n;
        }
        """)
        cfg = CFG(func)
        loops = find_loops(cfg)
        assert len(loops) == 1
        exits = loops[0].exit_edges(cfg)
        assert exits and all(src in loops[0].blocks and dst not in loops[0].blocks
                             for src, dst in exits)


class TestStructuralUtilities:
    def test_make_preheader_redirects_entering_edges(self):
        module, func = build("""
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s = s + i;
            return s;
        }
        """)
        cfg = CFG(func)
        loop = find_loops(cfg)[0]
        latches = set(loop.latches)
        pre = make_preheader(func, cfg, loop)
        verify_module(module)
        cfg2 = CFG(func)
        preds = [p.label for p in cfg2.preds[loop.header]]
        # Only the preheader and the latches reach the header now.
        assert set(preds) == {pre.label} | latches
        assert pre.terminator.opcode == "br"
        assert pre.terminator.label == loop.header

    def test_ensure_preheader_reuses_unique_entering_block(self):
        module, func = build("""
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s = s + i;
            return s;
        }
        """)
        cfg = CFG(func)
        loop = find_loops(cfg)[0]
        first = ensure_preheader(func, cfg, loop)
        cfg2 = CFG(func)
        loop2 = next(l for l in find_loops(cfg2) if l.header == loop.header)
        again = ensure_preheader(func, cfg2, loop2)
        assert again is first
        verify_module(module)

    def test_preheader_is_placed_before_the_header(self):
        module, func = build("""
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s = s + i;
            return s;
        }
        """)
        cfg = CFG(func)
        loop = find_loops(cfg)[0]
        pre = make_preheader(func, cfg, loop)
        index = [b.label for b in func.blocks].index(pre.label)
        assert func.blocks[index + 1].label == loop.header
        verify_module(module)

    def test_split_edge(self):
        module, func = build("""
        int f(int n) {
            if (n > 0) { n = n + 1; } else { n = n - 1; }
            return n;
        }
        """)
        cfg = CFG(func)
        block = cfg.entry
        succ = cfg.succs[block.label][0]
        split = split_edge(func, block, succ.label)
        verify_module(module)
        cfg2 = CFG(func)
        new_succs = [s.label for s in cfg2.succs[block.label]]
        assert [s.label for s in cfg2.succs[split.label]] == [succ.label]
        assert split.label in new_succs
        assert succ.label not in new_succs
