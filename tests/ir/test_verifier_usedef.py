"""Use-before-definition verifier tests (the must-define analysis the
closure-compiled engine relies on for direct ``frame.regs`` access)."""

import pytest

from repro.harness.driver import compile_and_run
from repro.ir import instructions as ins
from repro.ir.irtypes import I32
from repro.ir.module import Function
from repro.ir.values import Const
from repro.ir.verifier import (
    VerifierError,
    definite_assignment_errors,
    verify_function,
)


def _ret0(func, block, reg=None):
    block.append(ins.Ret(value=reg if reg is not None else Const(0, I32)))


def test_straight_line_use_before_def_rejected():
    func = Function("f", I32)
    reg = func.new_reg(I32)
    dst = func.new_reg(I32)
    entry = func.new_block("entry")
    # reads `reg` before anything defines it
    entry.append(ins.BinOp(dst=dst, op="add", a=reg, b=Const(1, I32)))
    entry.append(ins.Ret(value=dst))
    with pytest.raises(VerifierError, match="use of"):
        verify_function(func)
    assert definite_assignment_errors(func)


def test_definition_later_in_block_does_not_legalize_earlier_use():
    func = Function("f", I32)
    reg = func.new_reg(I32)
    dst = func.new_reg(I32)
    entry = func.new_block("entry")
    entry.append(ins.BinOp(dst=dst, op="add", a=reg, b=Const(1, I32)))
    entry.append(ins.Mov(dst=reg, src=Const(5, I32)))  # too late
    entry.append(ins.Ret(value=dst))
    with pytest.raises(VerifierError, match="before definition"):
        verify_function(func)


def test_defined_on_both_branches_is_accepted():
    func = Function("f", I32)
    cond = func.new_reg(I32)
    val = func.new_reg(I32)
    entry = func.new_block("entry")
    then = func.new_block("then")
    other = func.new_block("else")
    join = func.new_block("join")
    entry.append(ins.Mov(dst=cond, src=Const(1, I32)))
    entry.append(ins.CBr(cond=cond, true_label=then.label, false_label=other.label))
    then.append(ins.Mov(dst=val, src=Const(1, I32)))
    then.append(ins.Br(label=join.label))
    other.append(ins.Mov(dst=val, src=Const(2, I32)))
    other.append(ins.Br(label=join.label))
    join.append(ins.Ret(value=val))
    assert verify_function(func)
    assert definite_assignment_errors(func) == []


def test_defined_on_one_branch_only_is_rejected():
    func = Function("f", I32)
    cond = func.new_reg(I32)
    val = func.new_reg(I32)
    entry = func.new_block("entry")
    then = func.new_block("then")
    join = func.new_block("join")
    entry.append(ins.Mov(dst=cond, src=Const(1, I32)))
    entry.append(ins.CBr(cond=cond, true_label=then.label, false_label=join.label))
    then.append(ins.Mov(dst=val, src=Const(1, I32)))
    then.append(ins.Br(label=join.label))
    join.append(ins.Ret(value=val))  # val undefined on the fall-through path
    with pytest.raises(VerifierError, match="before definition"):
        verify_function(func)


def test_loop_carried_definition_is_accepted():
    """A register defined before a loop and updated inside it is defined
    on every path into every read."""
    func = Function("f", I32)
    acc = func.new_reg(I32)
    cond = func.new_reg(I32)
    entry = func.new_block("entry")
    body = func.new_block("body")
    done = func.new_block("done")
    entry.append(ins.Mov(dst=acc, src=Const(0, I32)))
    entry.append(ins.Br(label=body.label))
    body.append(ins.BinOp(dst=acc, op="add", a=acc, b=Const(1, I32)))
    body.append(ins.Cmp(dst=cond, pred="slt", a=acc, b=Const(10, I32)))
    body.append(ins.CBr(cond=cond, true_label=body.label, false_label=done.label))
    done.append(ins.Ret(value=acc))
    assert verify_function(func)


def test_unreachable_block_reads_are_not_flagged():
    func = Function("f", I32)
    ghost = func.new_reg(I32)
    entry = func.new_block("entry")
    dead = func.new_block("dead")
    entry.append(ins.Ret(value=Const(0, I32)))
    dead.append(ins.Ret(value=ghost))  # never executes
    assert definite_assignment_errors(func) == []


def test_param_registers_count_as_defined():
    source = "int id(int x) { return x; } int main(void) { return id(9); }"
    assert compile_and_run(source).exit_code == 9


def test_uninitialized_local_still_reads_zero_end_to_end():
    """mem2reg zero-initializes maybe-undefined promoted slots, so the
    strict verifier accepts the module and the program keeps the
    historical read-as-0 behaviour on the uninitialized path."""
    source = r'''
    int main(void) {
        int x;
        int flag = 0;
        if (flag) x = 7;
        return x;    /* read of x on the never-stored path */
    }
    '''
    result = compile_and_run(source)
    assert result.trap is None
    assert result.exit_code == 0
    for engine in ("interp", "compiled"):
        assert compile_and_run(source, engine=engine).exit_code == 0
