"""Tests for CFG construction and dominator analysis."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.frontend.typecheck import parse_and_check
from repro.ir.cfg import CFG
from repro.lower.lowering import lower
from repro.workloads.randprog import generate


def cfg_of(source, name="main"):
    module = lower(parse_and_check(source))
    return CFG(module.functions[name])


class TestConstruction:
    def test_straight_line_has_one_block(self):
        cfg = cfg_of("int main(void) { return 1; }")
        assert len(cfg.rpo) == 1
        assert cfg.succs[cfg.entry.label] == []

    def test_if_else_diamond(self):
        cfg = cfg_of("""
        int main(void) {
            int x = 1;
            if (x) x = 2; else x = 3;
            return x;
        }
        """)
        assert len(cfg.succs[cfg.entry.label]) == 2
        # Exactly one join block has two predecessors.
        joins = [lbl for lbl, preds in cfg.preds.items() if len(preds) == 2]
        assert len(joins) == 1

    def test_loop_has_back_edge(self):
        cfg = cfg_of("""
        int main(void) {
            int t = 0;
            for (int i = 0; i < 10; i++) t += i;
            return t;
        }
        """)
        back_edges = [
            (block.label, succ.label)
            for block in cfg.rpo
            for succ in cfg.succs[block.label]
            if cfg.rpo_index[succ.label] <= cfg.rpo_index[block.label]
        ]
        assert back_edges, "loop must produce a back edge"

    def test_rpo_starts_at_entry(self):
        cfg = cfg_of("int main(void) { if (1) return 1; return 0; }")
        assert cfg.rpo[0] is cfg.entry

    def test_rpo_predecessors_precede_except_back_edges(self):
        cfg = cfg_of("""
        int main(void) {
            int t = 0;
            for (int i = 0; i < 4; i++) { if (i & 1) t += i; else t -= i; }
            return t;
        }
        """)
        for block in cfg.rpo:
            for succ in cfg.succs[block.label]:
                forward = cfg.rpo_index[block.label] < cfg.rpo_index[succ.label]
                back = cfg.rpo_index[succ.label] <= cfg.rpo_index[block.label]
                assert forward or back


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = cfg_of("""
        int main(void) {
            int t = 0;
            for (int i = 0; i < 3; i++) { if (i) t += 1; }
            return t;
        }
        """)
        for block in cfg.rpo:
            assert cfg.dominates(cfg.entry.label, block.label)

    def test_branch_arms_do_not_dominate_join(self):
        cfg = cfg_of("""
        int main(void) {
            int x = 1;
            if (x) x = 2; else x = 3;
            return x;
        }
        """)
        join = next(lbl for lbl, preds in cfg.preds.items() if len(preds) == 2)
        for arm in cfg.preds[join]:
            if arm is not cfg.entry:
                assert not cfg.dominates(arm.label, join)

    def test_dominance_is_reflexive_and_antisymmetric(self):
        cfg = cfg_of("""
        int main(void) {
            int t = 0;
            while (t < 5) { t += 1; if (t == 3) t += 2; }
            return t;
        }
        """)
        labels = [block.label for block in cfg.rpo]
        for a in labels:
            assert cfg.dominates(a, a)
            for b in labels:
                if a != b and cfg.dominates(a, b):
                    assert not cfg.dominates(b, a)

    def test_dominator_chain_ends_at_entry(self):
        cfg = cfg_of("""
        int main(void) {
            int x = 0;
            if (x) { x = 1; } else { x = 2; }
            return x;
        }
        """)
        for block in cfg.rpo:
            if block is cfg.entry:
                assert cfg.dominator_chain(block.label) == []
            else:
                chain = cfg.dominator_chain(block.label)
                assert chain[-1] is cfg.entry

    def test_dominator_tree_partitions_blocks(self):
        cfg = cfg_of("""
        int main(void) {
            int t = 0;
            for (int i = 0; i < 4; i++) { if (i & 1) t += i; }
            return t;
        }
        """)
        children = cfg.dominator_tree_children()
        seen = set()
        stack = [cfg.entry]
        while stack:
            block = stack.pop()
            assert block.label not in seen
            seen.add(block.label)
            stack.extend(children[block.label])
        assert seen == set(cfg.succs)

    @given(st.integers(min_value=0, max_value=30_000))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_dominators_consistent_on_generated_programs(self, seed):
        """idom is a strict dominator; every reachable block is either
        the entry or has an idom whose RPO index is smaller."""
        module = lower(parse_and_check(generate(seed).source))
        for func in module.functions.values():
            cfg = CFG(func)
            for block in cfg.rpo:
                if block is cfg.entry:
                    continue
                parent = cfg.idom[block.label]
                assert cfg.rpo_index[parent.label] < cfg.rpo_index[block.label]
                assert cfg.dominates(parent.label, block.label)
