"""Frontend diagnostic quality: every rejection names a position and a
reason a C programmer would recognize."""

import pytest

from repro.frontend.errors import FrontendError, LexError, ParseError, TypeError_
from repro.frontend.typecheck import parse_and_check


def error_for(source):
    with pytest.raises(FrontendError) as info:
        parse_and_check(source)
    return info.value


class TestLexErrors:
    def test_unexpected_character(self):
        error = error_for("int main(void) { return $; }")
        assert isinstance(error, LexError)
        assert "'$'" in str(error)
        assert error.line == 1

    def test_unterminated_char_constant(self):
        error = error_for("int main(void) { char c = 'ab'; return 0; }")
        assert isinstance(error, LexError)
        assert "character constant" in str(error)

    def test_position_tracks_lines(self):
        error = error_for("int x;\nint y;\nint main(void) { return @; }")
        assert error.line == 3


class TestParseErrors:
    def test_missing_paren(self):
        error = error_for("int main(void { return 0; }")
        assert isinstance(error, ParseError)
        assert "expected ')'" in str(error)

    def test_missing_semicolon(self):
        error = error_for("int main(void) { int x = 1 return x; }")
        assert isinstance(error, ParseError)

    def test_unknown_type_name(self):
        error = error_for("int main(void) { unknown_t x; return 0; }")
        assert isinstance(error, ParseError)


class TestTypeErrors:
    def test_undeclared_identifier(self):
        error = error_for("int main(void) { return nope; }")
        assert isinstance(error, TypeError_)
        assert "nope" in str(error)

    def test_bad_initializer(self):
        error = error_for("int main(void) { int *p = 3.5; return 0; }")
        assert isinstance(error, TypeError_)
        assert "int*" in str(error)

    def test_unknown_struct_member(self):
        error = error_for(
            "struct s { int a; }; int main(void) { struct s v; return v.b; }")
        assert "no member 'b'" in str(error)

    def test_void_return_with_value(self):
        error = error_for("void f(void) { return 3; } int main(void) { return 0; }")
        assert "void" in str(error)

    def test_missing_return_value(self):
        error = error_for("int f(void) { return; } int main(void) { return 0; }")
        assert "without value" in str(error)

    def test_void_call_result_used(self):
        error = error_for("void f(void) {} int main(void) { return f(); }")
        assert isinstance(error, TypeError_)

    def test_call_arity(self):
        error = error_for(
            "int f(int a, int b) { return a; } int main(void) { return f(1); }")
        assert "few arguments" in str(error)

    def test_duplicate_parameter_names(self):
        error = error_for("int f(int a, int a) { return a; } "
                          "int main(void) { return f(1, 2); }")
        assert "duplicate parameter" in str(error)

    def test_break_outside_loop(self):
        error = error_for("int main(void) { break; }")
        assert "break" in str(error)

    def test_continue_outside_loop(self):
        error = error_for("int main(void) { continue; }")
        assert "continue" in str(error)

    def test_continue_inside_switch_only_is_rejected(self):
        error = error_for("""
        int main(void) {
            switch (1) { case 1: continue; }
            return 0;
        }
        """)
        assert "continue" in str(error)

    def test_break_inside_switch_is_fine(self):
        parse_and_check("""
        int main(void) {
            int r = 0;
            switch (1) { case 1: r = 5; break; default: r = 9; }
            return r;
        }
        """)

    def test_break_in_loop_inside_switch_is_fine(self):
        parse_and_check("""
        int main(void) {
            switch (2) {
                case 2:
                    for (int i = 0; i < 4; i++) { if (i == 1) break; }
                    break;
            }
            return 0;
        }
        """)

    def test_continue_in_nested_loop_is_fine(self):
        parse_and_check("""
        int main(void) {
            int t = 0;
            for (int i = 0; i < 3; i++) {
                while (t < 10) { t++; if (t & 1) continue; t++; }
            }
            return t;
        }
        """)

    def test_switch_on_pointer_rejected(self):
        error = error_for("""
        int main(void) {
            int x; int *p = &x;
            switch (p) { case 0: return 0; }
            return 1;
        }
        """)
        assert "switch" in str(error)


class TestErrorFormatting:
    def test_all_errors_carry_line_and_col(self):
        sources = [
            "int main(void) { return $; }",
            "int main(void { return 0; }",
            "int main(void) { return nope; }",
        ]
        for source in sources:
            error = error_for(source)
            assert error.line >= 1
            assert error.col >= 1
            text = str(error)
            assert text.startswith(f"{error.line}:{error.col}:")
