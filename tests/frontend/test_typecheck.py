"""Type checker unit tests."""

import pytest

from repro.frontend import ast_nodes as ast
from repro.frontend import ctypes_ as ct
from repro.frontend.errors import TypeError_
from repro.frontend.typecheck import parse_and_check


def body_of(program, source):
    return program.functions[source].body.items


def check_ok(source):
    return parse_and_check(source)


def check_fails(source):
    with pytest.raises(TypeError_):
        parse_and_check(source)


def test_simple_function_checks():
    prog = check_ok("int add(int a, int b) { return a + b; }")
    ret = prog.functions["add"].body.items[0]
    assert ret.value.ctype is ct.INT


def test_undeclared_identifier_rejected():
    check_fails("int f(void) { return missing; }")


def test_pointer_arithmetic_type():
    prog = check_ok("int f(int *p) { return *(p + 1); }")
    ret = prog.functions["f"].body.items[0]
    assert ret.value.ctype is ct.INT
    assert ret.value.operand.ctype.is_pointer


def test_pointer_difference_is_long():
    prog = check_ok("long f(int *a, int *b) { return a - b; }")
    ret = prog.functions["f"].body.items[0]
    assert ret.value.ctype is ct.LONG


def test_array_decays_in_expression():
    prog = check_ok("int f(void) { int a[4]; int *p = a; return p[0]; }")
    decl = prog.functions["f"].body.items[1]
    assert isinstance(decl.init, ast.ImplicitConvert)
    assert decl.init.kind == "decay"


def test_deref_non_pointer_rejected():
    check_fails("int f(int x) { return *x; }")


def test_deref_void_pointer_rejected():
    check_fails("int f(void *p) { return *p; }")


def test_address_of_rvalue_rejected():
    check_fails("int f(int x) { int *p = &(x + 1); return 0; }")


def test_address_of_variable():
    prog = check_ok("int f(void) { int x; int *p = &x; return *p; }")
    decl = prog.functions["f"].body.items[1]
    assert decl.init.ctype.is_pointer


def test_member_offsets_annotated():
    src = "struct s { char pad[12]; int v; }; int f(struct s *p) { return p->v; }"
    prog = check_ok(src)
    ret = prog.functions["f"].body.items[0]
    assert ret.value.field_offset == 12
    assert ret.value.field_size == 4


def test_member_on_non_struct_rejected():
    check_fails("int f(int x) { return x.field; }")


def test_unknown_member_rejected():
    check_fails("struct s { int a; }; int f(struct s v) { return v.b; }")


def test_arbitrary_pointer_casts_allowed():
    # The compatibility property the paper stresses: wild casts check fine.
    check_ok("long f(char *p) { return *(long *)p; }")
    check_ok("char *f(long x) { return (char *)x; }")
    check_ok("int f(double *d) { return *(int *)(char *)d; }")


def test_pointer_integer_mixing_allowed():
    check_ok("long f(int *p) { long addr = (long)p; return addr; }")


def test_call_type_checks():
    prog = check_ok("int g(int x) { return x; } int f(void) { return g(3); }")
    ret = prog.functions["f"].body.items[0]
    assert ret.value.ctype is ct.INT


def test_call_too_few_args_rejected():
    check_fails("int g(int a, int b) { return a; } int f(void) { return g(1); }")


def test_call_too_many_args_rejected():
    check_fails("int g(int a) { return a; } int f(void) { return g(1, 2); }")


def test_varargs_call_allows_extra_args():
    check_ok('int f(void) { printf("%d %d", 1, 2); return 0; }')


def test_implicit_function_declaration_tolerated():
    # K&R-style: calling an undeclared function is accepted (the paper's
    # call-site-driven transform handles exactly this case).
    check_ok("int f(void) { return helper(1, 2); }")


def test_builtin_malloc_signature():
    prog = check_ok("int *f(void) { return (int *)malloc(40); }")
    assert prog.functions["f"].return_type.is_pointer


def test_function_pointer_call():
    src = "int inc(int x) { return x + 1; } int f(void) { int (*fp)(int) = inc; return fp(41); }"
    prog = check_ok(src)
    assert "f" in prog.functions


def test_return_type_mismatch_rejected():
    check_fails("struct s { int a; }; int f(struct s v) { return v; }")


def test_void_return_with_value_rejected():
    check_fails("void f(void) { return 3; }")


def test_assign_to_rvalue_rejected():
    check_fails("int f(int x) { x + 1 = 5; return x; }")


def test_assign_to_array_rejected():
    check_fails("int f(void) { int a[3]; int b[3]; a = b; return 0; }")


def test_struct_assignment_same_type_ok():
    check_ok("struct s { int a; }; void f(struct s *p, struct s *q) { *p = *q; }")


def test_compound_assignment_pointer():
    check_ok("char *f(char *p) { p += 3; return p; }")


def test_conditional_unifies_arith():
    prog = check_ok("double f(int x) { return x ? 1 : 2.5; }")
    ret = prog.functions["f"].body.items[0]
    assert ret.value.ctype is ct.DOUBLE


def test_switch_on_pointer_rejected():
    check_fails("int f(int *p) { switch (p) { default: return 0; } }")


def test_string_literal_type():
    prog = check_ok('char *f(void) { return "abc"; }')
    ret = prog.functions["f"].body.items[0]
    assert ret.value.ctype.is_pointer
    assert ret.value.ctype.pointee is ct.CHAR


def test_sizeof_is_unsigned_long():
    prog = check_ok("long f(void) { return sizeof(int); }")
    ret = prog.functions["f"].body.items[0]
    assert ret.value.ctype is ct.ULONG


def test_global_initializer_checked():
    check_ok("int x = 5; int *p = &x;")
    check_fails("struct s { int a; } v = 3;")


def test_common_arith_type_promotion():
    assert ct.common_arith_type(ct.CHAR, ct.CHAR) is ct.INT
    assert ct.common_arith_type(ct.INT, ct.LONG) is ct.LONG
    assert ct.common_arith_type(ct.INT, ct.DOUBLE) is ct.DOUBLE
    assert ct.common_arith_type(ct.UINT, ct.INT) is ct.UINT


def test_int_wrap_semantics():
    assert ct.INT.wrap(2**31) == -(2**31)
    assert ct.UCHAR.wrap(257) == 1
    assert ct.CHAR.wrap(200) == 200 - 256
    assert ct.ULONG.wrap(-1) == 2**64 - 1


def test_struct_contains_pointer():
    src = "struct a { int x; }; struct b { int *p; }; struct c { struct b inner[2]; };"
    prog = check_ok(src + " int main(void) { return 0; }")
    # reach into parser-declared structs via a function using them
    from repro.frontend.parser import Parser

    parser = Parser(src)
    parser.parse()
    assert not parser.struct_tags["a"].contains_pointer()
    assert parser.struct_tags["b"].contains_pointer()
    assert parser.struct_tags["c"].contains_pointer()
