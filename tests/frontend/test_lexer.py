"""Lexer unit tests."""

import pytest

from repro.frontend.errors import LexError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import (
    KIND_CHAR,
    KIND_EOF,
    KIND_FLOAT,
    KIND_IDENT,
    KIND_INT,
    KIND_KEYWORD,
    KIND_PUNCT,
    KIND_STRING,
)


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


def test_empty_source_yields_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind == KIND_EOF


def test_identifiers_and_keywords():
    toks = tokenize("int foo _bar baz42")
    assert toks[0].kind == KIND_KEYWORD
    assert [t.kind for t in toks[1:4]] == [KIND_IDENT] * 3
    assert [t.value for t in toks[1:4]] == ["foo", "_bar", "baz42"]


def test_decimal_integer():
    assert values("42 0 123456789") == [42, 0, 123456789]


def test_hex_integer():
    assert values("0x10 0xff 0XDEAD") == [16, 255, 0xDEAD]


def test_integer_suffixes_ignored():
    assert values("10u 10L 10UL") == [10, 10, 10]


def test_float_constants():
    toks = tokenize("3.14 1e3 2.5e-2")
    assert all(t.kind == KIND_FLOAT for t in toks[:-1])
    assert toks[0].value == pytest.approx(3.14)
    assert toks[1].value == pytest.approx(1000.0)
    assert toks[2].value == pytest.approx(0.025)


def test_char_constants():
    assert values("'a' '\\n' '\\0' '\\x41'") == [97, 10, 0, 65]


def test_string_literal_with_escapes():
    toks = tokenize(r'"hi\n"')
    assert toks[0].kind == KIND_STRING
    assert toks[0].value == b"hi\n"


def test_multi_char_punctuators_greedy():
    assert values("a <<= b >>= c -> d ++ -- ...") == [
        "a", "<<=", "b", ">>=", "c", "->", "d", "++", "--", "...",
    ]


def test_line_comment_skipped():
    assert values("a // comment\n b") == ["a", "b"]


def test_block_comment_skipped():
    assert values("a /* x\ny */ b") == ["a", "b"]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('"abc')


def test_preprocessor_lines_skipped():
    assert values("#include <stdio.h>\nint x;") == ["int", "x", ";"]


def test_line_and_column_tracking():
    toks = tokenize("a\n  b")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_unknown_character_raises():
    with pytest.raises(LexError):
        tokenize("int @ x;")


def test_adjacent_operators_not_merged():
    assert values("a+++b") == ["a", "++", "+", "b"]


def test_null_keyword():
    toks = tokenize("NULL")
    assert toks[0].kind == KIND_KEYWORD
