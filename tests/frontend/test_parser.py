"""Parser unit tests."""

import pytest

from repro.frontend import ast_nodes as ast
from repro.frontend import ctypes_ as ct
from repro.frontend.errors import ParseError
from repro.frontend.parser import parse


def first_decl(source):
    unit = parse(source)
    assert unit.decls
    return unit.decls[0]


def test_simple_global_int():
    decl = first_decl("int x;")
    assert isinstance(decl, ast.Decl)
    assert decl.name == "x"
    assert decl.type is ct.INT


def test_pointer_declarator():
    decl = first_decl("int *p;")
    assert decl.type.is_pointer
    assert decl.type.pointee is ct.INT


def test_double_pointer():
    decl = first_decl("char **argv;")
    assert decl.type.is_pointer
    assert decl.type.pointee.is_pointer
    assert decl.type.pointee.pointee is ct.CHAR


def test_array_declarator():
    decl = first_decl("int a[10];")
    assert decl.type.is_array
    assert decl.type.length == 10
    assert decl.type.size == 40


def test_two_dim_array():
    decl = first_decl("int m[2][3];")
    assert decl.type.is_array
    assert decl.type.length == 2
    assert decl.type.element.is_array
    assert decl.type.element.length == 3
    assert decl.type.size == 24


def test_array_size_constant_expr():
    decl = first_decl("int a[4 * 2 + 1];")
    assert decl.type.length == 9


def test_multiple_declarators():
    unit = parse("int a, *b, c[3];")
    assert [d.name for d in unit.decls] == ["a", "b", "c"]
    assert unit.decls[1].type.is_pointer
    assert unit.decls[2].type.is_array


def test_function_definition():
    func = first_decl("int add(int a, int b) { return a + b; }")
    assert isinstance(func, ast.FunctionDef)
    assert func.name == "add"
    assert len(func.params) == 2
    assert func.return_type is ct.INT
    assert not func.varargs


def test_varargs_function():
    func = first_decl("int log_msg(char *fmt, ...) { return 0; }")
    assert func.varargs


def test_void_param_list():
    func = first_decl("int f(void) { return 1; }")
    assert func.params == []


def test_array_param_decays():
    func = first_decl("int sum(int a[], int n) { return 0; }")
    assert func.params[0].type.is_pointer


def test_struct_definition_and_layout():
    decl = first_decl("struct point { int x; int y; } p;")
    stype = decl.type
    assert stype.is_struct
    assert stype.size == 8
    assert stype.field("y").offset == 4


def test_struct_padding():
    decl = first_decl("struct s { char c; long l; } v;")
    assert decl.type.field("l").offset == 8
    assert decl.type.size == 16


def test_struct_with_internal_array():
    # The paper's running example: struct with char str[8] then a fn ptr.
    decl = first_decl("struct node { char str[8]; void (*func)(); } n;")
    stype = decl.type
    assert stype.field("str").type.is_array
    assert stype.field("func").offset == 8
    assert stype.field("func").type.is_pointer


def test_named_struct_reference():
    unit = parse("struct n { int v; struct n *next; }; struct n *head;")
    head = unit.decls[0]
    assert head.type.is_pointer
    assert head.type.pointee.field("next").type.pointee is head.type.pointee


def test_union_layout():
    decl = first_decl("union u { int i; double d; char c[4]; } v;")
    assert decl.type.size == 8
    assert all(f.offset == 0 for f in decl.type.fields)


def test_typedef():
    unit = parse("typedef long size_type; size_type n;")
    assert unit.decls[0].type is ct.LONG


def test_typedef_struct():
    unit = parse("typedef struct { int a; } box_t; box_t b;")
    assert unit.decls[0].type.is_struct


def test_enum_constants():
    unit = parse("enum color { RED, GREEN = 5, BLUE }; int x[BLUE];")
    assert unit.decls[0].type.length == 6


def test_function_pointer_declarator():
    decl = first_decl("int (*handler)(int);")
    assert decl.type.is_pointer
    assert decl.type.pointee.is_function
    assert decl.type.pointee.return_type is ct.INT


def test_initializer_list():
    decl = first_decl("int a[3] = {1, 2, 3};")
    assert isinstance(decl.init, ast.InitList)
    assert len(decl.init.items) == 3


def test_nested_initializer():
    decl = first_decl("int m[2][2] = {{1, 2}, {3, 4}};")
    assert isinstance(decl.init.items[0], ast.InitList)


def test_string_initializer():
    decl = first_decl('char msg[16] = "hello";')
    assert isinstance(decl.init, ast.StringLiteral)


def test_unsigned_types():
    assert first_decl("unsigned int x;").type is ct.UINT
    assert first_decl("unsigned char c;").type is ct.UCHAR
    assert first_decl("unsigned long l;").type is ct.ULONG
    assert first_decl("unsigned x;").type is ct.UINT


def test_expression_precedence():
    func = first_decl("int f(void) { return 1 + 2 * 3; }")
    ret = func.body.items[0]
    assert ret.value.op == "+"
    assert ret.value.right.op == "*"


def test_assignment_right_associative():
    func = first_decl("int f(void) { int a; int b; a = b = 1; return a; }")
    stmt = func.body.items[2]
    assert isinstance(stmt.expr, ast.Assign)
    assert isinstance(stmt.expr.value, ast.Assign)


def test_conditional_expression():
    func = first_decl("int f(int x) { return x ? 1 : 2; }")
    assert isinstance(func.body.items[0].value, ast.Conditional)


def test_cast_expression():
    func = first_decl("int f(void) { char *p; return *(int*)p; }")
    ret = func.body.items[1]
    deref = ret.value
    assert isinstance(deref, ast.Unary) and deref.op == "*"
    assert isinstance(deref.operand, ast.Cast)
    assert deref.operand.target_type.pointee is ct.INT


def test_sizeof_type_and_expr():
    func = first_decl("long f(int x) { return sizeof(long) + sizeof x; }")
    expr = func.body.items[0].value
    assert isinstance(expr.left, ast.SizeofType)
    assert isinstance(expr.right, ast.SizeofExpr)


def test_member_and_arrow():
    src = "struct p { int x; }; int f(struct p *q, struct p r) { return q->x + r.x; }"
    func = parse(src).decls[0]
    expr = func.body.items[0].value
    assert expr.left.arrow is True
    assert expr.right.arrow is False


def test_for_with_declaration():
    func = first_decl("int f(void) { int s = 0; for (int i = 0; i < 3; i++) s += i; return s; }")
    loop = func.body.items[1]
    assert isinstance(loop, ast.For)
    assert isinstance(loop.init, list)


def test_do_while():
    func = first_decl("int f(void) { int i = 0; do { i++; } while (i < 3); return i; }")
    assert isinstance(func.body.items[1], ast.DoWhile)


def test_switch_cases():
    src = "int f(int x) { switch (x) { case 1: return 10; case 2: return 20; default: return 0; } }"
    func = first_decl(src)
    switch = func.body.items[0]
    assert isinstance(switch, ast.Switch)
    assert len(switch.body.items) == 3
    assert switch.body.items[2].value is None


def test_goto_and_label():
    func = first_decl("int f(void) { int i = 0; loop: i++; if (i < 3) goto loop; return i; }")
    assert isinstance(func.body.items[1], ast.Label)


def test_null_parses_as_void_pointer_cast():
    func = first_decl("int f(void) { char *p = NULL; return p == NULL; }")
    decl = func.body.items[0]
    assert isinstance(decl.init, ast.Cast)


def test_comma_expression():
    func = first_decl("int f(void) { int a; int b; return (a = 1, b = 2, a + b); }")
    expr = func.body.items[2].value
    assert isinstance(expr, ast.Binary) and expr.op == ","


def test_parse_error_reports_location():
    with pytest.raises(ParseError) as exc:
        parse("int f(void) { return }")
    assert exc.value.line == 1


def test_missing_semicolon_raises():
    with pytest.raises(ParseError):
        parse("int x")


def test_address_of_and_deref_chain():
    func = first_decl("int f(void) { int x; int *p = &x; int **pp = &p; return **pp; }")
    assert len(func.body.items) == 4
