"""Detection matrix over the classic-bug regression corpus.

Pins, pattern by pattern, the paper's central behavioural contract:
full checking catches every spatial bug; store-only checking catches
every *write* bug and intentionally ignores pure read overflows
(Section 6.3's trade-off).
"""

import pytest

from repro.harness.driver import compile_and_run
from repro.softbound.config import FULL_HASH, FULL_SHADOW, STORE_SHADOW
from repro.workloads.corpus import CORPUS, all_patterns, patterns_by_access

INPUTS = {"unchecked_index_from_input": b"16\n"}


def run_pattern(pattern, softbound=None):
    return compile_and_run(pattern.source, softbound=softbound,
                           input_data=INPUTS.get(pattern.name, b""))


class TestCorpusShape:
    def test_eight_patterns_across_locations(self):
        locations = {p.location for p in all_patterns()}
        assert locations == {"stack", "heap", "global", "subobject"}

    def test_both_access_kinds_present(self):
        assert len(patterns_by_access("read")) >= 2
        assert len(patterns_by_access("write")) >= 5


@pytest.mark.parametrize("name", list(CORPUS), ids=list(CORPUS))
class TestPerPattern:
    def test_unprotected_run_is_silent_or_crashes_late(self, name):
        """Each bug must be *real*: unprotected, it either corrupts
        silently (observable wrong exit) or faults — never a checker
        report."""
        pattern = CORPUS[name]
        result = run_pattern(pattern)
        assert not result.detected_violation
        if pattern.silent_exit is not None and result.trap is None:
            assert result.exit_code == pattern.silent_exit

    def test_full_checking_detects(self, name):
        result = run_pattern(CORPUS[name], softbound=FULL_SHADOW)
        assert result.detected_violation, name

    def test_full_checking_hash_table_agrees(self, name):
        result = run_pattern(CORPUS[name], softbound=FULL_HASH)
        assert result.detected_violation, name

    def test_store_only_tracks_access_direction(self, name):
        pattern = CORPUS[name]
        result = run_pattern(pattern, softbound=STORE_SHADOW)
        if pattern.faulting_access == "write":
            assert result.detected_violation, name
        else:
            # Pure read overflows are the documented store-only blind
            # spot; the run must also not misfire some other way.
            assert not result.detected_violation, name


class TestAggregateClaims:
    def test_store_only_catches_all_writes_misses_all_reads(self):
        caught_writes = sum(
            1 for p in patterns_by_access("write")
            if run_pattern(p, softbound=STORE_SHADOW).detected_violation)
        caught_reads = sum(
            1 for p in patterns_by_access("read")
            if run_pattern(p, softbound=STORE_SHADOW).detected_violation)
        assert caught_writes == len(patterns_by_access("write"))
        assert caught_reads == 0

    def test_full_checking_is_complete_on_corpus(self):
        for pattern in all_patterns():
            assert run_pattern(pattern, softbound=FULL_SHADOW).detected_violation
