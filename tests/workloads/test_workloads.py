"""Workload integrity: every program compiles, runs deterministically,
and behaves identically under SoftBound (the §6.3/§6.4 preconditions)."""

import pytest

from repro.harness.driver import compile_and_run
from repro.softbound.config import FULL_SHADOW, STORE_SHADOW
from repro.workloads.attacks import all_attacks
from repro.workloads.bugbench import all_bugs
from repro.workloads.programs import FIGURE1_ORDER, WORKLOADS, all_workloads
from repro.workloads.servers import all_servers


def test_fifteen_workloads_registered():
    assert len(WORKLOADS) == 15
    assert list(WORKLOADS) == FIGURE1_ORDER


def test_eighteen_attacks_registered():
    attacks = all_attacks()
    assert len(attacks) == 18
    groups = {}
    for attack in attacks:
        groups.setdefault(attack.group, []).append(attack)
    assert len(groups["stack_direct"]) == 6
    assert len(groups["heap_direct"]) == 2
    assert len(groups["stack_ptr"]) == 6
    assert len(groups["heap_ptr"]) == 4


def test_four_bugbench_programs():
    assert len(all_bugs()) == 4
    assert {b.name for b in all_bugs()} == {"go", "compress", "polymorph", "gzip"}


@pytest.mark.parametrize("name", list(WORKLOADS), ids=list(WORKLOADS))
def test_workload_checksum_stable(name):
    wl = WORKLOADS[name]
    result = compile_and_run(wl.source)
    assert result.trap is None
    assert result.exit_code == wl.expected_exit


@pytest.mark.parametrize("name", ["compress", "health", "li", "treeadd"])
def test_workload_identical_under_softbound(name):
    """Spot-check behavioural equivalence (the full 15x4 sweep runs in
    the Figure 2 benchmark)."""
    wl = WORKLOADS[name]
    protected = compile_and_run(wl.source, softbound=FULL_SHADOW)
    assert protected.trap is None, protected.trap
    assert protected.exit_code == wl.expected_exit


def test_suite_split():
    spec = [w for w in all_workloads() if w.suite == "spec"]
    olden = [w for w in all_workloads() if w.suite == "olden"]
    assert len(spec) == 7  # go lbm hmmer compress ijpeg libquantum li
    assert len(olden) == 8


def test_olden_analogues_are_pointer_heavy():
    for wl in all_workloads():
        if wl.suite != "olden":
            continue
        result = compile_and_run(wl.source)
        assert result.stats.pointer_memory_op_fraction > 0.10, wl.name


def test_scalar_spec_analogues_have_no_pointer_traffic():
    for name in ("go", "lbm", "hmmer", "compress", "ijpeg"):
        result = compile_and_run(WORKLOADS[name].source)
        assert result.stats.pointer_memory_op_fraction < 0.02, name


@pytest.mark.parametrize("attack", all_attacks(), ids=lambda a: a.name)
def test_attack_is_a_real_exploit(attack):
    plain = compile_and_run(attack.source)
    assert plain.attack_succeeded, f"{attack.name} did not hijack control"


@pytest.mark.parametrize("attack", all_attacks(), ids=lambda a: a.name)
def test_attack_stopped_by_store_only(attack):
    protected = compile_and_run(attack.source, softbound=STORE_SHADOW)
    assert protected.detected_violation


def test_servers_have_realistic_request_streams():
    for server in all_servers():
        plain = compile_and_run(server.source, input_data=server.request_stream)
        assert plain.trap is None
        for fragment in server.expected_output_fragments:
            assert fragment in plain.output


def test_server_zero_false_positives_under_softbound():
    for server in all_servers():
        plain = compile_and_run(server.source, input_data=server.request_stream)
        protected = compile_and_run(server.source, softbound=FULL_SHADOW,
                                    input_data=server.request_stream)
        assert protected.trap is None
        assert protected.output == plain.output
