"""The differential oracle's judge, against fabricated run outcomes.

These tests build ``TaskOutcome``-shaped results by hand so every
discrepancy kind is exercised without paying for real compiles; the
campaign test runs the genuine end-to-end article.
"""

import pytest

from repro.fuzz.oracle import (ConfigMatrix, Discrepancy, RunConfig,
                               judge_program, plan_program)
from repro.fuzz.pool import TaskOutcome
from repro.workloads.randprog import generate, generate_mutated


def ok_run(exit_code=0, output="", trap_kind=None, detected=False):
    return TaskOutcome("ok", value={
        "status": "ok", "exit_code": exit_code, "output": output,
        "trap_kind": trap_kind, "trap": trap_kind, "detected": detected,
        "cost": 100,
    })


MATRIX = ConfigMatrix(policies=("none", "spatial", "valgrind"),
                      engines=("compiled",), opt_levels=(True,))


def configs():
    return list(MATRIX.configs())


class TestPlan:
    def test_plan_covers_the_matrix(self):
        program = generate(1)
        plan = plan_program(program, MATRIX)
        keys = [config.key for config, _ in plan]
        assert keys == ["none/compiled/O1", "spatial/compiled/O1",
                        "valgrind/compiled/O1"]
        for _, task in plan:
            assert task.args[0] == program.source

    def test_parallel_check_appends_batch_task(self):
        plan = plan_program(generate(1), MATRIX, parallel_check=True)
        assert plan[-1][0].kind == "parallel"

    def test_full_matrix_includes_none_baseline(self):
        matrix = ConfigMatrix(policies=("spatial",))
        assert matrix.policies[0] == "none"
        assert matrix.baseline.key == "none/compiled/O1"


class TestCleanJudging:
    def test_agreeing_runs_are_clean(self):
        program = generate(2)
        results = [(config, ok_run(exit_code=7, output="x"))
                   for config in configs()]
        judgment = judge_program(program, results, MATRIX)
        assert judgment.ok and judgment.verdict == "clean"

    def test_false_positive_is_transparency(self):
        program = generate(2)
        results = []
        for config in configs():
            if config.policy == "spatial":
                results.append((config, ok_run(
                    trap_kind="spatial_violation", detected=True)))
            else:
                results.append((config, ok_run(exit_code=7)))
        judgment = judge_program(program, results, MATRIX)
        kinds = [d.kind for d in judgment.discrepancies]
        assert "transparency" in kinds

    def test_baseline_divergence_is_transparency(self):
        program = generate(2)
        results = []
        for config in configs():
            exit_code = 9 if config.policy == "valgrind" else 7
            results.append((config, ok_run(exit_code=exit_code)))
        judgment = judge_program(program, results, MATRIX)
        assert judgment.verdict == "discrepancy"
        (finding,) = judgment.discrepancies
        assert finding.kind == "transparency"
        assert finding.policy == "valgrind"

    def test_timeout_and_crash_become_findings(self):
        program = generate(2)
        statuses = iter(["timeout", "crash", "ok"])
        results = []
        for config in configs():
            status = next(statuses)
            results.append((config, ok_run(exit_code=0)
                            if status == "ok"
                            else TaskOutcome(status, error=status)))
        judgment = judge_program(program, results, MATRIX)
        kinds = sorted(d.kind for d in judgment.discrepancies)
        assert kinds == ["crash", "hang"]

    def test_resource_limit_trap_is_a_hang_finding(self):
        program = generate(2)
        results = [(config, ok_run(trap_kind="resource_limit"))
                   for config in configs()]
        judgment = judge_program(program, results, MATRIX)
        assert all(d.kind == "hang" for d in judgment.discrepancies)

    def test_infra_error_is_not_a_discrepancy(self):
        program = generate(2)
        results = [(config, ok_run(exit_code=3)) for config in configs()]
        results[1] = (results[1][0],
                      TaskOutcome("error", error=RuntimeError("flake")))
        judgment = judge_program(program, results, MATRIX)
        assert judgment.verdict == "infra"
        assert not judgment.discrepancies

    def test_parallel_divergence(self):
        program = generate(2)
        results = [(config, ok_run(exit_code=1)) for config in configs()]
        batch = RunConfig("batch", "compiled", True, kind="parallel")
        results.append((batch, TaskOutcome("ok", value={
            "status": "ok", "trap_kind": None,
            "equal": False, "detail": "spatial: cost differs"})))
        judgment = judge_program(program, results, MATRIX)
        (finding,) = judgment.discrepancies
        assert finding.kind == "parallel_divergence"


class TestMutatedJudging:
    def make_results(self, spatial_detects):
        # "spatial" declares stack_overflow; "none" and "valgrind" don't.
        results = []
        for config in configs():
            if config.policy == "spatial" and spatial_detects:
                results.append((config, ok_run(
                    trap_kind="spatial_violation", detected=True)))
            else:
                results.append((config, ok_run(exit_code=7)))
        return results

    def test_declared_and_detected_is_clean(self):
        program = generate_mutated(3, defect="off_by_one_index")
        assert program.expected_class == "stack_overflow"
        judgment = judge_program(program, self.make_results(True), MATRIX)
        assert judgment.ok

    def test_missed_detection_names_a_reference(self):
        program = generate_mutated(3, defect="off_by_one_index")
        results = []
        for config in configs():
            if config.policy == "valgrind":
                # valgrind does NOT declare stack_overflow yet detects
                # here — it becomes the reference for spatial's miss.
                results.append((config, ok_run(
                    trap_kind="spatial_violation", detected=True)))
            else:
                results.append((config, ok_run(exit_code=7)))
        judgment = judge_program(program, results, MATRIX)
        kinds = {d.kind: d for d in judgment.discrepancies}
        assert "missed_detection" in kinds
        assert kinds["missed_detection"].policy == "spatial"
        assert kinds["missed_detection"].reference_policy == "valgrind"
        assert "undeclared_detection" in kinds

    def test_miss_without_reference_still_reported(self):
        program = generate_mutated(3, defect="off_by_one_index")
        judgment = judge_program(program, self.make_results(False), MATRIX)
        (finding,) = judgment.discrepancies
        assert finding.kind == "missed_detection"
        assert finding.reference_policy is None
        assert finding.expected_class == "stack_overflow"


class TestConsistency:
    def test_cross_engine_disagreement_is_divergence(self):
        matrix = ConfigMatrix(policies=("none", "spatial"),
                              engines=("compiled", "interp"),
                              opt_levels=(True,))
        program = generate(4)
        results = []
        for config in matrix.configs():
            exit_code = 5 if (config.policy, config.engine) == \
                ("spatial", "interp") else 3
            results.append((config, ok_run(exit_code=exit_code)))
        judgment = judge_program(program, results, matrix)
        kinds = {d.kind for d in judgment.discrepancies}
        assert "divergence" in kinds
        divergence = next(d for d in judgment.discrepancies
                          if d.kind == "divergence")
        assert divergence.policy == "spatial"
        assert len(divergence.configs) == 2

    def test_trap_runs_compared_on_kind_only(self):
        # Same trap kind with different residual exit codes must NOT
        # count as divergence — check motion may move where an expected
        # trap fires, never whether or what kind.
        matrix = ConfigMatrix(policies=("none", "temporal"),
                              engines=("compiled", "interp"),
                              opt_levels=(True,))
        program = generate_mutated(4, defect="use_after_free")
        results = []
        for exit_code, config in enumerate(matrix.configs()):
            if config.policy == "temporal":
                results.append((config, ok_run(
                    exit_code=exit_code, trap_kind="temporal_violation",
                    detected=True)))
            else:
                results.append((config, ok_run(exit_code=9)))
        judgment = judge_program(program, results, matrix)
        assert judgment.ok, judgment.discrepancies


class TestDiscrepancySerialization:
    def test_round_trip(self):
        original = Discrepancy(
            kind="missed_detection", detail="d", configs=("a/b/O1",),
            policy="spatial", expected_class="heap_overflow",
            reference_policy="temporal")
        assert Discrepancy.from_json(original.to_json()) == original
