"""The crash-isolated pool: every robustness verdict, exercised."""

import os
import time

import pytest

from repro.fuzz.pool import IsolatedPool, PoolTask

ECHO = "repro.fuzz._testhooks:echo"
HANG = "repro.fuzz._testhooks:hang"
KILL = "repro.fuzz._testhooks:kill_self"
KILL_ONCE = "repro.fuzz._testhooks:kill_self_once"
FLAKY_ONCE = "repro.fuzz._testhooks:flaky_once"


@pytest.fixture(scope="module")
def pool():
    with IsolatedPool(jobs=2, task_timeout=15.0) as shared:
        yield shared


class TestHappyPath:
    def test_results_are_index_aligned(self, pool):
        outcomes = pool.run([PoolTask(ECHO, (value,))
                             for value in range(6)])
        assert [outcome.value for outcome in outcomes] == list(range(6))
        assert all(outcome.ok and outcome.attempts == 1
                   for outcome in outcomes)

    def test_rich_values_round_trip(self, pool):
        payload = {"nested": [1, 2, {"deep": (3, 4)}], "text": "päyload"}
        (outcome,) = pool.run([PoolTask(ECHO, (payload,))])
        assert outcome.value == payload

    def test_workers_stay_warm_across_runs(self, pool):
        pool.run([PoolTask(ECHO, (1,))])
        first = [worker.proc.pid for worker in pool._workers if worker]
        pool.run([PoolTask(ECHO, (2,))])
        second = [worker.proc.pid for worker in pool._workers if worker]
        assert set(second) <= set(first)


class TestTimeout:
    def test_hung_task_becomes_timeout_not_a_wedge(self, pool):
        started = time.monotonic()
        outcomes = pool.run([
            PoolTask(HANG, (3600.0,), timeout=1.0),
            PoolTask(ECHO, ("still-served",)),
        ])
        assert outcomes[0].status == "timeout"
        assert outcomes[1].ok and outcomes[1].value == "still-served"
        assert time.monotonic() - started < 10

    def test_timeout_is_not_retried(self, pool):
        (outcome,) = pool.run([PoolTask(HANG, (3600.0,), timeout=0.5)])
        assert outcome.status == "timeout"
        assert outcome.attempts == 1

    def test_pool_serves_after_timeout(self, pool):
        pool.run([PoolTask(HANG, (3600.0,), timeout=0.5)])
        (outcome,) = pool.run([PoolTask(ECHO, ("alive",))])
        assert outcome.ok and outcome.value == "alive"


class TestWorkerDeath:
    def test_persistent_killer_becomes_crash(self, pool):
        (outcome,) = pool.run([PoolTask(KILL)])
        assert outcome.status == "crash"
        assert outcome.attempts == 2  # requeued once first

    def test_death_heals_on_retry(self, pool, tmp_path):
        marker = str(tmp_path / "kill-once")
        (outcome,) = pool.run([PoolTask(KILL_ONCE, (marker,))])
        assert outcome.ok
        assert outcome.value == "recovered"
        assert outcome.attempts == 2

    def test_neighbours_survive_a_crashing_task(self, pool):
        outcomes = pool.run([PoolTask(ECHO, (index,)) for index in range(3)]
                            + [PoolTask(KILL)])
        assert [o.value for o in outcomes[:3]] == [0, 1, 2]
        assert outcomes[3].status == "crash"


class TestInBandErrors:
    def test_exception_retried_then_reported(self, pool):
        (outcome,) = pool.run([PoolTask("os.path:getsize",
                                        ("/nonexistent-path-xyz",))])
        assert outcome.status == "error"
        assert outcome.attempts == 2
        assert isinstance(outcome.error, OSError)

    def test_flake_heals_on_retry(self, pool, tmp_path):
        marker = str(tmp_path / "flaky-once")
        (outcome,) = pool.run([PoolTask(FLAKY_ONCE, (marker,))])
        assert outcome.ok and outcome.value == "recovered"
        assert outcome.attempts == 2

    def test_bad_call_path_is_an_error(self, pool):
        (outcome,) = pool.run([PoolTask("repro.fuzz._testhooks:nope")])
        assert outcome.status == "error"


class TestLifecycle:
    def test_sigkill_mid_task_is_survived(self, tmp_path):
        # SIGKILL lands on a worker mid-task: the parent sees pipe EOF,
        # retries on a fresh worker, and the task succeeds; the dead
        # worker is reaped (no zombie left behind).
        marker = str(tmp_path / "sigkill-marker")
        with IsolatedPool(jobs=1, task_timeout=15.0) as mine:
            (outcome,) = mine.run([PoolTask(KILL_ONCE, (marker,))])
            assert outcome.ok and outcome.attempts == 2
            first_pid = int(open(marker).read())
            assert not _pid_alive(first_pid)

    def test_close_kills_workers(self):
        mine = IsolatedPool(jobs=1, task_timeout=15.0)
        mine.run([PoolTask(ECHO, (1,))])
        pid = mine._workers[0].proc.pid
        mine.close()
        deadline = time.monotonic() + 5
        while _pid_alive(pid) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not _pid_alive(pid)
        with pytest.raises(RuntimeError):
            mine.run([PoolTask(ECHO, (1,))])

    def test_empty_batch(self, pool):
        assert pool.run([]) == []


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    # Could be a zombie awaiting reap by its (dead or busy) parent.
    try:
        with open(f"/proc/{pid}/stat") as handle:
            return handle.read().split()[2] != "Z"
    except OSError:
        return True
