"""Delta-minimizer properties, against seeded synthetic oracles.

The synthetic predicate ("reproduces iff these marker lines survive")
lets the properties run thousands of steps without a single compile:

* every accepted intermediate state reproduces;
* size is monotonically non-increasing across accepted states;
* the result is 1-minimal for independent markers (dropping any single
  remaining line breaks reproduction).
"""

import random

from repro.fuzz.minimize import (MinimizeResult, minimize,
                                 parse_config_key, predicate_for)
from repro.fuzz.oracle import Discrepancy


def make_program(rng, lines=40, markers=("NEEDLE_A", "NEEDLE_B")):
    body = [f"filler_{index} = {rng.randrange(100)}"
            for index in range(lines)]
    for marker in markers:
        body.insert(rng.randrange(len(body) + 1), marker)
    return "\n".join(body) + "\n", markers


class RecordingOracle:
    """Predicate: all markers present.  Records every accepted state so
    the properties can audit the minimizer's path."""

    def __init__(self, markers):
        self.markers = markers
        self.accepted = []
        self.calls = 0

    def __call__(self, source):
        self.calls += 1
        holds = all(marker in source for marker in self.markers)
        if holds:
            self.accepted.append(source)
        return holds


class TestProperties:
    def test_every_accepted_step_reproduces_and_shrinks(self):
        for seed in range(10):
            rng = random.Random(seed)
            source, markers = make_program(rng)
            oracle = RecordingOracle(markers)
            result = minimize(source, oracle)
            assert result.reproduced
            sizes = [state.count("\n") for state in oracle.accepted]
            assert sizes == sorted(sizes, reverse=True), \
                f"seed {seed}: sizes grew: {sizes}"
            assert all(all(marker in state for marker in markers)
                       for state in oracle.accepted)

    def test_result_is_one_minimal(self):
        for seed in range(10):
            rng = random.Random(100 + seed)
            source, markers = make_program(rng, lines=25)
            result = minimize(source, RecordingOracle(markers))
            final = result.source.splitlines()
            assert sorted(final) == sorted(markers), \
                f"seed {seed}: leftover lines {final}"

    def test_non_reproducing_original_is_returned_unchanged(self):
        result = minimize("a\nb\nc\n", lambda source: False)
        assert not result.reproduced
        assert result.source == "a\nb\nc\n"
        assert result.tests == 1

    def test_max_tests_bounds_predicate_calls(self):
        oracle = RecordingOracle(("NEEDLE_A",))
        source, _ = make_program(random.Random(7), lines=200,
                                 markers=("NEEDLE_A",))
        result = minimize(source, oracle, max_tests=30)
        assert oracle.calls <= 30
        assert "NEEDLE_A" in result.source

    def test_breaking_removals_are_rejected(self):
        # A predicate that (like a compiler) rejects structurally
        # broken candidates: brace balance must hold AND marker must
        # survive.  The minimizer never accepts a broken state.
        source = "{\nNEEDLE\n}\nfiller\n"

        def predicate(candidate):
            balanced = candidate.count("{") == candidate.count("}")
            return balanced and "NEEDLE" in candidate

        result = minimize(source, predicate)
        assert result.reproduced
        lines = result.source.splitlines()
        assert "NEEDLE" in lines
        assert lines.count("{") == lines.count("}")
        assert "filler" not in lines

    def test_counters_are_consistent(self):
        source, markers = make_program(random.Random(3))
        oracle = RecordingOracle(markers)
        result = minimize(source, oracle)
        assert result.tests == oracle.calls
        assert result.steps == len(oracle.accepted) - 1  # minus original
        assert isinstance(result, MinimizeResult)
        assert result.original_lines >= result.minimized_lines


class TestPredicates:
    def test_parse_config_key(self):
        assert parse_config_key("spatial/interp/O0") == \
            ("spatial", "interp", False)
        assert parse_config_key("mscc/compiled/O1") == \
            ("mscc", "compiled", True)

    def test_unshrinkable_kinds_return_none(self):
        assert predicate_for(Discrepancy("infra", "x")) is None
        assert predicate_for(Discrepancy(
            "parallel_divergence", "x", configs=("a/b/O1",))) is None
        assert predicate_for(Discrepancy(
            "crash", "x", configs=("none/compiled/O1",))) is None  # no pool

    def test_missed_detection_predicate_end_to_end(self):
        # Real (tiny) programs: the reference must still detect and the
        # bad policy still miss, or the candidate is rejected.
        discrepancy = Discrepancy(
            "missed_detection", "d", configs=("none/compiled/O1",),
            policy="none", expected_class="heap_overflow",
            reference_policy="spatial")
        predicate = predicate_for(discrepancy)
        bad = ("int main(void) {\n"
               "    int *p = (int *)malloc(2 * sizeof(int));\n"
               "    p[2] = 1;\n"
               "    return 0;\n"
               "}\n")
        safe = ("int main(void) {\n"
                "    return 0;\n"
                "}\n")
        assert predicate(bad)       # spatial detects, none misses
        assert not predicate(safe)  # nothing to detect: rejected
        assert not predicate("int main(void) {\n")  # does not compile
