"""Attack-seeded mutation and the generator determinism guard.

The campaign's resume model keys the corpus by seed — which is only
sound if ``generate``/``generate_mutated`` emit byte-identical source
for a fixed seed in *any* interpreter, including ones with different
``PYTHONHASHSEED`` (set-iteration and string-hash orders must never
leak into the program text).
"""

import subprocess
import sys

import pytest

from repro.policy import get_policy
from repro.workloads import randprog

CLASSES = {"stack_overflow", "heap_overflow", "subobject_overflow",
           "use_after_free", "double_free", "dangling_stack"}


class TestMutation:
    def test_defect_table_covers_all_classes(self):
        import random

        classes = {randprog.DEFECTS[name](random.Random(1))[2]
                   for name in randprog.DEFECTS}
        assert classes == CLASSES

    def test_mutated_program_carries_ground_truth(self):
        program = randprog.generate_mutated(5, defect="double_free")
        assert program.defect == "double_free"
        assert program.expected_class == "double_free"
        assert program.base_source == randprog.generate(5).source
        assert program.source != program.base_source
        assert "fz" in program.source  # the injected lines

    def test_mutation_preserves_base_statements(self):
        base = randprog.generate(9)
        program = randprog.mutate(base, defect="use_after_free")
        for line in base.body_lines:
            assert line in program.source

    def test_default_defect_choice_is_seed_deterministic(self):
        first = randprog.generate_mutated(11)
        second = randprog.generate_mutated(11)
        assert first.defect == second.defect
        assert first.source == second.source

    def test_unknown_defect_rejected(self):
        with pytest.raises(ValueError):
            randprog.generate_mutated(1, defect="nonexistent")

    @pytest.mark.parametrize("defect", sorted(randprog.DEFECTS))
    def test_defect_matches_declared_class_under_reference_policies(
            self, defect):
        """Ground truth spot-check on the live checkers: ``temporal``
        (declares every class) must detect each defect; ``none`` must
        detect nothing."""
        from repro.api import run_source

        program = randprog.generate_mutated(2, defect=defect)
        protected = run_source(program.source, profile="temporal",
                               max_instructions=20_000_000)
        assert protected.detected_violation, \
            f"{defect}: temporal missed {program.expected_class}"
        assert program.expected_class in get_policy("temporal").detects
        unprotected = run_source(program.source, profile="none",
                                 max_instructions=20_000_000)
        assert not unprotected.detected_violation


class TestDeterminism:
    def _emit(self, hash_seed, code):
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": str(hash_seed),
                 "PATH": "/usr/bin:/bin"})
        assert result.returncode == 0, result.stderr
        return result.stdout

    CLEAN = ("import hashlib\n"
             "from repro.workloads.randprog import generate\n"
             "blob = ''.join(generate(seed).source "
             "for seed in range(25))\n"
             "print(hashlib.sha256(blob.encode()).hexdigest())\n")

    MUTATED = ("import hashlib\n"
               "from repro.workloads.randprog import generate_mutated\n"
               "blob = ''.join(generate_mutated(seed).source "
               "+ generate_mutated(seed).defect for seed in range(25))\n"
               "print(hashlib.sha256(blob.encode()).hexdigest())\n")

    def test_clean_source_identical_across_hash_seeds(self):
        digests = {self._emit(hash_seed, self.CLEAN)
                   for hash_seed in (0, 1, 4242)}
        assert len(digests) == 1, \
            "generate() output depends on PYTHONHASHSEED"

    def test_mutated_source_identical_across_hash_seeds(self):
        digests = {self._emit(hash_seed, self.MUTATED)
                   for hash_seed in (0, 7, 31337)}
        assert len(digests) == 1, \
            "generate_mutated() output depends on PYTHONHASHSEED"
