"""The campaign end-to-end: fault injection, ``kill -9`` resume, and a
seeded checker bug that must be found and minimized.

These are the acceptance tests for the robustness headline: a campaign
containing a hung task, a SIGKILLed worker and a deliberately broken
policy completes with correct verdicts, survives being killed outright,
resumes without re-judging, and emits a minimized reproducer.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.fuzz import Campaign, CampaignConfig, ConfigMatrix, Corpus
from repro.workloads.randprog import DEFECTS

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

HEAP_INDEX = list(DEFECTS).index("heap_off_by_one")


def campaign_env(plugins=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src")
                         + (os.pathsep + env["PYTHONPATH"]
                            if env.get("PYTHONPATH") else ""))
    env.pop("REPRO_PLUGINS", None)
    if plugins:
        env["REPRO_PLUGINS"] = plugins
    return env


def tail_json(text):
    """The trailing JSON document of mixed log+JSON stdout."""
    index = text.rfind("\n{")
    return json.loads(text[index + 1:] if index >= 0 else text)


def fuzz_cli(args, plugins=None, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", "fuzz", *args],
        cwd=REPO_ROOT, env=campaign_env(plugins), capture_output=True,
        text=True, timeout=300, **kwargs)


class TestChaosDrill:
    def test_all_three_failure_modes_survived(self, tmp_path):
        config = CampaignConfig(corpus=str(tmp_path / "corpus"), seeds=0,
                                chaos=True, jobs=2, task_timeout=20.0)
        result = Campaign(config).run()
        assert result.chaos["failed"] == []
        assert result.chaos["verdicts"] == ["timeout", "ok", "ok", "ok"]
        assert result.chaos["attempts"] == [1, 2, 2, 1]
        assert result.exit_code == 0

    def test_chaos_failure_fails_the_campaign(self, tmp_path):
        config = CampaignConfig(corpus=str(tmp_path / "corpus"), seeds=0)
        result = Campaign(config).run()
        result.chaos = {"failed": ["hung task"]}
        assert result.exit_code == 1


class TestSeededBugFoundAndMinimized:
    @pytest.fixture(scope="class")
    def bad_run(self, tmp_path_factory):
        corpus = str(tmp_path_factory.mktemp("bad") / "corpus")
        result = fuzz_cli(
            ["run", "--corpus", corpus, "--seeds", "1",
             "--start-seed", str(HEAP_INDEX), "--quick",
             "--policies", "none,spatial,fuzz-bad", "--json"],
            plugins="repro.fuzz.badpolicy")
        return corpus, result

    def test_exit_code_signals_findings(self, bad_run):
        _, result = bad_run
        assert result.returncode == 1, result.stderr

    def test_missed_detection_judged(self, bad_run):
        corpus, result = bad_run
        payload = tail_json(result.stdout)
        assert payload["discrepancy_seeds"] == 1
        assert payload["clean"] == 1  # the clean sibling seed
        checkpoint = json.load(open(os.path.join(corpus, "corpus.json")))
        entry = checkpoint["judged"][f"heap_off_by_one:{HEAP_INDEX}"]
        kinds = {d["kind"] for d in entry["discrepancies"]}
        assert kinds == {"missed_detection"}
        assert all(d["policy"] == "fuzz-bad"
                   for d in entry["discrepancies"])

    def test_reproducer_minimized_with_metadata(self, bad_run):
        corpus, _ = bad_run
        corpus_obj = Corpus(corpus)
        (case,) = list(corpus_obj.iter_findings())
        assert case["kind"] == "missed_detection"
        assert case["policy"] == "fuzz-bad"
        assert case["expected_class"] == "heap_overflow"
        assert case["reference_policy"] == "spatial"
        assert case["reproduced"] is True
        assert case["minimized_lines"] < case["original_lines"]
        case_dir = os.path.join(corpus, "findings", case["id"])
        minimized = open(os.path.join(case_dir, "minimized.c")).read()
        assert "malloc" in minimized  # the heap defect survived shrinking
        assert minimized.count("\n") == case["minimized_lines"]

    def test_minimize_command_reruns_archived_case(self, bad_run):
        corpus, _ = bad_run
        (case,) = list(Corpus(corpus).iter_findings())
        case_dir = os.path.join(corpus, "findings", case["id"])
        result = fuzz_cli(["minimize", case_dir],
                          plugins="repro.fuzz.badpolicy")
        assert result.returncode == 0, result.stderr
        assert "minimized" in result.stdout

    def test_corpus_command_lists_finding(self, bad_run):
        corpus, _ = bad_run
        result = fuzz_cli(["corpus", "--corpus", corpus])
        assert result.returncode == 0
        assert "missed_detection" in result.stdout
        assert "1 finding(s)" in result.stdout


class TestKillMinusNineResume:
    def test_killed_campaign_resumes_without_rejudging(self, tmp_path):
        corpus = str(tmp_path / "corpus")
        checkpoint_path = os.path.join(corpus, "corpus.json")
        args = [sys.executable, "-m", "repro", "fuzz", "run",
                "--corpus", corpus, "--seeds", "4", "--quick",
                "--policies", "none,spatial", "--resume"]
        victim = subprocess.Popen(args, cwd=REPO_ROOT, env=campaign_env(),
                                  stdout=subprocess.DEVNULL,
                                  stderr=subprocess.DEVNULL)
        try:
            judged_before = self._wait_for_judged(checkpoint_path,
                                                  minimum=1)
        finally:
            victim.kill()  # SIGKILL: no cleanup handlers run
            victim.wait(timeout=30)

        # The checkpoint survived the kill (atomic replace, per seed).
        checkpoint = json.load(open(checkpoint_path))
        assert len(checkpoint["judged"]) >= judged_before

        resumed = fuzz_cli(["run", "--corpus", corpus, "--seeds", "4",
                            "--quick", "--policies", "none,spatial",
                            "--resume", "--json"])
        assert resumed.returncode == 0, resumed.stderr
        payload = tail_json(resumed.stdout)
        assert payload["skipped"] >= judged_before
        assert payload["skipped"] + payload["judged"] == 8  # 4 seeds × 2
        final = json.load(open(checkpoint_path))
        assert len(final["judged"]) == 8

    @staticmethod
    def _wait_for_judged(checkpoint_path, minimum, timeout=240):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                with open(checkpoint_path) as handle:
                    judged = len(json.load(handle).get("judged", {}))
                if judged >= minimum:
                    return judged
            except (OSError, ValueError):
                pass  # not written yet; never torn (atomic replace)
            time.sleep(0.2)
        raise AssertionError("campaign never judged a seed")


class TestCorpusRecovery:
    def test_torn_checkpoint_degrades_to_empty(self, tmp_path):
        root = tmp_path / "corpus"
        first = Corpus(str(root))
        with open(first.checkpoint_path, "w") as handle:
            handle.write('{"schema": "fuzz-corpus-v1", "judged": {tr')
        recovered = Corpus(str(root))
        assert recovered.judged == {}
        assert "recovered_from" in recovered.meta

    def test_record_round_trips_between_instances(self, tmp_path):
        from repro.fuzz.oracle import Discrepancy, SeedJudgment

        root = str(tmp_path / "corpus")
        first = Corpus(root)
        judgment = SeedJudgment(verdict="discrepancy", discrepancies=[
            Discrepancy("hang", "d", configs=("none/compiled/O1",))])
        sha = first.add_program("int main(void) { return 0; }\n")
        first.record("clean:3", judgment, sha)
        second = Corpus(root)
        assert second.is_judged("clean:3")
        entry = second.judged["clean:3"]
        assert entry["verdict"] == "discrepancy"
        assert entry["discrepancies"][0]["kind"] == "hang"
        assert os.path.exists(second.program_path(sha))


@pytest.mark.parametrize("flag", ["--seeds", "--time-budget", "--resume"])
def test_cli_advertises_flag(flag):
    result = fuzz_cli(["run", "--help"])
    assert flag in result.stdout
