"""Lowering tests: AST-to-IR structure."""

import pytest

from repro.frontend.typecheck import parse_and_check
from repro.ir.verifier import verify_module
from repro.lower.lowering import LoweringError, lower


def lowered(source):
    module = lower(parse_and_check(source))
    verify_module(module)
    return module


def ops(module, name):
    return [i.opcode for i in module.functions[name].instructions()]


def test_member_access_gep_carries_field_extent():
    module = lowered(
        "struct s { char pad[12]; int v; }; int f(struct s *p) { return p->v; }")
    geps = [i for i in module.functions["f"].instructions() if i.opcode == "gep"]
    field_geps = [g for g in geps if g.field_extent is not None]
    assert field_geps and field_geps[0].field_extent == 4
    from repro.ir.values import Const
    assert any(isinstance(g.offset, Const) and g.offset.value == 12 for g in field_geps)


def test_array_index_scales_by_element_size():
    module = lowered("long f(long *p) { return p[3]; }")
    muls = [i for i in module.functions["f"].instructions()
            if i.opcode == "binop" and i.op == "mul"]
    from repro.ir.values import Const
    assert any(isinstance(m.b, Const) and m.b.value == 8 for m in muls)


def test_pointer_load_flagged():
    module = lowered("int **g; int f(void) { return **g; }")
    loads = [i for i in module.functions["f"].instructions() if i.opcode == "load"]
    assert any(l.is_pointer_value for l in loads)
    assert any(not l.is_pointer_value for l in loads)


def test_string_literal_interned_once():
    module = lowered(r'''
    char *a(void) { return "shared"; }
    char *b(void) { return "shared"; }
    ''')
    strings = [g for g in module.globals.values() if g.is_string_literal]
    assert len(strings) == 1
    assert strings[0].data == b"shared\x00"


def test_global_initializer_bytes():
    module = lowered("int x = 258; short s = -1;")
    assert module.globals["x"].data == (258).to_bytes(4, "little")
    assert module.globals["s"].data == b"\xff\xff"


def test_global_pointer_initializer_becomes_reloc():
    module = lowered("int v; int *p = &v;")
    assert module.globals["p"].relocs == [(0, "v", 0)]


def test_global_array_partial_initializer_zero_fills():
    module = lowered("int a[4] = {7};")
    data = module.globals["a"].data
    assert data[:4] == (7).to_bytes(4, "little")
    assert data[4:] == bytes(12)


def test_struct_assignment_lowers_to_memcopy():
    module = lowered(r'''
    struct s { int a; int b; };
    void f(struct s *x, struct s *y) { *x = *y; }
    ''')
    assert "memcopy" in ops(module, "f")


def test_short_circuit_produces_branches_not_eval():
    module = lowered("int f(int a, int b) { return a && b; }")
    func = module.functions["f"]
    assert len(func.blocks) >= 4  # rhs / true / false / join blocks


def test_static_local_becomes_global():
    module = lowered("int tick(void) { static int n = 5; n++; return n; }")
    statics = [name for name in module.globals if name.startswith("tick.")]
    assert len(statics) == 1
    assert module.globals[statics[0]].data[:4] == (5).to_bytes(4, "little")


def test_param_allocas_marked():
    module = lowered("int f(int *p) { return *p; }")
    allocas = [i for i in module.functions["f"].instructions() if i.opcode == "alloca"]
    assert allocas and all(a.is_param for a in allocas)


def test_break_outside_loop_rejected():
    # The typechecker now rejects this before lowering; either layer
    # refusing is acceptable to callers, so accept both error types.
    from repro.frontend.errors import FrontendError

    with pytest.raises((FrontendError, LoweringError)):
        lowered("int f(void) { break; return 0; }")


def test_case_label_must_be_constant():
    with pytest.raises(LoweringError):
        lowered("int f(int x) { switch (x) { case x: return 1; } return 0; }")


def test_conditional_expression_single_result_register():
    module = lowered("int f(int c) { return c ? 10 : 20; }")
    movs = [i for i in module.functions["f"].instructions() if i.opcode == "mov"]
    dsts = {m.dst.uid for m in movs if m.dst.hint == "cond"}
    assert len(dsts) == 1  # both arms write the same register
