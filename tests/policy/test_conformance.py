"""Policy conformance suite: every registered checker, one contract.

Sweeps every policy in the registry (built-ins, the in-tree red-zone
plugin, anything ``REPRO_PLUGINS`` pulled in) through the obligations
the :class:`repro.policy.CheckerPolicy` interface makes:

* **Transparency** — a clean workload runs to the same exit code and
  output as the unprotected baseline (a checker may cost, never change,
  a correct program).
* **Detection** — one representative program per violation class; the
  policy must detect exactly the classes its ``detects`` declaration
  claims (both directions: an undeclared detection is a stale
  declaration, a declared miss is a regression).
* **Pickling** — the derived profile round-trips through pickle (batch
  execution ships profiles to worker processes).
* **Serial == parallel** — a ``Session.run_many`` batch over every
  policy produces identical reports at ``jobs=1`` and ``jobs=2``.
* **Cost accounting** — protected policies charge for their checking
  (cost strictly above baseline; transform-based ones count checks),
  the unprotected policy charges exactly baseline.
* **Provable contract** — a policy that declares ``provable`` must stay
  byte-identical on clean runs at ``-O2`` (against ``-O0`` and ``-O1``,
  on both engines); one that does not must reject ``-O2`` with the
  typed :class:`repro.prove.ProveNotSupportedError` — in both
  directions, so a stale ``provable`` flag fails the sweep either way.
"""

import pickle

import pytest

from repro.api import Session, as_profile, run_source
from repro.policy import all_policies, get_policy
from repro.prove import ProveNotSupportedError

CLEAN = r'''
int main(void) {
    int a[8];
    long total = 0;
    for (int i = 0; i < 8; i++) a[i] = i * 3;
    for (int i = 0; i < 8; i++) total += a[i];
    printf("total=%ld\n", total);
    return 0;
}
'''

#: One representative program per violation class.  Each runs silently
#: (no trap) on the unprotected VM, so any trap is the checker's doing.
DETECTION_PROGRAMS = {
    "stack_overflow": r'''
int main(void) {
    char b[8];
    strcpy(b, "0123456789abcdef");
    return b[0] == '0';
}
''',
    "heap_overflow": r'''
int main(void) {
    char *p = malloc(8);
    int i;
    for (i = 0; i < 12; i++) p[i] = 'x';
    { int r = p[0] == 'x'; free(p); return r; }
}
''',
    "subobject_overflow": r'''
struct rec { char str[8]; long tail; };
struct rec node;
int main(void) {
    node.tail = 7;
    char *p = node.str;
    strcpy(p, "overflow...");
    return node.tail == 7;
}
''',
    "use_after_free": r'''
int main(void) {
    int *p = malloc(32);
    p[0] = 5;
    free(p);
    p[1] = 9;
    return p[0];
}
''',
    "double_free": r'''
int main(void) {
    char *p = malloc(16);
    free(p);
    free(p);
    return 0;
}
''',
    "dangling_stack": r'''
int *leak(void) { int x = 3; return &x; }
int main(void) { int *p = leak(); return *p; }
''',
}

POLICIES = all_policies()


@pytest.fixture(scope="module")
def session():
    return Session()


@pytest.fixture(scope="module")
def baseline(session):
    return session.run(CLEAN, profile="none")


def _ids(policy):
    return policy.name


@pytest.mark.parametrize("policy", POLICIES, ids=_ids)
class TestConformance:
    def test_clean_workload_transparency(self, policy, session, baseline):
        report = session.run(CLEAN, profile=policy.name)
        assert report.trap is None, \
            f"{policy.name} false-positived on a clean workload: {report.trap}"
        assert report.exit_code == baseline.exit_code
        assert report.output == baseline.output

    def test_detection_matrix(self, policy, session):
        known = set(DETECTION_PROGRAMS)
        assert policy.detects <= known, \
            f"{policy.name} declares unknown classes: {policy.detects - known}"
        for cls, source in DETECTION_PROGRAMS.items():
            report = session.run(source, profile=policy.name, name=cls)
            if cls in policy.detects:
                assert report.detected_violation, \
                    f"{policy.name} declares {cls} but missed it " \
                    f"(trap={report.trap})"
            else:
                assert not report.detected_violation, \
                    f"{policy.name} detected {cls} but does not declare " \
                    f"it (trap={report.trap}); update its `detects`"

    def test_profile_pickles(self, policy):
        profile = as_profile(policy.name)
        clone = pickle.loads(pickle.dumps(profile))
        assert clone == profile
        # The policy itself stays resolvable in a fresh process by name.
        assert get_policy(policy.name) is policy

    def test_cost_accounting(self, policy, session, baseline):
        report = session.run(CLEAN, profile=policy.name)
        if not policy.is_protected:
            assert report.stats.cost == baseline.stats.cost
            return
        assert report.stats.cost > baseline.stats.cost, \
            f"{policy.name} is protected but charged nothing"
        if policy.config is not None:
            assert report.stats.checks + report.stats.temporal_checks > 0
        if policy.meta_arity > 2:
            assert report.stats.temporal_checks > 0

    def test_provable_contract(self, policy):
        provable = getattr(policy, "provable", False)
        if not provable:
            # Non-provable policies must refuse -O2 with the typed
            # error, on either engine — never silently compile without
            # the proof guarantee the flag withholds.
            for engine in ("compiled", "interp"):
                with pytest.raises(ProveNotSupportedError):
                    run_source(CLEAN, profile=policy.name, engine=engine,
                               optimize=2)
            return
        # Provable policies: the prove pass may delete checks but must
        # never change observable behaviour — clean runs byte-identical
        # across every opt level, on both engines.
        rows = {}
        for engine in ("compiled", "interp"):
            for level in (0, 1, 2):
                report = run_source(CLEAN, profile=policy.name,
                                    engine=engine, optimize=level)
                assert report.trap is None, \
                    f"{policy.name} trapped clean code at -O{level} " \
                    f"on {engine}: {report.trap}"
                rows[(engine, level)] = (report.exit_code, report.output)
        assert len(set(rows.values())) == 1, \
            f"{policy.name} output diverged across the O-level x " \
            f"engine matrix: {rows}"


class TestSerialEqualsParallel:
    def test_batch_identical_across_jobs(self):
        """One batch over every registered policy: the parallel fan-out
        must be indistinguishable from the serial loop (wallclock
        aside) — this is what makes profiles safe to ship to worker
        processes."""
        items = [(policy.name, CLEAN, policy.name) for policy in POLICIES]
        serial = Session(jobs=1).run_many(items, jobs=1)
        parallel = Session(jobs=2).run_many(items, jobs=2)
        assert list(serial.reports) == list(parallel.reports)
        for name in serial.reports:
            a, b = serial.reports[name], parallel.reports[name]
            assert (a.exit_code, a.output, str(a.trap), a.stats.cost,
                    a.stats.checks, a.stats.temporal_checks) == \
                   (b.exit_code, b.output, str(b.trap), b.stats.cost,
                    b.stats.checks, b.stats.temporal_checks)
