"""Policy registry, plugin discovery and VM/opt extension points.

These tests exercise the *extensibility* claims end to end: a checker
registered at runtime (or discovered from a plugin module) is
immediately selectable through every facade surface, its opcodes
dispatch in both VM engines, its cost keys price, and its opcode traits
steer the optimizer's invalidation sets — all with zero core edits.
"""

import subprocess
import sys
import textwrap

import pytest

from repro.api import ProtectionProfile, Session, UsageError, all_profiles
from repro.policy import (
    CheckerPolicy,
    OpcodeTraits,
    PolicyError,
    get_policy,
    load_plugins,
    lock_releaser_opcodes,
    register_opcode_traits,
    register_policy,
    table_writer_opcodes,
    traits_of,
    unregister_policy,
)
from repro.vm.machine import Observer

CLEAN = "int main(void) { int a[2]; a[0] = 41; return a[0] + 1; }"


class CountingObserver(Observer):
    """Module-level so the derived profile stays picklable."""

    def __init__(self):
        self.loads = 0

    def on_load(self, addr, size):
        self.loads += 1


class CountingPolicy(CheckerPolicy):
    name = "test-counting"
    description = "test observer policy"
    family = "plugin"
    observer_factory = CountingObserver
    detects = frozenset()


@pytest.fixture
def counting_policy():
    policy = register_policy(CountingPolicy)
    yield policy
    unregister_policy(policy.name)


class TestRegistration:
    def test_registered_policy_is_a_profile_everywhere(self, counting_policy):
        profile = ProtectionProfile.from_name("test-counting")
        assert profile.family == "plugin"
        assert profile in all_profiles()
        report = Session().run(CLEAN, profile="test-counting")
        assert report.exit_code == 42
        assert report.trap is None

    def test_registration_is_idempotent(self, counting_policy):
        assert register_policy(CountingPolicy) is counting_policy

    def test_name_collision_with_different_class_raises(self, counting_policy):
        class Impostor(CheckerPolicy):
            name = "test-counting"
            description = "shadowing attempt"

        with pytest.raises(PolicyError, match="already registered"):
            register_policy(Impostor)

    def test_shadowing_a_builtin_raises(self):
        class Impostor(CheckerPolicy):
            name = "spatial"
            description = "shadowing attempt"

        with pytest.raises(PolicyError, match="already registered"):
            register_policy(Impostor)

    def test_nameless_policy_raises(self):
        class Nameless(CheckerPolicy):
            description = "no name"

        with pytest.raises(PolicyError, match="no name"):
            register_policy(Nameless)

    def test_get_policy_lists_known_names_on_typo(self):
        with pytest.raises(KeyError, match="spatial"):
            get_policy("not-a-policy")

    def test_transform_based_policy_default_plan_does_not_recurse(self):
        """A transform-based plugin that keeps the base-class
        ``instrumentation_plan`` gets the built-in plan for its config's
        axes (regression: the old default resolved through
        ``plan_for_config``, which resolves back to the same policy —
        infinite recursion)."""
        from dataclasses import replace

        from repro.policy import SpatialPlan
        from repro.softbound.config import FULL_SHADOW

        class VariantPolicy(CheckerPolicy):
            name = "test-variant"
            description = "transform-based, default plan"
            family = "plugin"
            config = replace(FULL_SHADOW, variant="test_variant")

        policy = register_policy(VariantPolicy)
        try:
            plan = policy.instrumentation_plan()
            assert isinstance(plan, SpatialPlan)
            report = Session().run(CLEAN, profile="test-variant")
            assert report.exit_code == 42
            assert report.stats.checks > 0
        finally:
            unregister_policy("test-variant")


class TestPluginDiscovery:
    def test_redzone_rides_the_builtin_plugin_path(self):
        """The in-tree red-zone plugin is loaded through the same
        discovery mechanism external plugins use."""
        policy = get_policy("redzone")
        assert policy.family == "plugin"
        assert type(policy).__module__ == "repro.policy.redzone"

    def test_load_plugins_extra_imports_and_registers(self, tmp_path,
                                                      monkeypatch):
        module_dir = tmp_path / "plugmod"
        module_dir.mkdir()
        (module_dir / "__init__.py").write_text(textwrap.dedent("""
            from repro.policy import CheckerPolicy, register_policy
            from repro.vm.machine import Observer

            class NullObserver(Observer):
                pass

            class TmpPolicy(CheckerPolicy):
                name = "test-tmp-plugin"
                description = "tmp plugin"
                family = "plugin"
                observer_factory = NullObserver

            register_policy(TmpPolicy)
        """))
        monkeypatch.syspath_prepend(str(tmp_path))
        try:
            loaded = load_plugins(extra=["plugmod"])
            assert "plugmod" in loaded
            assert get_policy("test-tmp-plugin").description == "tmp plugin"
            report = Session().run(CLEAN, profile="test-tmp-plugin")
            assert report.exit_code == 42
        finally:
            unregister_policy("test-tmp-plugin")

    def test_repro_plugins_env_is_honoured_in_a_fresh_process(self, tmp_path):
        """The documented zero-core-edit path: REPRO_PLUGINS names a
        module; `python -m repro profiles` lists its policy."""
        module_dir = tmp_path / "envplug"
        module_dir.mkdir()
        (module_dir / "__init__.py").write_text(textwrap.dedent("""
            from repro.policy import CheckerPolicy, register_policy
            from repro.vm.machine import Observer

            class NullObserver(Observer):
                pass

            class EnvPolicy(CheckerPolicy):
                name = "env-plugin"
                description = "discovered via REPRO_PLUGINS"
                family = "plugin"
                observer_factory = NullObserver

            register_policy(EnvPolicy)
        """))
        import os

        import repro

        src = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}:{tmp_path}" + (
            ":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        env["REPRO_PLUGINS"] = "envplug"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "profiles"],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stderr
        assert "env-plugin" in proc.stdout
        assert "discovered via REPRO_PLUGINS" in proc.stdout


class TestVmOpcodeExtension:
    def test_custom_opcode_dispatches_in_both_engines(self):
        """An opcode registered through the public door executes under
        the reference interpreter *and* the compiled engine (via the
        generic adapter), charging its registered cost."""
        from dataclasses import dataclass

        from repro.ir import instructions as ins
        from repro.ir.irtypes import I64
        from repro.ir.module import Function, Module
        from repro.ir.values import Const
        from repro.vm.costs import OP_COSTS, register_costs
        from repro.vm.dispatch import register_opcode
        from repro.vm.machine import Machine

        @dataclass
        class TestTick(ins.Instruction):
            opcode = "test_tick"

        register_costs({"test.tick": 5})

        def exec_tick(machine, frame, instr):
            machine.stats.charge("test.tick")
            machine.stats.checks += 1

        register_opcode("test_tick", interp=exec_tick)

        def build_module():
            module = Module()
            func = Function("main", I64)
            block = func.new_block("entry")
            block.append(TestTick())
            block.append(TestTick())
            block.append(ins.Ret(value=Const(7, I64)))
            module.add_function(func)
            return module

        results = {}
        for engine in ("interp", "compiled"):
            machine = Machine(build_module(), engine=engine)
            result = machine.run()
            results[engine] = (result.exit_code, machine.stats.checks,
                               machine.stats.cost)
        assert results["interp"] == (7, 2, 2 * OP_COSTS["test.tick"]
                                     + OP_COSTS["ret"])
        assert results["interp"] == results["compiled"]

    def test_cost_repricing_raises(self):
        from repro.vm.costs import register_costs

        register_costs({"sb.check": 3})  # identical: fine
        with pytest.raises(ValueError, match="refusing to re-price"):
            register_costs({"sb.check": 99})

    def test_conflicting_opcode_handler_raises(self):
        from repro.vm.dispatch import register_opcode

        def other(machine, frame, instr):
            pass

        with pytest.raises(ValueError, match="already has"):
            register_opcode("sb_check", interp=other)


class TestOpcodeTraits:
    def test_core_traits_registered(self):
        assert traits_of("sb_check").widenable
        assert traits_of("sb_temporal_check").dedupable
        assert not traits_of("sb_temporal_check").widenable
        assert traits_of("sb_meta_store").writes_metadata_table

    def test_unknown_opcode_has_no_capabilities(self):
        traits = traits_of("never_registered")
        assert not (traits.dedupable or traits.hoistable or traits.widenable)

    def test_registered_traits_extend_invalidation_sets(self):
        register_opcode_traits(OpcodeTraits(
            opcode="test_table_poke", kind="meta_store",
            writes_metadata_table=True, releases_locks=True))
        assert "test_table_poke" in table_writer_opcodes()
        assert "test_table_poke" in lock_releaser_opcodes()
        assert "call" in lock_releaser_opcodes()  # core set still there

    def test_conflicting_traits_raise(self):
        with pytest.raises(ValueError, match="conflicting traits"):
            register_opcode_traits(OpcodeTraits(opcode="sb_check"))


class TestFromFlagsUsageErrors:
    def test_unknown_flag_raises_usage_error(self):
        with pytest.raises(UsageError, match="unknown protection flag"):
            ProtectionProfile.from_flags(hash=True)

    def test_store_only_plus_temporal_conflicts(self):
        with pytest.raises(UsageError, match="conflicting flags"):
            ProtectionProfile.from_flags(store_only=True, temporal=True)

    def test_cli_maps_conflict_to_exit_64(self, tmp_path):
        import io

        from repro.cli import EX_USAGE, main

        path = tmp_path / "t.c"
        path.write_text("int main(void) { return 0; }")
        out, err = io.StringIO(), io.StringIO()
        code = main(["run", str(path), "--store-only", "--temporal"],
                    out, err)
        assert code == EX_USAGE
        assert "conflicting flags" in err.getvalue()

    def test_profiles_json_lists_every_policy(self):
        import io
        import json

        from repro.cli import main
        from repro.policy import all_policies

        out, err = io.StringIO(), io.StringIO()
        assert main(["profiles", "--json"], out, err) == 0
        entries = json.loads(out.getvalue())
        names = {entry["name"] for entry in entries}
        assert {policy.name for policy in all_policies()} <= names
        redzone = next(e for e in entries if e["name"] == "redzone")
        assert redzone["observer_based"] and not redzone["transform_based"]
        assert "heap_overflow" in redzone["detects"]
