"""ArtifactStore behaviour: hits, quarantine, eviction, index recovery,
maintenance ops, and every in-process injected fault class."""

import json
import os

import pytest

from repro.api import ProtectionProfile, compile_source
from repro.harness import faults
from repro.store import ArtifactStore, StoreWarning, compute_key
from repro.store.store import ENTRY_SUFFIX

from storeutil import PROGRAM

SPATIAL = ProtectionProfile.from_name("spatial")


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture
def compiled():
    return compile_source(PROGRAM, profile=SPATIAL)


def put_one(store, compiled, source=PROGRAM):
    assert store.save(source, SPATIAL, True, compiled)
    return compute_key(source, SPATIAL, True)


class TestPutGet:
    def test_round_trip(self, store, compiled):
        key = put_one(store, compiled)
        clone = store.load(PROGRAM, SPATIAL, True)
        assert clone is not None
        assert clone.run().exit_code == compiled.run().exit_code
        assert store.stats.puts == 1 and store.stats.hits == 1
        assert os.path.exists(store.entry_path(key))

    def test_miss_on_empty_store(self, store):
        assert store.load(PROGRAM, SPATIAL, True) is None
        assert store.stats.misses == 1

    def test_fresh_instance_sees_the_entry(self, store, compiled):
        put_one(store, compiled)
        reopened = ArtifactStore(store.root)
        assert reopened.load(PROGRAM, SPATIAL, True) is not None
        assert not reopened.recovered_index

    def test_optimize_level_is_part_of_the_address(self, store, compiled):
        put_one(store, compiled)
        assert store.load(PROGRAM, SPATIAL, False) is None


class TestCorruptionQuarantine:
    def corrupt_and_get(self, store, compiled, mutate):
        key = put_one(store, compiled)
        path = store.entry_path(key)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(mutate(blob))
        with pytest.warns(StoreWarning, match="quarantined"):
            result = store.load(PROGRAM, SPATIAL, True)
        return key, result

    def assert_quarantined(self, store, key, result):
        assert result is None
        assert store.stats.corrupt == 1
        assert not os.path.exists(store.entry_path(key))
        assert len(store.quarantined()) == 1
        # The quarantined name carries the key and the failure reason.
        (name,) = store.quarantined()
        assert name.startswith(key)

    def test_truncation(self, store, compiled):
        key, result = self.corrupt_and_get(store, compiled,
                                           lambda blob: blob[:len(blob) // 2])
        self.assert_quarantined(store, key, result)

    def test_bit_flip(self, store, compiled):
        def flip(blob):
            data = bytearray(blob)
            data[-20] ^= 0x10
            return bytes(data)
        key, result = self.corrupt_and_get(store, compiled, flip)
        self.assert_quarantined(store, key, result)

    def test_foreign_bytes(self, store, compiled):
        key, result = self.corrupt_and_get(store, compiled,
                                           lambda blob: b"not an entry")
        self.assert_quarantined(store, key, result)

    def test_recompile_after_quarantine_repopulates(self, store, compiled):
        key, _ = self.corrupt_and_get(store, compiled,
                                      lambda blob: blob[:32])
        put_one(store, compiled)
        assert store.load(PROGRAM, SPATIAL, True) is not None


class TestInjectedWriteFaults:
    def test_torn_write_detected_on_read(self, store, compiled):
        faults.install("torn_write")
        key = put_one(store, compiled)  # the write itself "succeeds"
        with pytest.warns(StoreWarning, match="quarantined"):
            assert store.load(PROGRAM, SPATIAL, True) is None
        assert store.stats.corrupt == 1
        assert not os.path.exists(store.entry_path(key))

    def test_bitflip_detected_on_read(self, store, compiled):
        faults.install("bitflip")
        put_one(store, compiled)
        with pytest.warns(StoreWarning, match="quarantined"):
            assert store.load(PROGRAM, SPATIAL, True) is None
        assert store.stats.corrupt == 1

    def test_eperm_degrades(self, store, compiled):
        faults.install("eperm")
        with pytest.warns(StoreWarning, match="not persisted"):
            assert not store.save(PROGRAM, SPATIAL, True, compiled)
        assert store.stats.write_errors == 1
        assert store.stats.degraded == 1
        # The store keeps working afterwards.
        assert store.save(PROGRAM, SPATIAL, True, compiled)

    def test_disk_full_degrades(self, store, compiled):
        faults.install("disk_full")
        with pytest.warns(StoreWarning, match="not persisted"):
            assert not store.save(PROGRAM, SPATIAL, True, compiled)
        assert store.stats.write_errors == 1
        assert store.load(PROGRAM, SPATIAL, True) is None

    def test_unpicklable_payload_degrades(self, store):
        with pytest.warns(StoreWarning, match="does not pickle"):
            assert not store.put("a" * 64, lambda: None)
        assert store.stats.write_errors == 1


class TestEviction:
    def entries(self, store):
        return sorted(name for name in os.listdir(store.objects_dir)
                      if name.endswith(ENTRY_SUFFIX))

    def test_entry_count_bound(self, tmp_path, compiled):
        store = ArtifactStore(tmp_path / "store", max_entries=3)
        for index in range(5):
            store.save(f"// v{index}\n" + PROGRAM, SPATIAL, True, compiled)
        assert len(self.entries(store)) == 3
        assert store.stats.evictions == 2

    def test_lru_order_respects_recency(self, tmp_path, compiled):
        store = ArtifactStore(tmp_path / "store", max_entries=2)
        first = f"// a\n{PROGRAM}"
        second = f"// b\n{PROGRAM}"
        store.save(first, SPATIAL, True, compiled)
        store.save(second, SPATIAL, True, compiled)
        assert store.load(first, SPATIAL, True) is not None  # refresh a
        store.save(f"// c\n{PROGRAM}", SPATIAL, True, compiled)
        assert store.load(first, SPATIAL, True) is not None
        assert store.load(second, SPATIAL, True) is None  # b was LRU

    def test_byte_size_bound(self, tmp_path, compiled):
        store = ArtifactStore(tmp_path / "store")
        key = put_one(store, compiled)
        size = os.path.getsize(store.entry_path(key))
        bounded = ArtifactStore(tmp_path / "store2",
                                max_bytes=int(size * 2.5))
        for index in range(4):
            bounded.save(f"// v{index}\n" + PROGRAM, SPATIAL, True, compiled)
        assert len(self.entries(bounded)) <= 2
        assert bounded.stats.evictions >= 2


class TestIndexRecovery:
    def test_torn_index_rebuilds_from_scan(self, store, compiled):
        key = put_one(store, compiled)
        with open(store.index_path, "w") as handle:
            handle.write('{"schema": "store-index-v1", "entr')  # torn
        with pytest.warns(StoreWarning, match="rebuilding"):
            reopened = ArtifactStore(store.root)
        assert reopened.recovered_index
        assert key in reopened._index
        assert reopened.load(PROGRAM, SPATIAL, True) is not None

    def test_foreign_index_schema_rebuilds(self, store, compiled):
        put_one(store, compiled)
        with open(store.index_path, "w") as handle:
            json.dump({"schema": "somebody-else"}, handle)
        with pytest.warns(StoreWarning, match="rebuilding"):
            reopened = ArtifactStore(store.root)
        assert reopened.recovered_index
        assert reopened.load(PROGRAM, SPATIAL, True) is not None

    def test_missing_index_means_empty_not_recovered(self, tmp_path):
        store = ArtifactStore(tmp_path / "fresh")
        assert not store.recovered_index

    def test_unindexed_entry_still_hits(self, store, compiled):
        """get() trusts the filesystem, not the index: an entry whose
        index record was lost (crash between replace and checkpoint)
        still serves."""
        key = put_one(store, compiled)
        os.remove(store.index_path)
        reopened = ArtifactStore(store.root)
        assert reopened.load(PROGRAM, SPATIAL, True) is not None
        assert key in reopened._index or True  # hit is what matters


class TestMaintenance:
    def test_verify_clean_store(self, store, compiled):
        put_one(store, compiled)
        report = store.verify()
        assert (report.checked, report.ok) == (1, 1)
        assert not report.corrupt

    def test_verify_quarantines_and_reports(self, store, compiled):
        key = put_one(store, compiled)
        with open(store.entry_path(key), "r+b") as handle:
            handle.truncate(40)
        report = store.verify()
        assert report.checked == 1 and report.ok == 0
        assert [item[0] for item in report.corrupt] == [key]
        assert store.quarantined()
        # A second verify over the healed store is clean.
        follow_up = store.verify()
        assert follow_up.checked == 0 and not follow_up.corrupt

    def test_gc_sweeps_aged_tmp_files(self, store, compiled):
        put_one(store, compiled)
        orphan = os.path.join(store.objects_dir, "x" * 64 + ".rpa.tmp.999")
        with open(orphan, "wb") as handle:
            handle.write(b"half-written")
        os.utime(orphan, (1, 1))  # ancient
        report = store.gc()
        assert report["tmp_swept"] == 1
        assert not os.path.exists(orphan)

    def test_gc_keeps_young_tmp_files(self, store, compiled):
        orphan = os.path.join(store.objects_dir, "y" * 64 + ".rpa.tmp.999")
        with open(orphan, "wb") as handle:
            handle.write(b"in flight")
        assert store.gc()["tmp_swept"] == 0
        assert os.path.exists(orphan)

    def test_gc_adopts_and_drops(self, store, compiled):
        key = put_one(store, compiled)
        # Simulate a writer that died before its checkpoint (file with
        # no record) plus a record whose file is gone.
        with open(store.index_path, "w") as handle:
            json.dump({"schema": "store-index-v1", "clock": 7,
                       "entries": {"f" * 64: {"size": 1, "used": 1,
                                              "label": "?"}}}, handle)
        reopened = ArtifactStore(store.root)
        report = reopened.gc()
        assert report["adopted"] == 1
        assert report["dropped"] == 1
        assert key in reopened._index

    def test_gc_enforces_override_bounds(self, store, compiled):
        for index in range(4):
            store.save(f"// v{index}\n" + PROGRAM, SPATIAL, True, compiled)
        report = store.gc(max_entries=1)
        assert report["evicted"] == 3
        assert store.stats_report()["entries"] == 1

    def test_gc_sweep_corrupt(self, store, compiled):
        key = put_one(store, compiled)
        with open(store.entry_path(key), "wb") as handle:
            handle.write(b"junk")
        store.verify()
        assert store.quarantined()
        report = store.gc(sweep_corrupt=True)
        assert report["corrupt_swept"] == 1
        assert not store.quarantined()

    def test_stats_report_shape(self, store, compiled):
        put_one(store, compiled)
        report = store.stats_report()
        assert report["entries"] == 1
        assert report["total_bytes"] > 0
        assert report["counters"]["puts"] == 1
        json.dumps(report)  # JSON-able for the CLI

    def test_stats_report_ignores_other_live_stores(self, tmp_path,
                                                    compiled):
        """Another store's traffic must not leak into this report —
        the obs-registry overlay folds worker *deltas*, not every
        repro_store_* source alive in the process."""
        busy = ArtifactStore(tmp_path / "busy")
        put_one(busy, compiled)
        quiet = ArtifactStore(tmp_path / "quiet")
        counters = quiet.stats_report()["counters"]
        assert counters["puts"] == 0 and counters["hits"] == 0

    def test_stats_report_folds_merged_worker_deltas(self, store,
                                                     compiled):
        from repro.obs.metrics import default_registry

        put_one(store, compiled)
        default_registry().merge({"repro_store_hits": 2,
                                  "repro_other_total": 9})
        try:
            counters = store.stats_report()["counters"]
            assert counters["hits"] == 2 and counters["puts"] == 1
            assert "other_total" not in counters
        finally:
            default_registry().reset()


class TestLockDegradation:
    def test_index_lock_timeout_degrades_not_hangs(self, tmp_path,
                                                   compiled):
        """A wedged index lock costs bookkeeping, not the entry."""
        from repro.store.locks import FileLock, fcntl

        if fcntl is None:
            pytest.skip("no fcntl on this platform")
        store = ArtifactStore(tmp_path / "store", lock_timeout=0.2)
        blocker = FileLock(os.path.join(store.locks_dir, "index.lock"))
        assert blocker.acquire()
        try:
            with pytest.warns(StoreWarning, match="index lock"):
                assert store.save(PROGRAM, SPATIAL, True, compiled)
        finally:
            blocker.release()
        assert store.stats.lock_timeouts == 1
        # The entry file itself landed and serves.
        assert store.load(PROGRAM, SPATIAL, True) is not None

    def test_entry_lock_timeout_skips_the_write(self, tmp_path, compiled):
        from repro.store.locks import fcntl

        if fcntl is None:
            pytest.skip("no fcntl on this platform")
        store = ArtifactStore(tmp_path / "store", lock_timeout=0.2)
        key = compute_key(PROGRAM, SPATIAL, True)
        blocker = store._entry_lock(key)
        assert blocker.acquire()
        try:
            with pytest.warns(StoreWarning, match="lock not acquired"):
                assert not store.save(PROGRAM, SPATIAL, True, compiled)
        finally:
            blocker.release()
        assert store.stats.lock_timeouts == 1
        assert store.stats.degraded == 1
        assert not os.path.exists(store.entry_path(key))
