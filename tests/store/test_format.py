"""Entry-format tests: every corruption class is *detected*, never
silently served."""

import pytest

from repro.api import ProtectionProfile
from repro.store import format as fmt


def entry_blob(payload=b"payload-bytes", key="k" * 64):
    return fmt.encode_entry(key, "keytext", "Label", payload)


class TestRoundTrip:
    def test_encode_decode(self):
        blob = entry_blob(b"hello world")
        header, payload = fmt.decode_entry(blob, expected_key="k" * 64,
                                           expected_key_text="keytext")
        assert payload == b"hello world"
        assert header["label"] == "Label"
        assert header["format"] == fmt.FORMAT_VERSION
        assert header["payload_len"] == 11

    def test_program_payload_round_trips(self):
        from repro.api import compile_source

        compiled = compile_source("int main(void) { return 41; }",
                                  profile="spatial")
        payload = fmt.dumps_program(compiled)
        clone = fmt.loads_program(payload)
        assert clone.run().exit_code == compiled.run().exit_code

    def test_empty_payload_is_valid(self):
        header, payload = fmt.decode_entry(entry_blob(b""))
        assert payload == b""


def reason_of(blob, **kwargs):
    with pytest.raises(fmt.StoreFormatError) as excinfo:
        fmt.decode_entry(blob, **kwargs)
    return excinfo.value.reason


class TestDetection:
    def test_wrong_magic(self):
        blob = b"XX" + entry_blob()[2:]
        assert reason_of(blob) == "magic"

    def test_foreign_file(self):
        assert reason_of(b"#!/bin/sh\necho not an entry\n") == "magic"

    def test_truncated_preamble(self):
        assert reason_of(entry_blob()[:6]) == "truncated"

    def test_truncated_header(self):
        blob = entry_blob()
        assert reason_of(blob[:len(fmt.MAGIC) + 4 + 3]) == "truncated"

    def test_truncated_payload(self):
        assert reason_of(entry_blob()[:-4]) == "truncated"

    def test_every_prefix_is_rejected_never_crashes(self):
        """Torn writes can stop at *any* byte: every strict prefix must
        raise a typed format error (not an unhandled exception)."""
        blob = entry_blob(b"some payload to tear")
        for end in range(len(blob)):
            with pytest.raises(fmt.StoreFormatError):
                fmt.decode_entry(blob[:end])

    def test_bit_flip_in_payload(self):
        blob = bytearray(entry_blob(b"a" * 64))
        blob[-10] ^= 0x01
        assert reason_of(bytes(blob)) == "digest"

    def test_bit_flip_in_header(self):
        blob = bytearray(entry_blob())
        blob[len(fmt.MAGIC) + 4 + 2] ^= 0xFF
        assert reason_of(bytes(blob)) in ("header", "digest", "truncated")

    def test_version_bump_rejected(self):
        real = fmt.FORMAT_VERSION
        try:
            fmt.FORMAT_VERSION = real + 1
            future = entry_blob()
        finally:
            fmt.FORMAT_VERSION = real
        assert reason_of(future) == "version"

    def test_header_length_bomb(self):
        blob = fmt.MAGIC + (0x7FFFFFFF).to_bytes(4, "big") + b"x" * 32
        assert reason_of(blob) == "header"

    def test_key_mismatch(self):
        assert reason_of(entry_blob(), expected_key="z" * 64) == "key"

    def test_key_text_mismatch_flags_stale_derivation(self):
        assert reason_of(entry_blob(), expected_key="k" * 64,
                         expected_key_text="other-derivation") == "key"

    def test_undecodable_pickle_payload(self):
        with pytest.raises(fmt.StoreFormatError) as excinfo:
            fmt.loads_program(b"\x80\x05not really a pickle")
        assert excinfo.value.reason == "payload"


class TestCacheKey:
    def profiles(self):
        return (ProtectionProfile.from_name("spatial"),
                ProtectionProfile.from_name("temporal"),
                ProtectionProfile.from_name("none"))

    def test_key_is_stable(self):
        spatial = ProtectionProfile.from_name("spatial")
        assert fmt.compute_key("src", spatial, True) \
            == fmt.compute_key("src", spatial, True)

    def test_key_separates_every_axis(self):
        spatial, temporal, none = self.profiles()
        keys = {
            fmt.compute_key("src", spatial, True),
            fmt.compute_key("src", spatial, False),
            fmt.compute_key("src", temporal, True),
            fmt.compute_key("src", none, True),
            fmt.compute_key("other src", spatial, True),
        }
        assert len(keys) == 5

    def test_observer_profiles_share_the_uninstrumented_key(self):
        """Observer-based baselines attach at run time; on disk they
        share the plain build, mirroring the in-process cache."""
        none = ProtectionProfile.from_name("none")
        valgrind = ProtectionProfile.from_name("valgrind")
        assert fmt.compute_key("src", none, True) \
            == fmt.compute_key("src", valgrind, True)

    def test_key_text_names_the_format_version(self):
        spatial = ProtectionProfile.from_name("spatial")
        text = fmt.cache_key_text(spatial, True)
        assert f"format={fmt.FORMAT_VERSION}" in text
        assert "optimize=True" in text
