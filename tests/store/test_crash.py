"""Crash-consistency drills: real subprocesses, real SIGKILL, real
concurrent writers.  The contract under test: a crash at any instant
leaves the store loadable, and contention never deadlocks."""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.store import ArtifactStore

from storeutil import PROGRAM, REPO_ROOT, run_python, store_env

pytestmark = pytest.mark.skipif(os.name != "posix",
                                reason="POSIX signal/lock drills")


def compile_snippet(tag=""):
    """Code for a child process: compile+run PROGRAM through a Session
    that persists to REPRO_STORE, print a result line."""
    return (
        "import json\n"
        "from repro.api import Session\n"
        f"source = {PROGRAM!r}\n"
        "session = Session()\n"
        "report = session.run(source, profile='spatial')\n"
        "print(json.dumps({'exit_code': report.exit_code,"
        " 'output': report.output, 'origin': report.cache['origin'],"
        f" 'tag': {tag!r}}}))\n"
    )


def result_line(proc):
    line = proc.stdout.strip().splitlines()[-1]
    return json.loads(line)


class TestKillMidWrite:
    def test_sigkill_between_tmp_and_replace(self, tmp_path):
        """Die after the tmp file is written but before the atomic
        replace: the store must contain no entry (just a tmp orphan),
        and the next run recompiles cleanly."""
        store_dir = tmp_path / "store"
        victim = run_python(
            compile_snippet("victim"),
            store_env(store=store_dir, store_faults="sigkill_replace:1"))
        assert victim.returncode == -signal.SIGKILL

        store = ArtifactStore(store_dir)
        assert store.stats_report()["entries"] == 0
        tmp_orphans = [name for name in os.listdir(store.objects_dir)
                       if ".tmp." in name]
        assert tmp_orphans, "expected the torn tmp file to be left behind"

        survivor = run_python(compile_snippet("survivor"),
                              store_env(store=store_dir), check=True)
        result = result_line(survivor)
        assert result["origin"] == "compile"
        assert result["output"] == "sum 84\n"
        # And the survivor's write landed.
        assert ArtifactStore(store_dir).stats_report()["entries"] == 1

    def test_sigkill_while_holding_the_entry_lock(self, tmp_path):
        """Die while holding the advisory entry lock: flock dies with
        its holder, so the next writer proceeds without a timeout."""
        store_dir = tmp_path / "store"
        victim = run_python(
            compile_snippet("victim"),
            store_env(store=store_dir, store_faults="sigkill_locked:1"))
        assert victim.returncode == -signal.SIGKILL

        survivor = run_python(compile_snippet("survivor"),
                              store_env(store=store_dir),
                              timeout=60, check=True)
        result = result_line(survivor)
        assert result["origin"] == "compile"
        store = ArtifactStore(store_dir)
        assert store.stats_report()["entries"] == 1
        report = store.verify()
        assert not report.corrupt

    def test_killed_store_passes_cache_verify(self, tmp_path):
        """After a mid-write SIGKILL the CLI verifier reports a clean
        (if empty-ish) store — exit code 0."""
        store_dir = tmp_path / "store"
        run_python(compile_snippet(),
                   store_env(store=store_dir,
                             store_faults="sigkill_replace:1"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "cache", "verify",
             "--store", str(store_dir), "--json"],
            cwd=REPO_ROOT, env=store_env(), capture_output=True,
            text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout)["corrupt"] == []


class TestConcurrentWriters:
    def test_two_processes_racing_the_same_key(self, tmp_path):
        """Both racers must finish with identical results; the store
        must end with exactly one verified entry."""
        store_dir = tmp_path / "store"
        env = store_env(store=store_dir)
        racers = [subprocess.Popen(
            [sys.executable, "-c", compile_snippet(f"racer{index}")],
            cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True) for index in range(2)]
        results = []
        for racer in racers:
            out, err = racer.communicate(timeout=180)
            assert racer.returncode == 0, err
            results.append(json.loads(out.strip().splitlines()[-1]))
        assert [r["exit_code"] for r in results] == [84, 84]
        assert [r["output"] for r in results] == ["sum 84\n"] * 2

        store = ArtifactStore(store_dir)
        assert store.stats_report()["entries"] == 1
        report = store.verify()
        assert (report.checked, report.ok) == (1, 1)

    def test_warm_reader_during_writer(self, tmp_path):
        """A process that finds the entry already on disk reports a
        store hit and identical behaviour."""
        store_dir = tmp_path / "store"
        run_python(compile_snippet("writer"), store_env(store=store_dir),
                   check=True)
        reader = run_python(compile_snippet("reader"),
                            store_env(store=store_dir), check=True)
        result = result_line(reader)
        assert result["origin"] == "store"
        assert result["exit_code"] == 84
        assert result["output"] == "sum 84\n"


def herd_snippet(tag):
    """Code for a herd member: single-flight compile of PROGRAM through
    the serve coalescing path, printing origin + artifact fingerprint."""
    return (
        "import json, os\n"
        "from repro.api.profiles import as_profile\n"
        "from repro.serve.workers import compile_coalesced\n"
        "from repro.store import ArtifactStore\n"
        f"source = {PROGRAM!r}\n"
        "store = ArtifactStore(os.environ['REPRO_STORE'])\n"
        "compiled, origin, fp = compile_coalesced(\n"
        "    source, as_profile('spatial'), store=store)\n"
        "print(json.dumps({'origin': origin, 'fp': fp,"
        f" 'tag': {tag!r}}}))\n"
    )


class TestThunderingHerd:
    """The two-process race, grown to serve-pool width: N workers all
    ask for the same cold key through the single-flight coalescer."""

    HERD = 6

    def test_one_compile_everyone_bit_identical(self, tmp_path):
        store_dir = tmp_path / "store"
        env = store_env(store=store_dir)
        herd = [subprocess.Popen(
            [sys.executable, "-c", herd_snippet(f"worker{index}")],
            cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
            for index in range(self.HERD)]
        results = []
        for member in herd:
            out, err = member.communicate(timeout=300)
            assert member.returncode == 0, err
            results.append(json.loads(out.strip().splitlines()[-1]))

        origins = sorted(r["origin"] for r in results)
        # Exactly one process compiled; the herd loaded its bytes.
        assert origins == ["compile"] + ["store"] * (self.HERD - 1), \
            [(r["tag"], r["origin"]) for r in results]
        # And every member holds the bit-identical artifact: all the
        # fingerprints are the store entry's own payload digest.
        assert len({r["fp"] for r in results}) == 1
        assert len(results[0]["fp"]) == 64

        store = ArtifactStore(store_dir)
        assert store.stats_report()["entries"] == 1
        report = store.verify()
        assert (report.checked, report.ok) == (1, 1)
