"""Shared fixtures for the artifact-store suite."""

import pytest

from repro.harness import faults


@pytest.fixture(autouse=True)
def clean_faults():
    """Every test starts and ends with nothing armed."""
    faults.clear()
    yield
    faults.clear()
