"""``python -m repro cache`` — the store operations CLI."""

import io
import json
import os

import pytest

from repro.api import Session
from repro.cli import main
from repro.store import ArtifactStore
from repro.store.cli import EX_CORRUPT, EX_OK, EX_USAGE

from storeutil import PROGRAM


@pytest.fixture
def capture():
    return io.StringIO(), io.StringIO()


@pytest.fixture
def warm_store(tmp_path):
    store_dir = str(tmp_path / "store")
    Session(store_dir=store_dir).run(PROGRAM, profile="spatial")
    return store_dir


def corrupt_one(store_dir):
    store = ArtifactStore(store_dir)
    (name,) = os.listdir(store.objects_dir)
    path = os.path.join(store.objects_dir, name)
    with open(path, "r+b") as handle:
        handle.truncate(os.path.getsize(path) // 2)


class TestUsage:
    def test_no_store_anywhere_is_a_usage_error(self, capture,
                                                monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        out, err = capture
        assert main(["cache", "stats"], out, err) == EX_USAGE
        assert "REPRO_STORE" in err.getvalue()

    def test_env_var_selects_the_store(self, warm_store, capture,
                                       monkeypatch):
        monkeypatch.setenv("REPRO_STORE", warm_store)
        out, err = capture
        assert main(["cache", "stats"], out, err) == EX_OK
        assert warm_store in out.getvalue()


class TestRunWiring:
    def test_run_and_check_consult_the_store(self, tmp_path, capture,
                                             monkeypatch):
        """`python -m repro run` under REPRO_STORE warms the store on
        the first invocation and replays from it on the second."""
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        prog = tmp_path / "p.c"
        prog.write_text(PROGRAM)
        argv = ["run", str(prog), "--profile", "spatial", "--json"]
        out, err = capture
        assert main(argv, out, err) == 84
        assert json.loads(out.getvalue())["cache"]["origin"] == "compile"
        replay_out = io.StringIO()
        assert main(argv, replay_out, io.StringIO()) == 84
        replay = json.loads(replay_out.getvalue())
        assert replay["cache"]["origin"] == "store"
        baseline = json.loads(out.getvalue())
        for row in (baseline, replay):
            row.pop("wallclock_seconds")
            row.pop("cache")
        assert replay == baseline

    def test_run_without_store_has_no_cache_row(self, tmp_path, capture,
                                                monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        prog = tmp_path / "p.c"
        prog.write_text(PROGRAM)
        out, err = capture
        assert main(["run", str(prog), "--json"], out, err) == 84
        assert "cache" not in json.loads(out.getvalue())


class TestStats:
    def test_human_readable(self, warm_store, capture):
        out, err = capture
        assert main(["cache", "stats", "--store", warm_store],
                    out, err) == EX_OK
        assert "1 entry" in out.getvalue()
        assert "counters:" in out.getvalue()

    def test_json(self, warm_store, capture):
        out, err = capture
        assert main(["cache", "stats", "--store", warm_store, "--json"],
                    out, err) == EX_OK
        report = json.loads(out.getvalue())
        assert report["entries"] == 1
        assert report["quarantined"] == 0
        assert set(report["counters"]) >= {"hits", "misses", "corrupt",
                                           "puts", "evictions"}


class TestVerify:
    def test_clean_store_exits_zero(self, warm_store, capture):
        out, err = capture
        assert main(["cache", "verify", "--store", warm_store],
                    out, err) == EX_OK
        assert "1 ok, 0 corrupt" in out.getvalue()

    def test_corrupt_store_exits_one_and_quarantines(self, warm_store,
                                                     capture):
        corrupt_one(warm_store)
        out, err = capture
        assert main(["cache", "verify", "--store", warm_store],
                    out, err) == EX_CORRUPT
        assert "quarantined" in out.getvalue()
        assert ArtifactStore(warm_store).quarantined()

    def test_corrupt_json_report(self, warm_store, capture):
        corrupt_one(warm_store)
        out, err = capture
        assert main(["cache", "verify", "--store", warm_store, "--json"],
                    out, err) == EX_CORRUPT
        report = json.loads(out.getvalue())
        assert report["checked"] == 1 and report["ok"] == 0
        assert report["corrupt"][0][1] in ("truncated", "digest")

    def test_second_verify_after_quarantine_is_clean(self, warm_store,
                                                     capture):
        corrupt_one(warm_store)
        main(["cache", "verify", "--store", warm_store],
             io.StringIO(), io.StringIO())
        out, err = capture
        assert main(["cache", "verify", "--store", warm_store],
                    out, err) == EX_OK

    def test_shallow_skips_unpickling(self, warm_store, capture):
        out, err = capture
        assert main(["cache", "verify", "--store", warm_store,
                     "--shallow"], out, err) == EX_OK


class TestGc:
    def test_gc_reports_and_exits_zero(self, warm_store, capture):
        out, err = capture
        assert main(["cache", "gc", "--store", warm_store],
                    out, err) == EX_OK
        assert "store now holds 1 entry" in out.getvalue()

    def test_gc_enforces_cli_bounds(self, tmp_path, capture):
        store_dir = str(tmp_path / "store")
        session = Session(store_dir=store_dir)
        for index in range(3):
            session.run(f"int main(void) {{ return {index}; }}")
        out, err = capture
        assert main(["cache", "gc", "--store", store_dir,
                     "--max-entries", "1", "--json"], out, err) == EX_OK
        report = json.loads(out.getvalue())
        assert report["gc"]["evicted"] == 2
        assert report["stats"]["entries"] == 1

    def test_gc_sweep_corrupt(self, warm_store, capture):
        corrupt_one(warm_store)
        main(["cache", "verify", "--store", warm_store],
             io.StringIO(), io.StringIO())
        out, err = capture
        assert main(["cache", "gc", "--store", warm_store,
                     "--sweep-corrupt"], out, err) == EX_OK
        assert not ArtifactStore(warm_store).quarantined()
