"""Shared helpers for the artifact-store suite (imported by name from
the test modules; the autouse fixtures live in ``conftest.py``)."""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

#: A small but non-trivial program: pointer-heavy enough that every
#: policy instruments something, printing so transparency is checkable.
PROGRAM = r'''
int main(void) {
    int a[8];
    int *p = a;
    int i;
    int sum = 0;
    for (i = 0; i < 8; i++) p[i] = i * 3;
    for (i = 0; i < 8; i++) sum += a[i];
    long *h = (long *)malloc(16);
    h[0] = sum;
    printf("sum %ld\n", h[0]);
    free(h);
    return sum % 100;
}
'''


def store_env(store=None, store_faults=None):
    """Environment for subprocess drills: repo on PYTHONPATH, store and
    fault arming via the real environment variables."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src")
                         + (os.pathsep + env["PYTHONPATH"]
                            if env.get("PYTHONPATH") else ""))
    env.pop("REPRO_STORE", None)
    env.pop("REPRO_STORE_FAULTS", None)
    env.pop("REPRO_PLUGINS", None)
    if store is not None:
        env["REPRO_STORE"] = str(store)
    if store_faults is not None:
        env["REPRO_STORE_FAULTS"] = store_faults
    return env


def run_python(code, env, timeout=120, check=False):
    proc = subprocess.run([sys.executable, "-c", code], cwd=REPO_ROOT,
                          env=env, capture_output=True, text=True,
                          timeout=timeout)
    if check and proc.returncode != 0:
        raise AssertionError(f"subprocess failed ({proc.returncode}):\n"
                             f"{proc.stdout}\n{proc.stderr}")
    return proc
