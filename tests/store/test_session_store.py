"""Session ↔ store integration: the two-level cache, the equivalence
acceptance criterion (a store hit is bit-identical to a fresh compile
for every registered policy on both engines), corruption recovery
through the facade, and batch workers sharing warm artifacts."""

import os

import pytest

from repro.api import (
    ENGINES,
    PROFILES,
    DEFAULT_CACHE_ENTRIES,
    RunRequest,
    Session,
    open_store,
    resolve_store,
)
from repro.store import ArtifactStore, StoreWarning

from storeutil import PROGRAM

#: Out-of-bounds write: checking profiles trap, permissive ones do not
#: — either way the behaviour must survive the store round trip.
OVERFLOW = r'''
int main(void) {
    int a[4];
    int i;
    for (i = 0; i <= 4; i++) a[i] = i;
    printf("done %d\n", a[2]);
    return 0;
}
'''


def comparable_row(report):
    """Everything deterministic in a report: the bench-v2 row minus
    host wallclock and cache provenance."""
    row = report.to_json()
    row.pop("wallclock_seconds")
    row.pop("cache", None)
    return row


@pytest.mark.parametrize("profile_name", sorted(PROFILES))
def test_store_hit_is_bit_identical_to_fresh_compile(tmp_path,
                                                     profile_name):
    """The acceptance criterion: outputs, traps and cost statistics all
    agree between a fresh compile and a store round trip, for this
    policy on both engines."""
    store_dir = str(tmp_path / "store")
    for source in (PROGRAM, OVERFLOW):
        fresh = Session(store_dir=store_dir)
        warm = Session(store_dir=store_dir)
        for engine in ENGINES:
            baseline = fresh.run(source, profile=profile_name,
                                 engine=engine)
            replayed = warm.run(source, profile=profile_name,
                                engine=engine)
            assert replayed.cache["origin"] in ("store", "memory")
            assert comparable_row(replayed) == comparable_row(baseline)
        # The warm session really did read from disk at least once.
        assert warm.store.stats.hits >= 1
        assert warm.store.stats.misses == 0


class TestTwoLevelCache:
    def test_origin_transitions(self, tmp_path):
        store_dir = str(tmp_path / "store")
        first = Session(store_dir=store_dir)
        assert first.run(PROGRAM).cache["origin"] == "compile"
        assert first.run(PROGRAM).cache["origin"] == "memory"
        second = Session(store_dir=store_dir)
        assert second.run(PROGRAM).cache["origin"] == "store"
        assert second.run(PROGRAM).cache["origin"] == "memory"

    def test_report_cache_counters_shape(self, tmp_path):
        session = Session(store_dir=str(tmp_path / "store"))
        report = session.run(PROGRAM)
        cache = report.cache
        assert cache["origin"] == "compile"
        assert cache["memory"]["misses"] == 1
        assert cache["store"]["puts"] == 1
        assert "cache" in report.to_json()

    def test_no_store_configured(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        session = Session()
        assert session.store is None
        report = session.run(PROGRAM)
        assert report.cache["origin"] == "compile"
        assert report.cache["store"] is None

    def test_sessionless_reports_omit_cache(self):
        from repro.api import run_source

        report = run_source(PROGRAM, profile="spatial")
        assert report.cache is None
        assert "cache" not in report.to_json()

    def test_clear_drops_memory_not_disk(self, tmp_path):
        store_dir = str(tmp_path / "store")
        session = Session(store_dir=store_dir)
        session.run(PROGRAM)
        session.clear()
        assert session.cached_programs == 0
        assert session.run(PROGRAM).cache["origin"] == "store"


class TestBoundedSessionCache:
    def sources(self, count):
        return [f"int main(void) {{ return {index}; }}"
                for index in range(count)]

    def test_default_bound(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        counters = Session().cache_counters()["memory"]
        assert counters["max_entries"] == DEFAULT_CACHE_ENTRIES

    def test_lru_bound_enforced(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        session = Session(cache_entries=2)
        for source in self.sources(3):
            session.compile(source, profile="spatial")
        assert session.cached_programs == 2
        counters = session.cache_counters()["memory"]
        assert counters == {"entries": 2, "hits": 0, "misses": 3,
                            "evictions": 1, "max_entries": 2}

    def test_evicted_entry_recompiles(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        session = Session(cache_entries=1)
        first, second = self.sources(2)
        session.compile(first, profile="spatial")
        session.compile(second, profile="spatial")
        session.compile(first, profile="spatial")
        assert session._last_compile_origin == "compile"
        assert session.cache_counters()["memory"]["evictions"] == 2

    def test_recency_refresh_on_hit(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        session = Session(cache_entries=2)
        first, second, third = self.sources(3)
        session.compile(first, profile="spatial")
        session.compile(second, profile="spatial")
        session.compile(first, profile="spatial")  # refresh
        session.compile(third, profile="spatial")  # evicts `second`
        session.compile(first, profile="spatial")
        assert session._last_compile_origin == "memory"


class TestEnvResolution:
    def test_env_var_enables_the_store(self, tmp_path, monkeypatch):
        store_dir = str(tmp_path / "store")
        monkeypatch.setenv("REPRO_STORE", store_dir)
        session = Session()
        assert session.store is not None
        session.run(PROGRAM)
        assert os.path.isdir(os.path.join(store_dir, "objects"))

    def test_flag_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env"))
        assert resolve_store(str(tmp_path / "flag")) \
            == str(tmp_path / "flag")

    def test_empty_flag_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env"))
        assert resolve_store("") is None

    def test_empty_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "")
        assert resolve_store() is None

    def test_open_store_helper(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert open_store() is None
        store = open_store(str(tmp_path / "store"), max_entries=7)
        assert isinstance(store, ArtifactStore)
        assert store.max_entries == 7

    def test_unopenable_store_degrades_with_warning(self, tmp_path):
        blocker = tmp_path / "file-not-dir"
        blocker.write_text("occupied")
        with pytest.warns(RuntimeWarning, match="unavailable"):
            session = Session(store_dir=str(blocker))
        assert session.store is None
        assert session.run(PROGRAM).exit_code == 84


class TestCorruptionThroughTheFacade:
    def test_corrupt_entry_recompiles_transparently(self, tmp_path):
        store_dir = str(tmp_path / "store")
        Session(store_dir=store_dir).run(PROGRAM)
        store = ArtifactStore(store_dir)
        (name,) = os.listdir(store.objects_dir)
        path = os.path.join(store.objects_dir, name)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)

        session = Session(store_dir=store_dir)
        with pytest.warns(StoreWarning, match="quarantined"):
            report = session.run(PROGRAM)
        assert report.cache["origin"] == "compile"
        assert report.cache["store"]["corrupt"] == 1
        assert report.exit_code == 84
        # The recompile re-warmed the store: next session hits again.
        assert Session(store_dir=store_dir).run(PROGRAM) \
            .cache["origin"] == "store"


class TestBatchWorkersShareTheStore:
    def items(self):
        return [(f"job{index}",
                 f"int main(void) {{ return {40 + index}; }}", "spatial")
                for index in range(3)]

    def test_parallel_batch_warms_and_reuses(self, tmp_path):
        store_dir = str(tmp_path / "store")
        cold = Session(store_dir=store_dir)
        batch = cold.run_many(self.items(), jobs=2)
        assert [report.exit_code for report in batch] == [40, 41, 42]
        assert ArtifactStore(store_dir).stats_report()["entries"] == 3

        warm = Session(store_dir=store_dir)
        replay = warm.run_many(self.items(), jobs=2)
        for report in replay:
            assert report.cache["origin"] == "store"
            assert report.cache["store"]["hits"] >= 1
        assert [report.exit_code for report in replay] == [40, 41, 42]

    def test_serial_batch_uses_the_session_cache(self, tmp_path):
        store_dir = str(tmp_path / "store")
        session = Session(store_dir=store_dir)
        batch = session.run_many(self.items(), jobs=1)
        for report in batch:
            assert report.cache["origin"] == "compile"
        replay = session.run_many(self.items(), jobs=1)
        for report in replay:
            assert report.cache["origin"] == "memory"

    def test_explicit_request_store_dir_survives_resolution(self,
                                                            tmp_path):
        request = RunRequest(name="r", source=PROGRAM, profile="spatial",
                             store_dir=str(tmp_path / "mine"))
        resolved = request.resolved(True, True, "compiled",
                                    store_dir=str(tmp_path / "other"))
        assert resolved.store_dir == str(tmp_path / "mine")
