"""Property tests for the simulated heap allocator.

The allocator under the VM is a real first-fit free-list allocator with
header blocks and coalescing; these invariants are what the detection
experiments implicitly rely on (e.g. that one heap object's overflow
lands in a *neighbouring* object, not in allocator-invented padding a
real malloc wouldn't have).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.memory import Memory

actions = st.lists(
    st.one_of(
        st.tuples(st.just("malloc"), st.integers(min_value=1, max_value=512)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=40)),
    ),
    min_size=1, max_size=80,
)


def drive(memory, ops):
    """Apply a malloc/free script; 'free i' frees the i-th live block
    (modulo count).  Returns the live {addr: size} map."""
    live = {}
    order = []
    for op in ops:
        if op[0] == "malloc":
            addr = memory.malloc(op[1])
            if addr:  # skip OOM and zero-size NULLs
                live[addr] = op[1]
                order.append(addr)
        elif order:
            addr = order.pop(op[1] % len(order))
            memory.free(addr)
            del live[addr]
    return live


class TestAllocatorProperties:
    @given(ops=actions)
    @settings(max_examples=80, deadline=None)
    def test_property_live_blocks_never_overlap(self, ops):
        memory = Memory(heap_size=1 << 16)
        live = drive(memory, ops)
        spans = sorted((addr, addr + size) for addr, size in live.items())
        for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
            assert prev_end <= next_start

    @given(ops=actions)
    @settings(max_examples=80, deadline=None)
    def test_property_payloads_stay_in_heap_segment(self, ops):
        memory = Memory(heap_size=1 << 16)
        live = drive(memory, ops)
        for addr, size in live.items():
            assert memory.heap.contains(addr, size)

    @given(ops=actions)
    @settings(max_examples=60, deadline=None)
    def test_property_allocation_registry_matches(self, ops):
        memory = Memory(heap_size=1 << 16)
        live = drive(memory, ops)
        assert set(memory.allocations) == set(live)
        for addr, size in live.items():
            assert memory.allocation_size(addr) == size

    @given(ops=actions)
    @settings(max_examples=60, deadline=None)
    def test_property_free_list_sorted_disjoint_coalesced(self, ops):
        memory = Memory(heap_size=1 << 16)
        drive(memory, ops)
        entries = memory._free_list
        for (off_a, size_a), (off_b, _) in zip(entries, entries[1:]):
            assert off_a + size_a < off_b  # sorted, disjoint, no adjacency

    @given(ops=actions)
    @settings(max_examples=60, deadline=None)
    def test_property_free_everything_restores_one_extent(self, ops):
        memory = Memory(heap_size=1 << 16)
        live = drive(memory, ops)
        for addr in list(live):
            memory.free(addr)
        assert memory._free_list == [(0, 1 << 16)]
        assert memory.bytes_in_use == 0

    @given(ops=actions)
    @settings(max_examples=40, deadline=None)
    def test_property_data_survives_neighbour_churn(self, ops):
        """Writing a block then allocating/freeing around it never
        disturbs its bytes (headers and free-list bookkeeping stay out
        of live payloads)."""
        memory = Memory(heap_size=1 << 16)
        keeper = memory.malloc(64)
        pattern = bytes(range(64))
        memory.write(keeper, pattern)
        drive(memory, ops)
        assert memory.read(keeper, 64) == pattern

    def test_exhaustion_returns_none_and_recovers(self):
        memory = Memory(heap_size=4096)
        first = memory.malloc(2048)
        assert first is not None
        assert memory.malloc(4096) is None  # cannot fit with headers
        memory.free(first)
        assert memory.malloc(2048) is not None

    def test_zero_and_negative_sizes_return_null(self):
        memory = Memory(heap_size=4096)
        assert memory.malloc(0) == 0
        assert memory.malloc(-8) == 0

    def test_double_free_is_ignored(self):
        memory = Memory(heap_size=4096)
        addr = memory.malloc(32)
        memory.free(addr)
        before = list(memory._free_list)
        memory.free(addr)  # second free: no-op, no corruption
        assert memory._free_list == before
