"""Loop-aware check optimizer: behavioural transparency over the full
evaluation corpus.

The loop passes (LICM + guarded check widening) may change *how much*
instrumentation executes — that is their purpose — but must never
change what the program *does*: exit code, output, and the trap
(kind, faulting address, target symbol, source, message) must be
bit-identical to the unoptimized reference build run on the reference
interpreter, on both engines.  This is the engine-equivalence
discipline extended across the optimizer: the unoptimized interpreter
run is the executable specification, and the optimized module must
match it behaviourally under the compiled engine and the interpreter
alike.
"""

from dataclasses import replace

import pytest

from repro.harness.driver import compile_program
from repro.softbound.config import SoftBoundConfig
from repro.workloads.attacks import all_attacks
from repro.workloads.bugbench import all_bugs
from repro.workloads.corpus import all_patterns
from repro.workloads.programs import WORKLOADS

FULL_SHADOW = SoftBoundConfig()
RAW = replace(FULL_SHADOW, optimize_checks=False)

CORPUS_INPUTS = {"unchecked_index_from_input": b"16\n"}


def behaviour(result):
    trap = None
    if result.trap is not None:
        trap = (result.trap.kind, result.trap.detail, result.trap.address,
                result.trap.target_symbol, result.trap.source)
    return (result.exit_code, result.output, trap)


def assert_transparent(source, input_data=b""):
    reference = compile_program(source, softbound=RAW)
    spec = behaviour(reference.run(engine="interp", input_data=input_data))
    optimized = compile_program(source, softbound=FULL_SHADOW)
    interp = behaviour(optimized.run(engine="interp", input_data=input_data))
    compiled = behaviour(optimized.run(engine="compiled", input_data=input_data))
    assert interp == spec
    assert compiled == spec


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_workloads(name):
    assert_transparent(WORKLOADS[name].source)


@pytest.mark.parametrize("attack", all_attacks(), ids=lambda a: a.name)
def test_attacks(attack):
    assert_transparent(attack.source)


@pytest.mark.parametrize("bug", all_bugs(), ids=lambda b: b.name)
def test_bugbench(bug):
    assert_transparent(bug.source)


@pytest.mark.parametrize("pattern", all_patterns(), ids=lambda p: p.name)
def test_bug_corpus(pattern):
    assert_transparent(pattern.source,
                       input_data=CORPUS_INPUTS.get(pattern.name, b""))
