"""Unit and property tests for the set-associative cache simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.driver import compile_and_run
from repro.softbound.config import MetadataScheme, SoftBoundConfig
from repro.vm.cache import (
    CORE2_L1D,
    CacheConfig,
    CacheHierarchy,
    CacheObserver,
    CacheSim,
)


class TestCacheConfig:
    def test_core2_l1_geometry(self):
        assert CORE2_L1D.n_sets == 64
        assert CORE2_L1D.size_bytes == 32 * 1024

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=24 * 1024, assoc=8, line_bytes=64)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, assoc=8, line_bytes=64)


class TestCacheSim:
    def test_first_access_misses_second_hits(self):
        cache = CacheSim()
        assert cache.access(0x1000, 8) != []
        assert cache.access(0x1000, 8) == []
        counters = cache.counters("prog")
        assert counters.accesses == 2
        assert counters.misses == 1
        assert counters.hits == 1

    def test_same_line_different_offset_hits(self):
        cache = CacheSim()
        cache.access(0x1000, 4)
        assert cache.access(0x1020, 4) == []  # same 64B line

    def test_access_straddling_line_boundary_touches_two_lines(self):
        cache = CacheSim()
        missed = cache.access(0x103C, 8)  # crosses 0x1040
        assert len(missed) == 2

    def test_24_byte_entry_can_straddle(self):
        cache = CacheSim()
        # A 24-byte hash entry at line offset 48 straddles two lines.
        assert len(cache.access(0x1000 + 48, 24)) == 2
        # Aligned at offset 0 it fits in one.
        cache2 = CacheSim()
        assert len(cache2.access(0x2000, 24)) == 1

    def test_lru_eviction(self):
        # Direct-mapped-ish: 1-way, 2 sets, 64B lines -> 128B cache.
        cache = CacheSim(CacheConfig(size_bytes=128, assoc=1, line_bytes=64))
        cache.access(0x0, 8)     # set 0
        cache.access(0x80, 8)    # set 0 again -> evicts line 0
        assert cache.access(0x0, 8) != []  # line 0 was evicted

    def test_lru_keeps_recently_used(self):
        cache = CacheSim(CacheConfig(size_bytes=256, assoc=2, line_bytes=64))
        cache.access(0x0, 8)      # set 0, line A
        cache.access(0x100, 8)    # set 0, line B
        cache.access(0x0, 8)      # touch A again (B becomes LRU)
        cache.access(0x200, 8)    # set 0, line C -> evicts B
        assert cache.access(0x0, 8) == []      # A still resident
        assert cache.access(0x100, 8) != []    # B was evicted

    def test_working_set_within_capacity_all_hits_on_second_pass(self):
        cache = CacheSim()  # 32KB
        lines = [0x1000 + i * 64 for i in range(256)]  # 16KB working set
        for addr in lines:
            cache.access(addr, 8)
        before = cache.counters("prog").misses
        for addr in lines:
            cache.access(addr, 8)
        assert cache.counters("prog").misses == before

    def test_streams_are_counted_separately(self):
        cache = CacheSim()
        cache.access(0x1000, 8, "prog")
        cache.access(0x1000, 8, "meta")  # hits the line prog brought in
        assert cache.counters("prog").misses == 1
        assert cache.counters("meta").misses == 0
        assert cache.counters("meta").accesses == 1

    def test_overall_miss_rate_combines_streams(self):
        cache = CacheSim()
        cache.access(0x1000, 8, "prog")
        cache.access(0x9000, 8, "meta")
        assert cache.miss_rate() == 1.0

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                    max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_hits_never_exceed_accesses(self, addrs):
        cache = CacheSim(CacheConfig(size_bytes=1024, assoc=2, line_bytes=64))
        for addr in addrs:
            cache.access(addr, 8)
        counters = cache.counters("prog")
        assert 0 <= counters.misses <= counters.accesses
        assert 0.0 <= counters.miss_rate <= 1.0

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                    max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_property_capacity_respected(self, addrs):
        config = CacheConfig(size_bytes=1024, assoc=2, line_bytes=64)
        cache = CacheSim(config)
        for addr in addrs:
            cache.access(addr, 8)
        for cache_set in cache._sets:
            assert len(cache_set) <= config.assoc

    @given(st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1,
                    max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_property_replaying_a_trace_is_deterministic(self, addrs):
        a, b = CacheSim(), CacheSim()
        for addr in addrs:
            a.access(addr, 8)
            b.access(addr, 8)
        assert a.counters("prog").misses == b.counters("prog").misses


class TestCacheHierarchy:
    def test_l2_sees_only_l1_misses(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0x1000, 8)
        hierarchy.access(0x1000, 8)  # L1 hit -> L2 untouched
        report = hierarchy.report()
        assert report.l1_prog.accesses == 2
        assert report.l1_prog.misses == 1
        assert report.l2_prog.accesses == 1

    def test_l2_retains_l1_evictions(self):
        small_l1 = CacheConfig(size_bytes=128, assoc=1, line_bytes=64)
        hierarchy = CacheHierarchy(small_l1, CacheConfig(
            size_bytes=64 * 1024, assoc=16, line_bytes=64, name="L2"))
        hierarchy.access(0x0, 8)
        hierarchy.access(0x80, 8)   # evicts 0x0 from L1
        hierarchy.access(0x0, 8)    # L1 miss, L2 hit
        report = hierarchy.report()
        assert report.l1_prog.misses == 3
        assert report.l2_prog.misses == 2
        assert report.l2_prog.hits == 1

    def test_mismatched_line_sizes_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy(CORE2_L1D, CacheConfig(
                size_bytes=4 * 1024 * 1024, assoc=16, line_bytes=128))


POINTER_CHASE = """
typedef struct Node { struct Node *next; long pad[3]; } Node;
int main() {
    Node *head = 0;
    for (int i = 0; i < 64; i++) {
        Node *n = (Node*)malloc(sizeof(Node));
        n->next = head;
        head = n;
    }
    long count = 0;
    for (int pass = 0; pass < 20; pass++) {
        for (Node *p = head; p; p = p->next) count++;
    }
    return (int)(count == 64 * 20);
}
"""


class TestCacheObserver:
    def test_uninstrumented_run_counts_program_accesses(self):
        observer = CacheObserver()
        result = compile_and_run(POINTER_CHASE, observers=[observer])
        assert result.exit_code == 1
        report = observer.report()
        assert report.l1_prog.accesses > 100
        assert report.l1_meta.accesses == 0

    @pytest.mark.parametrize("scheme", [MetadataScheme.HASH_TABLE,
                                        MetadataScheme.SHADOW_SPACE])
    def test_instrumented_run_counts_metadata_accesses(self, scheme):
        observer = CacheObserver()
        config = SoftBoundConfig(scheme=scheme)
        result = compile_and_run(POINTER_CHASE, softbound=config,
                                 observers=[observer])
        assert result.exit_code == 1
        report = observer.report()
        assert report.l1_meta.accesses > 0

    def test_hash_table_touches_more_metadata_lines_than_shadow(self):
        """The Section 6.3 memory-pressure claim in miniature: on a
        pointer-chasing workload the hash table's shared aliasing array
        plus 24-byte straddling entries miss more than the shadow
        space's locality-preserving mirror."""
        rates = {}
        for scheme in (MetadataScheme.HASH_TABLE, MetadataScheme.SHADOW_SPACE):
            observer = CacheObserver()
            compile_and_run(POINTER_CHASE, softbound=SoftBoundConfig(scheme=scheme),
                            observers=[observer])
            rates[scheme] = observer.report().l1_meta.miss_rate
        assert rates[MetadataScheme.HASH_TABLE] >= rates[MetadataScheme.SHADOW_SPACE]
