"""Compiled engine vs reference interpreter under temporal checking.

Extends the engine-equivalence contract to the temporal subsystem: for
every temporal attack and a representative workload slice, both engines
must produce bit-identical ExecutionResults — including the temporal
trap's kind/detail/address and the new temporal_checks counter — under
``SoftBoundConfig(temporal=True)`` on both metadata schemes.
"""

import pytest

from repro.harness.driver import compile_program
from repro.softbound.config import TEMPORAL_HASH, TEMPORAL_SHADOW
from repro.workloads.temporal_attacks import TEMPORAL_ATTACKS
from repro.workloads.programs import WORKLOADS

#: Allocation-heavy slice: li churns the allocator, health frees nodes,
#: treeadd builds a large pointer structure, go is the array/loop case
#: the check optimizer rewrites hardest.
WORKLOAD_SLICE = ("go", "health", "li", "treeadd")


def result_signature(result):
    trap = None
    if result.trap is not None:
        trap = (
            type(result.trap).__name__,
            result.trap.kind,
            result.trap.detail,
            result.trap.address,
            result.trap.target_symbol,
            result.trap.source,
        )
    stats = result.stats
    return (
        result.exit_code,
        result.output,
        trap,
        stats.cost,
        stats.instructions,
        stats.memory_ops,
        stats.pointer_memory_ops,
        stats.checks,
        stats.temporal_checks,
        stats.metadata_loads,
        stats.metadata_stores,
        stats.calls,
        stats.peak_heap,
        stats.metadata_bytes,
    )


def assert_engines_agree(source, softbound):
    compiled = compile_program(source, softbound=softbound)
    reference = result_signature(compiled.run(engine="interp"))
    fast = result_signature(compiled.run(engine="compiled"))
    assert reference == fast


@pytest.mark.parametrize("name", list(TEMPORAL_ATTACKS))
def test_temporal_attacks_shadow(name):
    assert_engines_agree(TEMPORAL_ATTACKS[name].source, TEMPORAL_SHADOW)


@pytest.mark.parametrize("name", list(TEMPORAL_ATTACKS))
def test_temporal_attacks_hash(name):
    assert_engines_agree(TEMPORAL_ATTACKS[name].source, TEMPORAL_HASH)


@pytest.mark.parametrize("name", WORKLOAD_SLICE)
def test_workloads_temporal_shadow(name):
    assert_engines_agree(WORKLOADS[name].source, TEMPORAL_SHADOW)
