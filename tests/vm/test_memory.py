"""Simulated memory unit tests."""

import pytest

from repro.vm.errors import Trap, TrapKind
from repro.vm.memory import HEAP_BASE, Memory


@pytest.fixture
def mem():
    return Memory(heap_size=1 << 20, stack_size=1 << 16)


def test_heap_roundtrip_bytes(mem):
    addr = mem.malloc(64)
    mem.write(addr, b"hello")
    assert mem.read(addr, 5) == b"hello"


def test_int_codec_signed(mem):
    addr = mem.malloc(16)
    mem.write_int(addr, -5, 4)
    assert mem.read_int(addr, 4, signed=True) == -5
    assert mem.read_int(addr, 4, signed=False) == (1 << 32) - 5


def test_int_codec_widths(mem):
    addr = mem.malloc(16)
    for width, value in [(1, -128), (2, 32767), (4, -(1 << 31)), (8, 1 << 62)]:
        mem.write_int(addr, value, width)
        assert mem.read_int(addr, width, signed=True) == value


def test_little_endian_layout(mem):
    addr = mem.malloc(8)
    mem.write_int(addr, 0x0102030405060708, 8)
    assert mem.read(addr, 1) == b"\x08"


def test_f64_codec(mem):
    addr = mem.malloc(8)
    mem.write_f64(addr, 3.25)
    assert mem.read_f64(addr) == 3.25


def test_null_dereference_segfaults(mem):
    with pytest.raises(Trap) as exc:
        mem.read(0, 4)
    assert exc.value.kind is TrapKind.SEGFAULT


def test_unmapped_address_segfaults(mem):
    with pytest.raises(Trap):
        mem.write(0xDEAD_BEEF_0000, b"x")


def test_read_straddling_segment_end_traps(mem):
    end = mem.heap.end
    with pytest.raises(Trap):
        mem.read(end - 2, 4)


def test_malloc_alignment(mem):
    for _ in range(5):
        assert mem.malloc(13) % 16 == 0


def test_malloc_zero_returns_null(mem):
    assert mem.malloc(0) == 0


def test_adjacent_allocations_allow_silent_overflow(mem):
    """The property the whole evaluation rests on: an overflow out of one
    heap block lands in mapped memory (the next block's header/payload)
    and does NOT trap — plain hardware doesn't catch spatial bugs."""
    a = mem.malloc(16)
    b = mem.malloc(16)
    mem.write(a, b"A" * 48)  # spills well past a's 16 bytes
    assert mem.read(a, 1) == b"A"  # no trap occurred


def test_free_and_reuse(mem):
    a = mem.malloc(100)
    mem.free(a)
    b = mem.malloc(100)
    assert b == a  # first-fit reuses the freed block


def test_free_null_is_noop(mem):
    mem.free(0)


def test_free_coalescing(mem):
    blocks = [mem.malloc(1000) for _ in range(3)]
    for block in blocks:
        mem.free(block)
    # After coalescing, a larger-than-any-single-block request fits.
    big = mem.malloc(2800)
    assert big is not None and big != 0


def test_out_of_memory_returns_none(mem):
    assert mem.malloc(1 << 30) is None


def test_allocation_size_tracking(mem):
    addr = mem.malloc(37)
    assert mem.allocation_size(addr) == 37
    mem.free(addr)
    assert mem.allocation_size(addr) is None


def test_peak_heap_accounting(mem):
    a = mem.malloc(1024)
    peak_after_first = mem.peak_heap
    mem.free(a)
    mem.malloc(16)
    assert mem.peak_heap == peak_after_first  # peak is sticky


def test_read_cstring(mem):
    addr = mem.malloc(16)
    mem.write(addr, b"abc\x00def")
    assert mem.read_cstring(addr) == b"abc"


def test_stack_segment_mapped(mem):
    top = mem.stack.end - 8
    mem.write_ptr(top, 0x1234)
    assert mem.read_ptr(top) == 0x1234


def test_read_cstring_large_heap_allocation():
    """Regression for the O(n) per-byte segment walk: a string spanning
    a large heap allocation is read with in-segment scanning, and the
    result is exact (content, terminator position)."""
    big = Memory()  # default 32 MiB heap
    size = 512 * 1024
    addr = big.malloc(size + 1)
    payload = bytes((i % 251) + 1 for i in range(size))  # no NUL bytes
    big.write(addr, payload + b"\x00")
    assert big.read_cstring(addr, limit=1 << 21) == payload
    # A read starting mid-string sees the tail.
    assert big.read_cstring(addr + size - 5, limit=1 << 21) == payload[-5:]


def test_read_cstring_unterminated_hits_limit(mem):
    addr = mem.malloc(64)
    mem.write(addr, b"A" * 64)  # heap beyond is zero, so craft a tight limit
    with pytest.raises(Trap) as exc:
        mem.read_cstring(addr, limit=32)
    assert exc.value.kind is TrapKind.SEGFAULT
    assert "unterminated" in exc.value.detail


def test_read_cstring_running_off_segment_traps_at_exact_address(mem):
    end = mem.heap.end
    start = end - 16
    mem.write(start, b"B" * 16)  # no terminator before the segment end
    with pytest.raises(Trap) as exc:
        mem.read_cstring(start)
    assert exc.value.kind is TrapKind.SEGFAULT
    assert exc.value.address == end  # first unmapped byte


def test_read_cstring_nul_at_limit_boundary_is_unterminated(mem):
    addr = mem.malloc(32)
    mem.write(addr, b"C" * 8 + b"\x00")
    # NUL sits at offset 8 == limit: the bounded scan must not see it.
    with pytest.raises(Trap):
        mem.read_cstring(addr, limit=8)
    assert mem.read_cstring(addr, limit=9) == b"C" * 8
