"""Closure-compiled engine vs reference interpreter: bit-identical
``ExecutionResult`` over the full evaluation corpus.

This is the contract that lets the compiled engine be the default: for
every workload analogue, Wilander attack, BugBench program and
spatial-bug pattern — protected and unprotected — both engines must
produce the same exit code, output, trap (kind, address, target symbol,
source, message) and every cost-model counter.
"""

import pytest

from repro.harness.driver import compile_program
from repro.softbound.config import (
    CheckMode,
    MetadataScheme,
    SoftBoundConfig,
)
from repro.workloads.attacks import all_attacks
from repro.workloads.bugbench import all_bugs
from repro.workloads.corpus import all_patterns
from repro.workloads.programs import WORKLOADS

FULL_SHADOW = SoftBoundConfig()
FULL_HASH = SoftBoundConfig(scheme=MetadataScheme.HASH_TABLE)
STORE_SHADOW = SoftBoundConfig(mode=CheckMode.STORE_ONLY)

CORPUS_INPUTS = {"unchecked_index_from_input": b"16\n"}


def result_signature(result):
    trap = None
    if result.trap is not None:
        trap = (
            result.trap.kind,
            result.trap.detail,
            result.trap.address,
            result.trap.target_symbol,
            result.trap.source,
        )
    stats = result.stats
    return (
        result.exit_code,
        result.output,
        trap,
        stats.cost,
        stats.instructions,
        stats.memory_ops,
        stats.pointer_memory_ops,
        stats.checks,
        stats.metadata_loads,
        stats.metadata_stores,
        stats.calls,
        stats.peak_heap,
        stats.metadata_bytes,
    )


def assert_engines_agree(source, softbound=None, input_data=b""):
    compiled = compile_program(source, softbound=softbound)
    reference = result_signature(
        compiled.run(engine="interp", input_data=input_data))
    fast = result_signature(
        compiled.run(engine="compiled", input_data=input_data))
    assert reference == fast


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_workloads_unprotected(name):
    workload = WORKLOADS[name]
    assert_engines_agree(workload.source)


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_workloads_full_shadow(name):
    workload = WORKLOADS[name]
    assert_engines_agree(workload.source, softbound=FULL_SHADOW)


@pytest.mark.parametrize("name", ["go", "health", "treeadd"])
def test_workloads_hash_table(name):
    assert_engines_agree(WORKLOADS[name].source, softbound=FULL_HASH)


@pytest.mark.parametrize("name", ["compress", "bisort", "li"])
def test_workloads_store_only(name):
    assert_engines_agree(WORKLOADS[name].source, softbound=STORE_SHADOW)


@pytest.mark.parametrize("attack", all_attacks(), ids=lambda a: a.name)
def test_attacks(attack):
    # Unprotected: the exploit (control-flow hijack / payload) must look
    # identical; protected: the SoftBound trap must be identical.
    assert_engines_agree(attack.source)
    assert_engines_agree(attack.source, softbound=FULL_SHADOW)


@pytest.mark.parametrize("bug", all_bugs(), ids=lambda b: b.name)
def test_bugbench(bug):
    assert_engines_agree(bug.source)
    assert_engines_agree(bug.source, softbound=FULL_SHADOW)
    assert_engines_agree(bug.source, softbound=STORE_SHADOW)


@pytest.mark.parametrize("pattern", all_patterns(), ids=lambda p: p.name)
def test_bug_corpus(pattern):
    input_data = CORPUS_INPUTS.get(pattern.name, b"")
    assert_engines_agree(pattern.source, input_data=input_data)
    assert_engines_agree(pattern.source, softbound=FULL_SHADOW,
                         input_data=input_data)


def test_return_address_tokens_identical_across_engines():
    """Call-site return-address tokens are observable program state (an
    overread can fold the saved-RA bytes into output), so they are
    pre-assigned in module layout order rather than dynamic first-call
    order — regression for a divergence where the compiled engine
    assigned them at template-build time."""
    source = r'''
    long leak(void) { long a[1]; a[0] = 7; return a[2]; }  /* reads the RA slot */
    int flag = 0;   /* global: the branch survives constant folding */
    int main(void) {
        /* Layout-first call site that never executes: lazy dynamic
           assignment would give the second site the first token, while
           compile-time assignment gives it the second. */
        if (flag) return (int)(leak() & 0xfff);
        return (int)(leak() & 0xfff) & 0xff;
    }
    '''
    assert_engines_agree(source)
