"""Trap taxonomy: each trap kind is reachable from a real program and
classified the way the detection experiments rely on."""

import pytest

from repro.harness.driver import compile_and_run
from repro.softbound.config import FULL_SHADOW
from repro.vm.errors import ATTACK_EXIT_CODE, ExecutionResult, Trap, TrapKind


def kind_of(source, **kwargs):
    result = compile_and_run(source, **kwargs)
    return result.trap.kind if result.trap else None


class TestTrapKindsAreReachable:
    def test_segfault(self):
        assert kind_of("int main(void){ int *p = (int *)4; return *p; }") \
            is TrapKind.SEGFAULT

    def test_div_by_zero(self):
        assert kind_of("int main(void){ int z = 0; return 7 / z; }") \
            is TrapKind.DIV_BY_ZERO

    def test_stack_overflow(self):
        source = "int f(int n){ int pad[256]; pad[0]=n; return f(n+1)+pad[0]; }" \
                 " int main(void){ return f(0); }"
        assert kind_of(source) is TrapKind.STACK_OVERFLOW

    def test_abort(self):
        assert kind_of("int main(void){ abort(); return 0; }") is TrapKind.ABORT

    def test_out_of_memory(self):
        # Heap exhaustion is the formal semantics' OutOfMem outcome
        # (Theorem 4.2's third case), reported as a trap kind.
        source = "int main(void){ char *p = (char *)malloc(1 << 30); return p != 0; }"
        assert kind_of(source) is TrapKind.OUT_OF_MEMORY

    def test_resource_limit(self):
        result = compile_and_run("int main(void){ while (1) {} return 0; }",
                                 max_instructions=10_000)
        assert result.trap.kind is TrapKind.RESOURCE_LIMIT

    def test_spatial_violation_source_is_softbound(self):
        result = compile_and_run(
            "int main(void){ int a[2]; a[5] = 1; return 0; }",
            softbound=FULL_SHADOW)
        assert result.trap.kind is TrapKind.SPATIAL_VIOLATION
        assert result.trap.source == "softbound"


class TestClassificationProperties:
    def test_detected_violation_excludes_crashes(self):
        crash = ExecutionResult(trap=Trap(TrapKind.SEGFAULT))
        hijack = ExecutionResult(trap=Trap(TrapKind.CONTROL_FLOW_HIJACK))
        caught = ExecutionResult(trap=Trap(TrapKind.SPATIAL_VIOLATION))
        assert not crash.detected_violation
        assert not hijack.detected_violation
        assert caught.detected_violation

    def test_attack_succeeded_via_exit_code_or_hijack(self):
        payload = ExecutionResult(exit_code=ATTACK_EXIT_CODE)
        hijack = ExecutionResult(trap=Trap(TrapKind.CONTROL_FLOW_HIJACK))
        clean = ExecutionResult(exit_code=0)
        assert payload.attack_succeeded
        assert hijack.attack_succeeded
        assert not clean.attack_succeeded

    def test_ok_means_no_trap(self):
        assert ExecutionResult().ok
        assert not ExecutionResult(trap=Trap(TrapKind.ABORT)).ok


class TestTrapFormatting:
    def test_str_includes_kind_address_source(self):
        trap = Trap(TrapKind.SPATIAL_VIOLATION, "store of 4 bytes",
                    address=0x1234, source="softbound")
        text = str(trap)
        assert "spatial_violation" in text
        assert "@0x1234" in text
        assert "[softbound]" in text

    def test_str_includes_hijack_target(self):
        trap = Trap(TrapKind.CONTROL_FLOW_HIJACK, "return address overwritten",
                    address=0x1010, target_symbol="attack_payload")
        assert "-> attack_payload" in str(trap)

    def test_zero_address_omitted(self):
        assert "@" not in str(Trap(TrapKind.ABORT, "called"))
