"""Interpreter integration tests: C semantics end-to-end (unprotected)."""

import pytest

from repro.harness.driver import compile_and_run


def run(source, **kwargs):
    result = compile_and_run(source, **kwargs)
    assert result.trap is None, f"unexpected trap: {result.trap}"
    return result


def test_arithmetic_and_return():
    assert run("int main(void) { return (3 + 4) * 5 % 7; }").exit_code == 0


def test_signed_division_truncates_toward_zero():
    assert run("int main(void) { return -7 / 2; }").exit_code == -3
    assert run("int main(void) { return -7 % 2; }").exit_code == -1


def test_unsigned_arithmetic_wraps():
    src = "int main(void) { unsigned int x = 0; x = x - 1; return x > 1000000; }"
    assert run(src).exit_code == 1


def test_integer_overflow_wraps():
    src = "int main(void) { int x = 2147483647; x = x + 1; return x < 0; }"
    assert run(src).exit_code == 1


def test_char_sign_extension():
    src = "int main(void) { char c = 200; return c; }"  # 200 wraps to -56
    assert run(src).exit_code == -56


def test_shift_operators():
    assert run("int main(void) { return (1 << 4) | (256 >> 4); }").exit_code == 16
    assert run("int main(void) { return (1 << 5) + (-8 >> 1); }").exit_code == 28


def test_comparison_chain_and_logical_ops():
    src = "int main(void) { int a = 3, b = 5; return (a < b && b < 10) + (a > b || !a); }"
    assert run(src).exit_code == 1


def test_short_circuit_evaluation_skips_rhs():
    src = r'''
    int g = 0;
    int bump(void) { g = g + 1; return 1; }
    int main(void) { int x = 0; (x && bump()); (1 || bump()); return g; }
    '''
    assert run(src).exit_code == 0


def test_while_and_do_while():
    src = r'''
    int main(void) {
        int i = 0, total = 0;
        while (i < 5) { total += i; i++; }
        do { total += 100; } while (0);
        return total;
    }
    '''
    assert run(src).exit_code == 110


def test_for_with_break_continue():
    src = r'''
    int main(void) {
        int total = 0;
        for (int i = 0; i < 100; i++) {
            if (i % 2) continue;
            if (i > 10) break;
            total += i;
        }
        return total;
    }
    '''
    assert run(src).exit_code == 30


def test_switch_with_fallthrough_and_default():
    src = r'''
    int classify(int x) {
        int r = 0;
        switch (x) {
            case 1:
            case 2: r = 12; break;
            case 3: r = 3; break;
            default: r = -1;
        }
        return r;
    }
    int main(void) { return classify(1) + classify(2) + classify(3) + classify(9); }
    '''
    assert run(src).exit_code == 12 + 12 + 3 - 1


def test_goto_loop():
    src = r'''
    int main(void) {
        int i = 0;
    again:
        i++;
        if (i < 7) goto again;
        return i;
    }
    '''
    assert run(src).exit_code == 7


def test_recursion_deep():
    src = "int f(int n) { return n ? n + f(n - 1) : 0; } int main(void) { return f(100) == 5050; }"
    assert run(src).exit_code == 1


def test_mutual_recursion():
    src = r'''
    int is_odd(int n);
    int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
    int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
    int main(void) { return is_even(10) * 10 + is_odd(7); }
    '''
    assert run(src).exit_code == 11


def test_pointer_swap_through_params():
    src = r'''
    void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
    int main(void) { int x = 3, y = 9; swap(&x, &y); return x * 10 + y; }
    '''
    assert run(src).exit_code == 93


def test_pointer_arithmetic_and_difference():
    src = r'''
    int main(void) {
        int a[10];
        int *p = &a[2], *q = &a[7];
        return (int)(q - p);
    }
    '''
    assert run(src).exit_code == 5


def test_array_of_structs():
    src = r'''
    struct point { int x; int y; };
    int main(void) {
        struct point pts[3];
        for (int i = 0; i < 3; i++) { pts[i].x = i; pts[i].y = i * i; }
        return pts[2].y * 10 + pts[1].x;
    }
    '''
    assert run(src).exit_code == 41


def test_struct_assignment_copies_value():
    src = r'''
    struct pair { int a; int b; };
    int main(void) {
        struct pair p; struct pair q;
        p.a = 1; p.b = 2;
        q = p;
        p.a = 99;
        return q.a * 10 + q.b;
    }
    '''
    assert run(src).exit_code == 12


def test_nested_struct_access():
    src = r'''
    struct inner { int v; };
    struct outer { struct inner in; int pad; };
    int main(void) { struct outer o; o.in.v = 42; return o.in.v; }
    '''
    assert run(src).exit_code == 42


def test_union_type_punning():
    src = r'''
    union u { int i; char bytes[4]; };
    int main(void) {
        union u v;
        v.i = 0x01020304;
        return v.bytes[0];   /* little-endian: low byte first */
    }
    '''
    assert run(src).exit_code == 4


def test_global_variables_and_initializers():
    src = r'''
    int counter = 5;
    int table[4] = {10, 20, 30};
    int main(void) { counter += table[1] + table[3]; return counter; }
    '''
    assert run(src).exit_code == 25


def test_global_pointer_initializer():
    src = r'''
    int value = 7;
    int *gp = &value;
    int main(void) { return *gp; }
    '''
    assert run(src).exit_code == 7


def test_static_local_persists():
    src = r'''
    int tick(void) { static int n = 0; n++; return n; }
    int main(void) { tick(); tick(); return tick(); }
    '''
    assert run(src).exit_code == 3


def test_string_literal_and_strlen():
    src = 'int main(void) { return (int)strlen("hello world"); }'
    assert run(src).exit_code == 11


def test_function_pointer_table():
    src = r'''
    int add(int a, int b) { return a + b; }
    int mul(int a, int b) { return a * b; }
    int main(void) {
        int (*ops[2])(int, int);
        ops[0] = add;
        ops[1] = mul;
        return ops[0](3, 4) + ops[1](3, 4);
    }
    '''
    assert run(src).exit_code == 19


def test_double_arithmetic():
    src = r'''
    int main(void) {
        double x = 1.5, y = 2.25;
        double z = x * y + 0.125;
        return (int)(z * 8.0);   /* 3.5 * 8 = 28 */
    }
    '''
    assert run(src).exit_code == 28


def test_float_int_conversions():
    src = "int main(void) { double d = 7.9; int i = (int)d; return i; }"
    assert run(src).exit_code == 7


def test_malloc_free_reuse_pattern():
    src = r'''
    int main(void) {
        for (int i = 0; i < 50; i++) {
            int *p = (int *)malloc(64);
            p[0] = i;
            free(p);
        }
        return 0;
    }
    '''
    assert run(src).exit_code == 0


def test_calloc_zeroes():
    src = r'''
    int main(void) {
        int *p = (int *)calloc(8, sizeof(int));
        int total = 0;
        for (int i = 0; i < 8; i++) total += p[i];
        return total;
    }
    '''
    assert run(src).exit_code == 0


def test_division_by_zero_traps():
    result = compile_and_run("int main(void) { int z = 0; return 5 / z; }")
    assert result.trap is not None
    assert result.trap.kind.value == "div_by_zero"


def test_null_write_segfaults():
    result = compile_and_run("int main(void) { int *p = NULL; *p = 1; return 0; }")
    assert result.trap is not None
    assert result.trap.kind.value == "segfault"


def test_printf_formats():
    src = r'''
    int main(void) {
        printf("%d %s %c %x %05d %.2f\n", -42, "str", 65, 255, 7, 1.5);
        return 0;
    }
    '''
    result = run(src)
    assert result.output == "-42 str A ff 00007 1.50\n"


def test_gets_reads_program_input():
    src = r'''
    int main(void) {
        char buf[64];
        gets(buf);
        return (int)strlen(buf);
    }
    '''
    result = compile_and_run(src, input_data=b"hello\n")
    assert result.exit_code == 5


def test_setjmp_longjmp_roundtrip():
    src = r'''
    jmp_buf env;
    int risky(void) { longjmp(env, 42); return 0; }
    int main(void) {
        int code = setjmp(env);
        if (code) return code;
        risky();
        return -1;
    }
    '''
    assert run(src).exit_code == 42


def test_varargs_sum():
    src = r'''
    int sum_n(int n, ...) {
        va_list ap;
        va_start(&ap);
        int total = 0;
        for (int i = 0; i < n; i++) total += (int)va_arg_long(&ap);
        va_end(&ap);
        return total;
    }
    int main(void) { return sum_n(4, 10, 20, 30, 40); }
    '''
    assert run(src).exit_code == 100


def test_exit_code_propagates():
    result = compile_and_run("int main(void) { exit(7); return 0; }")
    assert result.exit_code == 7


def test_two_dimensional_array_walk():
    src = r'''
    int main(void) {
        int m[3][4];
        for (int i = 0; i < 3; i++)
            for (int j = 0; j < 4; j++)
                m[i][j] = i * 4 + j;
        int total = 0;
        for (int i = 0; i < 3; i++) total += m[i][3];
        return total;
    }
    '''
    assert run(src).exit_code == 3 + 7 + 11


def test_sizeof_values():
    src = r'''
    int main(void) {
        return sizeof(char) + sizeof(short) + sizeof(int) + sizeof(long)
             + sizeof(double) + sizeof(int *);
    }
    '''
    assert run(src).exit_code == 1 + 2 + 4 + 8 + 8 + 8
