"""Executable counterparts of the paper's Theorems 4.1, 4.2 and
Corollary 4.1, property-tested over randomly generated programs."""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formal import syntax as syn
from repro.formal.genprog import commands, make_environment
from repro.formal.semantics import Environment, Evaluator, Outcome, run
from repro.formal.wellformed import command_welltyped, env_wellformed


@settings(max_examples=200, deadline=None)
@given(commands())
def test_progress(command):
    """Theorem 4.2 (Progress): from a well-formed environment, the
    instrumented semantics ends in OK, Abort or OutOfMem — never STUCK
    ("it will never get stuck trying to access unallocated memory")."""
    env = make_environment()
    assert env_wellformed(env)
    assert command_welltyped(env, command)
    outcome = run(env, command, instrumented=True)
    assert outcome in (Outcome.OK, Outcome.ABORT, Outcome.OUT_OF_MEM)


@settings(max_examples=200, deadline=None)
@given(commands())
def test_preservation(command):
    """Theorem 4.1 (Preservation): ⊢E is invariant under instrumented
    execution — checked after every single command step."""
    env = make_environment()
    evaluator = Evaluator(env, instrumented=True)
    for assign in syn.commands_of(command):
        try:
            evaluator._exec_assign(assign)
        except Exception:
            break
        assert env_wellformed(env), f"well-formedness broken by {assign}"


@settings(max_examples=150, deadline=None)
@given(commands())
def test_corollary_instrumented_ok_implies_plain_agrees(command):
    """Corollary 4.1: if the instrumented program finishes OK, the
    original (plain partial semantics) program has no memory violation
    and computes the same final memory."""
    env_inst = make_environment()
    outcome = run(env_inst, command, instrumented=True)
    if outcome is not Outcome.OK:
        return
    env_plain = make_environment()
    plain_outcome = run(env_plain, command, instrumented=False)
    assert plain_outcome is Outcome.OK
    assert env_plain.memory.contents == env_inst.memory.contents


@settings(max_examples=150, deadline=None)
@given(commands())
def test_abort_only_on_genuine_violation(command):
    """No false positives relative to the partial semantics: if the
    plain semantics runs to completion (defined everywhere), the
    instrumented semantics must not abort.

    This is the converse direction of Corollary 4.1 for the fragment —
    it holds here because the fragment has no sub-object-overflowing
    programs that plain C would define (field arithmetic is typed)."""
    env_plain = make_environment()
    if run(env_plain, command, instrumented=False) is not Outcome.OK:
        return
    env_inst = make_environment()
    assert run(env_inst, command, instrumented=True) is Outcome.OK


# -- directed examples pinning each rule ------------------------------------

def test_deref_in_bounds_succeeds():
    env = make_environment()
    program = syn.Seq(
        syn.Assign(syn.Var("p1"), syn.CastTo(syn.TPtr(syn.TInt()),
                                             syn.Malloc(syn.IntLit(4)))),
        syn.Assign(syn.Deref(syn.Var("p1")), syn.IntLit(7)),
    )
    assert run(env, program) is Outcome.OK


def test_deref_out_of_bounds_aborts():
    """The paper's failure rule: ¬(b ≤ v ∧ v+sizeof(a) ≤ e) ⇒ Abort."""
    env = make_environment()
    program = syn.Seq(
        syn.Seq(
            syn.Assign(syn.Var("p1"), syn.CastTo(syn.TPtr(syn.TInt()),
                                                 syn.Malloc(syn.IntLit(2)))),
            syn.Assign(syn.Var("p1"), syn.Add(syn.Read(syn.Var("p1")),
                                              syn.IntLit(2))),
        ),
        syn.Assign(syn.Deref(syn.Var("p1")), syn.IntLit(1)),
    )
    assert run(env, program) is Outcome.ABORT


def test_wild_cast_pointer_aborts_on_deref():
    env = make_environment()
    program = syn.Seq(
        syn.Assign(syn.Var("p1"), syn.CastTo(syn.TPtr(syn.TInt()),
                                             syn.IntLit(123))),
        syn.Assign(syn.Deref(syn.Var("p1")), syn.IntLit(1)),
    )
    assert run(env, program) is Outcome.ABORT


def test_same_program_is_stuck_in_plain_semantics():
    env = make_environment()
    program = syn.Seq(
        syn.Assign(syn.Var("p1"), syn.CastTo(syn.TPtr(syn.TInt()),
                                             syn.IntLit(9999))),
        syn.Assign(syn.Deref(syn.Var("p1")), syn.IntLit(1)),
    )
    assert run(env, program, instrumented=False) is Outcome.STUCK


def test_addr_of_field_shrinks_bounds():
    """&(q->v) carries the *field's* bounds: walking to the next field
    through it aborts (sub-object protection, Section 3.1)."""
    env = make_environment()
    setup = syn.Seq(
        syn.Assign(syn.Var("q1"),
                   syn.CastTo(syn.TPtr(syn.TNamed("node")),
                              syn.Malloc(syn.SizeOf(syn.TNamed("node"))))),
        syn.Assign(syn.Var("p1"), syn.AddrOf(syn.FieldArrow(syn.Var("q1"), "v"))),
    )
    assert run(env, setup) is Outcome.OK
    overflow = syn.Seq(
        syn.Assign(syn.Var("p1"), syn.Add(syn.Read(syn.Var("p1")), syn.IntLit(1))),
        syn.Assign(syn.Deref(syn.Var("p1")), syn.IntLit(42)),
    )
    assert run(env, overflow) is Outcome.ABORT


def test_recursive_struct_traversal():
    """Named structs permit recursive data: build a 2-cell list and
    write through q1->next->v."""
    env = make_environment()
    node_ptr = syn.TPtr(syn.TNamed("node"))
    program = syn.Seq(
        syn.Seq(
            syn.Assign(syn.Var("q1"),
                       syn.CastTo(node_ptr, syn.Malloc(syn.SizeOf(syn.TNamed("node"))))),
            syn.Assign(syn.FieldArrow(syn.Var("q1"), "next"),
                       syn.CastTo(node_ptr, syn.Malloc(syn.SizeOf(syn.TNamed("node"))))),
        ),
        syn.Assign(syn.FieldArrow(syn.FieldArrow(syn.Var("q1"), "next"), "v"),
                   syn.IntLit(31)),
    )
    assert run(env, program) is Outcome.OK


def test_malloc_exhaustion_is_out_of_mem():
    env = make_environment(capacity=16)
    program = syn.Assign(syn.Var("p1"),
                         syn.CastTo(syn.TPtr(syn.TInt()), syn.Malloc(syn.IntLit(600))))
    assert run(env, program) is Outcome.OUT_OF_MEM


def test_metadata_survives_casts():
    """Cast round-trip keeps bounds: int* -> node* -> int* still usable."""
    env = make_environment()
    int_ptr = syn.TPtr(syn.TInt())
    node_ptr = syn.TPtr(syn.TNamed("node"))
    program = syn.Seq(
        syn.Seq(
            syn.Assign(syn.Var("p1"), syn.CastTo(int_ptr, syn.Malloc(syn.IntLit(2)))),
            syn.Assign(syn.Var("p2"),
                       syn.CastTo(int_ptr, syn.CastTo(node_ptr, syn.Read(syn.Var("p1"))))),
        ),
        syn.Assign(syn.Deref(syn.Var("p2")), syn.IntLit(5)),
    )
    assert run(env, program) is Outcome.OK
