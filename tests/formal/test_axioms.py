"""Property tests for the Table 2 memory axioms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formal.machine_axioms import FormalMemory


def mem_with_block(size=8):
    mem = FormalMemory(capacity=256)
    base = mem.malloc(size)
    return mem, base


@given(st.integers(min_value=0, max_value=7), st.integers())
def test_read_after_write_returns_stored_value(offset, value):
    mem, base = mem_with_block()
    datum = (value, 0, 0)
    assert mem.write(base + offset, datum)
    assert mem.read(base + offset) == datum


@given(st.integers(min_value=0, max_value=7),
       st.integers(min_value=0, max_value=7), st.integers())
def test_write_does_not_affect_other_locations(target, other, value):
    mem, base = mem_with_block()
    before = mem.read(base + other)
    mem.write(base + target, (value, 0, 0))
    if other != target:
        assert mem.read(base + other) == before


@given(st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=10))
def test_malloc_returns_fresh_unallocated_regions(sizes):
    mem = FormalMemory(capacity=1024)
    seen = set()
    for size in sizes:
        base = mem.malloc(size)
        assert base is not None
        block = set(range(base, base + size))
        assert not (block & seen), "malloc returned already-allocated memory"
        seen |= block


@given(st.integers(min_value=1, max_value=16), st.integers())
def test_malloc_preserves_existing_contents(size, value):
    mem, base = mem_with_block()
    mem.write(base, (value, 0, 0))
    snapshot = mem.read(base)
    mem.malloc(size)
    assert mem.read(base) == snapshot


def test_read_unallocated_returns_none():
    mem = FormalMemory()
    assert mem.read(9999) is None
    assert mem.read(0) is None  # NULL is never allocated


def test_write_unallocated_returns_none():
    mem = FormalMemory()
    assert mem.write(9999, (1, 0, 0)) is None


def test_malloc_fails_when_exhausted():
    mem = FormalMemory(capacity=16)
    assert mem.malloc(32) is None
    assert mem.malloc(16) is not None
    assert mem.malloc(1) is None


def test_malloc_nonpositive_fails():
    mem = FormalMemory()
    assert mem.malloc(0) is None
    assert mem.malloc(-3) is None


def test_fresh_block_zero_initialized():
    mem, base = mem_with_block(4)
    for i in range(4):
        assert mem.read(base + i) == (0, 0, 0)


def test_null_guard_addresses_below_min():
    mem = FormalMemory(min_addr=16)
    base = mem.malloc(4)
    assert base >= 16
