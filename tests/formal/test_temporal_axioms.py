"""Property tests for the lock-and-key temporal axioms.

The spatial fragment axiomatizes read/write/malloc (Table 2); the
temporal extension adds ``free`` and the lock store, with definedness
requiring a live lock.  These tests pin the axioms the temporal
subsystem's soundness rests on, hypothesis-style like the spatial ones.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.formal import semantics, syntax as syn
from repro.formal.machine_axioms import FormalMemory
from repro.formal.semantics import Environment, Evaluator, Outcome

sizes = st.lists(st.integers(min_value=1, max_value=16),
                 min_size=1, max_size=12)


# -- memory-level axioms -----------------------------------------------------


@given(sizes)
def test_malloc_keys_are_fresh_forever(allocation_sizes):
    """Every malloc'd block carries a key no earlier block ever had —
    even across free and address reuse."""
    mem = FormalMemory(capacity=1024, reuse=True)
    seen_keys = set()
    for i, size in enumerate(allocation_sizes):
        base = mem.malloc(size)
        key, _lock = mem.lock_of(base)
        assert key not in seen_keys, "key reused"
        seen_keys.add(key)
        if i % 2 == 0:
            mem.free(base)


@given(st.integers(min_value=1, max_value=16))
def test_lock_live_while_allocated_dead_after_free(size):
    mem = FormalMemory(capacity=256)
    base = mem.malloc(size)
    key, lock = mem.lock_of(base)
    assert mem.lock_live(key, lock)
    assert mem.free(base)
    assert not mem.lock_live(key, lock)


@given(st.integers(min_value=1, max_value=16),
       st.integers(min_value=0, max_value=15))
def test_freed_locations_are_inaccessible(size, offset):
    """After free, read and write fail on every location of the block
    (the no-reuse memory's half of temporal safety)."""
    mem = FormalMemory(capacity=256)
    base = mem.malloc(size)
    mem.free(base)
    loc = base + (offset % size)
    assert mem.read(loc) is None
    assert mem.write(loc, (1, 0, 0)) is None


@given(st.integers(min_value=1, max_value=16))
def test_double_free_fails(size):
    mem = FormalMemory(capacity=256)
    base = mem.malloc(size)
    assert mem.free(base)
    assert mem.free(base) is None


@given(sizes)
def test_recycled_lock_slot_never_resurrects_a_dead_key(allocation_sizes):
    """The key-collision axiom: a dead (key, lock) pair stays dead even
    when later allocations recycle the same lock slot."""
    mem = FormalMemory(capacity=2048, reuse=True)
    base = mem.malloc(8)
    dead_key, dead_lock = mem.lock_of(base)
    mem.free(base)
    for size in allocation_sizes:
        fresh = mem.malloc(size)
        assert fresh is not None
        assert not mem.lock_live(dead_key, dead_lock)
        key, lock = mem.lock_of(fresh)
        assert mem.lock_live(key, lock)


@given(st.integers(min_value=1, max_value=16))
def test_reuse_hands_out_freed_addresses_with_new_identity(size):
    """With reuse on, the freed address range may come back — as a new
    block with a new key: address equality is not object identity."""
    mem = FormalMemory(capacity=256, reuse=True)
    base = mem.malloc(size)
    old_key, old_lock = mem.lock_of(base)
    mem.free(base)
    again = mem.malloc(size)
    assert again == base  # the range was recycled
    new_key, new_lock = mem.lock_of(again)
    assert new_key != old_key
    assert not mem.lock_live(old_key, old_lock)
    assert mem.lock_live(new_key, new_lock)


# -- semantics-level: definedness requires a live lock -----------------------


def _uaf_program():
    """p = malloc(8); free(p); *p = 1 — the canonical UAF."""
    return [
        syn.Assign(syn.Var("p"), syn.Malloc(syn.IntLit(8))),
        syn.Free(syn.Read(syn.Var("p"))),
        syn.Assign(syn.Deref(syn.Var("p")), syn.IntLit(1)),
    ]


def _run_steps(env, steps, instrumented, temporal):
    evaluator = Evaluator(env, instrumented=instrumented, temporal=temporal)
    for step in steps:
        outcome = evaluator.run_command(step)
        if outcome is not Outcome.OK:
            return outcome
    return Outcome.OK


def _temporal_env(reuse=False):
    env = Environment(capacity=512, reuse=reuse)
    env.declare("p", syn.TPtr(syn.TInt()))
    return env


def test_instrumented_semantics_aborts_use_after_free():
    outcome = _run_steps(_temporal_env(), _uaf_program(),
                         instrumented=True, temporal=True)
    assert outcome is Outcome.ABORT


def test_plain_semantics_is_undefined_on_use_after_free():
    outcome = _run_steps(_temporal_env(), _uaf_program(),
                         instrumented=False, temporal=True)
    assert outcome is Outcome.STUCK


def test_uaf_is_undefined_even_when_memory_is_reused():
    """The crux: with address reuse the freed location is readable
    again, so per-location accessibility alone would call the UAF
    defined — only the lock premise rules it out."""
    env = _temporal_env(reuse=True)
    steps = _uaf_program()
    # Interleave a re-allocation between free and the stale write so
    # the address is allocated again when the deref evaluates.
    steps.insert(2, syn.Assign(syn.Var("q"), syn.Malloc(syn.IntLit(8))))
    env.declare("q", syn.TPtr(syn.TInt()))
    for instrumented, expected in ((True, Outcome.ABORT),
                                   (False, Outcome.STUCK)):
        env2 = _temporal_env(reuse=True)
        env2.declare("q", syn.TPtr(syn.TInt()))
        outcome = _run_steps(env2, steps, instrumented=instrumented,
                             temporal=True)
        assert outcome is expected, (instrumented, outcome)


def test_double_free_aborts_instrumented():
    steps = [
        syn.Assign(syn.Var("p"), syn.Malloc(syn.IntLit(8))),
        syn.Free(syn.Read(syn.Var("p"))),
        syn.Free(syn.Read(syn.Var("p"))),
    ]
    assert _run_steps(_temporal_env(), steps,
                      instrumented=True, temporal=True) is Outcome.ABORT
    assert _run_steps(_temporal_env(), steps,
                      instrumented=False, temporal=True) is Outcome.STUCK


def test_live_program_runs_identically_with_temporal_premise():
    """No false positives: a correct malloc/use/free sequence is OK
    under both semantics, with and without the temporal premise."""
    steps = [
        syn.Assign(syn.Var("p"), syn.Malloc(syn.IntLit(8))),
        syn.Assign(syn.Deref(syn.Var("p")), syn.IntLit(7)),
        syn.Assign(syn.Var("x"), syn.Read(syn.Deref(syn.Var("p")))),
        syn.Free(syn.Read(syn.Var("p"))),
    ]
    for temporal in (False, True):
        for instrumented in (False, True):
            env = Environment(capacity=512)
            env.declare("p", syn.TPtr(syn.TInt()))
            env.declare("x", syn.TInt())
            outcome = _run_steps(env, steps, instrumented=instrumented,
                                 temporal=temporal)
            assert outcome is Outcome.OK, (temporal, instrumented, outcome)


@given(st.integers(min_value=1, max_value=8))
def test_agreement_on_temporally_safe_programs(size):
    """The paper's agreement property, temporal edition: for programs
    without temporal errors the instrumented semantics agrees with the
    plain one."""
    steps = [
        syn.Assign(syn.Var("p"), syn.Malloc(syn.IntLit(size * 4))),
        syn.Assign(syn.Deref(syn.Var("p")), syn.IntLit(size)),
        syn.Assign(syn.Var("x"), syn.Read(syn.Deref(syn.Var("p")))),
        syn.Free(syn.Read(syn.Var("p"))),
    ]
    outcomes = []
    for instrumented in (False, True):
        env = Environment(capacity=512)
        env.declare("p", syn.TPtr(syn.TInt()))
        env.declare("x", syn.TInt())
        outcomes.append(_run_steps(env, steps, instrumented=instrumented,
                                   temporal=True))
    assert outcomes[0] == outcomes[1] == Outcome.OK
