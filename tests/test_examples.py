"""Smoke tests: every example script must run to completion.

Each example asserts its own claims internally (detection happened,
exit codes match, no false positives), so importing and running them is
a real end-to-end check of the public API surface they use.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    module = load_example(path)
    assert hasattr(module, "main"), f"{path.name} must define main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} should narrate what it demonstrates"


def test_all_examples_are_covered():
    assert len(EXAMPLE_FILES) >= 7
