"""Warm pool semantics against real worker subprocesses: results,
deadline kills, crash respawn+retry, and the worker-side cache stack."""

import os

import pytest

from repro.api.profiles import as_profile
from repro.serve.qos import DEFAULT_BUDGET
from repro.serve.workers import (
    CRASH,
    OK,
    TIMEOUT,
    WarmPool,
    compile_coalesced,
    compiled_fingerprint,
    execute_serve_request,
)

pytestmark = pytest.mark.skipif(os.name != "posix",
                                reason="POSIX subprocess pool drills")

SOURCE = """\
#include <stdio.h>
int main(void) {
    int a[4]; int i; int sum = 0;
    for (i = 0; i < 4; i++) a[i] = i + 1;
    for (i = 0; i < 4; i++) sum += a[i];
    printf("sum=%d\\n", sum);
    return 0;
}
"""


def payload(**overrides):
    base = {"mode": "run", "name": "t", "source": SOURCE,
            "profile": "spatial", "opt": True, "input": b"",
            "entry": "main", "engine": None, "budget": DEFAULT_BUDGET,
            "store_dir": None}
    base.update(overrides)
    return base


class TestExecuteServeRequest:
    """The worker-side function, run in-process for speed."""

    def test_clean_run(self):
        result = execute_serve_request(payload())
        assert result["cli_exit"] == 0
        assert result["row"]["output"] == "sum=10\n"
        assert result["row"]["trap"] is None
        assert result["pid"] == os.getpid()

    def test_compile_error_maps_to_exit_4(self):
        result = execute_serve_request(payload(source="int main( {"))
        assert result["cli_exit"] == 4
        assert "compile error" in result["error"]

    def test_budget_exhaustion_traps_resource_limit(self):
        loop = "int main(void) { int x = 0; while (1) { x++; } return x; }"
        result = execute_serve_request(payload(source=loop, profile="none",
                                               budget=50_000))
        assert result["cli_exit"] == 5
        assert result["row"]["trap"]["kind"] == "resource_limit"

    def test_memory_cache_hit_on_repeat(self):
        first = execute_serve_request(payload())
        again = execute_serve_request(payload())
        assert first["row"]["cache"]["origin"] in ("compile", "memory")
        assert again["row"]["cache"]["origin"] == "memory"

    def test_compile_mode_skips_execution(self, tmp_path):
        result = execute_serve_request(payload(
            mode="compile", store_dir=str(tmp_path / "store")))
        assert result["cli_exit"] == 0
        assert len(result["row"]["key"]) == 64
        assert len(result["row"]["output"]) == 64  # the fingerprint


class TestCoalescedCompile:
    def test_no_store_compiles(self):
        compiled, origin, fingerprint = compile_coalesced(
            SOURCE, as_profile("spatial"))
        assert origin == "compile"
        assert fingerprint == compiled_fingerprint(compiled)
        assert len(fingerprint) == 64

    def test_store_roundtrip(self, tmp_path):
        from repro.store import ArtifactStore

        store = ArtifactStore(str(tmp_path / "store"))
        profile = as_profile("spatial")
        cold, origin_cold, fp_cold = compile_coalesced(
            SOURCE, profile, store=store)
        warm, origin_warm, fp_warm = compile_coalesced(
            SOURCE, profile, store=store)
        assert (origin_cold, origin_warm) == ("compile", "store")
        # Both fingerprints are the store entry's payload digest, so
        # winner and loader agree byte-for-byte.
        assert fp_cold == fp_warm
        assert len(fp_cold) == 64


class TestWarmPool:
    def test_submit_resolves_ok(self):
        with WarmPool(workers=1).start() as pool:
            outcome = pool.submit(payload()).result(timeout=120)
            assert outcome.status == OK
            assert outcome.value["row"]["output"] == "sum=10\n"
            # The work ran in the worker subprocess, not in-process.
            assert outcome.value["pid"] != os.getpid()
            assert outcome.value["pid"] in pool.worker_pids()

    def test_concurrent_submissions_all_resolve(self):
        with WarmPool(workers=2).start() as pool:
            futures = [pool.submit(payload(name=f"r{n}"))
                       for n in range(6)]
            outcomes = [f.result(timeout=240) for f in futures]
            assert all(o.status == OK for o in outcomes)
            outputs = {o.value["row"]["output"] for o in outcomes}
            assert outputs == {"sum=10\n"}

    def test_hang_resolves_timeout_and_respawns(self):
        with WarmPool(workers=1, deadline=3.0).start() as pool:
            hung = pool.submit(payload(test_fault="hang"))
            outcome = hung.result(timeout=60)
            assert outcome.status == TIMEOUT
            # The pool respawned the worker: the next request succeeds.
            healed = pool.submit(payload()).result(timeout=120)
            assert healed.status == OK

    def test_worker_death_retries_then_crash(self):
        with WarmPool(workers=1).start() as pool:
            # The fault rides the payload, so the retry dies too:
            # after the single infra retry the outcome is CRASH.
            outcome = pool.submit(
                payload(test_fault="exit")).result(timeout=120)
            assert outcome.status == CRASH
            assert outcome.attempts == 2
            healed = pool.submit(payload()).result(timeout=120)
            assert healed.status == OK

    def test_closed_pool_rejects_submissions(self):
        pool = WarmPool(workers=1).start()
        pool.close()
        from repro.serve.workers import PoolClosed

        with pytest.raises(PoolClosed):
            pool.submit(payload())
