"""HTTP front-end: request validation, the status mapping, and one
in-process daemon drill for routing/introspection endpoints."""

import json
import os
import urllib.error
import urllib.request

import pytest

from repro.api import UsageError
from repro.serve.qos import DEFAULT_BUDGET, QosPolicy
from repro.serve.server import (
    OUTCOME_FOR_EXIT,
    STATUS_FOR_EXIT,
    validate_request,
)

SOURCE = "int main(void) { return 0; }"


class TestStatusMapping:
    def test_every_cli_exit_code_has_a_status(self):
        assert STATUS_FOR_EXIT == {0: 200, 2: 403, 3: 403, 4: 422,
                                   5: 500, 64: 400}
        assert set(OUTCOME_FOR_EXIT) == set(STATUS_FOR_EXIT)


class TestValidateRequest:
    def test_minimal_run_request(self):
        payload = validate_request({"source": SOURCE})
        assert payload["profile"] == "none"
        assert payload["budget"] == DEFAULT_BUDGET
        assert payload["input"] == b""
        assert payload["mode"] == "run"

    def test_unknown_field_rejected(self):
        with pytest.raises(UsageError, match="profle"):
            validate_request({"source": SOURCE, "profle": "spatial"})

    def test_unknown_profile_rejected(self):
        with pytest.raises(UsageError, match="registered"):
            validate_request({"source": SOURCE, "profile": "bogus"})

    def test_source_required(self):
        with pytest.raises(UsageError, match="source"):
            validate_request({"profile": "spatial"})
        with pytest.raises(UsageError, match="source"):
            validate_request({"source": "   "})

    def test_non_object_body_rejected(self):
        with pytest.raises(UsageError, match="JSON object"):
            validate_request([1, 2, 3])

    def test_check_route_selects_profile(self):
        assert validate_request({"source": SOURCE},
                                route="/check")["profile"] == "spatial"
        assert validate_request({"source": SOURCE, "temporal": True},
                                route="/check")["profile"] == "temporal"

    def test_check_route_rejects_explicit_profile(self):
        with pytest.raises(UsageError, match="/check"):
            validate_request({"source": SOURCE, "profile": "full"},
                             route="/check")

    def test_temporal_field_is_check_only(self):
        with pytest.raises(UsageError, match="temporal"):
            validate_request({"source": SOURCE, "temporal": True})

    def test_compile_route_sets_mode(self):
        payload = validate_request({"source": SOURCE, "profile": "full"},
                                   route="/compile")
        assert payload["mode"] == "compile"

    def test_input_utf8(self):
        payload = validate_request({"source": SOURCE, "input": "hi\n"})
        assert payload["input"] == b"hi\n"

    def test_input_b64(self):
        payload = validate_request({"source": SOURCE,
                                    "input_b64": "AAEC"})
        assert payload["input"] == b"\x00\x01\x02"

    def test_input_b64_invalid(self):
        with pytest.raises(UsageError, match="base64"):
            validate_request({"source": SOURCE, "input_b64": "!!!"})

    def test_input_and_b64_conflict(self):
        with pytest.raises(UsageError, match="not both"):
            validate_request({"source": SOURCE, "input": "x",
                              "input_b64": "eA=="})

    def test_budget_validated_through_qos(self):
        qos = QosPolicy(max_budget=100)
        assert validate_request({"source": SOURCE, "budget": 50},
                                qos=qos)["budget"] == 50
        with pytest.raises(UsageError, match="ceiling"):
            validate_request({"source": SOURCE, "budget": 101}, qos=qos)

    def test_engine_validated(self):
        payload = validate_request({"source": SOURCE, "engine": "interp"})
        assert payload["engine"] == "interp"
        with pytest.raises(UsageError, match="engine"):
            validate_request({"source": SOURCE, "engine": "jit"})

    def test_test_fault_gated_behind_flag(self):
        with pytest.raises(UsageError, match="allow-test-faults"):
            validate_request({"source": SOURCE, "test_fault": "hang"})
        payload = validate_request({"source": SOURCE,
                                    "test_fault": "hang"},
                                   allow_test_faults=True)
        assert payload["test_fault"] == "hang"
        with pytest.raises(UsageError, match="test_fault"):
            validate_request({"source": SOURCE, "test_fault": "fire"},
                             allow_test_faults=True)


@pytest.mark.skipif(os.name != "posix",
                    reason="POSIX daemon integration drill")
class TestDaemonEndToEnd:
    """One shared in-process daemon; the heavier chaos drills live in
    the serve-smoke CI leg (scripts/ci.py --serve-smoke)."""

    @pytest.fixture(scope="class")
    def daemon(self, tmp_path_factory):
        from repro.api.env import resolve_serve
        from repro.serve.server import BackgroundDaemon

        store = str(tmp_path_factory.mktemp("serve-store"))
        config = resolve_serve(host="127.0.0.1", port=0, workers=2,
                               queue=8)
        with BackgroundDaemon(config=config, store_dir=store) as running:
            yield running

    def _post(self, daemon, path, doc):
        request = urllib.request.Request(
            f"http://127.0.0.1:{daemon.port}{path}",
            data=json.dumps(doc).encode(), method="POST")
        try:
            with urllib.request.urlopen(request, timeout=120) as resp:
                return resp.status, json.loads(resp.read()), \
                    dict(resp.headers)
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), \
                dict(error.headers)

    def _get(self, daemon, path):
        with urllib.request.urlopen(
                f"http://127.0.0.1:{daemon.port}{path}",
                timeout=30) as resp:
            return resp.status, json.loads(resp.read())

    def test_run_report_matches_api(self, daemon):
        source = ('#include <stdio.h>\n'
                  'int main(void) { printf("hello\\n"); return 7; }')
        status, row, headers = self._post(daemon, "/run",
                                          {"source": source,
                                           "profile": "spatial",
                                           "name": "hello"})
        assert status == 200
        assert headers["X-Repro-Exit-Code"] == "7"
        assert row["output"] == "hello\n"
        from repro.api import run_source

        report = run_source(source, profile="spatial",
                            name="hello").to_json()
        for noisy in ("wallclock_seconds", "cache", "obs", "output"):
            row.pop(noisy, None)
            report.pop(noisy, None)
        assert row == report

    def test_detection_is_403(self, daemon):
        status, row, headers = self._post(
            daemon, "/check",
            {"source": "int main(void) { int a[2]; a[5] = 1; return 0; }"})
        assert status == 403
        assert row["trap"]["kind"] == "spatial_violation"
        assert headers["X-Repro-Exit-Code"] == "2"

    def test_malformed_json_is_400(self, daemon):
        request = urllib.request.Request(
            f"http://127.0.0.1:{daemon.port}/run", data=b"{oops",
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_unknown_path_404_and_bad_method_405(self, daemon):
        status, body, _ = self._post(daemon, "/nope", {"source": SOURCE})
        assert status == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"http://127.0.0.1:{daemon.port}/run", timeout=30)
        assert excinfo.value.code == 405

    def test_healthz(self, daemon):
        status, health = self._get(daemon, "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert len(health["worker_pids"]) == 2
        assert health["queue_limit"] == 8
        assert "spatial" in health["profiles"]

    def test_metrics_counts_requests(self, daemon):
        self._post(daemon, "/run", {"source": SOURCE, "profile": "none"})
        status, metrics = self._get(daemon, "/metrics")
        assert status == 200
        series = metrics["series"]
        assert series.get("repro_serve_requests_total{outcome=ok}", 0) >= 1
        assert series.get("repro_serve_request_seconds_count", 0) >= 1
        assert "request_seconds_p50" in metrics["derived"]
        assert "request_seconds_p99" in metrics["derived"]

    def test_store_shared_across_workers(self, daemon):
        doc = {"source": "int main(void) { return 41; }",
               "profile": "full"}
        origins = []
        for _ in range(4):
            _, row, _ = self._post(daemon, "/run", doc)
            origins.append(row["cache"]["origin"])
        assert origins[0] == "compile"
        assert set(origins[1:]) <= {"memory", "store"}
