"""QoS policy semantics: budgets resolve or reject, admission sheds."""

import pytest

from repro.api import UsageError
from repro.serve.qos import (
    DEFAULT_BUDGET,
    MAX_BUDGET,
    AdmissionError,
    QosPolicy,
)


class TestBudgets:
    def test_none_means_default(self):
        assert QosPolicy().resolve_budget(None) == DEFAULT_BUDGET

    def test_explicit_value_passes_through(self):
        assert QosPolicy().resolve_budget(1234) == 1234

    def test_ceiling_is_inclusive(self):
        assert QosPolicy().resolve_budget(MAX_BUDGET) == MAX_BUDGET

    def test_past_ceiling_is_rejected_not_clamped(self):
        with pytest.raises(UsageError, match="ceiling"):
            QosPolicy().resolve_budget(MAX_BUDGET + 1)

    @pytest.mark.parametrize("bad", [0, -5])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(UsageError, match="positive"):
            QosPolicy().resolve_budget(bad)

    @pytest.mark.parametrize("bad", ["1000", 1.5, True])
    def test_non_integer_rejected(self, bad):
        with pytest.raises(UsageError, match="integer"):
            QosPolicy().resolve_budget(bad)

    def test_custom_policy_bounds(self):
        policy = QosPolicy(default_budget=10, max_budget=20)
        assert policy.resolve_budget(None) == 10
        assert policy.resolve_budget(20) == 20
        with pytest.raises(UsageError):
            policy.resolve_budget(21)


class TestAdmission:
    def test_below_bound_admits(self):
        QosPolicy(queue_limit=4).admit(3)  # no raise

    def test_at_bound_sheds(self):
        with pytest.raises(AdmissionError) as excinfo:
            QosPolicy(queue_limit=4).admit(4)
        assert (excinfo.value.depth, excinfo.value.limit) == (4, 4)

    def test_policy_is_shareable_frozen_state(self):
        with pytest.raises(Exception):
            QosPolicy().queue_limit = 99
