"""Load-mix construction and result math — no daemon required."""

import pytest

from repro.serve.loadgen import (
    DEFAULT_SEED,
    LoadResult,
    RequestSample,
    build_mix,
)


class TestBuildMix:
    def test_deterministic_for_a_seed(self):
        first = build_mix(seed=DEFAULT_SEED)
        second = build_mix(seed=DEFAULT_SEED)
        assert [item.name for item in first] == \
            [item.name for item in second]

    def test_seed_changes_order_not_membership(self):
        first = build_mix(seed=1)
        second = build_mix(seed=2)
        assert [i.name for i in first] != [i.name for i in second]
        assert sorted(i.name for i in first) == \
            sorted(i.name for i in second)

    def test_all_categories_present(self):
        categories = {item.category for item in build_mix()}
        assert {"server", "attack", "bugbench", "malformed"} <= categories

    def test_repeats_multiply_the_mix(self):
        base = build_mix(repeats=1)
        doubled = build_mix(repeats=2)
        assert len(doubled) == 2 * len(base)

    def test_sections_can_be_disabled(self):
        mix = build_mix(servers=False, attacks=0, bugs=0, malformed=True)
        assert {item.category for item in mix} == {"malformed"}

    def test_attack_items_expect_403(self):
        for item in build_mix(servers=False, bugs=0, malformed=False):
            assert item.expect_status == (403,)
            assert item.route == "/run"


class TestLoadResult:
    def _result(self, latencies, category="server", ok=True):
        samples = [RequestSample(name=f"s{n}", category=category,
                                 status=200, seconds=sec, ok=ok,
                                 detail="")
                   for n, sec in enumerate(latencies)]
        return LoadResult(samples=samples, wall_seconds=2.0)

    def test_requests_per_second(self):
        result = self._result([0.1] * 10)
        assert result.requests_per_second == pytest.approx(5.0)

    def test_percentile_nearest_rank(self):
        result = self._result([0.01 * n for n in range(1, 101)])
        assert result.percentile(0.5) == pytest.approx(0.5)
        # The estimator rounds the rank up at the tail — a p99 that
        # overstates latency is safe, one that understates is not.
        assert result.percentile(0.99) >= 0.99
        assert result.percentile(1.0) == pytest.approx(1.0)

    def test_percentile_empty_category(self):
        result = self._result([0.1], category="server")
        assert result.percentile(0.5, category="attack") == 0.0

    def test_errors_counted(self):
        good = self._result([0.1] * 3)
        bad = self._result([0.1] * 2, ok=False)
        merged = LoadResult(samples=good.samples + bad.samples,
                            wall_seconds=1.0)
        assert len(merged.errors) == 2
        assert all(not sample.ok for sample in merged.errors)

    def test_by_category_partitions(self):
        servers = self._result([0.1] * 3).samples
        attacks = self._result([0.2] * 2, category="attack").samples
        merged = LoadResult(samples=servers + attacks, wall_seconds=1.0)
        grouped = merged.by_category()
        assert len(grouped["server"]) == 3
        assert len(grouped["attack"]) == 2
