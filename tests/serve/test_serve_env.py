"""resolve_serve: flag > environment > default, usage errors on junk."""

import pytest

from repro.api import ResolvedServe, UsageError, resolve_serve
from repro.api.env import (
    DEFAULT_SERVE_HOST,
    DEFAULT_SERVE_PORT,
    DEFAULT_SERVE_QUEUE,
    DEFAULT_SERVE_WORKERS,
)


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    for var in ("REPRO_SERVE_HOST", "REPRO_SERVE_PORT",
                "REPRO_SERVE_WORKERS", "REPRO_SERVE_QUEUE"):
        monkeypatch.delenv(var, raising=False)


class TestDefaults:
    def test_all_defaults(self):
        resolved = resolve_serve()
        assert resolved == ResolvedServe(
            host=DEFAULT_SERVE_HOST, port=DEFAULT_SERVE_PORT,
            workers=DEFAULT_SERVE_WORKERS, queue=DEFAULT_SERVE_QUEUE)

    def test_default_is_loopback(self):
        # An untrusted-C execution service must never default to a
        # routable bind address.
        assert resolve_serve().host == "127.0.0.1"


class TestPrecedence:
    def test_environment_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_HOST", "0.0.0.0")
        monkeypatch.setenv("REPRO_SERVE_PORT", "8080")
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "7")
        monkeypatch.setenv("REPRO_SERVE_QUEUE", "99")
        assert resolve_serve() == ResolvedServe(
            host="0.0.0.0", port=8080, workers=7, queue=99)

    def test_flag_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "8080")
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "7")
        resolved = resolve_serve(port="9090", workers=3)
        assert (resolved.port, resolved.workers) == (9090, 3)

    def test_empty_environment_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "")
        assert resolve_serve().workers == DEFAULT_SERVE_WORKERS

    def test_string_flags_accepted(self):
        # argparse hands flags over as strings.
        assert resolve_serve(port="0", workers="2", queue="16") \
            == resolve_serve()


class TestUsageErrors:
    @pytest.mark.parametrize("field,value", [
        ("port", "eighty"), ("workers", "many"), ("queue", "1.5"),
    ])
    def test_non_integer_is_usage_error(self, field, value):
        with pytest.raises(UsageError, match="must be an integer"):
            resolve_serve(**{field: value})

    @pytest.mark.parametrize("field,value", [
        ("port", -1), ("port", 65536),
        ("workers", 0), ("workers", 65),
        ("queue", 0), ("queue", 4097),
    ])
    def test_out_of_range_is_usage_error(self, field, value):
        with pytest.raises(UsageError, match="must be between"):
            resolve_serve(**{field: value})

    def test_bad_environment_is_usage_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "http")
        with pytest.raises(UsageError, match="REPRO_SERVE_PORT"):
            resolve_serve()

    def test_error_names_the_source(self):
        with pytest.raises(UsageError, match="from flag"):
            resolve_serve(workers="lots")
