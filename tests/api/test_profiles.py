"""ProtectionProfile registry and round-trip tests."""

import pickle
from dataclasses import replace

import pytest

from repro.api import PROFILES, ProtectionProfile, all_profiles, as_profile
from repro.baselines.mscc import MSCC_CONFIG
from repro.softbound.config import (
    FULL_HASH,
    FULL_SHADOW,
    STORE_HASH,
    STORE_SHADOW,
    TEMPORAL_SHADOW,
    SoftBoundConfig,
)


class TestRegistry:
    def test_covers_every_previously_reachable_variant(self):
        """Every config the CLI/harness/benchmarks used to hand-build
        has a registered name."""
        names = set(PROFILES)
        assert {"none", "spatial", "spatial-hash", "spatial-store-only",
                "store-only-hash", "temporal", "temporal-hash", "full",
                "mscc", "fatptr-naive", "fatptr-wild", "valgrind",
                "mudflap", "jones-kelly"} <= names

    def test_figure2_grid_is_reachable_by_name(self):
        assert PROFILES["spatial"].config == FULL_SHADOW
        assert PROFILES["spatial-hash"].config == FULL_HASH
        assert PROFILES["spatial-store-only"].config == STORE_SHADOW
        assert PROFILES["store-only-hash"].config == STORE_HASH
        assert PROFILES["temporal"].config == TEMPORAL_SHADOW

    def test_baseline_profiles_carry_observers_or_variants(self):
        assert PROFILES["valgrind"].observer_factory is not None
        assert PROFILES["mudflap"].observer_factory is not None
        assert PROFILES["jones-kelly"].observer_factory is not None
        assert PROFILES["mscc"].config == MSCC_CONFIG
        assert PROFILES["fatptr-naive"].config.variant == "fatptr_naive"
        assert PROFILES["fatptr-wild"].config.variant == "fatptr_wild"

    def test_full_profile_enables_every_check(self):
        config = PROFILES["full"].config
        assert config.temporal and config.encode_fnptr_signature

    def test_profiles_are_picklable(self):
        for profile in all_profiles():
            clone = pickle.loads(pickle.dumps(profile))
            assert clone == profile


class TestFromName:
    def test_round_trips_every_registered_profile(self):
        for profile in all_profiles():
            assert ProtectionProfile.from_name(profile.name) is profile

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="spatial"):
            ProtectionProfile.from_name("nope")


class TestFromFlags:
    def test_no_flags_is_none_profile(self):
        assert ProtectionProfile.from_flags() is PROFILES["none"]

    def test_softbound_is_spatial(self):
        assert ProtectionProfile.from_flags(softbound=True) \
            is PROFILES["spatial"]

    def test_store_only_implies_softbound(self):
        assert ProtectionProfile.from_flags(store_only=True) \
            is PROFILES["spatial-store-only"]

    def test_hash_table_implies_softbound(self):
        assert ProtectionProfile.from_flags(hash_table=True) \
            is PROFILES["spatial-hash"]

    def test_store_only_hash(self):
        assert ProtectionProfile.from_flags(store_only=True, hash_table=True) \
            is PROFILES["store-only-hash"]

    def test_temporal_implies_softbound(self):
        assert ProtectionProfile.from_flags(temporal=True) \
            is PROFILES["temporal"]

    def test_temporal_hash(self):
        assert ProtectionProfile.from_flags(temporal=True, hash_table=True) \
            is PROFILES["temporal-hash"]

    def test_fnptr_plus_temporal_is_full(self):
        assert ProtectionProfile.from_flags(temporal=True,
                                            fnptr_signatures=True) \
            is PROFILES["full"]

    def test_unregistered_combination_builds_custom_profile(self):
        profile = ProtectionProfile.from_flags(softbound=True,
                                               shrink_bounds=False)
        assert profile.name.startswith("custom-")
        assert profile.config.shrink_bounds is False
        # Round-trip through the flag axes the profile encodes.
        assert profile.config == SoftBoundConfig(shrink_bounds=False)


class TestFromConfig:
    def test_none_is_none_profile(self):
        assert ProtectionProfile.from_config(None) is PROFILES["none"]

    def test_registered_config_canonicalizes(self):
        assert ProtectionProfile.from_config(FULL_SHADOW) \
            is PROFILES["spatial"]
        assert ProtectionProfile.from_config(SoftBoundConfig()) \
            is PROFILES["spatial"]
        assert ProtectionProfile.from_config(MSCC_CONFIG) is PROFILES["mscc"]

    def test_ablation_variant_stays_distinct(self):
        """Configs differing only in fields the label omits must not be
        conflated with the registered profile."""
        ablated = replace(FULL_SHADOW, loop_optimize=False)
        profile = ProtectionProfile.from_config(ablated)
        assert profile is not PROFILES["spatial"]
        assert profile.config.loop_optimize is False

    def test_registered_observer_factory_canonicalizes(self):
        from repro.baselines import ValgrindChecker

        profile = ProtectionProfile.from_config(None, ValgrindChecker)
        assert profile is PROFILES["valgrind"]
        observers = profile.make_observers()
        assert len(observers) == 1
        assert isinstance(observers[0], ValgrindChecker)
        # Fresh instance per call (observers carry per-run state).
        assert profile.make_observers()[0] is not observers[0]

    def test_unregistered_observer_factory_builds_custom_profile(self):
        class HomemadeChecker:
            pass

        profile = ProtectionProfile.from_config(None, HomemadeChecker)
        assert profile.name.startswith("custom-")
        assert isinstance(profile.make_observers()[0], HomemadeChecker)


class TestAsProfile:
    def test_accepts_profile_name_config_and_none(self):
        assert as_profile("temporal") is PROFILES["temporal"]
        assert as_profile(PROFILES["spatial"]) is PROFILES["spatial"]
        assert as_profile(FULL_SHADOW) is PROFILES["spatial"]
        assert as_profile(None) is PROFILES["none"]
