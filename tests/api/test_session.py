"""Session tests: compile caching, structured reports, batch execution."""

import pickle

import pytest

from repro.api import BatchReport, RunReport, RunRequest, Session, run_source

CLEAN = r'''
int main(void) {
    int a[4];
    for (int i = 0; i < 4; i++) a[i] = i;
    printf("sum %d\n", a[0] + a[1] + a[2] + a[3]);
    return 6;
}
'''

OVERFLOW = r'''
int main(void) {
    char b[4];
    strcpy(b, "definitely too long");
    return 0;
}
'''

UAF = r'''
int main(void) {
    long *p = (long *)malloc(16);
    free(p);
    p[0] = 1;
    return 0;
}
'''


class TestCompileCache:
    def test_repeat_compiles_hit_the_cache(self):
        session = Session()
        first = session.compile(CLEAN, "spatial")
        assert session.compile(CLEAN, "spatial") is first
        assert session.cached_programs == 1

    def test_cache_keyed_by_profile_and_opt_level(self):
        session = Session()
        a = session.compile(CLEAN, "spatial")
        b = session.compile(CLEAN, "temporal")
        c = session.compile(CLEAN, "none")
        assert a is not b and b is not c
        assert session.cached_programs == 3
        unoptimized = Session(optimize=False)
        assert unoptimized.compile(CLEAN, "spatial") is not a

    def test_observer_profiles_share_the_uninstrumented_compile(self):
        """Observers attach at run time, so all observer-based profiles
        are cache hits against the plain build."""
        session = Session()
        plain = session.compile(CLEAN, "none")
        assert session.compile(CLEAN, "valgrind") is plain
        assert session.compile(CLEAN, "jones-kelly") is plain
        assert session.cached_programs == 1
        report = session.run(CLEAN, profile="valgrind")
        assert report.ok and report.profile == "valgrind"

    def test_clear_empties_the_cache(self):
        session = Session()
        session.compile(CLEAN)
        session.clear()
        assert session.cached_programs == 0


class TestRunReports:
    def test_clean_run_report(self):
        report = Session().run(CLEAN, profile="spatial", name="clean")
        assert report.ok and not report.detected_violation
        assert report.exit_code == 6
        assert report.name == "clean"
        assert report.profile == "spatial"
        assert report.trap_kind is None
        assert "sum 6" in report.output
        assert report.stats.checks > 0
        assert report.pass_stats is not None
        assert report.check_opt_stats is not None
        assert report.wallclock_seconds > 0

    def test_trap_report_carries_kind_and_cost(self):
        report = Session().run(OVERFLOW, profile="spatial")
        assert report.detected_violation
        assert report.trap_kind == "spatial_violation"
        assert report.cost == report.stats.cost > 0

    def test_temporal_trap_kind(self):
        report = Session().run(UAF, profile="temporal")
        assert report.trap_kind == "temporal_violation"

    def test_reports_are_picklable(self):
        report = Session().run(OVERFLOW, profile="spatial")
        clone = pickle.loads(pickle.dumps(report))
        assert clone.trap_kind == "spatial_violation"
        assert clone.stats.cost == report.stats.cost

    def test_to_json_row_shape(self):
        row = Session().run(CLEAN, profile="spatial").to_json()
        assert row["value"] == row["stats"]["cost"]
        assert row["profile"] == "spatial"
        assert row["trap"] is None
        assert row["check_opt_stats"]["removed_checks"] >= 0


class TestRunMany:
    REQUESTS = [
        RunRequest("clean-spatial", CLEAN, "spatial"),
        RunRequest("overflow-spatial", OVERFLOW, "spatial"),
        RunRequest("uaf-temporal", UAF, "temporal"),
        ("clean-none", CLEAN, "none"),
    ]

    def test_serial_batch(self):
        batch = Session().run_many(self.REQUESTS, benchmark="smoke")
        assert isinstance(batch, BatchReport)
        assert list(batch.reports) == ["clean-spatial", "overflow-spatial",
                                       "uaf-temporal", "clean-none"]
        assert batch["overflow-spatial"].trap_kind == "spatial_violation"
        assert batch["uaf-temporal"].trap_kind == "temporal_violation"
        assert batch["clean-none"].ok

    def test_parallel_matches_serial(self):
        serial = Session().run_many(self.REQUESTS)
        parallel = Session().run_many(self.REQUESTS, jobs=2)
        for name, report in serial.reports.items():
            twin = parallel[name]
            assert isinstance(twin, RunReport)
            assert twin.exit_code == report.exit_code
            assert twin.output == report.output
            assert str(twin.trap) == str(report.trap)
            assert twin.stats.cost == report.stats.cost

    def test_batch_json_is_bench_v2(self):
        batch = Session().run_many(self.REQUESTS, benchmark="smoke")
        doc = batch.to_json()
        assert doc["schema"] == "bench-v2"
        assert doc["benchmark"] == "smoke"
        assert doc["config"] == "mixed"
        assert set(doc["workloads"]) == set(batch.reports)
        assert doc["geomean"] > 0

    def test_uniform_profile_batch_records_config(self):
        batch = Session().run_many([("a", CLEAN, "spatial"),
                                    ("b", OVERFLOW, "spatial")])
        assert batch.to_json()["config"] == "spatial"

    def test_duplicate_run_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate run names"):
            Session().run_many([("same", CLEAN, "none"),
                                ("same", OVERFLOW, "spatial")])

    def test_per_request_optimize_matches_across_paths(self):
        """A request-level optimize override must produce the same cost
        serially (cached path) and in workers (recompute path)."""
        request = RunRequest("raw", CLEAN, "spatial", optimize=False)
        serial = Session().run_many([request])["raw"]
        parallel = Session().run_many([request, ("other", CLEAN, "none")],
                                      jobs=2)["raw"]
        assert serial.stats.cost == parallel.stats.cost
        optimized = Session().run(CLEAN, profile="spatial")
        assert serial.stats.cost > optimized.stats.cost

    def test_bench_diff_consumes_batch_reports(self, tmp_path):
        """The recorded batch document is directly diffable by
        scripts/bench_diff.py (the bench-v2 contract)."""
        import importlib.util
        import pathlib

        script = pathlib.Path(__file__).parents[2] / "scripts" / "bench_diff.py"
        spec = importlib.util.spec_from_file_location("bench_diff", script)
        bench_diff = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench_diff)

        batch = Session().run_many([("a", CLEAN, "spatial")])
        path = batch.write(tmp_path / "BENCH_api.json")
        report = bench_diff.load(path)
        values = bench_diff.normalized_values(report)
        assert values["a"] == float(batch["a"].stats.cost)


class TestEngineOverride:
    def test_session_run_accepts_engine_override(self):
        session = Session(engine="compiled")
        interp = session.run(CLEAN, engine="interp")
        default = session.run(CLEAN)
        assert interp.engine == "interp"
        assert default.engine == "compiled"
        assert interp.stats.cost == default.stats.cost


class TestRunSource:
    def test_one_shot_form_matches_session(self):
        one_shot = run_source(CLEAN, profile="spatial")
        cached = Session().run(CLEAN, profile="spatial")
        assert one_shot.exit_code == cached.exit_code
        assert one_shot.stats.cost == cached.stats.cost

    def test_engine_override(self):
        interp = run_source(CLEAN, engine="interp")
        compiled = run_source(CLEAN, engine="compiled")
        assert interp.engine == "interp"
        assert compiled.engine == "compiled"
        assert interp.stats.cost == compiled.stats.cost
