"""Staged-pipeline tests: stage ordering, observer hooks, artifacts."""

from repro.api import STAGES, Toolchain, ToolchainObserver, compile_source
from repro.frontend import ast_nodes as ast

PROGRAM = r'''
int main(void) {
    int a[8];
    for (int i = 0; i < 8; i++) a[i] = i * 2;
    return a[7];
}
'''


class RecordingObserver(ToolchainObserver):
    def __init__(self):
        self.events = []

    def before_stage(self, stage, payload):
        self.events.append(("before", stage))

    def after_stage(self, stage, artifact):
        self.events.append(("after", stage))


class TestStages:
    def test_stage_names_in_order(self):
        assert STAGES == ("parse", "typecheck", "lower", "optimize",
                          "instrument", "post-optimize")

    def test_unprotected_compile_skips_instrumentation_stages(self):
        observer = RecordingObserver()
        Toolchain(observers=(observer,)).compile(PROGRAM)
        stages = [s for kind, s in observer.events if kind == "before"]
        assert stages == ["parse", "typecheck", "lower", "optimize"]

    def test_protected_compile_runs_all_six(self):
        observer = RecordingObserver()
        Toolchain(profile="spatial", observers=(observer,)).compile(PROGRAM)
        stages = [s for kind, s in observer.events if kind == "before"]
        assert stages == list(STAGES)

    def test_hooks_bracket_each_stage(self):
        observer = RecordingObserver()
        Toolchain(profile="spatial", observers=(observer,)).compile(PROGRAM)
        for i in range(0, len(observer.events), 2):
            before, after = observer.events[i], observer.events[i + 1]
            assert before == ("before", after[1])

    def test_optimize_false_skips_optimize_stage(self):
        observer = RecordingObserver()
        Toolchain(optimize=False, observers=(observer,)).compile(PROGRAM)
        stages = [s for kind, s in observer.events if kind == "before"]
        assert stages == ["parse", "typecheck", "lower"]


class TestArtifacts:
    def test_every_run_intermediate_is_retrievable(self):
        toolchain = Toolchain(profile="spatial")
        compiled = toolchain.compile(PROGRAM)
        artifacts = toolchain.artifacts
        assert artifacts["parse"]["tokens"], "token stream retrievable"
        assert isinstance(artifacts["parse"]["ast"], ast.TranslationUnit)
        assert artifacts["typecheck"]["program"].functions["main"]
        assert artifacts["lower"]["module"] is compiled.module
        assert artifacts["optimize"]["pass_stats"] is compiled.pass_stats
        assert artifacts["post-optimize"]["check_opt_stats"] \
            is compiled.check_opt_stats
        assert set(toolchain.stage_seconds) == set(artifacts)

    def test_artifacts_reset_per_compile(self):
        toolchain = Toolchain()
        toolchain.compile(PROGRAM)
        first = toolchain.artifacts
        toolchain.compile("int main(void) { return 1; }")
        assert toolchain.artifacts is not first
        assert toolchain.artifacts["lower"]["module"] \
            is not first["lower"]["module"]


class TestEquivalenceWithLegacyDriver:
    def test_compile_source_matches_compile_program(self):
        from repro.harness.driver import compile_program
        from repro.softbound.config import FULL_SHADOW

        legacy = compile_program(PROGRAM, softbound=FULL_SHADOW)
        facade = compile_source(PROGRAM, profile="spatial")
        assert legacy.pass_stats == facade.pass_stats
        assert legacy.check_opt_stats == facade.check_opt_stats
        legacy_result = legacy.run()
        facade_result = facade.run()
        assert legacy_result.exit_code == facade_result.exit_code
        assert legacy_result.stats.cost == facade_result.stats.cost

    def test_unit_mode_matches_legacy_compile_module(self):
        from repro.harness.linker import compile_module
        from repro.ir.printer import format_module

        library = "int helper(int x) { return x + 1; }"
        legacy = compile_module(library, name="lib")
        unit = Toolchain(unit_mode=True).compile(library, name="lib")
        assert format_module(legacy) == format_module(unit)
