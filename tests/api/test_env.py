"""Precedence tests for the centralized engine/jobs resolution:
flag > environment variable > default."""

import pytest

from repro.api import (
    DEFAULT_ENGINE,
    DEFAULT_JOBS,
    resolve_engine,
    resolve_env,
    resolve_jobs,
)


class TestResolveEngine:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine() == DEFAULT_ENGINE == "compiled"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "interp")
        assert resolve_engine() == "interp"

    def test_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "interp")
        assert resolve_engine("compiled") == "compiled"

    def test_empty_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "")
        assert resolve_engine() == "compiled"

    def test_unknown_engine_raises(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("jit")
        monkeypatch.setenv("REPRO_ENGINE", "typo")
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine()


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == DEFAULT_JOBS == 1

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(3) == 3

    def test_garbled_env_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert resolve_jobs() == 1

    def test_nonpositive_values_fall_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert resolve_jobs() == 1
        assert resolve_jobs(-2) == 1


class TestResolveEnv:
    def test_both_axes_resolved_together(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "interp")
        monkeypatch.setenv("REPRO_JOBS", "4")
        env = resolve_env()
        assert (env.engine, env.jobs) == ("interp", 4)
        env = resolve_env(engine="compiled", jobs=2)
        assert (env.engine, env.jobs) == ("compiled", 2)

    def test_harness_parallel_delegates_here(self, monkeypatch):
        from repro.harness.parallel import resolve_jobs as harness_resolve

        monkeypatch.setenv("REPRO_JOBS", "7")
        assert harness_resolve() == 7
        assert harness_resolve(2) == 2

    def test_machine_delegates_here(self, monkeypatch):
        from repro.api import compile_source

        compiled = compile_source("int main(void) { return 0; }")
        monkeypatch.setenv("REPRO_ENGINE", "interp")
        assert compiled.instantiate().engine_name == "interp"
        assert compiled.instantiate(engine="compiled").engine_name \
            == "compiled"
