"""Golden equivalence: the legacy shims and the facade are one path.

``compile_and_run``/``compile_program`` must stay byte-identical to the
:class:`repro.api.Session` path for every registered profile, and the
rendered tables (which now execute through the facade) must agree with
results recomputed through the legacy shim.
"""

import pytest

from repro.api import PROFILES, Session, all_profiles
from repro.harness.driver import compile_and_run

CLEAN = r'''
int main(void) {
    int a[8];
    long total = 0;
    for (int i = 0; i < 8; i++) a[i] = i * 3;
    for (int i = 0; i < 8; i++) total += a[i];
    printf("total=%ld\n", total);
    return 0;
}
'''

OVERFLOW = r'''
int main(void) {
    char b[4];
    strcpy(b, "definitely too long");
    return 0;
}
'''


def _legacy(source, profile):
    return compile_and_run(source, softbound=profile.config,
                           observers=profile.make_observers())


@pytest.mark.parametrize("profile", all_profiles(), ids=lambda p: p.name)
def test_shim_equals_session_on_clean_program(profile):
    legacy = _legacy(CLEAN, profile)
    facade = Session().run(CLEAN, profile=profile)
    assert facade.exit_code == legacy.exit_code
    assert facade.output == legacy.output
    assert str(facade.trap) == str(legacy.trap)
    assert facade.stats.cost == legacy.stats.cost
    assert facade.stats.checks == legacy.stats.checks
    assert facade.stats.metadata_loads == legacy.stats.metadata_loads


@pytest.mark.parametrize("profile", all_profiles(), ids=lambda p: p.name)
def test_shim_equals_session_on_overflow(profile):
    legacy = _legacy(OVERFLOW, profile)
    facade = Session().run(OVERFLOW, profile=profile)
    assert facade.exit_code == legacy.exit_code
    assert str(facade.trap) == str(legacy.trap)
    assert facade.detected_violation == legacy.detected_violation
    assert facade.stats.cost == legacy.stats.cost


class TestTablesRideTheFacade:
    def test_attack_detection_matches_legacy_recomputation(self):
        from repro.harness.tables import attack_detection
        from repro.softbound.config import FULL_SHADOW, STORE_SHADOW
        from repro.workloads.attacks import all_attacks

        attack = next(iter(all_attacks()))
        plain = compile_and_run(attack.source)
        full = compile_and_run(attack.source, softbound=FULL_SHADOW)
        store = compile_and_run(attack.source, softbound=STORE_SHADOW)
        assert attack_detection(attack.name) == (
            plain.attack_succeeded, full.detected_violation,
            store.detected_violation)

    def test_temporal_detection_matches_legacy_recomputation(self):
        from repro.harness.temporal import temporal_detection
        from repro.softbound.config import TEMPORAL_SHADOW
        from repro.vm.errors import TrapKind
        from repro.workloads.temporal_attacks import TEMPORAL_ATTACKS

        name = "uaf_read"
        attack = TEMPORAL_ATTACKS[name]
        plain = compile_and_run(attack.source)
        temporal = compile_and_run(attack.source, softbound=TEMPORAL_SHADOW)
        exploited, _, detected = temporal_detection(name)
        assert exploited == bool(plain.attack_succeeded)
        assert detected == (temporal.trap is not None
                            and temporal.trap.kind
                            is TrapKind.TEMPORAL_VIOLATION)

    def test_temporal_paper_block_is_policy_layer_invariant(self):
        """The lock-and-key rows of the temporal table are produced
        through the policy layer now; their content must still equal a
        recomputation through the legacy shim for every attack, and any
        extension-policy rows must render strictly *below* the paper
        block (pre-existing output stays a byte-identical prefix)."""
        from repro.harness.tables import render_temporal, temporal_matrix
        from repro.softbound.config import TEMPORAL_SHADOW
        from repro.vm.errors import TrapKind
        from repro.workloads.temporal_attacks import TEMPORAL_ATTACKS

        text = render_temporal()
        paper_block = text.split("\n\nExtension policies")[0]
        for name in TEMPORAL_ATTACKS:
            assert any(line.startswith(name)
                       for line in paper_block.splitlines())
        for name, (_, _, detected) in temporal_matrix().items():
            legacy = compile_and_run(TEMPORAL_ATTACKS[name].source,
                                     softbound=TEMPORAL_SHADOW)
            assert detected == (legacy.trap is not None
                                and legacy.trap.kind
                                is TrapKind.TEMPORAL_VIOLATION)

    def test_capability_paper_rows_are_policy_layer_invariant(self):
        """The paper's six Table 1 rows still match the pinned cells
        with the policy layer underneath, and extension rows do not
        leak into the paper block."""
        from repro.baselines.capabilities import (
            PAPER_TABLE1,
            capability_matrix,
        )

        rows = capability_matrix(include_extensions=False)
        assert [r.scheme for r in rows] == list(PAPER_TABLE1)
        for row in rows:
            assert (row.no_source_change, row.complete_subobject,
                    row.layout_compatible, row.arbitrary_casts,
                    row.dynamic_linking) == PAPER_TABLE1[row.scheme]
        extended = capability_matrix()
        assert [r.scheme for r in extended[:len(rows)]] \
            == [r.scheme for r in rows]
        assert any(r.scheme == "RedZone" for r in extended[len(rows):])

    def test_rendered_table_consumes_facade_memos(self):
        """`python -m repro tables temporal` output is produced from the
        same memoized facade results the detection matrix exposes."""
        import io

        from repro.cli import main
        from repro.harness.tables import render_temporal, temporal_matrix

        out, err = io.StringIO(), io.StringIO()
        assert main(["tables", "temporal"], out, err) == 0
        assert out.getvalue().rstrip("\n") == render_temporal()
        for name, (_, _, detected) in temporal_matrix().items():
            detected_cell = "yes" if detected else "NO"
            assert any(name in line and detected_cell in line
                       for line in out.getvalue().splitlines())
