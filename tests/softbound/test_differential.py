"""Differential property tests over randomly generated *safe* programs.

These are the reproduction's strongest compatibility evidence, the
executable form of the paper's "no false positives" claims (Sections
6.2 and 6.4): on memory-safe programs, SoftBound in every configuration
must be perfectly transparent — identical exit code, identical output,
zero violations — and the optimizer must never change behaviour.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.driver import compile_and_run
from repro.softbound.config import (
    FULL_HASH,
    FULL_SHADOW,
    STORE_SHADOW,
    SoftBoundConfig,
)
from repro.workloads.randprog import generate

seeds = st.integers(min_value=0, max_value=100_000)

_SETTINGS = dict(max_examples=20, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def _observe(source, **kwargs):
    result = compile_and_run(source, **kwargs)
    assert result.trap is None, f"unexpected trap: {result.trap}"
    return result.exit_code, tuple(result.output)


class TestGenerator:
    def test_deterministic(self):
        assert generate(1234).source == generate(1234).source

    def test_seeds_differ(self):
        sources = {generate(seed).source for seed in range(12)}
        assert len(sources) > 8

    def test_generated_source_compiles_and_runs_clean(self):
        for seed in range(5):
            exit_code, _ = _observe(generate(seed).source)
            assert 0 <= exit_code < 200


class TestNoFalsePositives:
    @given(seeds)
    @settings(**_SETTINGS)
    def test_full_shadow_is_transparent(self, seed):
        source = generate(seed).source
        assert _observe(source) == _observe(source, softbound=FULL_SHADOW)

    @given(seeds)
    @settings(**_SETTINGS)
    def test_full_hash_is_transparent(self, seed):
        source = generate(seed).source
        assert _observe(source) == _observe(source, softbound=FULL_HASH)

    @given(seeds)
    @settings(**_SETTINGS)
    def test_store_only_is_transparent(self, seed):
        source = generate(seed).source
        assert _observe(source) == _observe(source, softbound=STORE_SHADOW)

    @given(seeds)
    @settings(**_SETTINGS)
    def test_signature_encoding_is_transparent(self, seed):
        # The Section 5.2 extension must not reject well-typed programs.
        config = SoftBoundConfig(encode_fnptr_signature=True)
        source = generate(seed).source
        assert _observe(source) == _observe(source, softbound=config)


class TestOptimizerSoundness:
    @given(seeds)
    @settings(**_SETTINGS)
    def test_optimizer_preserves_semantics(self, seed):
        source = generate(seed).source
        assert _observe(source, optimize=True) == _observe(source, optimize=False)

    @given(seeds)
    @settings(**_SETTINGS)
    def test_post_instrumentation_cleanup_preserves_semantics(self, seed):
        source = generate(seed).source
        raw = SoftBoundConfig(optimize_checks=False)
        cleaned = SoftBoundConfig(optimize_checks=True)
        assert (_observe(source, softbound=raw)
                == _observe(source, softbound=cleaned))


class TestModeAgreement:
    @given(seeds)
    @settings(**_SETTINGS)
    def test_full_and_store_only_agree_on_safe_programs(self, seed):
        # The modes may differ only on *unsafe* loads; on safe programs
        # they are observationally identical.
        source = generate(seed).source
        assert (_observe(source, softbound=FULL_SHADOW)
                == _observe(source, softbound=STORE_SHADOW))

    @given(seeds)
    @settings(**_SETTINGS)
    def test_metadata_schemes_agree(self, seed):
        # Hash table vs shadow space differ in cost only, never in
        # outcome.
        source = generate(seed).source
        assert (_observe(source, softbound=FULL_SHADOW)
                == _observe(source, softbound=FULL_HASH))

    @given(seeds)
    @settings(**_SETTINGS)
    def test_full_checking_never_cheaper_than_store_only(self, seed):
        source = generate(seed).source
        full = compile_and_run(source, softbound=FULL_SHADOW)
        store = compile_and_run(source, softbound=STORE_SHADOW)
        assert full.stats.cost >= store.stats.cost
        assert full.stats.checks >= store.stats.checks
