"""``MetadataFacility.clear_range`` edge cases across both facilities.

This is the invalidation path the temporal pass depends on: ``free``,
``memset`` and frame teardown all funnel through ``clear_range``, and a
slot it misses resurrects stale metadata — spatial bounds for a dead
object, or (widened entries) a dead pointer's (key, lock).  The cases:

* collision chains in :class:`HashTableMetadata` — several slot keys
  hash to one bucket; clearing one key's range must drop exactly that
  entry and keep walking the chain for the others;
* partial and unaligned ranges — byte ranges that start/end mid-slot
  round outward (a pointer slot partially overwritten is invalid);
* page-boundary spans in :class:`ShadowSpaceMetadata` — whole-page
  teardown vs partial-page clearing, and ranges crossing pages;
* reuse of a cleared slot — a fresh store after clear_range must be
  visible (the clear must not leave tombstones that shadow it);
* the widened temporal half is cleared together with the spatial half.
"""

import pytest

from repro.softbound.metadata import HashTableMetadata, ShadowSpaceMetadata
from repro.vm.costs import CostStats


@pytest.fixture(params=["hash", "shadow"])
def facility(request):
    return HashTableMetadata() if request.param == "hash" \
        else ShadowSpaceMetadata()


def stats():
    return CostStats()


# -- collision chains (hash table) -------------------------------------------

def colliding_addrs(facility, count=3):
    """Addresses whose slot keys share one bucket (differ by the mask
    period) — a guaranteed collision chain."""
    period = (facility.mask + 1) << 3  # slot key stride back to bucket 0
    return [0x8000 + i * period for i in range(count)]


def test_clear_range_in_collision_chain_keeps_other_entries():
    facility = HashTableMetadata(log2_buckets=4)  # tiny: collisions galore
    s = stats()
    addrs = colliding_addrs(facility, 4)
    for i, addr in enumerate(addrs):
        facility.store(addr, i + 1, i + 100, s)
    # All four share a bucket; clear only the second.
    facility.clear_range(addrs[1], 8, s)
    assert facility.load(addrs[1], s) == (0, 0)
    for i, addr in enumerate(addrs):
        if i != 1:
            assert facility.load(addr, s) == (i + 1, i + 100), i


def test_clear_range_middle_of_chain_then_reuse():
    facility = HashTableMetadata(log2_buckets=4)
    s = stats()
    addrs = colliding_addrs(facility, 3)
    for addr in addrs:
        facility.store(addr, addr, addr + 8, s)
    before = facility.entry_count()
    facility.clear_range(addrs[1], 8, s)
    assert facility.entry_count() == before - 1
    # Reuse the cleared slot: the new entry must win, chain intact.
    facility.store(addrs[1], 7, 77, s)
    assert facility.load(addrs[1], s) == (7, 77)
    assert facility.load(addrs[0], s) == (addrs[0], addrs[0] + 8)
    assert facility.load(addrs[2], s) == (addrs[2], addrs[2] + 8)


# -- partial / unaligned ranges ----------------------------------------------

def test_unaligned_range_rounds_outward(facility):
    """A clear that covers any byte of a slot invalidates the slot: a
    partially-overwritten pointer is no longer a valid pointer."""
    s = stats()
    facility.store(0x1000, 1, 2, s)
    facility.store(0x1008, 3, 4, s)
    facility.store(0x1010, 5, 6, s)
    # Bytes [0x1004, 0x100C): tail of slot 0x1000, head of slot 0x1008.
    facility.clear_range(0x1004, 8, s)
    assert facility.load(0x1000, s) == (0, 0)
    assert facility.load(0x1008, s) == (0, 0)
    assert facility.load(0x1010, s) == (5, 6)


def test_zero_and_one_byte_ranges(facility):
    s = stats()
    facility.store(0x2000, 1, 2, s)
    facility.clear_range(0x2000, 1, s)   # one byte still kills the slot
    assert facility.load(0x2000, s) == (0, 0)
    facility.store(0x2008, 3, 4, s)
    facility.clear_range(0x2008, 0, s)   # zero bytes clears nothing
    assert facility.load(0x2008, s) == (3, 4)


def test_range_end_is_exclusive_after_rounding(facility):
    s = stats()
    facility.store(0x3000, 1, 2, s)
    facility.store(0x3008, 3, 4, s)
    facility.clear_range(0x3000, 8, s)   # exactly one slot
    assert facility.load(0x3000, s) == (0, 0)
    assert facility.load(0x3008, s) == (3, 4)


# -- shadow-space paging ------------------------------------------------------

def test_shadow_whole_page_teardown_and_reuse():
    facility = ShadowSpaceMetadata()
    s = stats()
    page_bytes = facility.PAGE_SLOTS * 8
    base = page_bytes * 5  # page-aligned byte address
    for off in range(0, 64, 8):
        facility.store(base + off, off, off + 8, s)
    facility.clear_range(base, page_bytes, s)   # whole-page unmap path
    assert facility.entry_count() == 0
    for off in range(0, 64, 8):
        assert facility.load(base + off, s) == (0, 0)
    # Reuse after the page was dropped entirely.
    facility.store(base + 16, 9, 99, s)
    assert facility.load(base + 16, s) == (9, 99)


def test_shadow_range_crossing_page_boundary():
    facility = ShadowSpaceMetadata()
    s = stats()
    page_bytes = facility.PAGE_SLOTS * 8
    boundary = page_bytes * 3
    facility.store(boundary - 8, 1, 2, s)   # last slot of page 2
    facility.store(boundary, 3, 4, s)       # first slot of page 3
    facility.store(boundary + 8, 5, 6, s)
    facility.clear_range(boundary - 8, 16, s)
    assert facility.load(boundary - 8, s) == (0, 0)
    assert facility.load(boundary, s) == (0, 0)
    assert facility.load(boundary + 8, s) == (5, 6)
    assert facility.entry_count() == 1


def test_shadow_partial_page_keeps_live_accounting():
    facility = ShadowSpaceMetadata()
    s = stats()
    for off in range(0, 80, 8):
        facility.store(0x4000 + off, off, off + 1, s)
    live_before = facility.entry_count()
    facility.clear_range(0x4000, 40, s)   # five of ten slots
    assert facility.entry_count() == live_before - 5


# -- the widened temporal half ------------------------------------------------

def test_clear_range_drops_temporal_half_too(facility):
    s = stats()
    facility.store(0x5000, 1, 2, s)
    facility.store_temporal(0x5000, 42, 3, s)
    facility.store(0x5008, 4, 5, s)
    facility.store_temporal(0x5008, 43, 4, s)
    facility.clear_range(0x5000, 8, s)
    assert facility.load_temporal(0x5000, s) == (0, 0)
    assert facility.load_temporal(0x5008, s) == (43, 4)
    # Reuse: a fresh temporal store on the cleared slot is visible.
    facility.store_temporal(0x5000, 44, 9, s)
    assert facility.load_temporal(0x5000, s) == (44, 9)


def test_temporal_metadata_accounted_in_bytes(facility):
    s = stats()
    facility.store(0x6000, 1, 2, s)
    spatial_only = facility.metadata_bytes()
    facility.store_temporal(0x6000, 1, 1, s)
    assert facility.metadata_bytes() == \
        spatial_only + facility.TEMPORAL_ENTRY_BYTES
