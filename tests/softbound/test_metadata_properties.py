"""Property tests for every metadata facility against a reference model.

All four facilities (hash table, shadow space, MSCC linked shadow,
inline fat pointer) implement the same mapping — pointer-slot address →
(base, bound) — and must agree with a plain dictionary under any
interleaving of stores, loads and range-clears.  The hash table must
additionally behave identically at any table size (collisions change
cost, never results).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.fatptr import InlineFatPointerMetadata
from repro.baselines.mscc import MsccMetadata
from repro.softbound.metadata import HashTableMetadata, ShadowSpaceMetadata
from repro.vm.costs import CostStats

FACTORIES = {
    "hash": lambda: HashTableMetadata(),
    "tiny_hash": lambda: HashTableMetadata(log2_buckets=3),
    "shadow": ShadowSpaceMetadata,
    "mscc": MsccMetadata,
    "fatptr": lambda: InlineFatPointerMetadata(tagged=False),
}

# Word-aligned slot addresses within a modest range so collisions and
# overlapping clears actually happen.
addresses = st.integers(min_value=0, max_value=255).map(lambda i: 0x1000 + i * 8)
bounds_values = st.tuples(st.integers(min_value=1, max_value=1 << 48),
                          st.integers(min_value=1, max_value=1 << 48))

operations = st.lists(
    st.one_of(
        st.tuples(st.just("store"), addresses, bounds_values),
        st.tuples(st.just("load"), addresses),
        st.tuples(st.just("clear"), addresses,
                  st.integers(min_value=1, max_value=128)),
    ),
    min_size=1, max_size=60,
)


def apply_ops(facility, ops):
    """Run ops against the facility and a dict model simultaneously;
    returns the list of (facility_result, model_result) pairs."""
    stats = CostStats()
    model = {}
    observed = []
    for op in ops:
        if op[0] == "store":
            _, addr, (base, span) = op
            facility.store(addr, base, base + span, stats)
            model[addr >> 3] = (base, base + span)
        elif op[0] == "load":
            _, addr = op
            observed.append((facility.load(addr, stats),
                             model.get(addr >> 3, (0, 0))))
        else:
            _, addr, size = op
            facility.clear_range(addr, size, stats)
            for key in range(addr >> 3, (addr + size + 7) >> 3):
                model.pop(key, None)
    return observed, model, stats


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestFacilityAgainstModel:
    @given(ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_property_agrees_with_dict_model(self, name, ops):
        facility = FACTORIES[name]()
        observed, model, _ = apply_ops(facility, ops)
        for got, expected in observed:
            assert got == expected
        assert facility.entry_count() == len(model)

    @given(ops=operations)
    @settings(max_examples=40, deadline=None)
    def test_property_metadata_bytes_track_peak(self, name, ops):
        facility = FACTORIES[name]()
        apply_ops(facility, ops)
        assert facility.metadata_bytes() >= (facility.entry_count()
                                             * facility.ENTRY_BYTES) - \
            facility.ENTRY_BYTES  # peak >= live (up to rounding slack)
        assert facility.metadata_bytes() % facility.ENTRY_BYTES == 0

    @given(ops=operations)
    @settings(max_examples=40, deadline=None)
    def test_property_cost_is_charged(self, name, ops):
        facility = FACTORIES[name]()
        _, _, stats = apply_ops(facility, ops)
        assert stats.cost > 0


class TestHashTableSpecifics:
    @given(ops=operations)
    @settings(max_examples=40, deadline=None)
    def test_property_results_independent_of_table_size(self, ops):
        big = HashTableMetadata(log2_buckets=16)
        tiny = HashTableMetadata(log2_buckets=2)  # everything collides
        big_obs, _, big_stats = apply_ops(big, ops)
        tiny_obs, _, tiny_stats = apply_ops(tiny, ops)
        assert big_obs == tiny_obs
        # Collisions cost more (or equal), never less.
        assert tiny_stats.cost >= big_stats.cost

    def test_unaligned_addresses_share_their_slot(self):
        stats = CostStats()
        facility = HashTableMetadata()
        facility.store(0x1000, 7, 77, stats)
        assert facility.load(0x1003, stats) == (7, 77)  # same 8-byte slot


class TestWildTagInteraction:
    @given(ops=operations,
           clobbers=st.lists(addresses, min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_property_clobbered_slots_read_null_everything_else_intact(
            self, ops, clobbers):
        facility = InlineFatPointerMetadata(tagged=True)
        stats = CostStats()
        _, model, _ = apply_ops(facility, ops)
        for addr in clobbers:
            facility.on_program_store(addr, 8, stats)
        clobbered_keys = {addr >> 3 for addr in clobbers}
        for key, expected in model.items():
            got = facility.load(key << 3, stats)
            if key in clobbered_keys:
                assert got == (0, 0)
            else:
                assert got == expected
