"""Lock-and-key temporal subsystem: detection, transparency, lock space.

The acceptance contract: every temporal attack family traps with a
precise temporal_violation under ``SoftBoundConfig(temporal=True)``,
while every previously-passing spatial workload still runs trap-free
with identical output — the temporal pass may cost, never change, a
correct program.
"""

import pytest

from repro.harness.driver import compile_and_run, compile_program
from repro.softbound.config import (
    FULL_SHADOW,
    TEMPORAL_HASH,
    TEMPORAL_SHADOW,
    SoftBoundConfig,
)
from repro.temporal import GLOBAL_KEY, GLOBAL_LOCK, LockSpace
from repro.vm.costs import CostStats
from repro.vm.errors import TemporalTrap, Trap, TrapKind
from repro.workloads.programs import WORKLOADS
from repro.workloads.temporal_attacks import TEMPORAL_ATTACKS, all_temporal_attacks


# -- the lock space -----------------------------------------------------------

class TestLockSpace:
    def test_acquire_release_cycle(self):
        ls = LockSpace()
        stats = CostStats()
        key, slot = ls.acquire(stats)
        assert ls.live(key, slot)
        ls.release(slot, stats)
        assert not ls.live(key, slot)

    def test_keys_never_reused_across_slot_recycling(self):
        ls = LockSpace()
        key1, slot1 = ls.acquire()
        ls.release(slot1)
        key2, slot2 = ls.acquire()
        assert slot2 == slot1  # the slot was recycled...
        assert key2 != key1    # ...the key was not
        assert ls.live(key2, slot2)
        assert not ls.live(key1, slot1)

    def test_global_lock_is_immortal(self):
        ls = LockSpace()
        assert ls.live(GLOBAL_KEY, GLOBAL_LOCK)
        ls.release(GLOBAL_LOCK)
        assert ls.live(GLOBAL_KEY, GLOBAL_LOCK)

    def test_invalid_key_never_live(self):
        ls = LockSpace()
        assert not ls.live(0, GLOBAL_LOCK)
        assert not ls.live(0, 12345)

    def test_charges_cost_model(self):
        stats = CostStats()
        ls = LockSpace()
        _, slot = ls.acquire(stats)
        ls.release(slot, stats)
        assert stats.cost > 0


# -- detection ----------------------------------------------------------------

@pytest.mark.parametrize("name", list(TEMPORAL_ATTACKS))
def test_attack_detected_with_temporal_checking(name):
    attack = TEMPORAL_ATTACKS[name]
    result = compile_and_run(attack.source, softbound=TEMPORAL_SHADOW)
    assert result.trap is not None, f"{name}: no trap"
    assert result.trap.kind is TrapKind.TEMPORAL_VIOLATION, result.trap
    assert result.trap.source == "softbound"
    assert result.detected_violation


@pytest.mark.parametrize("name", list(TEMPORAL_ATTACKS))
def test_attack_detected_under_hash_table_scheme(name):
    """The widened entry rides both disjoint facilities."""
    attack = TEMPORAL_ATTACKS[name]
    result = compile_and_run(attack.source, softbound=TEMPORAL_HASH)
    assert result.trap is not None and \
        result.trap.kind is TrapKind.TEMPORAL_VIOLATION


@pytest.mark.parametrize("name", list(TEMPORAL_ATTACKS))
def test_attack_invisible_or_late_for_spatial_only(name):
    """Spatial-only checking never reports a *temporal* violation:
    either the attack sails through, or (uaf_write) a downstream
    encoding check catches the consequence, not the dangling access."""
    attack = TEMPORAL_ATTACKS[name]
    result = compile_and_run(attack.source, softbound=FULL_SHADOW)
    assert result.trap is None or \
        result.trap.kind is not TrapKind.TEMPORAL_VIOLATION


def test_attacks_genuinely_work_unprotected():
    exploited = 0
    for attack in all_temporal_attacks():
        result = compile_and_run(attack.source)
        assert result.trap is None, f"{attack.name} crashed: {result.trap}"
        if result.attack_succeeded:
            exploited += 1
    # double_free is silently ignored by the allocator; every other
    # attack observably exploits the unprotected VM.
    assert exploited >= len(all_temporal_attacks()) - 1


# -- transparency -------------------------------------------------------------

@pytest.mark.parametrize("name", list(WORKLOADS))
def test_workloads_run_identically_under_temporal(name):
    workload = WORKLOADS[name]
    plain = compile_and_run(workload.source)
    temporal = compile_and_run(workload.source, softbound=TEMPORAL_SHADOW)
    assert temporal.trap is None, f"{name}: {temporal.trap}"
    assert temporal.exit_code == plain.exit_code == workload.expected_exit
    assert temporal.output == plain.output


def test_temporal_costs_more_than_spatial():
    source = WORKLOADS["treeadd"].source
    spatial = compile_and_run(source, softbound=FULL_SHADOW)
    temporal = compile_and_run(source, softbound=TEMPORAL_SHADOW)
    assert temporal.stats.temporal_checks > 0
    assert spatial.stats.temporal_checks == 0
    assert temporal.stats.cost > spatial.stats.cost


# -- targeted behaviours ------------------------------------------------------

def test_free_then_spatial_out_of_bounds_still_spatial():
    """The spatial check precedes the temporal one: a pointer that is
    both stale *and* out of bounds reports the spatial violation."""
    source = r'''
int main(void) {
    long *p = (long *)malloc(16);
    free(p);
    p[5] = 1;      /* stale AND out of bounds */
    return 0;
}
'''
    result = compile_and_run(source, softbound=TEMPORAL_SHADOW)
    assert result.trap.kind is TrapKind.SPATIAL_VIOLATION


def test_in_bounds_uaf_is_temporal():
    source = r'''
int main(void) {
    long *p = (long *)malloc(16);
    free(p);
    p[1] = 1;      /* stale, in old bounds */
    return 0;
}
'''
    result = compile_and_run(source, softbound=TEMPORAL_SHADOW)
    assert result.trap.kind is TrapKind.TEMPORAL_VIOLATION


def test_stale_free_of_reused_address_traps_and_spares_new_owner():
    """A dangling free whose address now belongs to a *new* allocation
    must trap as the stale access it is — never release the new
    owner's lock (which would false-positive the next valid access)."""
    source = r'''
int main(void) {
    char *a = (char *)malloc(24);
    free(a);
    char *b = (char *)malloc(24);   /* first-fit: a's address */
    b[0] = 'b';
    free(a);                        /* stale free through dead pointer */
    b[1] = 'c';                     /* must never be reached */
    return 0;
}
'''
    result = compile_and_run(source, softbound=TEMPORAL_SHADOW)
    assert result.trap is not None
    assert result.trap.kind is TrapKind.TEMPORAL_VIOLATION
    # The trap is the free itself, not a bogus violation on b[1].
    assert "free" in result.trap.detail


def test_free_of_stack_pointer_traps():
    """A live lock is not enough: the address must be a heap
    allocation (frame locks are live until return)."""
    source = r'''
int main(void) {
    long local[2];
    long *p = local;
    free(p);
    return 0;
}
'''
    result = compile_and_run(source, softbound=TEMPORAL_SHADOW)
    assert result.trap is not None
    assert result.trap.kind is TrapKind.TEMPORAL_VIOLATION


def test_libc_wrapper_checks_temporal():
    """Library wrappers check liveness once up front, like bounds."""
    source = r'''
int main(void) {
    char *buf = (char *)malloc(32);
    free(buf);
    strcpy(buf, "stale");     /* UAF through the wrapper */
    return 0;
}
'''
    result = compile_and_run(source, softbound=TEMPORAL_SHADOW)
    assert result.trap is not None
    assert result.trap.kind is TrapKind.TEMPORAL_VIOLATION


def test_pointer_through_memory_carries_temporal_metadata():
    """The widened table entry: a pointer stored to memory and loaded
    back later still traps after its allocation dies."""
    source = r'''
long **cell;
int main(void) {
    cell = (long **)malloc(8);
    long *obj = (long *)malloc(16);
    *cell = obj;              /* pointer through memory */
    free(obj);
    long *stale = *cell;      /* reload: key/lock come from the table */
    *stale = 9;
    return 0;
}
'''
    result = compile_and_run(source, softbound=TEMPORAL_SHADOW)
    assert result.trap is not None
    assert result.trap.kind is TrapKind.TEMPORAL_VIOLATION


def test_globals_are_immortal():
    source = r'''
int cell = 5;
int *alias = &cell;
int main(void) {
    for (int i = 0; i < 4; i++) *alias += i;
    printf("%d\n", cell);
    return cell;
}
'''
    result = compile_and_run(source, softbound=TEMPORAL_SHADOW)
    assert result.trap is None
    assert result.exit_code == 11


def test_temporal_trap_pickles_roundtrip():
    """The parallel harness ships traps across process boundaries."""
    import pickle

    trap = TemporalTrap(TrapKind.TEMPORAL_VIOLATION, "stale", address=0x10,
                        source="softbound")
    clone = pickle.loads(pickle.dumps(trap))
    assert isinstance(clone, TemporalTrap)
    assert clone.kind is TrapKind.TEMPORAL_VIOLATION
    assert clone.detail == "stale" and clone.address == 0x10


def test_temporal_requires_softbound_variant():
    from repro.softbound.runtime import SoftBoundRuntime

    with pytest.raises(ValueError):
        SoftBoundRuntime(SoftBoundConfig(temporal=True, variant="mscc"))


def test_label_distinguishes_temporal():
    assert TEMPORAL_SHADOW.label == "ShadowSpace-Complete-Temporal"
    assert FULL_SHADOW.label == "ShadowSpace-Complete"
