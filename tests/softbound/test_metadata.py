"""Metadata facility unit tests (paper Section 5.1)."""

import pytest

from repro.softbound.config import MetadataScheme
from repro.softbound.metadata import (
    HashTableMetadata,
    ShadowSpaceMetadata,
    make_facility,
)
from repro.vm.costs import CostStats


@pytest.fixture(params=["hash", "shadow"])
def facility(request):
    return HashTableMetadata() if request.param == "hash" else ShadowSpaceMetadata()


def test_store_then_load_roundtrip(facility):
    stats = CostStats()
    facility.store(0x1000, 0x2000, 0x3000, stats)
    assert facility.load(0x1000, stats) == (0x2000, 0x3000)


def test_absent_entry_is_null_bounds(facility):
    assert facility.load(0xDEAD0, CostStats()) == (0, 0)


def test_overwrite_updates_in_place(facility):
    stats = CostStats()
    facility.store(0x1000, 1, 2, stats)
    facility.store(0x1000, 3, 4, stats)
    assert facility.load(0x1000, stats) == (3, 4)


def test_adjacent_slots_independent(facility):
    stats = CostStats()
    facility.store(0x1000, 1, 2, stats)
    facility.store(0x1008, 3, 4, stats)
    assert facility.load(0x1000, stats) == (1, 2)
    assert facility.load(0x1008, stats) == (3, 4)


def test_clear_range_removes_entries(facility):
    stats = CostStats()
    for addr in range(0x1000, 0x1040, 8):
        facility.store(addr, addr, addr + 8, stats)
    facility.clear_range(0x1000, 0x20, stats)
    assert facility.load(0x1000, stats) == (0, 0)
    assert facility.load(0x1018, stats) == (0, 0)
    assert facility.load(0x1020, stats) != (0, 0)


def test_shadow_cheaper_than_hash_per_access():
    """Paper Section 5.1: shadow ≈ 5 instructions vs hash ≈ 9."""
    hash_stats, shadow_stats = CostStats(), CostStats()
    hash_fac, shadow_fac = HashTableMetadata(), ShadowSpaceMetadata()
    for addr in range(0x1000, 0x2000, 8):
        hash_fac.store(addr, 1, 2, hash_stats)
        hash_fac.load(addr, hash_stats)
        shadow_fac.store(addr, 1, 2, shadow_stats)
        shadow_fac.load(addr, shadow_stats)
    assert hash_stats.cost > shadow_stats.cost


def test_hash_collision_chain_costs_more():
    fac = HashTableMetadata(log2_buckets=2)  # tiny table forces collisions
    stats = CostStats()
    addrs = [0x1000 + i * 8 * 4 for i in range(8)]  # same bucket mod 4
    for addr in addrs:
        fac.store(addr, addr, addr + 8, stats)
    baseline = CostStats()
    fac.load(addrs[0], baseline)
    deep = CostStats()
    fac.load(addrs[-1], deep)
    assert deep.cost > baseline.cost
    # Correctness survives collisions.
    for addr in addrs:
        assert fac.load(addr, CostStats()) == (addr, addr + 8)


def test_hash_entry_bytes_larger_than_shadow():
    """Tag field makes hash entries 24 bytes vs shadow's 16."""
    assert HashTableMetadata.ENTRY_BYTES > ShadowSpaceMetadata.ENTRY_BYTES


def test_metadata_bytes_tracks_peak(facility):
    stats = CostStats()
    for addr in range(0x1000, 0x1100, 8):
        facility.store(addr, 1, 2, stats)
    peak = facility.metadata_bytes()
    facility.clear_range(0x1000, 0x100, stats)
    assert facility.metadata_bytes() == peak  # peak is sticky
    assert facility.entry_count() == 0


def test_make_facility_dispatch():
    assert isinstance(make_facility(MetadataScheme.HASH_TABLE), HashTableMetadata)
    assert isinstance(make_facility(MetadataScheme.SHADOW_SPACE), ShadowSpaceMetadata)


# -- clear_range across hash chain collisions (regression: entries that
# -- share a bucket must be cleared selectively, by tag) ----------------


def test_hash_clear_range_removes_only_targeted_chain_entries():
    fac = HashTableMetadata(log2_buckets=2)  # 4 buckets; heavy collisions
    stats = CostStats()
    stride = 8 * 4  # same bucket (mod 4) every 4 pointer slots
    addrs = [0x1000 + i * stride for i in range(6)]
    for addr in addrs:
        fac.store(addr, addr, addr + 8, stats)
    # Clear a range covering only the first two colliding entries.
    fac.clear_range(addrs[0], stride + 8, stats)
    assert fac.load(addrs[0], CostStats()) == (0, 0)
    assert fac.load(addrs[1], CostStats()) == (0, 0)
    for addr in addrs[2:]:
        assert fac.load(addr, CostStats()) == (addr, addr + 8), hex(addr)
    assert fac.entry_count() == len(addrs) - 2


def test_hash_clear_range_interleaved_buckets():
    """A clear over a dense range touches several buckets, each holding
    entries both inside and outside the range."""
    fac = HashTableMetadata(log2_buckets=2)
    stats = CostStats()
    inside = [0x2000 + i * 8 for i in range(8)]    # keys 0x400..0x407
    outside = [0x4000 + i * 8 for i in range(8)]   # same buckets, higher tags
    for addr in inside + outside:
        fac.store(addr, addr, addr + 16, stats)
    fac.clear_range(0x2000, 8 * 8, stats)
    for addr in inside:
        assert fac.load(addr, CostStats()) == (0, 0)
    for addr in outside:
        assert fac.load(addr, CostStats()) == (addr, addr + 16)


# -- paged shadow space edges -------------------------------------------


def test_shadow_clear_range_spanning_pages():
    fac = ShadowSpaceMetadata()
    stats = CostStats()
    page_bytes = ShadowSpaceMetadata.PAGE_SLOTS * 8
    base = page_bytes  # start exactly on a page boundary
    addrs = [base - 16, base - 8, base, base + 8,
             base + page_bytes - 8, base + page_bytes]
    for addr in addrs:
        fac.store(addr, addr, addr + 8, stats)
    # Clear one full page plus the slot before and after it.
    fac.clear_range(base - 8, page_bytes + 16, stats)
    assert fac.load(base - 16, CostStats()) == (base - 16, base - 8)
    for addr in addrs[1:]:
        assert fac.load(addr, CostStats()) == (0, 0), hex(addr)
    assert fac.entry_count() == 1


def test_shadow_store_of_null_bounds_still_counts_as_entry():
    """Storing (0, 0) creates a live entry (it is distinct from an
    absent slot for accounting, exactly as the dict model behaved)."""
    fac = ShadowSpaceMetadata()
    stats = CostStats()
    fac.store(0x1000, 0, 0, stats)
    assert fac.entry_count() == 1
    assert fac.metadata_bytes() == ShadowSpaceMetadata.ENTRY_BYTES
    assert fac.load(0x1000, stats) == (0, 0)


# -- shadow-space load/store equivalence between engines -----------------


def test_shadow_metadata_equivalent_across_engines():
    from repro.harness.driver import compile_program
    from repro.softbound.config import SoftBoundConfig

    source = r'''
    struct node { struct node *next; int value; };
    int main(void) {
        struct node *head = 0;
        for (int i = 0; i < 32; i++) {
            struct node *n = (struct node *)malloc(sizeof(struct node));
            n->next = head;
            n->value = i;
            head = n;
        }
        int total = 0;
        struct node *it = head;
        while (it) { total += it->value; it = it->next; }
        while (head) { struct node *d = head; head = head->next; free(d); }
        return total % 256;
    }
    '''
    compiled = compile_program(source, softbound=SoftBoundConfig())
    results = {}
    for engine in ("interp", "compiled"):
        machine = compiled.instantiate(engine=engine)
        result = machine.run()
        facility = machine.sb_runtime.facility
        results[engine] = (
            result.exit_code,
            result.stats.metadata_loads,
            result.stats.metadata_stores,
            result.stats.cost,
            result.stats.checks,
            facility.entry_count(),
            facility.metadata_bytes(),
        )
    assert results["interp"] == results["compiled"]
    assert results["interp"][0] == (31 * 32 // 2) % 256
