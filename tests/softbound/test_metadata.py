"""Metadata facility unit tests (paper Section 5.1)."""

import pytest

from repro.softbound.config import MetadataScheme
from repro.softbound.metadata import (
    HashTableMetadata,
    ShadowSpaceMetadata,
    make_facility,
)
from repro.vm.costs import CostStats


@pytest.fixture(params=["hash", "shadow"])
def facility(request):
    return HashTableMetadata() if request.param == "hash" else ShadowSpaceMetadata()


def test_store_then_load_roundtrip(facility):
    stats = CostStats()
    facility.store(0x1000, 0x2000, 0x3000, stats)
    assert facility.load(0x1000, stats) == (0x2000, 0x3000)


def test_absent_entry_is_null_bounds(facility):
    assert facility.load(0xDEAD0, CostStats()) == (0, 0)


def test_overwrite_updates_in_place(facility):
    stats = CostStats()
    facility.store(0x1000, 1, 2, stats)
    facility.store(0x1000, 3, 4, stats)
    assert facility.load(0x1000, stats) == (3, 4)


def test_adjacent_slots_independent(facility):
    stats = CostStats()
    facility.store(0x1000, 1, 2, stats)
    facility.store(0x1008, 3, 4, stats)
    assert facility.load(0x1000, stats) == (1, 2)
    assert facility.load(0x1008, stats) == (3, 4)


def test_clear_range_removes_entries(facility):
    stats = CostStats()
    for addr in range(0x1000, 0x1040, 8):
        facility.store(addr, addr, addr + 8, stats)
    facility.clear_range(0x1000, 0x20, stats)
    assert facility.load(0x1000, stats) == (0, 0)
    assert facility.load(0x1018, stats) == (0, 0)
    assert facility.load(0x1020, stats) != (0, 0)


def test_shadow_cheaper_than_hash_per_access():
    """Paper Section 5.1: shadow ≈ 5 instructions vs hash ≈ 9."""
    hash_stats, shadow_stats = CostStats(), CostStats()
    hash_fac, shadow_fac = HashTableMetadata(), ShadowSpaceMetadata()
    for addr in range(0x1000, 0x2000, 8):
        hash_fac.store(addr, 1, 2, hash_stats)
        hash_fac.load(addr, hash_stats)
        shadow_fac.store(addr, 1, 2, shadow_stats)
        shadow_fac.load(addr, shadow_stats)
    assert hash_stats.cost > shadow_stats.cost


def test_hash_collision_chain_costs_more():
    fac = HashTableMetadata(log2_buckets=2)  # tiny table forces collisions
    stats = CostStats()
    addrs = [0x1000 + i * 8 * 4 for i in range(8)]  # same bucket mod 4
    for addr in addrs:
        fac.store(addr, addr, addr + 8, stats)
    baseline = CostStats()
    fac.load(addrs[0], baseline)
    deep = CostStats()
    fac.load(addrs[-1], deep)
    assert deep.cost > baseline.cost
    # Correctness survives collisions.
    for addr in addrs:
        assert fac.load(addr, CostStats()) == (addr, addr + 8)


def test_hash_entry_bytes_larger_than_shadow():
    """Tag field makes hash entries 24 bytes vs shadow's 16."""
    assert HashTableMetadata.ENTRY_BYTES > ShadowSpaceMetadata.ENTRY_BYTES


def test_metadata_bytes_tracks_peak(facility):
    stats = CostStats()
    for addr in range(0x1000, 0x1100, 8):
        facility.store(addr, 1, 2, stats)
    peak = facility.metadata_bytes()
    facility.clear_range(0x1000, 0x100, stats)
    assert facility.metadata_bytes() == peak  # peak is sticky
    assert facility.entry_count() == 0


def test_make_facility_dispatch():
    assert isinstance(make_facility(MetadataScheme.HASH_TABLE), HashTableMetadata)
    assert isinstance(make_facility(MetadataScheme.SHADOW_SPACE), ShadowSpaceMetadata)
