"""Library-wrapper checking (paper Section 5.2).

"For libraries that have not (yet) been transformed by SoftBound,
library function wrappers ... may be employed."  Our VM's libc plays
that wrapper role: each routine checks the full extent it will touch,
once, before touching it.  These tests exercise every checked wrapper
in both directions (overflow caught / in-bounds untouched) and confirm
metadata propagation through pointer-returning wrappers.
"""

import pytest

from repro.harness.driver import compile_and_run
from repro.softbound.config import FULL_SHADOW, STORE_SHADOW
from repro.vm.errors import TrapKind


def run_full(source):
    return compile_and_run(source, softbound=FULL_SHADOW)


def spatial(result):
    return (result.trap is not None
            and result.trap.kind is TrapKind.SPATIAL_VIOLATION)


class TestStringWrappers:
    def test_strcpy_overflow_detected(self):
        result = run_full(r'''
        int main(void) { char b[4]; strcpy(b, "too long for four"); return 0; }
        ''')
        assert spatial(result)
        assert "strcpy destination" in result.trap.detail

    def test_strcpy_exact_fit_allowed(self):
        result = run_full(r'''
        int main(void) { char b[6]; strcpy(b, "hello"); return b[4]; }
        ''')
        assert result.trap is None
        assert result.exit_code == ord("o")

    def test_strcpy_source_overread_detected(self):
        # Copy from a pointer whose bounds were shrunk to a 2-byte field:
        # reading the unterminated "string" runs off the field.
        result = run_full(r'''
        struct rec { char tag[2]; char rest[14]; };
        int main(void) {
            struct rec r;
            for (int i = 0; i < 16; i++) ((char *)&r)[i] = 'a';
            r.rest[13] = 0;
            char out[32];
            strcpy(out, r.tag);       /* source is only 2 bytes */
            return 0;
        }
        ''')
        assert spatial(result)
        assert "strcpy source" in result.trap.detail

    def test_strncpy_respects_n(self):
        result = run_full(r'''
        int main(void) { char b[4]; strncpy(b, "toolong", 4); return b[0]; }
        ''')
        assert result.trap is None
        assert result.exit_code == ord("t")

    def test_strncpy_overflow_detected(self):
        result = run_full(r'''
        int main(void) { char b[4]; strncpy(b, "toolong", 8); return 0; }
        ''')
        assert spatial(result)

    def test_strcat_overflow_detected(self):
        result = run_full(r'''
        int main(void) {
            char b[8];
            strcpy(b, "abcd");
            strcat(b, "efghij");   /* 4 + 6 + NUL > 8 */
            return 0;
        }
        ''')
        assert spatial(result)
        assert "strcat" in result.trap.detail

    def test_strcat_in_bounds_allowed(self):
        result = run_full(r'''
        int main(void) {
            char b[8];
            strcpy(b, "ab");
            strcat(b, "cd");
            return (int)strlen(b);
        }
        ''')
        assert result.trap is None
        assert result.exit_code == 4

    def test_gets_overflow_detected(self):
        source = r'''
        int main(void) { char b[8]; gets(b); return 0; }
        '''
        result = compile_and_run(source, softbound=FULL_SHADOW,
                                 input_data=b"exceedingly-long-line\n")
        assert spatial(result)
        assert "gets" in result.trap.detail

    def test_gets_short_line_allowed(self):
        source = r'''
        int main(void) { char b[8]; gets(b); return b[0]; }
        '''
        result = compile_and_run(source, softbound=FULL_SHADOW,
                                 input_data=b"ok\n")
        assert result.trap is None
        assert result.exit_code == ord("o")


class TestMemoryWrappers:
    def test_memcpy_overflow_detected(self):
        result = run_full(r'''
        int main(void) {
            int src[8]; int dst[4];
            memcpy(dst, src, 8 * sizeof(int));
            return 0;
        }
        ''')
        assert spatial(result)
        assert "memcpy destination" in result.trap.detail

    def test_memcpy_source_overread_detected(self):
        result = run_full(r'''
        int main(void) {
            int src[4]; int dst[8];
            memcpy(dst, src, 8 * sizeof(int));
            return 0;
        }
        ''')
        assert spatial(result)
        assert "memcpy source" in result.trap.detail

    def test_memmove_checked_like_memcpy(self):
        result = run_full(r'''
        int main(void) {
            int a[4];
            memmove(a, a + 2, 4 * sizeof(int));  /* reads past a[3] */
            return 0;
        }
        ''')
        assert spatial(result)

    def test_memset_overflow_detected(self):
        result = run_full(r'''
        int main(void) { char b[16]; memset(b, 0, 32); return 0; }
        ''')
        assert spatial(result)
        assert "memset" in result.trap.detail

    def test_memset_exact_allowed(self):
        result = run_full(r'''
        int main(void) { char b[16]; memset(b, 7, 16); return b[15]; }
        ''')
        assert result.trap is None
        assert result.exit_code == 7

    def test_memcpy_copies_pointer_metadata(self):
        """Section 5.2: memcpy must carry metadata, so pointers that
        travelled through it remain dereferenceable — and bounded."""
        result = run_full(r'''
        int main(void) {
            int value = 42;
            int *src[2]; int *dst[2];
            src[0] = &value;
            memcpy(dst, src, sizeof(src));
            return *dst[0];
        }
        ''')
        assert result.trap is None
        assert result.exit_code == 42

    def test_memcpy_metadata_still_bounds_destination(self):
        result = run_full(r'''
        int main(void) {
            int arr[2];
            int *src[2]; int *dst[2];
            src[0] = arr;
            memcpy(dst, src, sizeof(src));
            dst[0][5] = 1;   /* beyond arr via the copied pointer */
            return 0;
        }
        ''')
        assert spatial(result)


class TestFormattedOutput:
    def test_sprintf_overflow_detected(self):
        result = run_full(r'''
        int main(void) {
            char b[8];
            sprintf(b, "%d-%d-%d", 1000, 2000, 3000);
            return 0;
        }
        ''')
        assert spatial(result)
        assert "sprintf" in result.trap.detail

    def test_sprintf_in_bounds_allowed(self):
        result = run_full(r'''
        int main(void) {
            char b[16];
            sprintf(b, "%d", 42);
            return b[0] - '0';
        }
        ''')
        assert result.trap is None
        assert result.exit_code == 4

    def test_snprintf_truncates_within_bounds(self):
        result = run_full(r'''
        int main(void) {
            char b[8];
            snprintf(b, 8, "%d%d%d", 1111, 2222, 3333);
            return (int)strlen(b);
        }
        ''')
        assert result.trap is None
        assert result.exit_code == 7


class TestStoreOnlyMode:
    def test_store_only_still_checks_write_wrappers(self):
        result = compile_and_run(
            'int main(void) { char b[4]; strcpy(b, "overflow!"); return 0; }',
            softbound=STORE_SHADOW)
        assert spatial(result)

    def test_wrapper_checks_cost_once_per_call(self):
        """Wrappers check the whole extent once (Section 5.2), so a big
        memcpy costs O(1) checks, not one per byte."""
        source = r'''
        int main(void) {
            char a[4096]; char b[4096];
            memcpy(b, a, 4096);
            return 0;
        }
        '''
        result = run_full(source)
        assert result.trap is None
        assert result.stats.checks < 32
