"""Behavioral detection tests: what SoftBound catches and what it allows.

These encode the paper's semantic claims: complete spatial safety under
full checking (Section 3), sub-object protection via bound shrinking,
tolerated out-of-bounds pointer *creation* (dereference is what traps),
arbitrary-cast compatibility, store-only mode's load blind spot, and the
metadata disjointness property of Section 3.4.
"""

import pytest

from repro.harness.driver import compile_and_run
from repro.softbound.config import (
    FULL_HASH,
    FULL_SHADOW,
    STORE_SHADOW,
    SoftBoundConfig,
)
from repro.vm.errors import TrapKind

ALL_FULL = [FULL_SHADOW, FULL_HASH]


def detected(result):
    return result.trap is not None and result.trap.kind is TrapKind.SPATIAL_VIOLATION


@pytest.mark.parametrize("config", ALL_FULL, ids=lambda c: c.label)
class TestFullChecking:
    def test_heap_write_overflow_detected(self, config):
        src = r'''
        int main(void) {
            char *buf = (char *)malloc(8);
            buf[8] = 'x';   /* one past the end */
            return 0;
        }
        '''
        assert detected(compile_and_run(src, softbound=config))

    def test_heap_read_overflow_detected(self, config):
        src = r'''
        int main(void) {
            int *a = (int *)malloc(4 * sizeof(int));
            return a[4];
        }
        '''
        assert detected(compile_and_run(src, softbound=config))

    def test_stack_overflow_detected(self, config):
        src = r'''
        int main(void) {
            int a[4];
            for (int i = 0; i <= 4; i++) a[i] = i;
            return 0;
        }
        '''
        assert detected(compile_and_run(src, softbound=config))

    def test_global_overflow_detected(self, config):
        src = r'''
        int g[4];
        int main(void) { g[4] = 1; return 0; }
        '''
        assert detected(compile_and_run(src, softbound=config))

    def test_underflow_detected(self, config):
        src = r'''
        int main(void) {
            int *a = (int *)malloc(4 * sizeof(int));
            a[-1] = 7;   /* heap header smash */
            return 0;
        }
        '''
        assert detected(compile_and_run(src, softbound=config))

    def test_sub_object_overflow_detected(self, config):
        """The paper's Section 2.1 example: object-based schemes miss
        this; SoftBound's shrunk bounds catch it."""
        src = r'''
        struct rec { char str[8]; void (*func)(void); };
        struct rec node;
        void noop(void) {}
        int main(void) {
            node.func = noop;
            char *ptr = node.str;
            strcpy(ptr, "overflow...");
            return 0;
        }
        '''
        assert detected(compile_and_run(src, softbound=config))

    def test_whole_access_must_fit(self, config):
        """Section 3.1: the check includes the access size — reading an
        int through a char's pointer is a violation."""
        src = r'''
        int main(void) {
            char c = 'x';
            char *cp = &c;
            int *ip = (int *)cp;
            return *ip;
        }
        '''
        assert detected(compile_and_run(src, softbound=config))

    def test_pointer_from_integer_has_null_bounds(self, config):
        src = r'''
        int main(void) {
            long addr = 4096 * 33;
            int *p = (int *)addr;
            return *p;
        }
        '''
        assert detected(compile_and_run(src, softbound=config))

    def test_benign_program_unaffected(self, config):
        src = r'''
        int main(void) {
            int a[10];
            int total = 0;
            for (int i = 0; i < 10; i++) a[i] = i;
            for (int i = 0; i < 10; i++) total += a[i];
            return total;
        }
        '''
        result = compile_and_run(src, softbound=config)
        assert result.trap is None
        assert result.exit_code == 45

    def test_out_of_bounds_pointer_creation_allowed(self, config):
        """Section 3.1: 'as is required by C semantics, creating an
        out-of-bound pointer is allowed' — only dereference traps."""
        src = r'''
        int main(void) {
            int a[4];
            int *end = a + 4;       /* one-past-the-end: legal */
            int *wild = a + 100;    /* far out: still legal to create */
            return (int)(end - a) + (wild != a);
        }
        '''
        result = compile_and_run(src, softbound=config)
        assert result.trap is None
        assert result.exit_code == 5

    def test_arbitrary_casts_tolerated(self, config):
        """Wild casts must neither trap nor corrupt metadata."""
        src = r'''
        int main(void) {
            double d = 2.0;
            long *lp = (long *)&d;
            long bits = *lp;
            int *ip = (int *)lp;
            int low = *ip;
            return bits != 0 && low >= 0;
        }
        '''
        result = compile_and_run(src, softbound=config)
        assert result.trap is None

    def test_interior_pointer_keeps_object_bounds(self, config):
        src = r'''
        int main(void) {
            int *a = (int *)malloc(10 * sizeof(int));
            int *mid = a + 5;      /* pointer to the middle */
            mid[-3] = 7;           /* still inside the object */
            mid[4] = 8;
            return a[2] * 10 + a[9];
        }
        '''
        result = compile_and_run(src, softbound=config)
        assert result.trap is None
        assert result.exit_code == 78

    def test_dangling_reuse_not_a_false_positive(self, config):
        """Temporal safety is explicitly out of scope (Section 1 fn 1):
        use-after-free within the reused block must not trap."""
        src = r'''
        int main(void) {
            int *p = (int *)malloc(16);
            free(p);
            int *q = (int *)malloc(16);
            q[0] = 9;
            return q[0];
        }
        '''
        result = compile_and_run(src, softbound=config)
        assert result.trap is None


class TestStoreOnlyMode:
    def test_write_overflow_detected(self):
        src = r'''
        int main(void) {
            char *p = (char *)malloc(4);
            p[4] = 1;
            return 0;
        }
        '''
        assert detected(compile_and_run(src, softbound=STORE_SHADOW))

    def test_read_overflow_missed(self):
        """The documented blind spot (Table 4: store-only misses the
        load-overflow bugs)."""
        src = r'''
        int main(void) {
            int *a = (int *)malloc(4 * sizeof(int));
            return a[4] & 1;   /* read past end */
        }
        '''
        result = compile_and_run(src, softbound=STORE_SHADOW)
        assert result.trap is None or result.trap.kind is not TrapKind.SPATIAL_VIOLATION


class TestMetadataIntegrity:
    def test_disjoint_metadata_survives_wild_stores(self):
        """Section 3.4: 'normal program memory operations cannot corrupt
        the metadata'.  Overwrite a pointer slot via a cast, then deref
        the (now garbage) pointer: SoftBound must trap, not wander."""
        src = r'''
        int main(void) {
            int x = 5;
            int *p = &x;
            long *alias = (long *)&p;
            *alias = 12345;     /* smash the pointer via a wild cast */
            return *p;          /* metadata says [&x,&x+4) but p=12345 */
        }
        '''
        result = compile_and_run(src, softbound=FULL_SHADOW)
        assert detected(result)

    def test_setbound_escape_hatch(self):
        """Section 5.2: programmer-inserted setbound() blesses a pointer
        created from an integer."""
        src = r'''
        int main(void) {
            int *a = (int *)malloc(8 * sizeof(int));
            long addr = (long)a;
            int *p = (int *)addr;      /* NULL bounds */
            setbound(p, 8 * sizeof(int));
            p[7] = 3;                  /* fine after setbound */
            return p[7];
        }
        '''
        result = compile_and_run(src, softbound=FULL_SHADOW)
        assert result.trap is None
        assert result.exit_code == 3

    def test_setbound_survives_return_and_optimization(self):
        """Regression: the bound register created by setbound() inside a
        pool allocator is consumed only through Ret.sb_meta; DCE once
        considered it dead, collapsing the returned bound to 0 and making
        every in-bounds use of the pool trap."""
        src = r'''
        char arena[256];
        int next_free = 0;
        char *pool_alloc(int size) {
            char *object = arena + next_free;
            next_free = next_free + size;
            setbound(object, size);
            return object;
        }
        int main(void) {
            char *a = pool_alloc(8);
            a[0] = 1;                   /* in-bounds: must not trap */
            a[7] = 2;                   /* in-bounds: must not trap */
            char *b = pool_alloc(8);
            b[0] = 9;
            a[8] = 3;                   /* into b's object: must trap */
            return 0;
        }
        '''
        result = compile_and_run(src, softbound=FULL_SHADOW)
        assert detected(result)
        assert "store of 1 bytes" in result.trap.detail

    def test_setbound_updates_unpromoted_memory_variable(self):
        """Regression: when the pointer variable still lives in memory
        (unoptimized build), setbound() must refresh the variable's
        metadata-table entry, not just the loaded register's bounds."""
        src = r'''
        int main(void) {
            int *a = (int *)malloc(8 * sizeof(int));
            long addr = (long)a;
            int *p = (int *)addr;      /* NULL bounds */
            setbound(p, 8 * sizeof(int));
            p[7] = 3;                  /* later load of p: needs table */
            return p[7];
        }
        '''
        result = compile_and_run(src, softbound=FULL_SHADOW, optimize=False)
        assert result.trap is None
        assert result.exit_code == 3

    def test_setbound_covers_copies_in_other_blocks(self):
        """Regression: a register-promoted copy of the variable made
        *before* the setbound() call, and used in a different basic
        block, must also receive the new bounds."""
        src = r'''
        int main(void) {
            double d = 4.0;
            long bits = *(long *)&d;
            int *ip = (int *)&d;
            long addr = (long)ip;
            int *again = (int *)addr;
            setbound(again, sizeof(double));
            return bits != 0 && *again == *ip;
        }
        '''
        result = compile_and_run(src, softbound=FULL_SHADOW)
        assert result.trap is None
        assert result.exit_code == 1

    def test_metadata_cleared_on_free(self):
        """Section 5.2: metadata cleared when pointer-bearing heap memory
        is released, so recycled memory can't supply stale bounds."""
        src = r'''
        struct holder { int *p; };
        int main(void) {
            int target;
            struct holder *h = (struct holder *)malloc(sizeof(struct holder));
            h->p = &target;
            free(h);
            long *raw = (long *)malloc(sizeof(struct holder));
            int **pp = (int **)raw;
            int *stale = *pp;          /* reads recycled memory */
            return *stale;             /* must trap: metadata was cleared */
        }
        '''
        result = compile_and_run(src, softbound=FULL_SHADOW)
        assert detected(result)


class TestFunctionPointerProtection:
    def test_data_pointer_cannot_be_called(self):
        src = r'''
        int main(void) {
            int x = 7;
            int *data = &x;
            int (*fp)(void) = (int (*)(void))data;
            return fp();
        }
        '''
        result = compile_and_run(src, softbound=FULL_SHADOW)
        assert result.trap is not None
        assert result.trap.kind is TrapKind.FUNCTION_POINTER_VIOLATION

    def test_legitimate_function_pointer_calls_work(self):
        src = r'''
        int three(void) { return 3; }
        int main(void) {
            int (*fp)(void) = three;
            return fp();
        }
        '''
        result = compile_and_run(src, softbound=FULL_SHADOW)
        assert result.trap is None
        assert result.exit_code == 3

    def test_function_pointer_through_struct_and_memory(self):
        src = r'''
        struct ops { int (*get)(void); };
        int five(void) { return 5; }
        int main(void) {
            struct ops table;
            table.get = five;
            return table.get();
        }
        '''
        result = compile_and_run(src, softbound=FULL_SHADOW)
        assert result.trap is None
        assert result.exit_code == 5


class TestVarargProtection:
    def test_vararg_overdecode_detected(self):
        """Section 5.2: vararg decode checked against passed count."""
        src = r'''
        int take(int n, ...) {
            va_list ap;
            va_start(&ap);
            long a = va_arg_long(&ap);
            long b = va_arg_long(&ap);   /* only one was passed */
            return (int)(a + b);
        }
        int main(void) { return take(1, 10); }
        '''
        result = compile_and_run(src, softbound=FULL_SHADOW)
        assert result.trap is not None
        assert result.trap.kind is TrapKind.VARARG_VIOLATION

    def test_vararg_pointer_metadata_flows(self):
        src = r'''
        int first_elem(int n, ...) {
            va_list ap;
            va_start(&ap);
            int *p = (int *)va_arg_ptr(&ap);
            return p[0];
        }
        int main(void) {
            int a[2];
            a[0] = 42;
            return first_elem(1, a);
        }
        '''
        result = compile_and_run(src, softbound=FULL_SHADOW)
        assert result.trap is None
        assert result.exit_code == 42

    def test_vararg_pointer_overflow_caught(self):
        src = r'''
        int smash(int n, ...) {
            va_list ap;
            va_start(&ap);
            int *p = (int *)va_arg_ptr(&ap);
            p[5] = 1;   /* out of bounds of the passed array */
            return 0;
        }
        int main(void) {
            int a[2];
            return smash(1, a);
        }
        '''
        assert detected(compile_and_run(src, softbound=FULL_SHADOW))


class TestSilentCorruptionWithoutSoftBound:
    """Control group: the same bugs run 'fine' (i.e. corrupt silently)
    without instrumentation, which is the paper's motivation."""

    def test_stack_overflow_corrupts_silently(self):
        src = r'''
        int main(void) {
            int victim = 7;
            int a[4];
            for (int i = 0; i < 8; i++) a[i] = 1;  /* overflows into frame */
            return 0;
        }
        '''
        result = compile_and_run(src)
        assert result.trap is None or result.trap.kind is not TrapKind.SPATIAL_VIOLATION

    def test_sub_object_overflow_corrupts_sibling_field(self):
        src = r'''
        struct rec { char str[8]; long secret; };
        struct rec g;
        int main(void) {
            g.secret = 7;
            strcpy(g.str, "AAAAAAAAAAAA");   /* 12 chars + NUL */
            return g.secret == 7;
        }
        '''
        result = compile_and_run(src)
        assert result.trap is None
        assert result.exit_code == 0  # secret was corrupted
