"""SoftBound transform structural tests: what instrumentation is emitted."""

from dataclasses import replace

import pytest

from repro.harness.driver import compile_program
from repro.softbound.config import (
    CheckMode,
    FULL_SHADOW,
    STORE_SHADOW,
    SoftBoundConfig,
)


def instructions_of(module, name):
    func = module.functions[name]
    return list(func.instructions())


def opcodes(module, name):
    return [i.opcode for i in instructions_of(module, name)]


def test_functions_are_renamed_with_sb_prefix():
    """Paper Section 3.3: 'the function name is appended with a unique
    identifier, specifying this function has been transformed'."""
    compiled = compile_program("int f(int x) { return x; } int main(void) { return f(1); }",
                               softbound=FULL_SHADOW)
    assert "_sb_f" in compiled.module.functions
    assert "_sb_main" in compiled.module.functions
    assert "f" not in compiled.module.functions
    assert compiled.module.sb_aliases["f"] == "_sb_f"


def test_pointer_params_get_base_and_bound_companions():
    src = "int deref(int *p, int n) { return p[n]; } int main(void) { int a[3]; return deref(a, 1); }"
    compiled = compile_program(src, softbound=FULL_SHADOW)
    func = compiled.module.functions["_sb_deref"]
    # one pointer param -> exactly two extra params (base, bound)
    assert len(func.sb_extra_params) == 2
    assert "p.base" in func.sb_extra_params[0].name
    assert "p.bound" in func.sb_extra_params[1].name


def test_non_pointer_function_gets_no_extra_params():
    compiled = compile_program("int f(int x) { return x + 1; } int main(void) { return f(1); }",
                               softbound=FULL_SHADOW)
    assert compiled.module.functions["_sb_f"].sb_extra_params == []


def test_full_mode_checks_loads_and_stores():
    # optimize_checks off: inspect the raw instrumentation.  (With it on,
    # checkelim correctly removes the load check of a[1], which is
    # dominated by the identical store check.)
    src = "int main(void) { int a[4]; a[1] = 5; return a[1]; }"
    config = replace(FULL_SHADOW, optimize_checks=False)
    compiled = compile_program(src, softbound=config)
    checks = [i for i in instructions_of(compiled.module, "_sb_main") if i.opcode == "sb_check"]
    kinds = {c.access_kind for c in checks}
    assert "store" in kinds and "load" in kinds


def test_check_optimization_removes_dominated_load_check():
    """The Section 6.1 effect: re-running the optimizer over the
    instrumented code removes checks made redundant by canonicalization
    (here, the load of a[1] is covered by the store check of a[1])."""
    src = "int main(void) { int a[4]; a[1] = 5; return a[1]; }"
    raw = compile_program(src, softbound=replace(FULL_SHADOW, optimize_checks=False))
    cleaned = compile_program(src, softbound=FULL_SHADOW)

    def count_checks(compiled):
        return sum(1 for i in instructions_of(compiled.module, "_sb_main")
                   if i.opcode == "sb_check")

    assert count_checks(cleaned) < count_checks(raw)
    assert cleaned.run().exit_code == raw.run().exit_code == 5


def test_store_only_mode_checks_only_stores():
    """Section 6.3: store-only 'fully propagates all metadata, but
    inserts bounds checks only for memory writes'."""
    src = "int main(void) { int a[4]; a[1] = 5; return a[1]; }"
    compiled = compile_program(src, softbound=STORE_SHADOW)
    checks = [i for i in instructions_of(compiled.module, "_sb_main")
              if i.opcode == "sb_check" and not i.is_fnptr_check]
    assert checks, "store-only mode must still check stores"
    assert all(c.access_kind == "store" for c in checks)


def test_store_only_still_propagates_metadata():
    src = r'''
    int *identity(int *p) { return p; }
    int main(void) { int x = 3; int *p = identity(&x); return *p; }
    '''
    compiled = compile_program(src, softbound=STORE_SHADOW)
    ops = opcodes(compiled.module, "_sb_main")
    # Metadata table traffic still present even though loads unchecked.
    assert compiled.module.functions["_sb_identity"].sb_extra_params


def test_pointer_load_followed_by_metadata_lookup():
    """Section 3.2: table lookup at every load of a pointer value."""
    src = r'''
    int **gpp;
    int main(void) { int *p = *gpp; return 0; }
    '''
    compiled = compile_program(src, softbound=FULL_SHADOW)
    instrs = instructions_of(compiled.module, "_sb_main")
    load_idx = [i for i, instr in enumerate(instrs)
                if instr.opcode == "load" and instr.is_pointer_value]
    assert load_idx
    following = [instr.opcode for instr in instrs[load_idx[0] + 1 : load_idx[0] + 3]]
    assert "sb_meta_load" in following


def test_pointer_store_followed_by_metadata_update():
    src = r'''
    int *slot;
    int main(void) { int x; slot = &x; return 0; }
    '''
    compiled = compile_program(src, softbound=FULL_SHADOW)
    instrs = instructions_of(compiled.module, "_sb_main")
    store_idx = [i for i, instr in enumerate(instrs)
                 if instr.opcode == "store" and instr.is_pointer_value]
    assert store_idx
    following = [instr.opcode for instr in instrs[store_idx[0] + 1 : store_idx[0] + 3]]
    assert "sb_meta_store" in following


def test_non_pointer_stores_have_no_metadata_update():
    """Section 3.2: 'loads and stores of non-pointer values are
    unaffected' (beyond the bounds check itself)."""
    src = "int g; int main(void) { g = 5; return g; }"
    compiled = compile_program(src, softbound=FULL_SHADOW)
    ops = opcodes(compiled.module, "_sb_main")
    assert "sb_meta_store" not in ops
    assert "sb_meta_load" not in ops


def test_indirect_call_gets_function_pointer_check():
    src = r'''
    int f(void) { return 1; }
    int main(void) { int (*fp)(void) = f; return fp(); }
    '''
    compiled = compile_program(src, softbound=FULL_SHADOW)
    checks = [i for i in instructions_of(compiled.module, "_sb_main")
              if i.opcode == "sb_check" and i.is_fnptr_check]
    assert len(checks) == 1


def test_direct_call_has_no_function_pointer_check():
    src = "int f(void) { return 1; } int main(void) { return f(); }"
    compiled = compile_program(src, softbound=FULL_SHADOW)
    checks = [i for i in instructions_of(compiled.module, "_sb_main")
              if i.opcode == "sb_check" and i.is_fnptr_check]
    assert not checks


def test_call_sites_append_metadata_arguments():
    """Section 3.3: call-site transformation driven by argument types."""
    src = r'''
    int take(int *p) { return *p; }
    int main(void) { int x = 1; return take(&x); }
    '''
    compiled = compile_program(src, softbound=FULL_SHADOW)
    calls = [i for i in instructions_of(compiled.module, "_sb_main")
             if i.opcode == "call" and i.callee == "take"]
    assert len(calls) == 1
    # original pointer arg + base + bound
    assert len(calls[0].args) == 3


def test_pointer_return_carries_metadata():
    src = r'''
    int *passthrough(int *p) { return p; }
    int main(void) { int x; return *passthrough(&x); }
    '''
    compiled = compile_program(src, softbound=FULL_SHADOW)
    rets = [i for i in instructions_of(compiled.module, "_sb_passthrough")
            if i.opcode == "ret"]
    assert all(getattr(r, "sb_meta", None) is not None for r in rets)
    calls = [i for i in instructions_of(compiled.module, "_sb_main")
             if i.opcode == "call" and i.callee == "passthrough"]
    assert getattr(calls[0], "sb_dst_meta", None) is not None


def test_shrink_bounds_config_controls_field_geps():
    src = r'''
    struct s { char buf[8]; int v; };
    struct s g;
    int main(void) { char *p = g.buf; p[0] = 1; return p[0]; }
    '''
    with_shrink = compile_program(src, softbound=FULL_SHADOW)
    without = compile_program(
        src, softbound=SoftBoundConfig(shrink_bounds=False))
    def count_field_bound_geps(compiled):
        return sum(
            1 for i in instructions_of(compiled.module, "_sb_main")
            if i.opcode == "gep" and getattr(i.dst, "hint", "") == "field.sbe")
    assert count_field_bound_geps(with_shrink) >= 1
    assert count_field_bound_geps(without) == 0


def test_checkelim_removes_redundant_checks():
    src = r'''
    int main(void) {
        int a[4];
        int *p = a;
        p[0] = 1; p[0] = 2; p[0] = 3;   /* same slot, same bounds */
        return p[0];
    }
    '''
    unopt = compile_program(src, softbound=SoftBoundConfig(optimize_checks=False))
    opt = compile_program(src, softbound=FULL_SHADOW)
    def check_count(compiled):
        return sum(1 for i in instructions_of(compiled.module, "_sb_main")
                   if i.opcode == "sb_check")
    assert check_count(opt) <= check_count(unopt)


def test_transform_is_idempotent_per_function():
    compiled = compile_program("int main(void) { return 0; }", softbound=FULL_SHADOW)
    from repro.softbound.transform import SoftBoundTransform

    before = list(compiled.module.functions)
    SoftBoundTransform(FULL_SHADOW).run(compiled.module)  # second run
    assert list(compiled.module.functions) == before  # no double rename


def test_transformed_module_passes_verifier():
    from repro.ir.verifier import verify_module

    src = r'''
    struct node { struct node *next; int v; };
    struct node *cons(struct node *tail, int v) {
        struct node *n = (struct node *)malloc(sizeof(struct node));
        n->next = tail; n->v = v; return n;
    }
    int main(void) {
        struct node *list = NULL;
        for (int i = 0; i < 3; i++) list = cons(list, i);
        int t = 0;
        while (list) { t += list->v; list = list->next; }
        return t;
    }
    '''
    compiled = compile_program(src, softbound=FULL_SHADOW)
    assert verify_module(compiled.module)
