"""Function-pointer signature encoding (paper Section 5.2 extension).

The paper notes that "cast between function pointers of incompatible
types presents a challenge" and sketches — but does not implement — "the
ultimate solution ... to encode the pointer/non-pointer signature of the
function's arguments, allowing a dynamic check".  We implement that
extension behind ``SoftBoundConfig(encode_fnptr_signature=True)``.

One modelling note: in our VM the base/bound companion values travel in
a side band rather than in argument registers, so a mismatched cast
cannot *manufacture* bounds the way the paper fears on real hardware —
the callee just sees NULL bounds.  What the signature check restores is
detection fidelity: the violation is reported eagerly and precisely at
the indirect call, including cases (a callee that never dereferences,
an int silently reinterpreted) that otherwise go unnoticed entirely.
"""

import pytest

from repro.harness.driver import compile_and_run
from repro.softbound.config import CheckMode, SoftBoundConfig
from repro.vm.errors import TrapKind

SIG_CONFIG = SoftBoundConfig(encode_fnptr_signature=True)


def trap_kind(result):
    return result.trap.kind if result.trap is not None else None


class TestCompatibleCallsStillWork:
    def test_matching_int_signature(self):
        source = r'''
        int twice(int x) { return 2 * x; }
        int main() { int (*f)(int) = twice; return f(21); }
        '''
        result = compile_and_run(source, softbound=SIG_CONFIG)
        assert result.exit_code == 42
        assert result.trap is None

    def test_matching_pointer_signature(self):
        source = r'''
        int first(int *p) { return p[0]; }
        int main() {
            int a[4]; a[0] = 9;
            int (*f)(int *) = first;
            return f(a);
        }
        '''
        result = compile_and_run(source, softbound=SIG_CONFIG)
        assert result.exit_code == 9
        assert result.trap is None

    def test_matching_mixed_signature(self):
        source = r'''
        int pick(int *p, int i, char *q) { return p[i] + q[0]; }
        int main() {
            int a[4]; a[2] = 5;
            char c[2]; c[0] = 3;
            int (*f)(int *, int, char *) = pick;
            return f(a, 2, c);
        }
        '''
        result = compile_and_run(source, softbound=SIG_CONFIG)
        assert result.exit_code == 8
        assert result.trap is None

    def test_function_pointer_through_struct_and_call_chain(self):
        source = r'''
        typedef struct { int (*op)(int, int); } Table;
        int add(int a, int b) { return a + b; }
        int main() {
            Table t;
            t.op = add;
            return t.op(30, 12);
        }
        '''
        result = compile_and_run(source, softbound=SIG_CONFIG)
        assert result.exit_code == 42
        assert result.trap is None


class TestIncompatibleCastsTrapAtCallSite:
    def test_int_passed_where_pointer_declared(self):
        source = r'''
        int deref(int *p) { return *p; }
        int main() {
            int (*f)(long) = (int(*)(long))deref;
            return f(77L);
        }
        '''
        result = compile_and_run(source, softbound=SIG_CONFIG)
        assert trap_kind(result) is TrapKind.FUNCTION_POINTER_VIOLATION
        assert "signature mismatch" in result.trap.detail

    def test_pointer_passed_where_int_declared(self):
        """Without the signature check this is *silent* misbehaviour:
        the callee treats the pointer's numeric value as data."""
        source = r'''
        long identity(long x) { return x; }
        int main() {
            int value = 5;
            long (*f)(int *) = (long(*)(int *))identity;
            return (int)f(&value);
        }
        '''
        unchecked = compile_and_run(source, softbound=SoftBoundConfig())
        assert unchecked.trap is None  # silently returns an address
        checked = compile_and_run(source, softbound=SIG_CONFIG)
        assert trap_kind(checked) is TrapKind.FUNCTION_POINTER_VIOLATION

    def test_arity_mismatch_too_few_args(self):
        source = r'''
        int add3(int a, int b, int c) { return a + b + c; }
        int main() {
            int (*f)(int, int) = (int(*)(int, int))add3;
            return f(1, 2);
        }
        '''
        result = compile_and_run(source, softbound=SIG_CONFIG)
        assert trap_kind(result) is TrapKind.FUNCTION_POINTER_VIOLATION

    def test_arity_mismatch_too_many_args(self):
        source = r'''
        int one(int a) { return a; }
        int main() {
            int (*f)(int, int) = (int(*)(int, int))one;
            return f(1, 2);
        }
        '''
        result = compile_and_run(source, softbound=SIG_CONFIG)
        assert trap_kind(result) is TrapKind.FUNCTION_POINTER_VIOLATION

    def test_callee_that_never_dereferences_is_still_caught(self):
        """The case plain SoftBound cannot see at all: the callee ignores
        its (mistyped) argument, so no bounds check ever fires."""
        source = r'''
        int constant(int *p) { return 7; }
        int main() {
            int (*f)(int) = (int(*)(int))constant;
            return f(123);
        }
        '''
        unchecked = compile_and_run(source, softbound=SoftBoundConfig())
        assert unchecked.trap is None
        assert unchecked.exit_code == 7
        checked = compile_and_run(source, softbound=SIG_CONFIG)
        assert trap_kind(checked) is TrapKind.FUNCTION_POINTER_VIOLATION

    def test_store_only_mode_also_checks_signatures(self):
        source = r'''
        int deref(int *p) { return *p; }
        int main() {
            int (*f)(long) = (int(*)(long))deref;
            return f(4L);
        }
        '''
        config = SoftBoundConfig(mode=CheckMode.STORE_ONLY,
                                 encode_fnptr_signature=True)
        result = compile_and_run(source, softbound=config)
        assert trap_kind(result) is TrapKind.FUNCTION_POINTER_VIOLATION


class TestVarargsAndEdgeCases:
    def test_vararg_callee_accepts_extra_args(self):
        source = r'''
        int sum(int n, ...) {
            va_list ap;
            va_start(&ap);
            int total = 0;
            for (int i = 0; i < n; i++) total += (int)va_arg_long(&ap);
            va_end(&ap);
            return total;
        }
        int main() {
            int (*f)(int, int, int) = (int(*)(int, int, int))sum;
            return f(2, 20, 22);
        }
        '''
        result = compile_and_run(source, softbound=SIG_CONFIG)
        assert result.trap is None
        assert result.exit_code == 42

    def test_vararg_callee_still_requires_fixed_prefix(self):
        source = r'''
        int tally(int *out, ...) { return out[0]; }
        int main() {
            int (*f)(int) = (int(*)(int))tally;
            return f(5);
        }
        '''
        result = compile_and_run(source, softbound=SIG_CONFIG)
        assert trap_kind(result) is TrapKind.FUNCTION_POINTER_VIOLATION

    def test_direct_calls_are_not_signature_checked(self):
        # Direct calls are linked by name; the check applies to indirect
        # calls only, exactly as the paper scopes the problem.
        source = r'''
        int add(int a, int b) { return a + b; }
        int main() { return add(40, 2); }
        '''
        result = compile_and_run(source, softbound=SIG_CONFIG)
        assert result.exit_code == 42

    def test_flag_off_preserves_prototype_behaviour(self):
        """With the flag off (the paper's actual prototype) the mismatch
        is only caught later, inside the callee, as a spatial violation
        against NULL bounds."""
        source = r'''
        int deref(int *p) { return *p; }
        int main() {
            int (*f)(long) = (int(*)(long))deref;
            return f(77L);
        }
        '''
        result = compile_and_run(source, softbound=SoftBoundConfig())
        assert trap_kind(result) is TrapKind.SPATIAL_VIOLATION

    def test_signature_check_charges_cost(self):
        source = r'''
        int twice(int x) { return 2 * x; }
        int main() {
            int (*f)(int) = twice;
            int total = 0;
            for (int i = 0; i < 10; i++) total += f(i);
            return total;
        }
        '''
        plain = compile_and_run(source, softbound=SoftBoundConfig())
        checked = compile_and_run(source, softbound=SIG_CONFIG)
        assert checked.exit_code == plain.exit_code == 90
        assert checked.stats.cost > plain.stats.cost
