"""Unit tests for the copy-propagation and CSE passes."""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.frontend.typecheck import parse_and_check
from repro.harness.driver import compile_and_run, compile_program
from repro.ir import instructions as ins
from repro.ir.irtypes import I32
from repro.ir.values import Const, Register
from repro.lower.lowering import lower
from repro.opt import copyprop, cse, mem2reg
from repro.softbound.config import FULL_SHADOW
from repro.workloads.randprog import generate


def lowered(source):
    return lower(parse_and_check(source))


def count_opcode(func, opcode):
    return sum(1 for i in func.instructions() if i.opcode == opcode)


class TestCopyProp:
    def test_rewrites_use_of_copied_register(self):
        module = lowered("int f(int x) { int y = x; return y + y; }")
        func = module.functions["f"]
        mem2reg.run(func)
        rewritten = copyprop.run(func)
        assert rewritten > 0
        # Every remaining binop operand should be the original parameter
        # (or a constant), not a copy.
        param_uid = func.params[0].register.uid
        for instr in func.instructions():
            if instr.opcode == "binop":
                for operand in (instr.a, instr.b):
                    if isinstance(operand, Register):
                        assert operand.uid == param_uid

    def test_redefinition_kills_copy(self):
        # y = x; x = 9; return y  — y's use must NOT become the new x.
        func_src = "int f(int x) { int y = x; x = 9; return y; }"
        compiled_result = compile_and_run(
            f"{func_src} int main(void) {{ return f(4); }}")
        assert compiled_result.exit_code == 4

    def test_constant_copies_propagate(self):
        module = lowered("int f(void) { int a = 7; int b = a; return b; }")
        func = module.functions["f"]
        mem2reg.run(func)
        copyprop.run(func)
        ret = [i for i in func.instructions() if i.opcode == "ret"][0]
        assert isinstance(ret.value, Const) or isinstance(ret.value, Register)

    def test_self_copy_does_not_loop(self):
        func = lowered("int f(int x) { return x; }").functions["f"]
        reg = Register(uid=999, type=I32, hint="t")
        func.blocks[0].instructions.insert(0, ins.Mov(dst=reg, src=reg))
        copyprop.run(func)  # must terminate


class TestCse:
    def test_duplicate_binop_collapsed(self):
        module = lowered(
            "int f(int x, int y) { return (x + y) * (x + y); }")
        func = module.functions["f"]
        mem2reg.run(func)
        copyprop.run(func)
        before = count_opcode(func, "binop")
        replaced = cse.run(func)
        assert replaced >= 1
        assert count_opcode(func, "binop") < before

    def test_redefined_operand_blocks_reuse(self):
        source = """
        int f(int x) {
            int a = x + 1;
            x = x * 2;
            int b = x + 1;   /* different x: must not be CSE'd with a */
            return a + b;
        }
        int main(void) { return f(10); }
        """
        assert compile_and_run(source).exit_code == 32

    def test_gep_with_different_extents_not_merged(self):
        # Two geps with equal base/offset but different field extents
        # must stay distinct: SoftBound's bound shrinking reads them.
        func = lowered("int f(int x) { return x; }").functions["f"]
        base = func.params[0].register
        r1 = Register(uid=9001, type=base.type, hint="g1")
        r2 = Register(uid=9002, type=base.type, hint="g2")
        block = func.blocks[0]
        block.instructions = [
            ins.Gep(dst=r1, base=base, offset=Const(0, I32), field_extent=4),
            ins.Gep(dst=r2, base=base, offset=Const(0, I32), field_extent=8),
        ] + block.instructions
        replaced = cse.run(func)
        assert replaced == 0

    def test_identical_geps_merged(self):
        func = lowered("int f(int x) { return x; }").functions["f"]
        base = func.params[0].register
        r1 = Register(uid=9001, type=base.type, hint="g1")
        r2 = Register(uid=9002, type=base.type, hint="g2")
        block = func.blocks[0]
        block.instructions = [
            ins.Gep(dst=r1, base=base, offset=Const(8, I32)),
            ins.Gep(dst=r2, base=base, offset=Const(8, I32)),
        ] + block.instructions
        assert cse.run(func) == 1
        assert count_opcode(func, "gep") == 1
        assert count_opcode(func, "mov") >= 1


class TestPipelineEffect:
    def test_post_instrumentation_passes_reduce_cost(self):
        """The Section 6.1 claim in miniature: re-optimizing after
        instrumentation reduces runtime cost on address-arithmetic-heavy
        code without changing behaviour."""
        source = """
        int main(void) {
            int a[16];
            int t = 0;
            for (int i = 0; i < 16; i++) { a[i] = i; t += a[i]; }
            return t;
        }
        """
        raw = compile_program(source, softbound=replace(
            FULL_SHADOW, optimize_checks=False))
        cleaned = compile_program(source, softbound=FULL_SHADOW)
        raw_result, cleaned_result = raw.run(), cleaned.run()
        assert raw_result.exit_code == cleaned_result.exit_code == 120
        assert cleaned_result.stats.cost <= raw_result.stats.cost

    @given(st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_new_passes_preserve_semantics(self, seed):
        source = generate(seed).source
        with_opt = compile_and_run(source, optimize=True)
        without = compile_and_run(source, optimize=False)
        assert with_opt.exit_code == without.exit_code
        assert with_opt.output == without.output
        assert with_opt.trap is None and without.trap is None
