"""Optimizer pass tests: mem2reg, constfold, dce, checkelim."""

from repro.frontend.typecheck import parse_and_check
from repro.harness.driver import compile_and_run, compile_program
from repro.ir.verifier import verify_module
from repro.lower.lowering import lower
from repro.opt import checkelim, constfold, dce, mem2reg
from repro.opt.pipeline import optimize_module
from repro.softbound.config import FULL_SHADOW, SoftBoundConfig


def lowered(source):
    return lower(parse_and_check(source))


def count_opcode(func, opcode):
    return sum(1 for i in func.instructions() if i.opcode == opcode)


class TestMem2Reg:
    def test_promotes_scalar_locals(self):
        module = lowered("int f(void) { int a = 1; int b = 2; return a + b; }")
        func = module.functions["f"]
        before = count_opcode(func, "alloca")
        promoted = mem2reg.run(func)
        assert promoted == before  # every local is a non-escaping scalar
        assert count_opcode(func, "alloca") == 0
        assert count_opcode(func, "load") == 0

    def test_address_taken_local_not_promoted(self):
        module = lowered("int f(void) { int a = 1; int *p = &a; return *p; }")
        func = module.functions["f"]
        mem2reg.run(func)
        assert count_opcode(func, "alloca") == 1  # `a` stays; `p` promoted

    def test_arrays_never_promoted(self):
        module = lowered("int f(void) { int a[4]; a[0] = 1; return a[0]; }")
        func = module.functions["f"]
        mem2reg.run(func)
        assert count_opcode(func, "alloca") == 1

    def test_promotion_preserves_behaviour(self):
        src = r'''
        int f(int n) {
            int total = 0;
            for (int i = 0; i < n; i++) total += i * i;
            return total;
        }
        int main(void) { return f(10); }
        '''
        unopt = compile_and_run(src, optimize=False)
        opt = compile_and_run(src, optimize=True)
        assert unopt.exit_code == opt.exit_code == 285
        assert opt.stats.memory_ops < unopt.stats.memory_ops

    def test_loop_carried_pointer_promoted_correctly(self):
        src = r'''
        struct node { int v; struct node *next; };
        int main(void) {
            struct node a; struct node b;
            a.v = 1; a.next = &b; b.v = 2; b.next = NULL;
            int total = 0;
            for (struct node *p = &a; p; p = p->next) total += p->v;
            return total;
        }
        '''
        assert compile_and_run(src).exit_code == 3


class TestConstFold:
    def test_folds_constant_arithmetic(self):
        module = lowered("int f(void) { return 2 * 3 + 4; }")
        func = module.functions["f"]
        changed = constfold.run(func)
        # The frontend keeps the expression tree; folding rewrites it.
        assert changed >= 1

    def test_folds_constant_branches(self):
        module = lowered("int f(void) { if (1) return 5; return 6; }")
        func = module.functions["f"]
        constfold.run(func)
        cbrs = [i for i in func.instructions() if i.opcode == "cbr"]
        from repro.ir.values import Const
        assert not any(isinstance(c.cond, Const) for c in cbrs)

    def test_fold_preserves_wrapping(self):
        src = "int main(void) { return 2147483647 + 1 < 0; }"
        assert compile_and_run(src).exit_code == 1


class TestDce:
    def test_removes_unused_pure_instructions(self):
        module = lowered("int f(int x) { int unused = x * 99; return x; }")
        func = module.functions["f"]
        mem2reg.run(func)
        removed = dce.run(func)
        assert removed >= 1

    def test_keeps_division_that_can_trap(self):
        module = lowered("int f(int x) { int unused = 10 / x; return x; }")
        func = module.functions["f"]
        mem2reg.run(func)
        dce.run(func)
        assert any(i.opcode == "binop" and i.op == "sdiv" for i in func.instructions())

    def test_keeps_loads(self):
        """Dead loads stay: they can be the read-overflow bugs the
        detection experiments must still observe."""
        module = lowered("int g[4]; int f(void) { int dead = g[0]; return 7; }")
        func = module.functions["f"]
        mem2reg.run(func)
        dce.run(func)
        assert count_opcode(func, "load") >= 1


class TestCheckElim:
    def test_removes_dominated_duplicate_checks(self):
        src = r'''
        int main(void) {
            int a[4];
            int *p = a;
            *p = 1; *p = 2;    /* same pointer register, same bounds */
            return *p;
        }
        '''
        with_elim = compile_program(src, softbound=FULL_SHADOW)
        without = compile_program(src, softbound=SoftBoundConfig(optimize_checks=False))
        def checks(compiled):
            return sum(1 for i in compiled.module.functions["_sb_main"].instructions()
                       if i.opcode == "sb_check")
        assert checks(with_elim) < checks(without)

    def test_does_not_remove_differently_sized_larger_check(self):
        src = r'''
        int main(void) {
            char buf[16];
            char *p = buf;
            p[0] = 1;                 /* 1-byte check            */
            *(long *)p = 2;           /* 8-byte check must stay  */
            return (int)*(long *)p;
        }
        '''
        result = compile_and_run(src, softbound=FULL_SHADOW)
        assert result.trap is None and result.exit_code == 2

    def test_safety_preserved_after_elimination(self):
        src = r'''
        int main(void) {
            int a[4];
            int *p = a;
            p[0] = 1;
            p[5] = 2;   /* must still trap after checkelim */
            return 0;
        }
        '''
        result = compile_and_run(src, softbound=FULL_SHADOW)
        assert result.detected_violation


class TestPipeline:
    def test_optimized_module_verifies(self):
        module = lowered(r'''
        int helper(int *p, int n) { return p[n]; }
        int main(void) { int a[3]; a[1] = 9; return helper(a, 1); }
        ''')
        optimize_module(module)
        assert verify_module(module)

    def test_pipeline_reports_stats(self):
        module = lowered("int f(void) { int a = 1 + 2; return a; }")
        stats = optimize_module(module)
        assert stats.promoted_allocas >= 1
