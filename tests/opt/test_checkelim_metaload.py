"""Dominance/block-scoped deduplication of ``sb_meta_load``s."""

from dataclasses import replace

from repro.harness.driver import compile_and_run, compile_program
from repro.softbound.config import FULL_SHADOW

RAW = replace(FULL_SHADOW, optimize_checks=False)


def static_meta_loads(compiled, fname="_sb_main"):
    return sum(1 for i in compiled.module.functions[fname].instructions()
               if i.opcode == "sb_meta_load")


class TestCrossBlockDedup:
    # `pp`'s pointee is re-read in both arms; every `*pp` read loads
    # p's slot metadata.  The helper is call-free and store-free, so
    # the table provably cannot change between the dominating read in
    # the entry block and the dominated re-reads in the arms —
    # cross-block (dominance-scoped) dedup applies.
    SOURCE = """
    int pick(int **pp, int which) {
        int first = **pp;
        if (which) { return first + **pp; }
        return first + **pp + 1;
    }
    int main(void) {
        int *p = (int *)malloc(sizeof(int));
        *p = 20;
        return pick(&p, 0) + 1;
    }
    """

    def test_dominated_reload_is_deduplicated(self):
        with_opt = compile_program(self.SOURCE, softbound=FULL_SHADOW)
        without = compile_program(self.SOURCE, softbound=RAW)
        # `pick` holds the dominating load of pp's slot plus dominated
        # reloads in both arms; dedup leaves strictly fewer.
        assert static_meta_loads(with_opt, "_sb_pick") \
            < static_meta_loads(without, "_sb_pick")

    def test_behaviour_and_result_unchanged(self):
        a = compile_and_run(self.SOURCE, softbound=RAW)
        b = compile_and_run(self.SOURCE, softbound=FULL_SHADOW)
        assert a.trap is None and b.trap is None
        assert a.exit_code == b.exit_code == 42
        assert b.stats.metadata_loads <= a.stats.metadata_loads

    def test_dynamic_metadata_loads_drop(self):
        a = compile_and_run(self.SOURCE, softbound=RAW)
        b = compile_and_run(self.SOURCE, softbound=FULL_SHADOW)
        assert b.stats.metadata_loads < a.stats.metadata_loads


class TestTableWriteBarriers:
    def test_call_blocks_cross_block_dedup(self):
        # The callee may rewrite any slot's metadata, so the reload
        # after the call must survive.
        source = """
        void clobber(int **pp) { *pp = (int *)malloc(2 * sizeof(int)); }
        int use(int **pp) {
            int a = **pp;
            clobber(pp);
            return a + **pp;
        }
        int main(void) {
            int *p = (int *)malloc(sizeof(int));
            *p = 5;
            return use(&p);
        }
        """
        compiled = compile_program(source, softbound=FULL_SHADOW)
        result = compiled.run()
        assert result.trap is None
        # Both loads of pp's slot remain: a call sits between them.
        assert static_meta_loads(compiled, "_sb_use") >= 2

    def test_pointer_store_updates_are_observed(self):
        # Within one block: p is overwritten through the table between
        # the two reads; the second read must see the *new* bounds (the
        # transform forwards the stored pair, which is the new entry).
        source = """
        int main(void) {
            int *p = (int *)malloc(sizeof(int));
            int **pp = &p;
            *p = 1;
            *pp = (int *)malloc(4 * sizeof(int));
            int *q = *pp;
            q[3] = 9;    /* legal only with the NEW bounds */
            return q[3];
        }
        """
        result = compile_and_run(source, softbound=FULL_SHADOW)
        assert result.trap is None
        assert result.exit_code == 9
