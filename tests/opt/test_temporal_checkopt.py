"""The optimizer's temporal hooks: checkelim dedup and licm hoisting.

Counts are asserted through the pipeline's PassStats and behaviour is
pinned by running the optimized build: a deduplicated or hoisted
temporal check must still catch every stale access (the equivalence
suites cover the full corpora; here the shapes are targeted).
"""

from repro.harness.driver import compile_and_run, compile_program
from repro.softbound.config import TEMPORAL_SHADOW
from repro.vm.errors import TrapKind

#: Straight-line repeated derefs of one pointer slot in a call-free
#: function body: dominated temporal checks are removable.
_REPEAT_DEREF = r'''
int body(int *p) {
    int total = 0;
    total += p[0];
    total += p[1];
    total += p[0];
    total += p[2];
    return total;
}
int data[4] = {1, 2, 3, 4};
int main(void) {
    return body(data);
}
'''

#: A call-free loop whose *condition* derefs an invariant pointer: the
#: header spatial check and the temporal check behind it are both
#: hoistable (licm hoists header checks only; body checks belong to
#: checkwiden's loop versioning).
_INVARIANT_LOOP = r'''
int data[4];
int main(void) {
    int *p = data;
    int total = 0;
    int i = 0;
    while (*p + i < 64) {        /* invariant header deref */
        i++;
        total += i;
    }
    return total & 63;
}
'''

#: The same loop shape but with a call inside: lock state may change
#: every iteration, so nothing temporal may move or be deduplicated
#: across iterations.
_LOOP_WITH_FREE = r'''
int main(void) {
    long **cells = (long **)malloc(8 * sizeof(long *));
    for (int i = 0; i < 8; i++)
        cells[i] = (long *)malloc(16);
    long total = 0;
    long *stale = cells[3];
    for (int i = 0; i < 8; i++) {
        total += *cells[3];      /* same slot every iteration... */
        if (i == 4)
            free(stale);         /* ...but iteration 4 kills it */
    }
    return (int)total;
}
'''


def _stats(source):
    compiled = compile_program(source, softbound=TEMPORAL_SHADOW)
    return compiled, compiled.check_opt_stats


#: Two loads of the same pointer slot (the parameter register, stable
#: across blocks) in a dominating and a dominated block, no calls or
#: pointer stores in the function: the second sb_meta_load dedups, and
#: the replacement must redefine *all four* widened companions — a
#: dropped key/lock would leave the following sb_temporal_check reading
#: an undefined register (compilation of a valid program failed the
#: verifier before this was fixed).
_CROSS_BLOCK_RELOAD = r'''
long data[4] = {10, 20, 30, 40};
long *cell = data;
int deref2(long **pp, int c) {
    long x = (*pp)[0];
    if (c)
        x += (*pp)[1];
    return (int)x;
}
int main(void) {
    return deref2(&cell, 1);
}
'''


def test_deduped_meta_load_carries_temporal_companions():
    compiled, stats = _stats(_CROSS_BLOCK_RELOAD)
    assert stats.deduped_meta_loads >= 1, stats  # the shape must dedup
    result = compiled.run()
    assert result.trap is None and result.exit_code == 30, result.trap


def test_checkelim_dedupes_dominated_temporal_checks():
    compiled, stats = _stats(_REPEAT_DEREF)
    assert stats.removed_temporal_checks >= 1, stats
    result = compiled.run()
    assert result.trap is None and result.exit_code == 7


def test_licm_hoists_invariant_temporal_check_from_call_free_loop():
    compiled, stats = _stats(_INVARIANT_LOOP)
    assert stats.hoisted_checks >= 2, stats  # spatial + temporal pair
    result = compiled.run()
    assert result.trap is None and result.exit_code == 32


def test_loop_with_free_keeps_per_iteration_temporal_checks():
    """The mid-loop free must still trap on iteration 5: temporal
    checks are never moved or deduplicated across calls."""
    compiled, stats = _stats(_LOOP_WITH_FREE)
    result = compiled.run()
    assert result.trap is not None
    assert result.trap.kind is TrapKind.TEMPORAL_VIOLATION


def test_optimized_equals_unoptimized_on_attacks():
    """The optimizer must not change which temporal traps fire."""
    from dataclasses import replace

    from repro.workloads.temporal_attacks import all_temporal_attacks

    unopt = replace(TEMPORAL_SHADOW, optimize_checks=False)
    for attack in all_temporal_attacks():
        optimized = compile_and_run(attack.source, softbound=TEMPORAL_SHADOW)
        reference = compile_and_run(attack.source, softbound=unopt)
        assert (optimized.trap is None) == (reference.trap is None), attack.name
        if optimized.trap is not None:
            assert optimized.trap.kind == reference.trap.kind, attack.name
            assert optimized.trap.address == reference.trap.address, attack.name
