"""Guarded loop-versioned check widening."""

from dataclasses import replace

from repro.harness.driver import compile_and_run, compile_program
from repro.softbound.config import FULL_SHADOW

RAW = replace(FULL_SHADOW, optimize_checks=False)
NO_LOOP = replace(FULL_SHADOW, loop_optimize=False)

ARRAY_WALK = """
int main(void) {
    int *a = (int *)malloc(200 * sizeof(int));
    int s = 0;
    for (int i = 0; i < 200; i++) a[i] = i;
    for (int i = 0; i < 200; i++) s = s + a[i];
    return s & 0xff;
}
"""


def slow_blocks(compiled, fname="_sb_main"):
    return [b.label for b in compiled.module.functions[fname].blocks
            if b.label.endswith(".slow")]


class TestFastPath:
    def test_in_bounds_walk_runs_check_free(self):
        slow = compile_and_run(ARRAY_WALK, softbound=NO_LOOP)
        fast = compile_and_run(ARRAY_WALK, softbound=FULL_SHADOW)
        assert slow.exit_code == fast.exit_code
        assert slow.output == fast.output
        assert fast.trap is None
        # 400 per-iteration checks collapse to a handful of widened
        # guard evaluations (plain compares, not sb_checks).
        assert slow.stats.checks >= 400
        assert fast.stats.checks < 10
        assert fast.stats.cost < slow.stats.cost

    def test_loop_is_versioned_not_stripped(self):
        compiled = compile_program(ARRAY_WALK, softbound=FULL_SHADOW)
        labels = slow_blocks(compiled)
        assert labels, "expected slow-path clones of the widened loops"
        assert compiled.check_opt_stats.widened_loops >= 2
        assert compiled.check_opt_stats.widened_checks >= 2
        # The slow clones keep their checks.
        func = compiled.module.functions["_sb_main"]
        slow_checks = sum(
            1 for b in func.blocks if b.label.endswith(".slow")
            for i in b.instructions if i.opcode == "sb_check")
        assert slow_checks >= 2

    def test_runtime_bound_widens_too(self):
        source = """
        int sum(int *a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s = s + a[i];
            return s;
        }
        int main(void) {
            int *a = (int *)malloc(64 * sizeof(int));
            for (int i = 0; i < 64; i++) a[i] = 1;
            return sum(a, 64);
        }
        """
        fast = compile_and_run(source, softbound=FULL_SHADOW)
        slow = compile_and_run(source, softbound=NO_LOOP)
        assert fast.exit_code == slow.exit_code == 64
        assert fast.stats.checks < slow.stats.checks

    def test_step_two_and_inclusive_bounds(self):
        source = """
        int main(void) {
            long a[101];
            long s = 0;
            for (int i = 0; i <= 100; i += 2) a[i] = i;
            for (int i = 0; i <= 100; i += 2) s = s + a[i];
            return (int)(s & 0x7f);
        }
        """
        fast = compile_and_run(source, softbound=FULL_SHADOW)
        slow = compile_and_run(source, softbound=NO_LOOP)
        assert fast.exit_code == slow.exit_code
        assert fast.trap is None
        assert fast.stats.checks < slow.stats.checks

    def test_downward_affine_access(self):
        # a[n-1-i]: negative coefficient — endpoints still bound the range.
        source = """
        int main(void) {
            int a[64];
            int s = 0;
            for (int i = 0; i < 64; i++) a[63 - i] = i;
            for (int i = 0; i < 64; i++) s = s + a[i];
            return s & 0xff;
        }
        """
        fast = compile_and_run(source, softbound=FULL_SHADOW)
        slow = compile_and_run(source, softbound=NO_LOOP)
        assert fast.exit_code == slow.exit_code
        assert fast.trap is None
        assert fast.stats.checks < slow.stats.checks

    def test_calls_inside_widened_loops_are_cloned(self):
        source = """
        int bump(int x) { return x + 1; }
        int main(void) {
            int *a = (int *)malloc(64 * sizeof(int));
            int s = 0;
            for (int i = 0; i < 64; i++) a[i] = bump(i);
            for (int i = 0; i < 64; i++) s = s + a[i];
            return s & 0xff;
        }
        """
        fast = compile_and_run(source, softbound=FULL_SHADOW)
        slow = compile_and_run(source, softbound=NO_LOOP)
        assert fast.exit_code == slow.exit_code
        assert fast.output == slow.output
        assert fast.stats.checks < slow.stats.checks


class TestTrapEquivalence:
    OVERFLOW = """
    int main(void) {
        int a[8];
        for (int i = 0; i < 9; i++) a[i] = i;   /* i == 8 overflows */
        return 0;
    }
    """

    def test_overflowing_walk_takes_the_slow_path(self):
        raw = compile_and_run(self.OVERFLOW, softbound=RAW)
        fast = compile_and_run(self.OVERFLOW, softbound=FULL_SHADOW)
        assert raw.trap is not None and fast.trap is not None
        assert raw.trap.kind == fast.trap.kind
        assert raw.trap.address == fast.trap.address
        assert raw.trap.detail == fast.trap.detail
        assert raw.output == fast.output

    def test_trap_fires_at_the_same_iteration(self):
        # Output emitted before the trap must be preserved exactly: a
        # naive preheader check would trap before any iteration ran.
        source = """
        int main(void) {
            int a[4];
            for (int i = 0; i < 6; i++) {
                putchar('a' + i);
                a[i] = i;
            }
            return 0;
        }
        """
        raw = compile_and_run(source, softbound=RAW)
        fast = compile_and_run(source, softbound=FULL_SHADOW)
        assert raw.trap is not None and fast.trap is not None
        assert raw.output == fast.output  # 5 chars: trap mid-iteration 4
        assert raw.trap.address == fast.trap.address

    def test_header_condition_access_is_never_widened(self):
        # A condition-expression access evaluates once more on the
        # exiting iteration, with i == N — an address outside the
        # guard's [S, N-1] endpoints.  Regression: widening must leave
        # checks in blocks not dominated by the exit test alone, or
        # this genuine out-of-bounds read escapes detection.
        source = """
        int main(void) {
            int a[1000];
            int s = 0;
            int i;
            for (i = 0; s += a[i], i < 1000; i++) {}
            return s & 1;
        }
        """
        raw = compile_and_run(source, softbound=RAW)
        fast = compile_and_run(source, softbound=FULL_SHADOW)
        assert raw.trap is not None and fast.trap is not None
        assert raw.trap.kind == fast.trap.kind
        assert raw.trap.address == fast.trap.address

    def test_zero_trip_loop(self):
        source = """
        int main(void) {
            int a[4];
            int n = 0;
            for (int i = 0; i < n; i++) a[i + 100] = 1;
            return 7;
        }
        """
        fast = compile_and_run(source, softbound=FULL_SHADOW)
        raw = compile_and_run(source, softbound=RAW)
        assert fast.trap is None and raw.trap is None
        assert fast.exit_code == raw.exit_code == 7


class TestProfitabilityGate:
    def test_short_constant_trip_loops_are_left_alone(self):
        # 2 iterations never amortize a guard: the loop must not be
        # versioned (static check count unchanged, no .slow blocks).
        source = """
        int main(void) {
            int a[2];
            int s = 0;
            for (int i = 0; i < 2; i++) a[i] = i;
            for (int i = 0; i < 2; i++) s = s + a[i];
            return s;
        }
        """
        compiled = compile_program(source, softbound=FULL_SHADOW)
        assert slow_blocks(compiled) == []
        result = compiled.run()
        assert result.exit_code == 1 and result.trap is None
