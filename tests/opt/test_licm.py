"""Loop-invariant code motion for checks and metadata loads."""

from dataclasses import replace

from repro.harness.driver import compile_and_run, compile_program
from repro.softbound.config import FULL_SHADOW

RAW = replace(FULL_SHADOW, optimize_checks=False)
NO_LOOP = replace(FULL_SHADOW, loop_optimize=False)


def run_checks(source, config, input_data=b""):
    result = compile_and_run(source, softbound=config, input_data=input_data)
    return result


class TestHeaderCheckHoisting:
    # `while (*p ...)` puts the dereference check in the loop header
    # with invariant operands — the LICM target shape.  No access
    # happens before the loop, so dominance-based elimination cannot
    # cover the header check with a pre-loop occurrence: only hoisting
    # removes its per-iteration cost.
    SOURCE = """
    int main(void) {
        int *p = (int *)malloc(sizeof(int));
        while (*p < 40) { *p = *p + 1; }
        return *p;
    }
    """

    def test_dynamic_checks_drop_to_loop_entries(self):
        slow = run_checks(self.SOURCE, NO_LOOP)
        fast = run_checks(self.SOURCE, FULL_SHADOW)
        assert slow.exit_code == fast.exit_code == 40
        assert fast.trap is None
        # Without hoisting the surviving header check runs once per
        # iteration (41 evaluations); hoisted it runs once.
        assert fast.stats.checks < slow.stats.checks - 30

    def test_behaviour_identical_to_unoptimized(self):
        raw = run_checks(self.SOURCE, RAW)
        fast = run_checks(self.SOURCE, FULL_SHADOW)
        assert (raw.exit_code, raw.output) == (fast.exit_code, fast.output)
        assert raw.trap is None and fast.trap is None

    def test_pass_stats_report_hoists(self):
        compiled = compile_program(self.SOURCE, softbound=FULL_SHADOW)
        assert compiled.check_opt_stats is not None
        assert compiled.check_opt_stats.hoisted_checks >= 1


class TestTrapPreservation:
    def test_hoisted_check_trap_is_bit_identical(self):
        # The pointer is out of bounds before the loop: the header
        # check fires on the very first evaluation, so the hoisted
        # check must produce the same trap at the same address.
        source = """
        int main(void) {
            int *p = (int *)malloc(4 * sizeof(int));
            int *q = p + 9;
            while (*q < 5) { *q = *q + 1; }
            return 0;
        }
        """
        raw = compile_and_run(source, softbound=RAW)
        fast = compile_and_run(source, softbound=FULL_SHADOW)
        assert raw.trap is not None and fast.trap is not None
        assert raw.trap.kind == fast.trap.kind
        assert raw.trap.address == fast.trap.address
        assert raw.trap.detail == fast.trap.detail
        assert raw.output == fast.output

    def test_zero_trip_loop_stays_trap_free(self):
        # A while loop whose body never runs: the header check still
        # evaluated once in the original, so hoisting it is invisible.
        source = """
        int main(void) {
            int *p = (int *)malloc(sizeof(int));
            *p = 99;
            while (*p < 5) { *p = *p + 1; }
            return *p;
        }
        """
        raw = compile_and_run(source, softbound=RAW)
        fast = compile_and_run(source, softbound=FULL_SHADOW)
        assert raw.trap is None and fast.trap is None
        assert raw.exit_code == fast.exit_code == 99


class TestMetaLoadHoisting:
    def test_invariant_meta_load_leaves_the_loop(self):
        # `q` lives in memory (address taken), so reading `*q` in the
        # loop needs a metadata load for q's slot — invariant, and the
        # loop body writes only through q (no table writes).
        source = """
        int sink;
        int main(void) {
            int *q = (int *)malloc(sizeof(int));
            int **qq = &q;
            int s = 0;
            for (int i = 0; i < 30; i++) { s = s + **qq; }
            sink = s;
            return s;
        }
        """
        slow = run_checks(source, NO_LOOP)
        fast = run_checks(source, FULL_SHADOW)
        assert slow.exit_code == fast.exit_code
        assert fast.trap is None
        assert fast.stats.metadata_loads < slow.stats.metadata_loads
