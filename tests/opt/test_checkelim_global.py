"""Tests for dominance-based (cross-block) redundant-check elimination."""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.driver import compile_and_run, compile_program
from repro.softbound.config import FULL_SHADOW
from repro.workloads.randprog import generate

RAW = replace(FULL_SHADOW, optimize_checks=False)


def dynamic_checks(source, config):
    result = compile_and_run(source, softbound=config)
    assert result.trap is None
    return result.exit_code, result.stats.checks


class TestCrossBlockElimination:
    def test_check_before_branch_covers_both_arms(self):
        """p[0] is checked before the branch; the re-checks of p[0] in
        both arms are dominated and removed."""
        source = """
        int main(void) {
            int *p = (int *)malloc(4 * sizeof(int));
            p[0] = 1;
            if (p[0] > 0) { p[0] = 2; } else { p[0] = 3; }
            return p[0];
        }
        """
        exit_raw, raw = dynamic_checks(source, RAW)
        exit_opt, cleaned = dynamic_checks(source, FULL_SHADOW)
        assert exit_raw == exit_opt == 2
        assert cleaned < raw

    def test_loop_invariant_recheck_removed(self):
        """A check of the same single-def address repeated in a loop
        body is covered by its first (dominating) occurrence."""
        source = """
        int main(void) {
            int *p = (int *)malloc(sizeof(int));
            *p = 0;
            for (int i = 0; i < 50; i++) { *p = *p + 1; }
            return *p;
        }
        """
        exit_raw, raw = dynamic_checks(source, RAW)
        exit_opt, cleaned = dynamic_checks(source, FULL_SHADOW)
        assert exit_raw == exit_opt == 50
        # The loop executes 50 iterations; eliminating the in-loop
        # duplicates must remove many dynamic checks, not just one.
        assert cleaned <= raw - 50

    def test_varying_index_checks_are_kept(self):
        """a[i] computes a fresh address each iteration via the same
        static gep; its check must still fire for the out-of-bounds
        iteration."""
        source = """
        int main(void) {
            int a[8];
            for (int i = 0; i < 9; i++) a[i] = i;   /* i == 8 overflows */
            return 0;
        }
        """
        result = compile_and_run(source, softbound=FULL_SHADOW)
        assert result.trap is not None
        assert result.trap.kind.value == "spatial_violation"

    def test_sibling_branches_do_not_share_checks(self):
        """A check in the then-arm does not dominate the else-arm: both
        arms keep their own first check."""
        source = """
        int choose(int flag) {
            int *p = (int *)malloc(2 * sizeof(int));
            if (flag) { p[0] = 1; return p[0]; }
            p[1] = 2;
            return p[1];
        }
        int main(void) { return choose(0) + choose(1); }
        """
        exit_code, _ = dynamic_checks(source, FULL_SHADOW)
        assert exit_code == 3

    def test_detection_equivalence_on_buggy_program(self):
        """Elimination must never remove the *first* dynamic occurrence:
        a violating access still traps at the same address."""
        source = """
        int main(void) {
            int *p = (int *)malloc(4 * sizeof(int));
            p[0] = 1;
            p[0] = 2;      /* duplicate check removed */
            p[5] = 3;      /* still out of bounds */
            return 0;
        }
        """
        raw = compile_and_run(source, softbound=RAW)
        cleaned = compile_and_run(source, softbound=FULL_SHADOW)
        assert raw.trap is not None and cleaned.trap is not None
        assert raw.trap.address == cleaned.trap.address

    def test_static_check_count_shrinks(self):
        source = """
        int main(void) {
            int *p = (int *)malloc(sizeof(int));
            *p = 1;
            if (*p) { *p = 2; }
            while (*p < 9) { *p = *p + 3; }
            return *p;
        }
        """

        def static_checks(config):
            compiled = compile_program(source, softbound=config)
            return sum(1 for i in compiled.module.functions["_sb_main"].instructions()
                       if i.opcode == "sb_check")

        assert static_checks(FULL_SHADOW) < static_checks(RAW)

    @given(st.integers(min_value=0, max_value=60_000))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_elimination_is_transparent(self, seed):
        source = generate(seed).source
        raw = compile_and_run(source, softbound=RAW)
        cleaned = compile_and_run(source, softbound=FULL_SHADOW)
        assert raw.trap is None and cleaned.trap is None
        assert raw.exit_code == cleaned.exit_code
        assert raw.output == cleaned.output
        assert cleaned.stats.checks <= raw.stats.checks
