"""Splay tree unit and property tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.splay import RangeSplayTree


def test_insert_and_find():
    tree = RangeSplayTree()
    tree.insert(100, 50, "a")
    assert tree.find(100).tag == "a"
    assert tree.find(149).tag == "a"
    assert tree.find(150) is None
    assert tree.find(99) is None


def test_find_splays_to_root():
    tree = RangeSplayTree()
    for i in range(10):
        tree.insert(i * 100, 50, i)
    tree.find(805)
    assert tree.root.start == 800


def test_remove():
    tree = RangeSplayTree()
    tree.insert(10, 5, "x")
    tree.insert(20, 5, "y")
    assert tree.remove(10) == "x"
    assert tree.find(12) is None
    assert tree.find(22).tag == "y"
    assert len(tree) == 1


def test_remove_missing_returns_none():
    tree = RangeSplayTree()
    tree.insert(10, 5)
    assert tree.remove(99) is None
    assert len(tree) == 1


def test_find_range_tuple():
    tree = RangeSplayTree()
    tree.insert(64, 16, ("heap", None))
    assert tree.find_range(70) == (64, 16, ("heap", None))
    assert tree.find_range(100) is None


def test_last_depth_tracks_traversal():
    tree = RangeSplayTree()
    for i in range(64):
        tree.insert(i * 10, 5)
    tree.find(5)     # likely deep after ascending inserts
    deep = tree.last_depth
    tree.find(5)     # now at/near the root
    assert tree.last_depth <= deep


@st.composite
def range_sets(draw):
    """Disjoint ranges: (start, size) pairs carved from a number line."""
    count = draw(st.integers(min_value=1, max_value=40))
    starts = draw(st.lists(st.integers(min_value=0, max_value=500),
                           min_size=count, max_size=count, unique=True))
    ranges = []
    for start in sorted(starts):
        ranges.append((start * 100, draw(st.integers(min_value=1, max_value=99))))
    return ranges


@settings(max_examples=80, deadline=None)
@given(range_sets(), st.randoms())
def test_property_membership_after_random_ops(ranges, rng):
    """Tree agrees with a dict model under random insert/remove/find."""
    tree = RangeSplayTree()
    model = {}
    for start, size in ranges:
        tree.insert(start, size, start)
        model[start] = size
    items = list(model.items())
    rng.shuffle(items)
    for start, size in items[: len(items) // 2]:
        tree.remove(start)
        del model[start]
    # Membership queries agree with the model everywhere interesting.
    for start, size in ranges:
        expected = start in model and size == model[start]
        inside = tree.find(start + size - 1 if start in model else start)
        if start in model:
            assert tree.find(start).start == start
            assert tree.find(start + model[start] - 1).start == start
            assert tree.find(start + model[start]) is None or \
                tree.find(start + model[start]).start != start
        else:
            found = tree.find(start)
            assert found is None or found.start != start
    assert len(tree) == len(model)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=100, unique=True))
def test_property_inorder_items_sorted(starts):
    tree = RangeSplayTree()
    for start in starts:
        tree.insert(start * 10, 5)
    items = tree.items()
    keys = [start for start, _, _ in items]
    assert keys == sorted(keys)
    assert len(items) == len(starts)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=20,
                max_size=200, unique=True))
def test_property_repeated_access_flattens(starts):
    """Splaying makes a repeatedly-accessed key cheap."""
    tree = RangeSplayTree()
    for start in starts:
        tree.insert(start, 1)
    target = starts[0]
    tree.find(target)
    assert tree.root.start == target
    tree.find(target)
    assert tree.last_depth == 0
