"""Baseline checker behaviour: each tool's powers and blind spots."""

import pytest

from repro.baselines import (
    JonesKellyChecker,
    MudflapChecker,
    ValgrindChecker,
    compile_with_mscc,
    find_wild_casts,
)
from repro.baselines.mscc import MSCC_CONFIG
from repro.harness.driver import compile_and_run
from repro.vm.errors import TrapKind

HEAP_WRITE_OVERFLOW = r'''
int main(void) {
    int *a = (int *)malloc(8 * sizeof(int));
    a[8] = 1;
    return 0;
}
'''

HEAP_READ_OVERFLOW = r'''
int main(void) {
    int *a = (int *)malloc(8 * sizeof(int));
    return a[8] & 1;
}
'''

STACK_OVERFLOW = r'''
int main(void) {
    int a[4];
    for (int i = 0; i <= 4; i++) a[i] = i;
    return 0;
}
'''

SUBOBJECT_OVERFLOW = r'''
struct s { char buf[8]; long tail; };
struct s g;
int main(void) {
    char *p = g.buf;
    for (int i = 0; i < 12; i++) p[i] = 'x';
    return 0;
}
'''

USE_AFTER_FREE = r'''
int main(void) {
    int *p = (int *)malloc(16);
    free(p);
    p[0] = 1;
    return 0;
}
'''

BENIGN = r'''
struct node { int v; struct node *next; };
int main(void) {
    struct node *head = NULL;
    for (int i = 0; i < 10; i++) {
        struct node *n = (struct node *)malloc(sizeof(struct node));
        n->v = i; n->next = head; head = n;
    }
    int total = 0;
    while (head) { total += head->v; head = head->next; }
    return total;
}
'''


def detected(source, checker_factory):
    result = compile_and_run(source, observers=(checker_factory(),))
    return result.trap is not None and result.trap.kind is TrapKind.SPATIAL_VIOLATION


class TestValgrindSim:
    def test_catches_heap_write(self):
        assert detected(HEAP_WRITE_OVERFLOW, ValgrindChecker)

    def test_catches_heap_read(self):
        assert detected(HEAP_READ_OVERFLOW, ValgrindChecker)

    def test_catches_use_after_free(self):
        assert detected(USE_AFTER_FREE, ValgrindChecker)

    def test_misses_stack_overflow(self):
        """The blind spot Section 6.2 cites: 'Valgrind does not detect
        overflows on the stack'."""
        assert not detected(STACK_OVERFLOW, ValgrindChecker)

    def test_misses_subobject_overflow(self):
        assert not detected(SUBOBJECT_OVERFLOW, ValgrindChecker)

    def test_no_false_positive_on_benign(self):
        result = compile_and_run(BENIGN, observers=(ValgrindChecker(),))
        assert result.trap is None
        assert result.exit_code == 45


class TestObjectTables:
    @pytest.mark.parametrize("factory", [JonesKellyChecker, MudflapChecker])
    def test_catches_heap_write(self, factory):
        assert detected(HEAP_WRITE_OVERFLOW, factory)

    @pytest.mark.parametrize("factory", [JonesKellyChecker, MudflapChecker])
    def test_catches_stack_overflow(self, factory):
        assert detected(STACK_OVERFLOW, factory)

    @pytest.mark.parametrize("factory", [JonesKellyChecker, MudflapChecker])
    def test_misses_subobject_overflow(self, factory):
        """The defining incompleteness of object-granularity schemes
        (paper Section 2.1)."""
        assert not detected(SUBOBJECT_OVERFLOW, factory)

    @pytest.mark.parametrize("factory", [JonesKellyChecker, MudflapChecker])
    def test_no_false_positive_on_benign(self, factory):
        result = compile_and_run(BENIGN, observers=(factory(),))
        assert result.trap is None
        assert result.exit_code == 45

    def test_jones_kelly_charges_splay_costs(self):
        result = compile_and_run(BENIGN, observers=(JonesKellyChecker(),))
        base = compile_and_run(BENIGN)
        assert result.stats.cost > base.stats.cost

    def test_mudflap_cache_hits(self):
        checker = MudflapChecker()
        compile_and_run(BENIGN, observers=(checker,))
        assert checker.cache_hits > 0


class TestMscc:
    def test_catches_heap_overflow(self):
        result = compile_and_run(HEAP_WRITE_OVERFLOW, softbound=MSCC_CONFIG)
        assert result.detected_violation

    def test_misses_subobject_overflow(self):
        """MSCC's best configuration has no sub-object bounds."""
        result = compile_and_run(SUBOBJECT_OVERFLOW, softbound=MSCC_CONFIG)
        assert not result.detected_violation

    def test_costs_more_than_softbound(self):
        from repro.softbound.config import FULL_SHADOW

        mscc = compile_and_run(BENIGN, softbound=MSCC_CONFIG)
        softbound = compile_and_run(BENIGN, softbound=FULL_SHADOW)
        assert mscc.stats.cost > softbound.stats.cost

    def test_behaviour_preserved_on_benign(self):
        result = compile_and_run(BENIGN, softbound=MSCC_CONFIG)
        assert result.trap is None and result.exit_code == 45


class TestWildCastDetector:
    def test_flags_int_to_pointer(self):
        findings = find_wild_casts("int main(void) { int *p = (int *)1234; return 0; }")
        assert findings

    def test_null_cast_not_flagged(self):
        findings = find_wild_casts("int main(void) { int *p = (int *)0; return 0; }")
        assert not findings

    def test_flags_widening_pointer_cast(self):
        src = "long f(char *c) { return *(long *)c; }"
        assert find_wild_casts(src)

    def test_narrowing_pointer_cast_ok(self):
        src = "char f(long *l) { return *(char *)l; }"
        assert not find_wild_casts(src)

    def test_clean_program_has_no_findings(self):
        src = r'''
        struct s { int a; };
        int main(void) {
            struct s *p = (struct s *)malloc(sizeof(struct s));
            p->a = 1;
            return p->a;
        }
        '''
        assert not find_wild_casts(src)
