"""Inline fat-pointer metadata baselines (paper Sections 2.2/3.4).

The experiment Section 3.4 argues from: smash an in-memory pointer
through a legally-bounded wild-cast write, then dereference it.

* naive inline metadata (SafeC-style): the smash also rewrites the
  adjacent base/bound words — attacker-manufactured bounds, dereference
  sails through (**bypass**);
* WILD tags (CCured-style): the smash clears the slot's tag, the pointer
  load yields NULL bounds, the dereference traps (**safe**) — but every
  store pays the tag-update cost;
* SoftBound's disjoint metadata: program stores can't touch the table at
  all; the stale (honest) bounds reject the forged value (**safe**),
  with no per-store cost.
"""

from repro.baselines.fatptr import (
    NAIVE_FATPTR_CONFIG,
    WILD_FATPTR_CONFIG,
    InlineFatPointerMetadata,
)
from repro.harness.driver import compile_and_run
from repro.softbound.config import FULL_SHADOW
from repro.vm.costs import CostStats
from repro.vm.errors import TrapKind

#: g.p points at `secret`; the wild-cast write w[1] = &target is inside
#: g's legal bounds but lands exactly on the pointer slot.  *g.p = 99
#: then tries to write through the smashed pointer.
POINTER_SMASH = r'''
struct gadget { long buf; int *p; };
struct gadget g;
int secret = 7;
int target = 1;

int main(void) {
    g.p = &secret;
    long *w = (long *)&g;          /* legal: spans the whole struct */
    w[1] = (long)&target;          /* smashes g.p, stays in bounds  */
    *g.p = 99;                     /* deref of the forged pointer   */
    return target;
}
'''


class TestFacilityUnit:
    def test_store_then_load_roundtrip(self):
        stats = CostStats()
        facility = InlineFatPointerMetadata(tagged=False)
        facility.store(0x1000, 0x2000, 0x2040, stats)
        assert facility.load(0x1000, stats) == (0x2000, 0x2040)

    def test_naive_data_store_manufactures_bounds(self):
        stats = CostStats()
        facility = InlineFatPointerMetadata(tagged=False)
        facility.store(0x1000, 0x2000, 0x2040, stats)
        facility.on_program_store(0x1000, 8, stats)
        base, bound = facility.load(0x1000, stats)
        assert bound - base > 1 << 60  # permissive: attacker's choice
        assert facility.corrupted_slots == 1

    def test_wild_data_store_clears_tag(self):
        stats = CostStats()
        facility = InlineFatPointerMetadata(tagged=True)
        facility.store(0x1000, 0x2000, 0x2040, stats)
        facility.on_program_store(0x1000, 8, stats)
        assert facility.load(0x1000, stats) == (0, 0)

    def test_wild_pointer_restore_resets_tag(self):
        stats = CostStats()
        facility = InlineFatPointerMetadata(tagged=True)
        facility.store(0x1000, 0x2000, 0x2040, stats)
        facility.on_program_store(0x1000, 8, stats)
        facility.store(0x1000, 0x3000, 0x3040, stats)
        assert facility.load(0x1000, stats) == (0x3000, 0x3040)

    def test_partial_overlap_also_corrupts(self):
        stats = CostStats()
        facility = InlineFatPointerMetadata(tagged=False)
        facility.store(0x1000, 0x2000, 0x2040, stats)
        facility.on_program_store(0x1004, 2, stats)  # 2 bytes into the slot
        base, bound = facility.load(0x1000, stats)
        assert (base, bound) != (0x2000, 0x2040)

    def test_unrelated_store_leaves_entry_alone(self):
        stats = CostStats()
        facility = InlineFatPointerMetadata(tagged=False)
        facility.store(0x1000, 0x2000, 0x2040, stats)
        facility.on_program_store(0x5000, 64, stats)
        assert facility.load(0x1000, stats) == (0x2000, 0x2040)

    def test_wild_charges_tag_update_on_every_store(self):
        stats = CostStats()
        facility = InlineFatPointerMetadata(tagged=True)
        before = stats.cost
        for i in range(10):
            facility.on_program_store(0x9000 + i * 8, 8, stats)
        assert stats.cost - before >= 10


class TestPointerSmashExperiment:
    def test_naive_inline_is_bypassed(self):
        result = compile_and_run(POINTER_SMASH, softbound=NAIVE_FATPTR_CONFIG)
        assert result.trap is None        # the checker waved it through
        assert result.exit_code == 99     # target was overwritten

    def test_wild_tags_stop_the_forged_dereference(self):
        result = compile_and_run(POINTER_SMASH, softbound=WILD_FATPTR_CONFIG)
        assert result.trap is not None
        assert result.trap.kind is TrapKind.SPATIAL_VIOLATION

    def test_disjoint_softbound_stops_it_too(self):
        result = compile_and_run(POINTER_SMASH, softbound=FULL_SHADOW)
        assert result.trap is not None
        assert result.trap.kind is TrapKind.SPATIAL_VIOLATION

    def test_unprotected_attack_succeeds(self):
        result = compile_and_run(POINTER_SMASH)
        assert result.trap is None
        assert result.exit_code == 99


class TestTransparencyAndCost:
    SAFE = r'''
    int main(void) {
        int *p = (int *)malloc(4 * sizeof(int));
        int total = 0;
        for (int i = 0; i < 4; i++) { p[i] = i; total += p[i]; }
        char text[16];
        strcpy(text, "hello");
        return total + (int)strlen(text);
    }
    '''

    def test_both_variants_transparent_on_safe_code(self):
        for config in (NAIVE_FATPTR_CONFIG, WILD_FATPTR_CONFIG):
            result = compile_and_run(self.SAFE, softbound=config)
            assert result.trap is None
            assert result.exit_code == 11

    def test_wild_costs_more_than_naive_and_disjoint(self):
        """Section 3.4: 'all stores to a WILD object must update the
        metadata bits, adding runtime overhead'."""
        naive = compile_and_run(self.SAFE, softbound=NAIVE_FATPTR_CONFIG)
        wild = compile_and_run(self.SAFE, softbound=WILD_FATPTR_CONFIG)
        disjoint = compile_and_run(self.SAFE, softbound=FULL_SHADOW)
        assert wild.stats.cost > naive.stats.cost
        assert wild.stats.cost > disjoint.stats.cost
