"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one of the paper's tables or figures:
the artifact text is printed to stdout (run with ``-s`` to see it live)
and written to ``benchmarks/results/<name>.txt``; the pytest-benchmark
timing target is a small representative operation from that experiment.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_artifact(name, text):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print()
    print(text)
    return path
