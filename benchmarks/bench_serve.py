"""Sustained-load benchmark for the ``repro serve`` daemon.

Boots the daemon as a real subprocess (OS-assigned port, fresh
artifact store), replays the deterministic loadgen mix — the paper's
server workloads under escalating profiles, the attack suite, BugBench
and malformed requests — once cold to warm every cache level, then
measures a warm-cache replay and records ``BENCH_serve.json`` at the
repo root in the bench-v2 schema (``value`` = requests/second per
traffic class, with p50/p99 latency and the cache hit ratio
alongside), diffable by ``scripts/bench_diff.py``.

Run directly for the full measurement (records the JSON):

    PYTHONPATH=src python benchmarks/bench_serve.py

or through pytest (small in-process mix, acceptance asserts only):

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -s
"""

import json
import math
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_serve.json"
SRC_ROOT = str(REPO_ROOT / "src")

if SRC_ROOT not in sys.path:
    sys.path.insert(0, SRC_ROOT)

from repro.serve.loadgen import build_mix, run_load  # noqa: E402

WARM_REPEATS = 3
CONCURRENCY = 8
WORKERS = 4


def _spawn_daemon(store_dir):
    env = dict(os.environ, REPRO_STORE=store_dir,
               PYTHONPATH=SRC_ROOT + os.pathsep
               + os.environ.get("PYTHONPATH", ""))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", str(WORKERS), "--queue", "64"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
        text=True)
    ready = proc.stdout.readline()
    if "listening on" not in ready:
        proc.kill()
        raise RuntimeError(f"daemon failed to start: {ready!r}")
    port = int(ready.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
    return proc, f"http://127.0.0.1:{port}"


def _cache_hit_ratio(base_url):
    with urllib.request.urlopen(base_url + "/metrics", timeout=10) as resp:
        series = json.loads(resp.read())["series"]
    origins = {}
    for key, value in series.items():
        if key.startswith("repro_serve_cache_origin_total{origin="):
            origins[key.split("origin=", 1)[1][:-1]] = value
    total = sum(origins.values())
    hits = origins.get("memory", 0) + origins.get("store", 0)
    return (hits / total if total else 0.0), origins


def measure(store_dir):
    proc, base_url = _spawn_daemon(store_dir)
    try:
        # Cold pass: compiles everything once, warming the shared store
        # and each worker's in-process LRU.
        warm = run_load(base_url, build_mix(repeats=1),
                        concurrency=CONCURRENCY)
        bad = [s for s in warm.errors]
        if bad:
            details = [(s.name, s.status, s.detail) for s in bad[:5]]
            raise RuntimeError(f"cold pass had failures: {details}")
        # Measured pass: warm-cache replay.
        result = run_load(base_url, build_mix(repeats=WARM_REPEATS),
                          concurrency=CONCURRENCY)
        hit_ratio, origins = _cache_hit_ratio(base_url)
        report = build_report(result, hit_ratio, origins)
        # Graceful Ctrl-C drain is part of the contract: SIGINT → 130.
        proc.send_signal(signal.SIGINT)
        exit_code = proc.wait(timeout=30)
        report["daemon_sigint_exit"] = exit_code
        return report
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def build_report(result, hit_ratio, origins):
    workloads = {}
    for category, samples in sorted(result.by_category().items()):
        count = len(samples)
        errors = sum(1 for s in samples if not s.ok)
        rps = (count / result.wall_seconds) if result.wall_seconds else 0.0
        workloads[category] = {
            "requests": count,
            "errors": errors,
            "p50_ms": round(result.percentile(0.50, category) * 1000, 3),
            "p99_ms": round(result.percentile(0.99, category) * 1000, 3),
            "value": round(rps, 3),
        }
    values = [max(row["value"], 0.001) for row in workloads.values()]
    geomean = (math.exp(sum(map(math.log, values)) / len(values))
               if values else 0.0)
    return {
        "schema": "bench-v2",
        "benchmark": "serve-sustained-load",
        "metric": "requests_per_second",
        "config": f"workers={WORKERS},concurrency={CONCURRENCY},"
                  f"warm-cache",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "requests": len(result.samples),
        "wall_seconds": round(result.wall_seconds, 3),
        "requests_per_second": round(result.requests_per_second, 3),
        "p50_ms": round(result.percentile(0.50) * 1000, 3),
        "p99_ms": round(result.percentile(0.99) * 1000, 3),
        "errors": len(result.errors),
        "cache_hit_ratio": round(hit_ratio, 4),
        "cache_origins": origins,
        "geomean": round(geomean, 3),
        "workloads": workloads,
    }


def render(report):
    lines = [
        "serve sustained load (warm-cache replay)",
        f"  requests:   {report['requests']} over "
        f"{report['wall_seconds']}s  ->  "
        f"{report['requests_per_second']} req/s",
        f"  latency:    p50 {report['p50_ms']}ms   "
        f"p99 {report['p99_ms']}ms",
        f"  cache:      {report['cache_hit_ratio']:.1%} hit ratio "
        f"{report['cache_origins']}",
        f"  errors:     {report['errors']}",
    ]
    for name, row in report["workloads"].items():
        lines.append(f"    {name:<10} {row['value']:>8} req/s   "
                     f"p99 {row['p99_ms']}ms   "
                     f"({row['requests']} requests, "
                     f"{row['errors']} errors)")
    return "\n".join(lines)


def test_serve_sustained_load():
    """Acceptance: a small warm-cache replay through a real daemon
    completes with zero unexpected responses and a finite p99."""
    with tempfile.TemporaryDirectory() as store:
        proc, base_url = _spawn_daemon(store)
        try:
            mix = build_mix(attacks=2, bugs=2, repeats=1)
            warm = run_load(base_url, mix, concurrency=4)
            assert not warm.errors, \
                [(s.name, s.status, s.detail) for s in warm.errors]
            replay = run_load(base_url, mix, concurrency=4)
            assert not replay.errors, \
                [(s.name, s.status, s.detail) for s in replay.errors]
            assert replay.requests_per_second > 0
            assert replay.percentile(0.99) < 60.0
            hit_ratio, _ = _cache_hit_ratio(base_url)
            assert hit_ratio > 0.0
        finally:
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=30) == 130
            if proc.poll() is None:
                proc.kill()


def main():
    with tempfile.TemporaryDirectory() as store:
        report = measure(store)
    print(render(report))
    BENCH_JSON.write_text(json.dumps(report, indent=2, sort_keys=True)
                          + "\n")
    print(f"\nrecorded {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
