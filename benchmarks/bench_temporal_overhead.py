"""Temporal-checking overhead and detection acceptance.

Regenerates the spatial-only vs spatial+temporal instrumented-overhead
comparison over the workload corpus and records the canonical
``BENCH_temporal.json`` at the repo root — the baseline the CI temporal
leg (``scripts/ci.py``) gates against.  Everything measured here is
cost-model units, deterministic on every host, and behavioural
equivalence (temporal checking never changes a correct program) is
asserted inside the measurement.

Run directly for the full corpus (records the JSON):

    PYTHONPATH=src python benchmarks/bench_temporal_overhead.py

or through pytest (detection + overhead sanity, no recording):

    PYTHONPATH=src python -m pytest benchmarks/bench_temporal_overhead.py -s
"""

import pathlib
import sys

from conftest import save_artifact

from repro.harness.temporal import (
    render_temporal_overhead,
    run_temporal_overhead,
    write_report,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_temporal.json"

#: Representative subset for the pytest acceptance (one array code, one
#: allocation-heavy Olden analogue, one allocator-churning interpreter).
QUICK_WORKLOADS = ("go", "health", "li")


def test_all_temporal_attacks_detected():
    """Acceptance: every temporal attack family must trap with a
    precise temporal_violation under spatial+temporal checking."""
    from repro.harness.tables import temporal_matrix

    matrix = temporal_matrix()
    missed = [name for name, (_, _, detected) in matrix.items() if not detected]
    assert not missed, f"temporal attacks not detected: {missed}"


def test_temporal_overhead_sane():
    """The temporal pass must stay transparent on correct programs
    (asserted inside the sweep) and its extra cost must stay a
    fraction, not a multiple, of the spatial-only build."""
    report = run_temporal_overhead(QUICK_WORKLOADS)
    save_artifact("temporal_overhead_subset.txt",
                  render_temporal_overhead(report))
    assert report["geomean_temporal_extra_pct"] < 100.0, report


def main(argv):
    report = run_temporal_overhead()
    print(render_temporal_overhead(report))
    write_report(report, BENCH_JSON)
    print(f"\nrecorded {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
