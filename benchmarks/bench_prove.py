"""-O2 solver-backed static check elimination: the recorded gains.

Regenerates the simulated -O1 vs -O2 comparison under the full-shadow
spatial profile and records the canonical ``BENCH_prove.json`` at the
repo root — the baseline the CI prove-smoke leg (``scripts/ci.py
--prove-smoke``) gates against.  The measurement itself asserts
behavioural equivalence across opt levels and replays every deletion
certificate against the formal semantics; cost-model units only, so the
report is deterministic on every host.

Run directly for the full corpus (records the JSON):

    PYTHONPATH=src python benchmarks/bench_prove.py

or through pytest (loop-workload subset, with the acceptance floor):

    PYTHONPATH=src python -m pytest benchmarks/bench_prove.py -s
"""

import pathlib
import sys

from conftest import save_artifact

from repro.harness.checkopt import LOOP_WORKLOADS
from repro.harness.prove import (
    LOOP_DELETION_FLOOR_PCT,
    render_prove,
    run_prove,
    write_report,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_prove.json"


def test_prove_deletes_loop_checks():
    """Acceptance floor: across the array/loop workloads, -O2 must
    delete at least 15% of the dynamically executed sb_check instances
    that survive -O1 — with equivalence and certificate replay asserted
    inside the measurement."""
    report = run_prove(LOOP_WORKLOADS)
    save_artifact("prove_loop_subset.txt", render_prove(report))
    assert (report["loop_checks_deleted_beyond_o1_pct"]
            >= LOOP_DELETION_FLOOR_PCT), report


def main(argv):
    report = run_prove()
    print(render_prove(report))
    write_report(report, BENCH_JSON)
    print(f"\nrecorded {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
