"""Figure 1: frequency of pointer memory operations across 15 benchmarks.

Profiles the uninstrumented runs, renders the sorted bar series, and
asserts the property the figure exists to show: the SPEC-like analogues
(except li) cluster at near-zero pointer traffic while the Olden-like
pointer programs exceed 15%, with several above 40%.
"""

from conftest import save_artifact

from repro.api import run_source
from repro.harness.stats import pointer_fractions
from repro.harness.tables import render_figure1
from repro.workloads.programs import WORKLOADS


def test_figure1_pointer_operation_frequency(benchmark):
    text = render_figure1()
    save_artifact("figure1.txt", text)
    fractions = pointer_fractions()
    scalar_spec = [n for n, w in WORKLOADS.items() if w.suite == "spec" and n != "li"]
    for name in scalar_spec:
        assert fractions[name] < 0.05 or name == "libquantum", \
            f"{name} should have negligible pointer traffic"
    olden = [n for n, w in WORKLOADS.items() if w.suite == "olden"]
    assert sum(1 for n in olden if fractions[n] > 0.15) >= 7
    assert sum(1 for n in fractions if fractions[n] > 0.40) >= 4
    # li, the lisp interpreter, is the pointer-heavy SPEC outlier.
    assert fractions["li"] > 0.40

    health = WORKLOADS["health"]
    result = benchmark(lambda: run_source(health.source))
    assert result.exit_code == health.expected_exit
