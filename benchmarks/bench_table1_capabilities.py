"""Table 1: capability matrix across protection schemes.

Regenerates the paper's qualitative comparison (source compatibility,
completeness including sub-object accesses, memory-layout preservation,
arbitrary casts, dynamic linking) by running probe programs under the
implemented schemes, and times the probe that separates SoftBound from
object-based schemes: sub-object overflow detection.
"""

from conftest import save_artifact

from repro.baselines.capabilities import (
    PAPER_TABLE1,
    SUBOBJECT_PROBE,
    capability_matrix,
)
from repro.api import run_source
from repro.harness.tables import render_table1
from repro.softbound.config import FULL_SHADOW


def test_table1_matrix_matches_paper(benchmark):
    text = render_table1()
    save_artifact("table1.txt", text)
    for row in capability_matrix():
        got = (row.no_source_change, row.complete_subobject, row.layout_compatible,
               row.arbitrary_casts, row.dynamic_linking)
        assert got == PAPER_TABLE1[row.scheme], row.scheme

    result = benchmark(lambda: run_source(SUBOBJECT_PROBE, profile=FULL_SHADOW))
    assert result.detected_violation
