"""Section 6.3 ablation: cache miss rates of the two metadata facilities.

The paper states that on the pointer-chasing Olden benchmarks (treeadd,
mst, health) "simulations of cache miss rates (not shown) indicate the
additional memory pressure is contributing to the runtime overheads" of
the hash-table facility.  This bench runs those unshown simulations: a
Core 2-like L1D/L2 model fed with every program access and every
metadata-entry access, per facility, over a pointer-heavy and a
scalar-heavy slice of the workload suite.

Structural claims asserted:

* on every pointer-heavy workload the hash table's metadata stream has a
  miss rate at least as high as the shadow space's (aliasing array +
  24-byte straddling entries vs. locality-preserving 16-byte mirror);
* metadata pressure also degrades the *program* stream's L1 behaviour
  relative to an uninstrumented run (shared cache capacity);
* scalar workloads, with almost no pointer memory traffic, show
  near-zero metadata accesses — the same workloads whose Figure 2
  overheads are check-dominated rather than metadata-dominated.
"""

from conftest import save_artifact

from repro.api import run_source
from repro.softbound.config import MetadataScheme, SoftBoundConfig
from repro.vm.cache import CacheObserver
from repro.workloads.programs import WORKLOADS

POINTER_HEAVY = ["health", "mst", "treeadd"]   # the three the paper names
SCALAR = ["go", "compress"]


def _run_with_cache(name, scheme=None):
    observer = CacheObserver()
    config = SoftBoundConfig(scheme=scheme) if scheme is not None else None
    workload = WORKLOADS[name]
    result = run_source(workload.source, profile=config,
                             observers=[observer])
    assert result.exit_code == workload.expected_exit, name
    return observer.report()


def _render(rows):
    header = (f"{'benchmark':<12} {'config':<14} {'L1 prog misses':>14} "
              f"{'L1 meta misses':>14} {'meta accesses':>14} "
              f"{'L1 meta miss%':>14}")
    lines = ["Cache-miss ablation (Section 6.3, 'simulations not shown')",
             "=" * len(header), header, "-" * len(header)]
    for name, config_name, report in rows:
        lines.append(
            f"{name:<12} {config_name:<14} "
            f"{report.l1_prog.misses:>14} "
            f"{report.l1_meta.misses:>14} "
            f"{report.l1_meta.accesses:>14} "
            f"{report.l1_meta.miss_rate * 100:>13.2f}%")
    return "\n".join(lines)


def test_cache_miss_ablation(benchmark):
    rows = []
    reports = {}
    for name in POINTER_HEAVY + SCALAR:
        base = _run_with_cache(name)
        hash_report = _run_with_cache(name, MetadataScheme.HASH_TABLE)
        shadow_report = _run_with_cache(name, MetadataScheme.SHADOW_SPACE)
        reports[name] = (base, hash_report, shadow_report)
        rows.append((name, "baseline", base))
        rows.append((name, "hash_table", hash_report))
        rows.append((name, "shadow_space", shadow_report))
    save_artifact("sec63_cache_ablation.txt", _render(rows))

    # The hash table's metadata stream takes more misses than the shadow
    # space's in aggregate and on most workloads (misses, not rate: tag
    # accesses inflate the hash table's access count, and what runtime
    # pays for is each miss's latency).  On an individual workload the
    # hash table's 512KB-granularity aliasing can *collapse* scattered
    # slots into shared lines and win by a few percent (mst does this),
    # which is why the claim is aggregate.
    hash_total = sum(reports[n][1].l1_meta.misses for n in POINTER_HEAVY)
    shadow_total = sum(reports[n][2].l1_meta.misses for n in POINTER_HEAVY)
    assert hash_total >= shadow_total
    majority = sum(1 for n in POINTER_HEAVY
                   if reports[n][1].l1_meta.misses >= reports[n][2].l1_meta.misses)
    assert majority >= 2
    for name in POINTER_HEAVY:
        # Metadata traffic is substantial on pointer-chasing code.
        assert reports[name][1].l1_meta.accesses > 1000, name

    for name in SCALAR:
        base, hash_report, shadow_report = reports[name]
        # Scalar workloads barely touch the metadata space at all.
        assert (hash_report.l1_meta.accesses
                < hash_report.l1_prog.accesses * 0.10), name

    benchmark(lambda: _run_with_cache("treeadd", MetadataScheme.HASH_TABLE))


def test_metadata_pressure_evicts_program_lines(benchmark):
    """Instrumentation's metadata stream competes for L1 capacity: the
    program stream's own miss count should not *improve* under
    instrumentation, and on at least one pointer-heavy workload it
    should measurably degrade."""
    degraded = 0
    for name in POINTER_HEAVY:
        base = _run_with_cache(name)
        hash_report = _run_with_cache(name, MetadataScheme.HASH_TABLE)
        assert (hash_report.l1_prog.misses
                >= base.l1_prog.misses), name
        if hash_report.l1_prog.misses > base.l1_prog.misses:
            degraded += 1
    assert degraded >= 1

    benchmark(lambda: _run_with_cache("mst"))
