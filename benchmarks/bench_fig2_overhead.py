"""Figure 2: runtime overhead of SoftBound, 4 configurations x 15 benchmarks.

Regenerates the paper's headline figure from the deterministic cost
model and asserts its structural claims:

* shadow space beats the hash table in every full-checking column pair;
* store-only beats full checking everywhere;
* overhead grows with the pointer-operation fraction (pointer-heavy
  Olden analogues pay the most, scalar SPEC analogues the least);
* store-only stays under 15% for a large share of the benchmarks (the
  paper's "more than half" production-readiness claim).
"""

from conftest import save_artifact

from repro.api import run_source
from repro.harness.stats import average, overhead_matrix, pointer_fractions
from repro.harness.tables import render_figure2
from repro.softbound.config import FULL_SHADOW
from repro.workloads.programs import WORKLOADS


def test_figure2_overheads(benchmark):
    text = render_figure2()
    save_artifact("figure2.txt", text)
    matrix = overhead_matrix()
    hash_full = matrix["HashTable-Complete"]
    shadow_full = matrix["ShadowSpace-Complete"]
    hash_store = matrix["HashTable-Stores"]
    shadow_store = matrix["ShadowSpace-Stores"]

    # Configuration ordering (averages): hash > shadow, full > store-only.
    assert average(hash_full.values()) > average(shadow_full.values())
    assert average(hash_store.values()) > average(shadow_store.values())
    assert average(shadow_full.values()) > average(shadow_store.values())
    assert average(hash_full.values()) > average(hash_store.values())

    # Per-benchmark: the hash table never beats the shadow space under
    # full checking (identical check work, costlier metadata accesses).
    for name in WORKLOADS:
        assert hash_full[name] >= shadow_full[name] - 1e-9, name

    # Overhead tracks pointer-operation frequency: the five scalar
    # SPEC analogues all pay less than every >40%-pointer benchmark.
    fractions = pointer_fractions()
    scalar = [n for n in WORKLOADS if fractions[n] < 0.05]
    heavy = [n for n in WORKLOADS if fractions[n] > 0.40]
    assert max(shadow_full[n] for n in scalar) < min(shadow_full[n] for n in heavy)

    # Store-only production-readiness claim: <= 15% for many benchmarks.
    below_15 = sum(1 for v in shadow_store.values() if v < 15.0)
    assert below_15 >= 6, f"only {below_15}/15 under 15%"

    health = WORKLOADS["health"]
    result = benchmark(
        lambda: run_source(health.source, profile=FULL_SHADOW))
    assert result.exit_code == health.expected_exit
