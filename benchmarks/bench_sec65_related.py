"""Section 6.5: overhead comparison to MSCC.

MSCC eschews whole-program analysis like SoftBound but pays more per
metadata access (linked shadow structures); the paper reports e.g. go at
144% under MSCC vs 55% under SoftBound.  Regenerates the comparison and
asserts MSCC's overhead exceeds SoftBound's on every common benchmark.
"""

from conftest import save_artifact

from repro.baselines.mscc import MSCC_CONFIG
from repro.api import run_source
from repro.harness.tables import render_sec65, sec65_comparison
from repro.workloads.programs import WORKLOADS


def test_sec65_mscc_comparison(benchmark):
    text = render_sec65()
    save_artifact("sec65_mscc.txt", text)
    comparison = sec65_comparison()
    for name, vals in comparison.items():
        assert vals["mscc"] > vals["softbound"], \
            f"{name}: MSCC {vals['mscc']:.1f}% vs SoftBound {vals['softbound']:.1f}%"

    go = WORKLOADS["go"]
    result = benchmark(lambda: run_source(go.source, profile=MSCC_CONFIG))
    assert result.exit_code == go.expected_exit
