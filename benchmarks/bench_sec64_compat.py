"""Section 6.4: source-compatibility case study.

The two network daemons (and all fifteen benchmarks, checked by the
Figure 2 sweep) transform without source modification and run with zero
false positives and bit-identical output; times a protected server
handling its whole request stream.
"""

from conftest import save_artifact

from repro.api import run_source
from repro.harness.tables import render_sec64
from repro.softbound.config import FIGURE2_CONFIGS, FULL_SHADOW
from repro.workloads.servers import SERVERS, all_servers


def test_sec64_compatibility(benchmark):
    text = render_sec64()
    save_artifact("sec64_compat.txt", text)
    for server in all_servers():
        plain = run_source(server.source, input_data=server.request_stream)
        assert plain.trap is None
        for fragment in server.expected_output_fragments:
            assert fragment in plain.output
        for config in FIGURE2_CONFIGS:
            protected = run_source(server.source, profile=config,
                                        input_data=server.request_stream)
            assert protected.trap is None, (server.name, config.label, protected.trap)
            assert protected.output == plain.output
            assert protected.exit_code == plain.exit_code

    ftp = SERVERS[0]
    result = benchmark(lambda: run_source(
        ftp.source, profile=FULL_SHADOW, input_data=ftp.request_stream))
    assert result.trap is None
