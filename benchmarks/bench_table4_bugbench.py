"""Table 4: BugBench detection efficacy of Valgrind, Mudflap and SoftBound.

Regenerates the 4x4 detection matrix (go / compress / polymorph / gzip
under the four tools) and checks every cell against the paper's values;
times the sub-object-bug run that only full SoftBound catches.
"""

from conftest import save_artifact

from repro.api import run_source
from repro.harness.tables import render_table4, table4_matrix
from repro.softbound.config import FULL_SHADOW
from repro.workloads.bugbench import BUGBENCH, all_bugs


def test_table4_matches_paper(benchmark):
    text = render_table4()
    save_artifact("table4.txt", text)
    matrix = table4_matrix()
    for bug in all_bugs():
        assert matrix[bug.name] == bug.paper_detection, bug.name

    go = BUGBENCH["go"]
    result = benchmark(lambda: run_source(go.source, profile=FULL_SHADOW))
    assert result.detected_violation
