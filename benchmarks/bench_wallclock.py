"""Host wall-clock speedup of the closure-compiled engine.

Unlike the other benchmarks (which regenerate the paper's simulated
cost-model artifacts), this one measures the *host* axis: how fast the
VM itself runs each workload under the reference interpreter vs the
closure-compiled threaded-code engine.  It writes the canonical
``BENCH_interp.json`` at the repo root — the record the CI perf gate
(``scripts/ci.py``) compares against — plus a human-readable artifact.

Run directly for the full corpus:

    PYTHONPATH=src python benchmarks/bench_wallclock.py [--quick]

or through pytest (quick subset, with a conservative floor assertion):

    PYTHONPATH=src python -m pytest benchmarks/bench_wallclock.py -s
"""

import pathlib
import sys

from conftest import save_artifact

from repro.harness.wallclock import (
    render_report,
    run_benchmarks,
    write_report,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_interp.json"


def test_wallclock_speedup():
    """Quick-subset gate: the compiled engine must stay clearly ahead of
    the interpreter.  The floor is deliberately below the recorded ~3.2x
    so shared-machine noise cannot flake the suite; the full-corpus
    number lives in BENCH_interp.json."""
    report = run_benchmarks(quick=True, repeats=2)
    save_artifact("wallclock_quick.txt", render_report(report))
    assert report["geomean_speedup"] >= 2.0, report["geomean_speedup"]


def main(argv):
    quick = "--quick" in argv
    report = run_benchmarks(quick=quick, repeats=3 if not quick else 2)
    print(render_report(report))
    if not quick:
        write_report(report, BENCH_JSON)
        print(f"\nrecorded {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
