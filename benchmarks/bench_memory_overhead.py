"""Section 5.1 memory-overhead experiment: metadata footprint per facility.

The paper's metadata organizations trade memory for speed: hash-table
entries are 24 bytes (tag + base + bound) and the shadow space's are 16
(base + bound, tags eliminated), while the shadow space reserves — but
only demand-pages — a vast virtual region.  The paper discusses these
memory overheads qualitatively ("metadata accesses ... can be a
significant source of runtime and memory overhead"); this bench
quantifies them over the 15 workloads.

Reported per workload: program memory footprint (peak heap + globals),
peak live metadata entries, and resident metadata bytes under each
facility.  Structural claims asserted:

* per-entry ratio: hash-table bytes are exactly 1.5x shadow bytes for
  the same peak entry count;
* metadata footprint tracks pointer density: the pointer-heavy Olden
  analogues dedicate a far larger fraction of memory to metadata than
  the scalar SPEC analogues;
* metadata is bounded by pointer slots: resident entries never exceed
  one per 8 program bytes in use.
"""

from conftest import save_artifact

from repro.api import compile_source
from repro.softbound.config import FULL_HASH, FULL_SHADOW
from repro.workloads.programs import WORKLOADS

POINTER_HEAVY = ["health", "bisort", "mst", "li", "em3d", "treeadd"]
SCALAR = ["go", "lbm", "hmmer", "compress", "ijpeg"]


def _footprints(workload):
    """Run under both facilities; returns (program_bytes, facility map)."""
    per_facility = {}
    program_bytes = None
    for config in (FULL_HASH, FULL_SHADOW):
        compiled = compile_source(workload.source, profile=config)
        machine = compiled.instantiate()
        result = machine.run()
        assert result.exit_code == workload.expected_exit, workload.name
        globals_size = (len(machine.memory.globals_segment.data)
                        if machine.memory.globals_segment is not None else 0)
        program_bytes = max(result.stats.peak_heap + globals_size, 1)
        facility = machine.sb_runtime.facility
        per_facility[facility.name] = (facility.peak_live,
                                       result.stats.metadata_bytes)
    return program_bytes, per_facility


def test_memory_overhead(benchmark):
    rows = []
    ratios = {}
    for name, workload in WORKLOADS.items():
        program_bytes, per_facility = _footprints(workload)
        hash_entries, hash_bytes = per_facility["hash_table"]
        shadow_entries, shadow_bytes = per_facility["shadow_space"]
        rows.append((name, program_bytes, hash_entries, hash_bytes,
                     shadow_bytes))
        ratios[name] = shadow_bytes / program_bytes

        # Both facilities see the same pointer-slot population.
        assert hash_entries == shadow_entries, name
        # 24-byte vs 16-byte entries: exactly 1.5x.
        if shadow_bytes:
            assert hash_bytes * 2 == shadow_bytes * 3, name
        # At most one entry per 8 bytes of program data.
        assert shadow_entries <= program_bytes / 8 + 64, name

    header = (f"{'benchmark':<12} {'program bytes':>14} {'meta entries':>13} "
              f"{'hash bytes':>11} {'shadow bytes':>13} {'shadow/prog':>12}")
    lines = ["Metadata memory footprint (Section 5.1)",
             "=" * len(header), header, "-" * len(header)]
    for name, program_bytes, entries, hash_bytes, shadow_bytes in rows:
        lines.append(f"{name:<12} {program_bytes:>14} {entries:>13} "
                     f"{hash_bytes:>11} {shadow_bytes:>13} "
                     f"{shadow_bytes / program_bytes:>11.1%}")
    save_artifact("sec51_memory_overhead.txt", "\n".join(lines))

    # Memory overhead tracks pointer density across the two suites.
    heavy_avg = sum(ratios[n] for n in POINTER_HEAVY) / len(POINTER_HEAVY)
    scalar_avg = sum(ratios[n] for n in SCALAR) / len(SCALAR)
    assert heavy_avg > scalar_avg * 3, (heavy_avg, scalar_avg)

    treeadd = WORKLOADS["treeadd"]
    benchmark(lambda: _footprints(treeadd))
