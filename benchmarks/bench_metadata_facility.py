"""Section 5.1 ablation: hash table vs tag-less shadow space.

The design choice DESIGN.md calls out: the shadow space eliminates the
tag field and collision handling, cutting both per-access instructions
(~9 -> ~5) and per-entry memory (24 -> 16 bytes).  Regenerates the
micro-cost table and benchmarks the raw facility operations.
"""

from conftest import save_artifact

from repro.harness.tables import render_metadata_ablation
from repro.softbound.metadata import HashTableMetadata, ShadowSpaceMetadata
from repro.vm.costs import CostStats


def _hammer(facility, n=20_000):
    stats = CostStats()
    for i in range(n):
        facility.store(0x1000 + (i % 4096) * 8, i, i + 16, stats)
        facility.load(0x1000 + ((i * 7) % 4096) * 8, stats)
    return stats


def test_metadata_ablation(benchmark):
    text = render_metadata_ablation()
    save_artifact("sec51_metadata.txt", text)

    hash_stats = _hammer(HashTableMetadata())
    shadow_stats = _hammer(ShadowSpaceMetadata())
    # The paper's 9-vs-5 instruction asymmetry (with memory weighting).
    assert hash_stats.cost > shadow_stats.cost * 1.5

    benchmark(lambda: _hammer(ShadowSpaceMetadata(), n=5_000))


def test_metadata_hash_collisions_cost(benchmark):
    """Collision chains make a small hash table measurably worse —
    the paper sizes the table 'large enough to keep utilization low'."""
    small = HashTableMetadata(log2_buckets=6)
    big = HashTableMetadata(log2_buckets=16)
    small_cost = _hammer(small, n=5_000).cost
    big_cost = _hammer(big, n=5_000).cost
    assert small_cost > big_cost

    benchmark(lambda: _hammer(HashTableMetadata(log2_buckets=16), n=5_000))
