"""Table 3: the Wilander attack suite under full and store-only checking.

Regenerates the 18-row detection matrix (every attack must genuinely
exploit the unprotected VM and be stopped by both SoftBound modes) and
times the canonical stack-smash detection path.
"""

from conftest import save_artifact

from repro.api import run_source
from repro.harness.tables import render_table3, table3_matrix
from repro.softbound.config import FULL_SHADOW
from repro.workloads.attacks import ATTACKS, all_attacks


def test_table3_all_attacks_detected(benchmark):
    text = render_table3()
    save_artifact("table3.txt", text)
    matrix = table3_matrix()
    assert len(matrix) == 18
    for name, (exploited, full, store) in matrix.items():
        assert exploited, f"{name}: attack failed against the unprotected VM"
        assert full, f"{name}: full checking missed the attack"
        assert store, f"{name}: store-only checking missed the attack"

    attack = ATTACKS["stack_direct_ret"]
    result = benchmark(lambda: run_source(attack.source, profile=FULL_SHADOW))
    assert result.detected_violation
