"""Section 6.1 ablation: re-running the optimizer over instrumented code.

The paper: "After the intermediate code has been instrumented with
SoftBound, we re-run the full suite of LLVM optimizations on the
instrumented code.  This simplifies the SoftBound pass, because
subsequent optimization passes will remove some redundant checks and
factor out common sub-expressions."

This bench measures that design choice across the 15 workloads: each is
compiled with ``optimize_checks`` off (raw instrumentation) and on
(copyprop → cse → checkelim → licm → checkwiden → constfold → dce),
and the cost-model overhead over the uninstrumented baseline is
compared.  (``benchmarks/bench_checkopt.py`` isolates the loop passes'
contribution within that pipeline.)

Structural claims asserted:

* cleanup never *increases* a workload's overhead;
* it removes instructions and/or checks on most workloads;
* behaviour is bit-identical (same exit code) everywhere.
"""

from dataclasses import replace

from conftest import save_artifact

from repro.api import run_source
from repro.softbound.config import FULL_SHADOW
from repro.vm.costs import overhead_percent
from repro.workloads.programs import WORKLOADS

RAW = replace(FULL_SHADOW, optimize_checks=False)


def _measure(workload, config):
    result = run_source(workload.source, profile=config)
    assert result.exit_code == workload.expected_exit, workload.name
    assert result.trap is None, workload.name
    return result.stats


def test_postopt_ablation(benchmark):
    rows = []
    improved = 0
    for name, workload in WORKLOADS.items():
        baseline = run_source(workload.source).stats
        raw = _measure(workload, RAW)
        cleaned = _measure(workload, FULL_SHADOW)
        raw_overhead = overhead_percent(baseline.cost, raw.cost)
        cleaned_overhead = overhead_percent(baseline.cost, cleaned.cost)
        rows.append((name, raw_overhead, cleaned_overhead,
                     raw.checks, cleaned.checks))
        assert cleaned.cost <= raw.cost, name
        if cleaned.cost < raw.cost or cleaned.checks < raw.checks:
            improved += 1

    header = (f"{'benchmark':<12} {'raw overhead':>14} {'cleaned':>10} "
              f"{'raw checks':>12} {'cleaned checks':>15}")
    lines = ["Post-instrumentation re-optimization ablation (Section 6.1)",
             "=" * len(header), header, "-" * len(header)]
    for name, raw_pct, cleaned_pct, raw_checks, cleaned_checks in rows:
        lines.append(f"{name:<12} {raw_pct:>13.1f}% {cleaned_pct:>9.1f}% "
                     f"{raw_checks:>12} {cleaned_checks:>15}")
    average_raw = sum(r[1] for r in rows) / len(rows)
    average_cleaned = sum(r[2] for r in rows) / len(rows)
    lines.append("-" * len(header))
    lines.append(f"{'average':<12} {average_raw:>13.1f}% {average_cleaned:>9.1f}%")
    save_artifact("sec61_postopt_ablation.txt", "\n".join(lines))

    # Re-optimization helps on a majority of the suite.
    assert improved >= len(WORKLOADS) // 2, f"only {improved} improved"
    assert average_cleaned <= average_raw

    compress = WORKLOADS["compress"]
    benchmark(lambda: run_source(compress.source, profile=FULL_SHADOW))
