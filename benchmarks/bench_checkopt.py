"""Axis-1 gains of the loop-aware check optimizer (LICM + widening).

Regenerates the simulated instrumented-overhead comparison with the
loop passes off vs on and records the canonical ``BENCH_checkopt.json``
at the repo root — the baseline the CI opt-matrix leg
(``scripts/ci.py``) gates against.  Everything measured here is
cost-model units, deterministic on every host.

Run directly for the full corpus (records the JSON):

    PYTHONPATH=src python benchmarks/bench_checkopt.py

or through pytest (loop-workload subset, with the acceptance floor):

    PYTHONPATH=src python -m pytest benchmarks/bench_checkopt.py -s
"""

import pathlib
import sys

from conftest import save_artifact

from repro.harness.checkopt import (
    LOOP_WORKLOADS,
    render_checkopt,
    run_checkopt,
    write_report,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_checkopt.json"


def test_loop_passes_reduce_overhead():
    """Acceptance floor: on the array/loop workloads the loop passes
    must cut the geomean instrumented overhead by at least 15%, with
    behavioural equivalence asserted inside the measurement."""
    report = run_checkopt(LOOP_WORKLOADS)
    save_artifact("checkopt_loop_subset.txt", render_checkopt(report))
    assert report["loop_overhead_reduction_pct"] >= 15.0, report


def main(argv):
    report = run_checkopt()
    print(render_checkopt(report))
    write_report(report, BENCH_JSON)
    print(f"\nrecorded {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
