"""Section 3.4 ablation: disjoint vs inline (fat-pointer) metadata.

Section 3.4 is the paper's argument for its one structural departure
from prior pointer-based schemes: keeping base/bound in a disjoint
space instead of inline with the pointer.  This bench runs that argument
as an experiment, on two axes:

**Safety** — the pointer-smash experiment (a legally-bounded wild-cast
write that lands on an in-memory pointer slot, then a dereference of the
forged pointer):

* naive inline (SafeC-style): attacker rewrites the adjacent bounds too;
  dereference sails through — BYPASSED;
* WILD tags (CCured-style): the data store cleared the slot's tag;
  dereference sees NULL bounds — SAFE;
* SoftBound disjoint: the table is unreachable by stores; the stale,
  honest bounds reject the forged value — SAFE.

**Cost** — "all stores to a WILD object must update the metadata bits,
adding runtime overhead": WILD pays a tag write on every program store,
so its overhead exceeds disjoint SoftBound's on every workload, with the
gap largest on store-heavy scalar code.
"""

from conftest import save_artifact

from repro.baselines.fatptr import NAIVE_FATPTR_CONFIG, WILD_FATPTR_CONFIG
from repro.api import run_source
from repro.softbound.config import FULL_SHADOW
from repro.vm.costs import overhead_percent
from repro.workloads.programs import WORKLOADS

POINTER_SMASH = r'''
struct gadget { long buf; int *p; };
struct gadget g;
int secret = 7;
int target = 1;

int main(void) {
    g.p = &secret;
    long *w = (long *)&g;
    w[1] = (long)&target;
    *g.p = 99;
    return target;
}
'''

SCHEMES = [
    ("unprotected", None),
    ("fatptr-naive", NAIVE_FATPTR_CONFIG),
    ("fatptr-WILD", WILD_FATPTR_CONFIG),
    ("SoftBound", FULL_SHADOW),
]


def test_disjointness_safety(benchmark):
    lines = ["Pointer-smash experiment (Section 3.4)",
             "=" * 54,
             f"{'scheme':<14} {'outcome':<10} detail"]
    outcomes = {}
    for name, config in SCHEMES:
        result = run_source(POINTER_SMASH, profile=config)
        stopped = result.trap is not None
        outcomes[name] = (stopped, result)
        detail = str(result.trap) if stopped else \
            f"exit {result.exit_code} (target overwritten)"
        lines.append(f"{name:<14} {'STOPPED' if stopped else 'BYPASSED':<10} {detail}")
    save_artifact("sec34_disjointness.txt", "\n".join(lines))

    assert not outcomes["unprotected"][0]
    assert outcomes["unprotected"][1].exit_code == 99
    assert not outcomes["fatptr-naive"][0], "naive inline must be bypassed"
    assert outcomes["fatptr-naive"][1].exit_code == 99
    assert outcomes["fatptr-WILD"][0]
    assert outcomes["SoftBound"][0]

    benchmark(lambda: run_source(POINTER_SMASH, profile=FULL_SHADOW))


def test_wild_tag_overhead(benchmark):
    """Section 3.4: "all stores to a WILD object must update the
    metadata bits, adding runtime overhead".  The tag cost is the delta
    between the two inline variants — WILD vs naive — and it never goes
    away, even on scalar workloads with no pointer traffic at all.

    Note the SoftBound column is *higher* than the inline columns on
    average: in-band metadata is genuinely cheaper per access (no table
    walk), which is consistent with the paper reporting CCured's
    overheads as lower than SoftBound's (Section 6.5).  The paper's
    point — and this bench's safety half — is that naive inline buys
    that speed with a security hole, and WILD's fix costs tag traffic
    plus all the compatibility problems of a changed memory layout.
    """
    rows = []
    for name, workload in WORKLOADS.items():
        baseline = run_source(workload.source).stats
        naive = run_source(workload.source,
                                profile=NAIVE_FATPTR_CONFIG).stats
        wild = run_source(workload.source,
                               profile=WILD_FATPTR_CONFIG).stats
        disjoint = run_source(workload.source, profile=FULL_SHADOW).stats
        rows.append((name,
                     overhead_percent(baseline.cost, naive.cost),
                     overhead_percent(baseline.cost, wild.cost),
                     overhead_percent(baseline.cost, disjoint.cost)))

    header = (f"{'benchmark':<12} {'naive inline':>13} {'WILD inline':>12} "
              f"{'SoftBound':>11}")
    lines = ["WILD tag-update overhead (Section 3.4)",
             "=" * len(header), header, "-" * len(header)]
    for name, naive_pct, wild_pct, disjoint_pct in rows:
        lines.append(f"{name:<12} {naive_pct:>12.1f}% {wild_pct:>11.1f}% "
                     f"{disjoint_pct:>10.1f}%")
    naive_avg = sum(r[1] for r in rows) / len(rows)
    wild_avg = sum(r[2] for r in rows) / len(rows)
    disjoint_avg = sum(r[3] for r in rows) / len(rows)
    lines.append("-" * len(header))
    lines.append(f"{'average':<12} {naive_avg:>12.1f}% {wild_avg:>11.1f}% "
                 f"{disjoint_avg:>10.1f}%")
    save_artifact("sec34_wild_overhead.txt", "\n".join(lines))

    scalar = [r for r in rows if r[0] in ("go", "lbm", "hmmer", "compress",
                                          "ijpeg")]
    for name, naive_pct, wild_pct, _ in rows:
        # Tags are pure overhead on top of the naive layout.
        assert wild_pct >= naive_pct - 1e-9, name
    for name, naive_pct, wild_pct, _ in scalar:
        # Scalar code stores plenty and shares none of the benefit:
        # the tag tax is strictly visible there.
        assert wild_pct > naive_pct, name
    assert wild_avg > naive_avg

    compress = WORKLOADS["compress"]
    benchmark(lambda: run_source(compress.source,
                                      profile=WILD_FATPTR_CONFIG))
