# Developer entry points.  PYTHONPATH is injected so no install step is
# needed; see PERFORMANCE.md for the engine architecture and the two
# time axes the benchmarks measure.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-quick bench-checkopt bench-temporal bench-prove bench-serve bench-diff ci api-smoke policy-smoke fuzz-smoke store-smoke obs-smoke prove-smoke serve-smoke serve fuzz tables profile

test:            ## tier-1 test suite
	$(PYTHON) -m pytest -x -q

bench:           ## full wall-clock benchmark; records BENCH_interp.json
	$(PYTHON) benchmarks/bench_wallclock.py

bench-quick:     ## quick wall-clock subset (no recording)
	$(PYTHON) benchmarks/bench_wallclock.py --quick

bench-checkopt:  ## loop-pass cost-model ablation; records BENCH_checkopt.json
	$(PYTHON) benchmarks/bench_checkopt.py

bench-temporal:  ## temporal-checking overhead sweep; records BENCH_temporal.json
	$(PYTHON) benchmarks/bench_temporal_overhead.py

bench-prove:     ## -O1 vs -O2 solver-backed check elimination; records BENCH_prove.json
	$(PYTHON) benchmarks/bench_prove.py

bench-serve:     ## sustained-load benchmark of the serve daemon; records BENCH_serve.json
	$(PYTHON) benchmarks/bench_serve.py

bench-diff:      ## compare the recorded BENCH_*.json reports (bench-v2 schema)
	$(PYTHON) scripts/bench_diff.py BENCH_checkopt.json BENCH_temporal.json

ci:              ## tier-1 tests + perf gates (wall-clock >20%, opt >5%, temporal >5%, prove >5% fail) + api/policy/fuzz/store/obs/prove/serve smoke legs
	$(PYTHON) scripts/ci.py

api-smoke:       ## one workload through every protection profile via repro.api + all examples
	$(PYTHON) scripts/ci.py --api-smoke

policy-smoke:    ## checker-policy extension point: conformance suite + plugin discovery + matrix row
	$(PYTHON) scripts/ci.py --policy-smoke

fuzz-smoke:      ## time-boxed differential fuzzing campaign + chaos drill + seeded-bug minimization
	$(PYTHON) scripts/ci.py --fuzz-smoke

store-smoke:     ## persistent artifact store: warm-start replay + torn-write/SIGKILL chaos drill + verify
	$(PYTHON) scripts/ci.py --store-smoke

obs-smoke:       ## observability: trace schema, both-engine profiler stability, obs-disabled overhead gate
	$(PYTHON) scripts/ci.py --obs-smoke

prove-smoke:     ## -O2 prove pass: certificate replay, O-level x engine identity, overhead gate
	$(PYTHON) scripts/ci.py --prove-smoke

serve-smoke:     ## serve daemon: status mapping, CLI parity, 503/504 degradation, worker-kill recovery, SIGINT drain
	$(PYTHON) scripts/ci.py --serve-smoke

serve:           ## run the safety-as-a-service daemon (HOST/PORT/WORKERS env or flags; see docs/SERVE.md)
	$(PYTHON) -m repro serve

profile:         ## check-site profile of a workload (W=name, default bisort)
	$(PYTHON) -m repro profile $(or $(W),bisort)

fuzz:            ## open-ended differential fuzzing campaign (corpus in .fuzz-corpus/)
	$(PYTHON) -m repro fuzz run --resume --chaos --seeds 200 --time-budget 600

tables:          ## regenerate the paper's tables and figures (REPRO_JOBS=N fans out)
	$(PYTHON) -m repro tables
