#!/usr/bin/env python3
"""Lightweight CI gate: tier-1 tests + perf regression checks.

1. Runs the tier-1 test suite (``pytest -x -q``).
2. Runs the quick wall-clock benchmark subset under both engines and
   compares the geometric-mean compiled-vs-interpreter speedup against
   the recorded baseline in ``BENCH_interp.json``.  Fails when the
   current speedup regresses by more than ``TOLERANCE`` (20%).
3. Opt-matrix leg: re-measures the loop-workload subset with the
   loop-aware check passes off vs on (simulated cost units, fully
   deterministic) and fails when the optimized geomean instrumented
   overhead regresses more than ``OPT_TOLERANCE`` (5%) against the
   recorded ``BENCH_checkopt.json``.
4. Temporal leg: the temporal attack detection table must stay
   all-caught (every attack traps with a temporal_violation), and the
   spatial+temporal geomean overhead on a representative workload
   subset must not regress more than ``TEMPORAL_TOLERANCE`` (5%)
   against the recorded ``BENCH_temporal.json``.
5. API-smoke leg: one workload batch-executed through every registered
   protection profile via the ``repro.api`` facade (``Session.run_many``)
   — every profile must build and run it without behaviour divergence —
   plus every ``examples/*.py`` script run as a subprocess; any nonzero
   exit fails CI.
6. Policy-smoke leg: the checker-policy extension point end to end —
   the policy conformance/registry suite (``tests/policy``) must be
   green, a plugin module named in ``REPRO_PLUGINS`` must register and
   appear in ``python -m repro profiles --json`` in a fresh process,
   and the rendered capability matrix must include the red-zone
   plugin's extension row.
7. Fuzz-smoke leg: a time-boxed differential fuzzing campaign
   (``python -m repro fuzz run``) with the chaos drill on — the
   robustness layer must turn an injected hang into a timeout verdict
   and heal an injected worker kill and an infra flake by retrying —
   and every clean/mutated seed must judge clean (any discrepancy or
   infra failure fails CI).  Then a campaign with the deliberately
   broken ``fuzz-bad`` policy loaded must exit 1, having found the
   seeded missed detection and emitted a *minimized* reproducer.
8. Store-smoke leg: the persistent artifact store end to end — a cold
   workload sweep through ``Session`` with ``REPRO_STORE`` set must
   warm the store, a second fresh process must replay it entirely from
   disk with *identical* reports and less wallclock (warm-start sanity),
   a chaos drill with an injected torn write and a mid-write SIGKILL
   must end in detection + quarantine + recompile (never a crash, never
   a wrong program), and ``python -m repro cache verify`` must exit 0
   on the surviving store.
9. Obs-smoke leg: the observability layer end to end — a traced
   treeadd run in a fresh process must emit a schema-valid JSON-lines
   trace (required keys, resolvable parents, toolchain-stage + VM
   spans), the check-site profiler must report bit-identical per-site
   counts on both engines with >=80% of executed metadata loads
   attributed to source sites, and the obs-*disabled* path must keep
   the recorded engine-speedup baseline within 2% (tolerance widened
   to the measured sample spread on noisy hosts).

10. Prove-smoke leg: the ``-O2`` solver-backed check elimination end
   to end — the loop-workload corpus re-measured with the prove pass
   on (every deleted check must carry a certificate that replays
   non-trapping against the formal semantics; a counterexample fails
   the build), the temporal certificates replayed under the ``full``
   profile too, the O0/O1/O2 x compiled/interp matrix byte-identical
   per workload, and the optimized geomean overhead gated within
   ``PROVE_TOLERANCE`` (5%) of the recorded ``BENCH_prove.json``.

11. Serve-smoke leg: the ``repro serve`` daemon end to end — boot it
   as a subprocess (OS-assigned port, fresh store, chaos faults armed),
   assert the deterministic HTTP status mapping over clean, attack,
   malformed, compile-error and over-budget requests, check responses
   are bit-identical to one-shot ``repro run --json`` for every
   registered profile, shed load 503 at the admission bound, resolve a
   deliberately hung request 504 by deadline-kill while concurrent
   requests are answered, survive worker SIGKILL mid-run by
   respawn+retry, scrape ``/metrics``, and drain on SIGINT with exit
   130.

The wall-clock gate compares the speedup *ratio* — not absolute
seconds — so it is stable across machines of different absolute speed;
the opt gate compares cost-model units, which are host-independent.

Usage:  python scripts/ci.py [--skip-tests]
        python scripts/ci.py --api-smoke     # only the api-smoke leg
        python scripts/ci.py --policy-smoke  # only the policy-smoke leg
        python scripts/ci.py --fuzz-smoke    # only the fuzz-smoke leg
        python scripts/ci.py --store-smoke   # only the store-smoke leg
        python scripts/ci.py --obs-smoke     # only the obs-smoke leg
        python scripts/ci.py --prove-smoke   # only the prove-smoke leg
        python scripts/ci.py --serve-smoke   # only the serve-smoke leg
"""

import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_interp.json"
CHECKOPT_JSON = REPO_ROOT / "BENCH_checkopt.json"
TEMPORAL_JSON = REPO_ROOT / "BENCH_temporal.json"
PROVE_JSON = REPO_ROOT / "BENCH_prove.json"
TOLERANCE = 0.20      # fail on >20% wall-clock regression
OPT_TOLERANCE = 0.05  # fail on >5% instrumented-overhead regression
TEMPORAL_TOLERANCE = 0.05  # fail on >5% temporal-overhead regression
PROVE_TOLERANCE = 0.05  # fail on >5% -O2 overhead regression

#: Representative subset the CI temporal-overhead gate re-measures
#: (full-corpus numbers live in BENCH_temporal.json).
TEMPORAL_GATE_WORKLOADS = ("go", "health", "li", "treeadd")


def run_tier1():
    print("== tier-1 tests ==", flush=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + (":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""))
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q"], cwd=REPO_ROOT, env=env)
    return proc.returncode


def run_perf_gate():
    sys.path.insert(0, str(REPO_ROOT / "src"))
    import math

    from repro.harness.wallclock import (
        QUICK_WORKLOADS,
        load_report,
        render_report,
        run_benchmarks,
    )

    print("\n== wall-clock perf gate (quick subset) ==", flush=True)
    report = run_benchmarks(quick=True, repeats=2)
    print(render_report(report))
    current = report["geomean_speedup"]
    if not BENCH_JSON.exists():
        print(f"\nno recorded baseline at {BENCH_JSON}; "
              f"run `make bench` to create one. Current speedup: {current:.2f}x")
        return 0
    # Compare like against like: the recorded full-corpus report carries
    # per-workload speedups, so rebuild the *quick-subset* geomean from
    # it rather than gating the 4-workload measurement against the
    # 15-workload mean.
    recorded_report = load_report(BENCH_JSON)
    recorded_speedups = [
        recorded_report["workloads"][name]["speedup"]
        for name in QUICK_WORKLOADS
        if name in recorded_report.get("workloads", {})
    ]
    if recorded_speedups:
        recorded = math.exp(
            sum(map(math.log, recorded_speedups)) / len(recorded_speedups))
        basis = f"quick subset of {BENCH_JSON.name}"
    else:
        recorded = recorded_report["geomean_speedup"]
        basis = f"full-corpus geomean of {BENCH_JSON.name} (no quick overlap)"
    floor = recorded * (1.0 - TOLERANCE)
    print(f"\nrecorded ({basis}): {recorded:.2f}x   current: {current:.2f}x   "
          f"floor (-{TOLERANCE:.0%}): {floor:.2f}x")
    if current < floor:
        print("PERF REGRESSION: compiled-engine speedup fell below the floor")
        return 1
    print("perf gate ok")
    return 0


def run_opt_matrix_gate():
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.harness.checkopt import (
        LOOP_WORKLOADS,
        load_report,
        render_checkopt,
        run_checkopt,
    )

    print("\n== opt-matrix gate (loop passes off vs on, cost units) ==",
          flush=True)
    report = run_checkopt(LOOP_WORKLOADS)
    print(render_checkopt(report))
    current = report["loop_geomean_overhead_on_pct"]
    if not CHECKOPT_JSON.exists():
        print(f"\nno recorded baseline at {CHECKOPT_JSON}; run "
              f"`python benchmarks/bench_checkopt.py` to create one. "
              f"Current optimized geomean overhead: {current:.2f}%")
        return 0
    recorded = load_report(CHECKOPT_JSON)["loop_geomean_overhead_on_pct"]
    ceiling = recorded * (1.0 + OPT_TOLERANCE)
    print(f"\nrecorded optimized geomean overhead: {recorded:.2f}%   "
          f"current: {current:.2f}%   ceiling (+{OPT_TOLERANCE:.0%}): "
          f"{ceiling:.2f}%")
    if current > ceiling:
        print("OPT REGRESSION: loop-pass instrumented overhead rose above "
              "the recorded baseline ceiling")
        return 1
    print("opt-matrix gate ok")
    return 0


def run_temporal_gate():
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.harness.tables import render_temporal, temporal_matrix
    from repro.harness.temporal import (
        _geomean,
        load_report,
        render_temporal_overhead,
        run_temporal_overhead,
    )

    print("\n== temporal gate (detection all-caught + overhead ceiling) ==",
          flush=True)
    # The published detection table is the gate's output, so CI and
    # `python -m repro tables temporal` can never drift.
    print(render_temporal())
    missed = [name for name, (_, _, detected) in temporal_matrix().items()
              if not detected]
    if missed:
        print(f"TEMPORAL REGRESSION: attacks not detected: {missed}")
        return 1
    report = run_temporal_overhead(TEMPORAL_GATE_WORKLOADS)
    print()
    print(render_temporal_overhead(report))
    current = report["geomean_temporal_pct"]
    if not TEMPORAL_JSON.exists():
        print(f"\nno recorded baseline at {TEMPORAL_JSON}; run "
              f"`make bench-temporal` to create one. "
              f"Current geomean overhead: {current:.2f}%")
        return 0
    # Compare like against like: rebuild the gate-subset geomean from
    # the recorded full-corpus report.
    recorded_report = load_report(TEMPORAL_JSON)
    recorded_rows = [
        recorded_report["workloads"][name]["temporal_overhead_pct"]
        for name in TEMPORAL_GATE_WORKLOADS
        if name in recorded_report.get("workloads", {})
    ]
    if recorded_rows:
        recorded = _geomean(recorded_rows)
        basis = f"gate subset of {TEMPORAL_JSON.name}"
    else:
        recorded = recorded_report["geomean_temporal_pct"]
        basis = f"full-corpus geomean of {TEMPORAL_JSON.name}"
    ceiling = recorded * (1.0 + TEMPORAL_TOLERANCE)
    print(f"\nrecorded ({basis}): {recorded:.2f}%   current: {current:.2f}%   "
          f"ceiling (+{TEMPORAL_TOLERANCE:.0%}): {ceiling:.2f}%")
    if current > ceiling:
        print("TEMPORAL REGRESSION: spatial+temporal overhead rose above "
              "the recorded baseline ceiling")
        return 1
    print("temporal gate ok")
    return 0


#: Workloads the prove-smoke matrix sweeps over every O-level x engine
#: cell (loop-heavy, so -O2 actually deletes checks on them).
PROVE_SMOKE_WORKLOADS = ("go", "lbm", "ijpeg")


def run_prove_smoke():
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.api import compile_source
    from repro.fuzz.oracle import run_config
    from repro.harness.checkopt import LOOP_WORKLOADS
    from repro.harness.prove import load_report, render_prove, run_prove
    from repro.prove import replay_certificate
    from repro.workloads.programs import WORKLOADS

    print("\n== prove-smoke (certificate replay, O-matrix identity, "
          "overhead gate) ==", flush=True)

    # 1. Spatial corpus under -O2: run_prove asserts, per workload,
    # that O0/O1/O2 match the uninstrumented baseline, that every
    # deleted check carries a certificate, and that every certificate
    # replays non-trapping against the formal semantics.  Any
    # counterexample surfaces as the AssertionError caught here.
    try:
        report = run_prove(LOOP_WORKLOADS)
    except AssertionError as error:
        print(f"PROVE SMOKE FAILURE: deleted-check counterexample — "
              f"{error}")
        return 1
    print(render_prove(report))
    print(f"  spatial corpus ok: {report['certificates']} certificates "
          f"replayed against the formal semantics")

    # 2. The temporal side: under the full (spatial+temporal) profile
    # the prove pass also deletes sb_temporal_check sites; their
    # immortal-lock certificates must replay too.
    replayed = 0
    for name in PROVE_SMOKE_WORKLOADS:
        compiled = compile_source(WORKLOADS[name].source, profile="full",
                                  optimize=2)
        for cert in getattr(compiled, "prove_certificates", None) or ():
            ok, reason = replay_certificate(cert)
            if not ok:
                print(f"PROVE SMOKE FAILURE: {name} certificate "
                      f"{cert.kind} at {cert.function}:{cert.site} "
                      f"does not replay — {reason}")
                return 1
            replayed += 1
    if replayed == 0:
        print("PROVE SMOKE FAILURE: full profile produced no "
              "certificates on the loop subset")
        return 1
    print(f"  full-profile certificates ok: {replayed} replayed over "
          f"{len(PROVE_SMOKE_WORKLOADS)} workloads")

    # 3. Byte-identity: every (O-level, engine) cell must agree exactly
    # on (status, exit, output, trap) — a wrong proof would diverge
    # here even if it slipped past the replay.
    for name in PROVE_SMOKE_WORKLOADS:
        source = WORKLOADS[name].source
        rows = {}
        for engine in ("compiled", "interp"):
            for level in (0, 1, 2):
                value = run_config(source, "spatial", engine, level)
                rows[(engine, level)] = (
                    value.get("status"), value.get("exit_code"),
                    value.get("output"), value.get("trap_kind"))
        if len(set(rows.values())) != 1:
            print(f"PROVE SMOKE FAILURE: {name} O-level x engine matrix "
                  f"not byte-identical: {rows}")
            return 1
    print(f"  O-matrix identity ok ({len(PROVE_SMOKE_WORKLOADS)} "
          f"workloads x 3 levels x 2 engines)")

    # 4. Overhead gate: the re-measured loop-subset -O2 geomean must
    # stay within PROVE_TOLERANCE of the recorded baseline.
    current = report["loop_geomean_overhead_o2_pct"]
    if not PROVE_JSON.exists():
        print(f"\nno recorded baseline at {PROVE_JSON}; run "
              f"`make bench-prove` to create one. Current -O2 geomean "
              f"overhead: {current:.2f}%")
        print("prove-smoke ok")
        return 0
    recorded = load_report(PROVE_JSON)["loop_geomean_overhead_o2_pct"]
    ceiling = recorded * (1.0 + PROVE_TOLERANCE)
    print(f"  recorded -O2 loop geomean overhead: {recorded:.2f}%   "
          f"current: {current:.2f}%   ceiling (+{PROVE_TOLERANCE:.0%}): "
          f"{ceiling:.2f}%")
    if current > ceiling:
        print("PROVE REGRESSION: -O2 instrumented overhead rose above "
              "the recorded baseline ceiling")
        return 1
    print("prove-smoke ok")
    return 0


#: Workload the api-smoke leg pushes through every registered profile.
API_SMOKE_WORKLOAD = "treeadd"


def run_api_smoke():
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.api import Session, all_profiles
    from repro.workloads.programs import WORKLOADS

    print("\n== api-smoke (every profile through the facade + examples) ==",
          flush=True)
    workload = WORKLOADS[API_SMOKE_WORKLOAD]
    session = Session()
    batch = session.run_many(
        [(profile.name, workload.source, profile)
         for profile in all_profiles()],
        benchmark="api-smoke")
    baseline = batch["none"]
    failures = []
    width = max(len(p.name) for p in all_profiles())
    for report in batch:
        overhead = (report.stats.cost / baseline.stats.cost - 1.0) * 100.0
        verdict = "ok"
        if report.trap is not None:
            verdict = f"TRAP {report.trap_kind}"
            failures.append(report.profile)
        elif report.exit_code != workload.expected_exit:
            verdict = f"EXIT {report.exit_code} != {workload.expected_exit}"
            failures.append(report.profile)
        elif report.output != baseline.output:
            verdict = "OUTPUT diverged from unprotected baseline"
            failures.append(report.profile)
        print(f"  {report.profile:<{width}}  cost {report.stats.cost:>12,}  "
              f"overhead {overhead:>8.1f}%  {verdict}")
    if failures:
        print(f"API SMOKE FAILURE: {API_SMOKE_WORKLOAD} diverged under "
              f"profiles: {failures}")
        return 1

    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + (":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""))
    for script in sorted((REPO_ROOT / "examples").glob("*.py")):
        proc = subprocess.run([sys.executable, str(script)], cwd=REPO_ROOT,
                              env=env, capture_output=True, text=True)
        status = "ok" if proc.returncode == 0 else f"EXIT {proc.returncode}"
        print(f"  examples/{script.name:<28s} {status}")
        if proc.returncode != 0:
            print(proc.stdout[-2000:])
            print(proc.stderr[-2000:])
            print(f"API SMOKE FAILURE: examples/{script.name} exited "
                  f"nonzero")
            return 1
    print("api-smoke ok")
    return 0


def run_policy_smoke():
    import json

    print("\n== policy-smoke (checker-policy extension point) ==",
          flush=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + (":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""))

    # 1. Conformance + registry suites: every registered policy sweeps
    # clean-transparency, the detection matrix, pickling and costs.
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "tests/policy"],
        cwd=REPO_ROOT, env=env)
    if proc.returncode != 0:
        print("POLICY SMOKE FAILURE: tests/policy not green")
        return 1
    print("  conformance suite ok")

    # 2. Discovery path: a module named in REPRO_PLUGINS registers in a
    # fresh process and surfaces through `profiles --json`.  The in-tree
    # red-zone plugin plays the external plugin here — naming it in the
    # env var is exactly what a third-party module would do.
    plug_env = dict(env)
    plug_env["REPRO_PLUGINS"] = "repro.policy.redzone"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "profiles", "--json"],
        cwd=REPO_ROOT, env=plug_env, capture_output=True, text=True)
    if proc.returncode != 0:
        print(proc.stderr[-2000:])
        print("POLICY SMOKE FAILURE: profiles --json exited nonzero")
        return 1
    entries = {entry["name"]: entry for entry in json.loads(proc.stdout)}
    redzone = entries.get("redzone")
    if redzone is None or redzone["family"] != "plugin" \
            or "heap_overflow" not in redzone["detects"]:
        print(f"POLICY SMOKE FAILURE: red-zone plugin missing or wrong "
              f"in profiles --json: {redzone}")
        return 1
    print(f"  discovery ok ({len(entries)} profiles, red-zone present)")

    # 3. The capability matrix carries the plugin's extension row.
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "tables", "table1"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True)
    if proc.returncode != 0 or "RedZone" not in proc.stdout:
        print(proc.stdout[-2000:])
        print("POLICY SMOKE FAILURE: capability matrix lacks the "
              "RedZone extension row")
        return 1
    print("  capability matrix extension row ok")
    print("policy-smoke ok")
    return 0


#: Obs-disabled wallclock gate: the speedup ratio must stay within this
#: fraction of the recorded baseline — widened to the measured sample
#: spread when the host is too noisy to resolve 2%.
OBS_TOLERANCE = 0.02
#: Independent speedup-ratio samples the obs gate takes.
OBS_GATE_SAMPLES = 3


def run_obs_smoke():
    import json
    import tempfile

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.harness.wallclock import load_report, run_benchmarks
    from repro.obs.profiler import profile_source
    from repro.workloads.programs import WORKLOADS

    print("\n== obs-smoke (trace schema, profiler stability, "
          "disabled-overhead gate) ==", flush=True)

    # 1. Traced treeadd in a fresh process (REPRO_TRACE inherited the
    #    way pool workers inherit it): every emitted line must be
    #    standalone schema-valid JSON, parents must resolve within the
    #    file, and the span names must cover the toolchain stages and
    #    the VM run.
    snippet = (
        "from repro.api import run_source\n"
        "from repro.workloads.programs import WORKLOADS\n"
        "report = run_source(WORKLOADS['treeadd'].source,"
        " profile='spatial')\n"
        "assert report.trap is None\n"
        "assert report.obs is not None and 'trace' in report.obs\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + (":" + env["PYTHONPATH"]
                            if env.get("PYTHONPATH") else ""))
    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as scratch:
        sink = os.path.join(scratch, "trace.jsonl")
        env["REPRO_TRACE"] = sink
        proc = subprocess.run([sys.executable, "-c", snippet],
                              cwd=REPO_ROOT, env=env,
                              capture_output=True, text=True)
        if proc.returncode != 0:
            print(proc.stdout[-2000:])
            print(proc.stderr[-2000:])
            print("OBS SMOKE FAILURE: traced treeadd run exited nonzero")
            return 1
        with open(sink) as handle:
            lines = [json.loads(line) for line in handle]
    required = {"name", "span", "ts", "dur", "pid"}
    span_ids = {line["span"] for line in lines}
    names = {line["name"] for line in lines}
    bad = [line for line in lines if not required <= set(line)]
    orphans = [line for line in lines
               if line.get("parent") and line["parent"] not in span_ids]
    expected = {"stage.parse", "stage.lower", "stage.instrument", "vm.run"}
    if bad or orphans or not expected <= names:
        print(f"OBS SMOKE FAILURE: trace schema violated "
              f"(missing-keys={len(bad)} orphan-parents={len(orphans)} "
              f"names={sorted(names)})")
        return 1
    print(f"  trace: {len(lines)} schema-valid spans, "
          f"{len(names)} distinct names, parents resolve")

    # 2. Check-site profiler: both engines must report bit-identical
    #    per-site counts, and executed sb_meta_loads must attribute to
    #    ranked source sites (the >=80% acceptance bar).
    for name in ("treeadd", "bisort"):
        source = WORKLOADS[name].source
        interp = profile_source(source, engine="interp", program=name)
        compiled = profile_source(source, engine="compiled", program=name)
        if interp.sites != compiled.sites or interp.totals != compiled.totals:
            print(f"OBS SMOKE FAILURE: {name} per-site counts diverge "
                  f"between engines")
            return 1
        attributed = compiled.attribution["sb_meta_load"]
        if attributed < 0.80:
            print(f"OBS SMOKE FAILURE: {name} attributes only "
                  f"{attributed:.0%} of sb_meta_loads to source sites")
            return 1
        hot = compiled.sites[0]
        print(f"  profiler: {name:<8s} {len(compiled.sites)} sites "
              f"identical across engines, meta_load attribution "
              f"{attributed:.0%}, hottest {hot['function']}:{hot['line']}")

    # 3a. Obs-disabled overhead, structural gate: with no site profile
    #     attached the compiled engine must build ZERO profiling
    #     closures (the counting variants close over the profile's
    #     ``counts`` dict — its presence in a closure's freevars is the
    #     tell), so the disabled path executes the exact pre-profiler
    #     code and its cost is unchanged *by construction* — a property
    #     host noise can't blur the way it blurs a 2% timing assertion.
    from repro.api import compile_source
    from repro.api.profiles import as_profile
    from repro.obs.profiler import SiteProfile

    spatial = as_profile("spatial")
    treeadd = compile_source(WORKLOADS["treeadd"].source, profile=spatial)

    def profiling_closures(attach):
        machine = treeadd.instantiate(observers=spatial.make_observers())
        if attach:
            machine.attach_site_profile(SiteProfile())
        machine.run()
        return sum(
            1
            for ops in machine._engine._code.values()
            for op in ops
            if getattr(op, "__code__", None) is not None
            and "counts" in op.__code__.co_freevars)

    disabled, enabled = profiling_closures(False), profiling_closures(True)
    if disabled != 0 or enabled == 0:
        print(f"OBS SMOKE FAILURE: closure specialization broken — "
              f"{disabled} profiling closures with profiling disabled "
              f"(want 0), {enabled} with it enabled (want >0)")
        return 1
    print(f"  disabled path: 0 profiling closures built "
          f"(enabled builds {enabled}) — per-instruction cost unchanged "
          f"by construction")

    # 3b. Wallclock backstop: the engine speedup ratio vs the recorded
    #     baseline.  Within max(2%, measured sample spread) is the
    #     target; past the perf gate's 20% TOLERANCE is a hard failure
    #     (2% is not resolvable on a noisy CI host, which is why the
    #     structural gate above carries the near-free guarantee).
    samples = []
    for _ in range(OBS_GATE_SAMPLES):
        report = run_benchmarks(names=("treeadd",), repeats=2)
        samples.append(report["workloads"]["treeadd"]["speedup"])
    current = max(samples)
    spread = (max(samples) - min(samples)) / max(samples)
    tolerance = max(OBS_TOLERANCE, spread)
    if not BENCH_JSON.exists():
        print(f"  no recorded baseline at {BENCH_JSON.name}; samples "
              f"{samples}")
        print("obs-smoke ok")
        return 0
    recorded = load_report(BENCH_JSON)["workloads"]["treeadd"]["speedup"]
    target = recorded * (1.0 - tolerance)
    floor = recorded * (1.0 - TOLERANCE)
    print(f"  disabled-path speedup: samples {samples} (spread "
          f"{spread:.1%})  recorded {recorded:.2f}x  target "
          f"(-{tolerance:.1%}): {target:.2f}x  hard floor "
          f"(-{TOLERANCE:.0%}): {floor:.2f}x")
    if current < floor:
        print("OBS SMOKE FAILURE: obs-disabled wallclock regressed past "
              "the hard floor")
        return 1
    if current < target:
        print("  warning: below the noise-adjusted 2% target (structural "
              "gate passed; treating as host noise)")
    print("obs-smoke ok")
    return 0


#: Wallclock budget for the fuzz-smoke clean campaign (seconds).
FUZZ_SMOKE_BUDGET = 60.0


def _tail_json(text):
    """The trailing JSON document of mixed log+JSON stdout."""
    import json

    index = text.rfind("\n{")
    return json.loads(text[index + 1:] if index >= 0 else text)


def run_fuzz_smoke():
    import json
    import tempfile

    print("\n== fuzz-smoke (differential campaign + chaos drill) ==",
          flush=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + (":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""))
    env.pop("REPRO_PLUGINS", None)

    # 1. Clean campaign, chaos drill on, hard time-box: every seed must
    # judge clean while the robustness layer absorbs an injected hang,
    # a worker SIGKILL and an infra flake.
    with tempfile.TemporaryDirectory(prefix="fuzz-smoke-") as scratch:
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fuzz", "run",
             "--corpus", os.path.join(scratch, "clean"),
             "--seeds", "2", "--quick", "--chaos",
             "--time-budget", str(FUZZ_SMOKE_BUDGET), "--json"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=FUZZ_SMOKE_BUDGET * 4)
        if proc.returncode != 0:
            print(proc.stdout[-4000:])
            print(proc.stderr[-2000:])
            print("FUZZ SMOKE FAILURE: clean campaign found "
                  "discrepancies (or chaos drill failed)")
            return 1
        payload = _tail_json(proc.stdout)
        if payload["chaos"].get("failed") or \
                payload["chaos"].get("verdicts") != ["timeout", "ok",
                                                     "ok", "ok"]:
            print(f"FUZZ SMOKE FAILURE: chaos drill verdicts wrong: "
                  f"{payload['chaos']}")
            return 1
        if payload["judged"] == 0:
            print("FUZZ SMOKE FAILURE: campaign judged no seeds inside "
                  "the time budget")
            return 1
        print(f"  clean campaign ok: {payload['judged']} seeds judged "
              f"in {payload['elapsed']}s, chaos drill survived "
              f"hang/kill/flake")

        # 2. Seeded known-bad policy: the campaign must find the missed
        # detection and minimize it.
        bad_env = dict(env)
        bad_env["REPRO_PLUGINS"] = "repro.fuzz.badpolicy"
        bad_corpus = os.path.join(scratch, "bad")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fuzz", "run",
             "--corpus", bad_corpus, "--seeds", "1", "--start-seed", "1",
             "--quick", "--policies", "none,spatial,fuzz-bad", "--json"],
            cwd=REPO_ROOT, env=bad_env, capture_output=True, text=True,
            timeout=FUZZ_SMOKE_BUDGET * 4)
        if proc.returncode != 1:
            print(proc.stdout[-4000:])
            print(proc.stderr[-2000:])
            print(f"FUZZ SMOKE FAILURE: bad-policy campaign exited "
                  f"{proc.returncode}, expected 1 (seeded bug not found)")
            return 1
        payload = _tail_json(proc.stdout)
        if not payload["findings"]:
            print("FUZZ SMOKE FAILURE: seeded missed detection produced "
                  "no finding")
            return 1
        with open(os.path.join(payload["findings"][0],
                               "case.json")) as handle:
            case = json.load(handle)
        if (case["kind"] != "missed_detection"
                or case["policy"] != "fuzz-bad"
                or not case["reproduced"]
                or case["minimized_lines"] >= case["original_lines"]):
            print(f"FUZZ SMOKE FAILURE: finding not minimized as "
                  f"expected: {case}")
            return 1
        print(f"  seeded bug found and minimized: {case['id']} "
              f"({case['original_lines']} -> {case['minimized_lines']} "
              f"lines)")
    print("fuzz-smoke ok")
    return 0


#: Workload sweep the store-smoke leg pushes through the store (pointer
#: and loop heavy, so cold compiles dominate and the warm-start speedup
#: is unambiguous).
STORE_SMOKE_PROGRAM = r'''
long mix0(long *v, int n) {
    long acc = 0;
    int i;
    for (i = 0; i < n; i++) acc += v[i] * 3 + (acc >> 2);
    return acc;
}
long mix1(long *v, int n) {
    long acc = 1;
    int i;
    for (i = 0; i < n; i++) { acc ^= v[i] + i; acc += acc % 7; }
    return acc;
}
long mix2(long *v, int n) {
    long acc = 0;
    int i;
    for (i = n - 1; i >= 0; i--) acc = acc * 2 + v[i] - (i & 3);
    return acc;
}
long mix3(long *v, int n) {
    long acc = 0;
    int i;
    for (i = 0; i < n; i++) if (v[i] % 2) acc += v[i]; else acc -= 1;
    return acc;
}
long mix4(long *v, int n) {
    long acc = 5;
    int i;
    for (i = 0; i < n; i++) { v[i] = v[i] + acc; acc = v[i] % 97; }
    return acc;
}
int main(void) {
    long a[8];
    long acc = 0;
    int i;
    for (i = 0; i < 8; i++) a[i] = i * 11;
    acc += mix0(a, 8);
    acc += mix1(a, 8);
    acc += mix2(a, 8);
    acc += mix3(a, 8);
    acc += mix4(a, 8);
    long *h = (long *)malloc(4 * sizeof(long));
    for (i = 0; i < 4; i++) h[i] = acc + i;
    acc = h[3];
    free(h);
    printf("acc %ld\n", acc);
    return (int)(acc % 100);
}
'''

STORE_SMOKE_PROFILES = ("none", "spatial", "temporal", "full")

#: The sweep snippet a store-smoke subprocess runs: every profile over
#: the workload, reporting deterministic rows, cache origins and the
#: compile+run wallclock.
STORE_SMOKE_SWEEP = '''
import json, time
from repro.api import Session

source = {source!r}
session = Session()
start = time.perf_counter()
rows, origins = {{}}, []
for profile in {profiles!r}:
    report = session.run(source, profile=profile, name=profile)
    row = report.to_json()
    row.pop("wallclock_seconds"); row.pop("cache", None)
    rows[profile] = row
    origins.append(report.cache["origin"])
elapsed = time.perf_counter() - start
print(json.dumps({{"elapsed": elapsed, "origins": origins,
                   "rows": rows}}))
'''


def run_store_smoke():
    import json
    import tempfile

    print("\n== store-smoke (persistent artifact store) ==", flush=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + (":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""))
    for var in ("REPRO_PLUGINS", "REPRO_STORE", "REPRO_STORE_FAULTS"):
        env.pop(var, None)
    sweep = STORE_SMOKE_SWEEP.format(source=STORE_SMOKE_PROGRAM,
                                     profiles=STORE_SMOKE_PROFILES)

    def run_sweep(store_dir, faults=None):
        sweep_env = dict(env, REPRO_STORE=store_dir)
        if faults:
            sweep_env["REPRO_STORE_FAULTS"] = faults
        return subprocess.run([sys.executable, "-c", sweep],
                              cwd=REPO_ROOT, env=sweep_env,
                              capture_output=True, text=True, timeout=600)

    def cache_cli(store_dir, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", "cache", *argv,
             "--store", store_dir, "--json"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=600)

    with tempfile.TemporaryDirectory(prefix="store-smoke-") as scratch:
        store_dir = os.path.join(scratch, "store")

        # 1. Warm-start sanity: a fresh process replays the whole sweep
        # from disk, bit-identically, faster than the cold compile.
        cold = run_sweep(store_dir)
        if cold.returncode != 0:
            print(cold.stdout[-2000:])
            print(cold.stderr[-2000:])
            print("STORE SMOKE FAILURE: cold sweep failed")
            return 1
        cold_payload = json.loads(cold.stdout)
        if set(cold_payload["origins"]) != {"compile"}:
            print(f"STORE SMOKE FAILURE: cold origins not all 'compile': "
                  f"{cold_payload['origins']}")
            return 1
        warm = run_sweep(store_dir)
        if warm.returncode != 0:
            print(warm.stderr[-2000:])
            print("STORE SMOKE FAILURE: warm sweep failed")
            return 1
        warm_payload = json.loads(warm.stdout)
        if set(warm_payload["origins"]) != {"store"}:
            print(f"STORE SMOKE FAILURE: warm origins not all 'store': "
                  f"{warm_payload['origins']}")
            return 1
        if warm_payload["rows"] != cold_payload["rows"]:
            print("STORE SMOKE FAILURE: warm replay diverged from the "
                  "cold compile")
            return 1
        if warm_payload["elapsed"] >= cold_payload["elapsed"]:
            print(f"STORE SMOKE FAILURE: no warm-start speedup "
                  f"(cold {cold_payload['elapsed']:.3f}s, "
                  f"warm {warm_payload['elapsed']:.3f}s)")
            return 1
        speedup = cold_payload["elapsed"] / max(warm_payload["elapsed"],
                                                1e-9)
        print(f"  warm start ok: {len(cold_payload['rows'])} profiles "
              f"bit-identical from disk, {speedup:.1f}x faster "
              f"(cold {cold_payload['elapsed']:.3f}s -> warm "
              f"{warm_payload['elapsed']:.3f}s)")

        # 2. Chaos drill, fault one: a torn write must be detected on
        # the next read, quarantined, and transparently recompiled.
        torn_dir = os.path.join(scratch, "torn")
        torn = run_sweep(torn_dir, faults="torn_write:1")
        if torn.returncode != 0:
            print(torn.stderr[-2000:])
            print("STORE SMOKE FAILURE: sweep with injected torn write "
                  "did not exit clean")
            return 1
        healed = run_sweep(torn_dir)
        if healed.returncode != 0:
            print(healed.stderr[-2000:])
            print("STORE SMOKE FAILURE: sweep over the torn store "
                  "did not exit clean")
            return 1
        healed_payload = json.loads(healed.stdout)
        if healed_payload["rows"] != cold_payload["rows"]:
            print("STORE SMOKE FAILURE: torn-store replay diverged")
            return 1
        if "compile" not in healed_payload["origins"]:
            print(f"STORE SMOKE FAILURE: torn entry was not recompiled: "
                  f"{healed_payload['origins']}")
            return 1
        print(f"  torn-write drill ok: detected, quarantined, "
              f"recompiled (origins {healed_payload['origins']})")

        # 3. Chaos drill, fault two: SIGKILL between tmp write and
        # atomic replace — the next process must find a loadable store.
        kill_dir = os.path.join(scratch, "killed")
        killed = run_sweep(kill_dir, faults="sigkill_replace:1")
        if killed.returncode != -9:
            print(f"STORE SMOKE FAILURE: SIGKILL drill exited "
                  f"{killed.returncode}, expected -9")
            return 1
        survivor = run_sweep(kill_dir)
        if survivor.returncode != 0:
            print(survivor.stderr[-2000:])
            print("STORE SMOKE FAILURE: sweep after mid-write SIGKILL "
                  "did not exit clean")
            return 1
        if json.loads(survivor.stdout)["rows"] != cold_payload["rows"]:
            print("STORE SMOKE FAILURE: post-SIGKILL replay diverged")
            return 1
        print("  mid-write SIGKILL drill ok: store stayed loadable")

        # 4. The verifier signs off on every surviving store.
        for name, directory in (("warm", store_dir), ("torn", torn_dir),
                                ("killed", kill_dir)):
            proc = cache_cli(directory, "verify")
            if proc.returncode != 0:
                print(proc.stdout[-2000:])
                print(f"STORE SMOKE FAILURE: cache verify failed on the "
                      f"{name} store (exit {proc.returncode})")
                return 1
        stats = json.loads(cache_cli(store_dir, "stats").stdout)
        if stats["entries"] == 0:
            print("STORE SMOKE FAILURE: warm store is empty")
            return 1
        print(f"  cache verify ok on all three stores "
              f"({stats['entries']} entries in the warm store)")
    print("store-smoke ok")
    return 0


#: Programs the serve-smoke leg drives through the daemon.
SERVE_SMOKE_CLEAN = """\
#include <stdio.h>
int main(void) {
    int a[8]; int i; int sum = 0;
    for (i = 0; i < 8; i++) a[i] = i * 3;
    for (i = 0; i < 8; i++) sum += a[i];
    printf("sum=%d\\n", sum);
    return 0;
}
"""
SERVE_SMOKE_ATTACK = """\
int main(void) { int a[4]; a[9] = 7; return 0; }
"""
SERVE_SMOKE_LOOP = """\
int main(void) { int x = 0; while (1) { x = x + 1; } return x; }
"""

#: Row keys the serve response adds/varies vs one-shot CLI --json.
SERVE_ROW_NOISE = ("wallclock_seconds", "cache", "obs", "output")


def _serve_post(base_url, path, doc, timeout=90.0):
    """POST a JSON document (or raw bytes); returns
    ``(status, body_dict, headers)`` and never raises for HTTP
    statuses."""
    import json
    import urllib.error
    import urllib.request

    body = doc if isinstance(doc, (bytes, bytearray)) \
        else json.dumps(doc).encode()
    request = urllib.request.Request(base_url + path, data=bytes(body),
                                     method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _serve_get(base_url, path):
    import json
    import urllib.request

    with urllib.request.urlopen(base_url + path, timeout=30) as resp:
        return json.loads(resp.read())


def run_serve_smoke():
    import json
    import signal
    import tempfile
    import threading
    import time

    print("\n== serve-smoke (daemon: status mapping, QoS degradation, "
          "worker recovery) ==", flush=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + (":" + env["PYTHONPATH"]
                            if env.get("PYTHONPATH") else ""))
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as scratch:
        store_dir = os.path.join(scratch, "store")
        env["REPRO_STORE"] = store_dir
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "2", "--queue", "1", "--deadline", "6",
             "--allow-test-faults"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
            text=True, cwd=REPO_ROOT)
        try:
            ready = daemon.stdout.readline()
            if "listening on" not in ready:
                print(f"SERVE SMOKE FAILURE: daemon did not come up: "
                      f"{ready!r}")
                return 1
            port = ready.split("http://", 1)[1].split()[0].rsplit(":", 1)[1]
            base = f"http://127.0.0.1:{port}"
            print(f"  daemon up on {base} (workers=2 queue=1 deadline=6s)")

            # 1. The deterministic status mapping, one row per family.
            drills = [
                ("clean run", "/run",
                 {"source": SERVE_SMOKE_CLEAN, "profile": "spatial"},
                 200, "0"),
                ("attack detected", "/run",
                 {"source": SERVE_SMOKE_ATTACK, "profile": "spatial"},
                 403, "2"),
                ("check shorthand", "/check",
                 {"source": SERVE_SMOKE_ATTACK}, 403, "2"),
                ("compile error", "/run",
                 {"source": "int main(void) { return", "profile": "none"},
                 422, "4"),
                ("over budget", "/run",
                 {"source": SERVE_SMOKE_LOOP, "profile": "none",
                  "budget": 100000}, 500, "5"),
                ("malformed JSON", "/run", b"{definitely not json",
                 400, None),
                ("unknown field", "/run",
                 {"source": SERVE_SMOKE_CLEAN, "profle": "spatial"},
                 400, None),
                ("unknown profile", "/run",
                 {"source": SERVE_SMOKE_CLEAN, "profile": "nope"},
                 400, None),
                ("budget past ceiling", "/run",
                 {"source": SERVE_SMOKE_CLEAN, "budget": 10 ** 12},
                 400, None),
            ]
            for label, path, doc, want_status, want_exit in drills:
                status, body, headers = _serve_post(base, path, doc)
                if status != want_status:
                    print(f"SERVE SMOKE FAILURE: {label} -> {status}, "
                          f"expected {want_status} (body {body})")
                    return 1
                got_exit = headers.get("X-Repro-Exit-Code")
                if want_exit is not None and got_exit != want_exit:
                    print(f"SERVE SMOKE FAILURE: {label} exit-code header "
                          f"{got_exit!r}, expected {want_exit!r}")
                    return 1
            status, body, _ = _serve_post(
                base, "/run", {"source": SERVE_SMOKE_CLEAN,
                               "profile": "spatial"})
            if body.get("output") != "sum=84\n":
                print(f"SERVE SMOKE FAILURE: clean output "
                      f"{body.get('output')!r}")
                return 1
            print(f"  status mapping ok ({len(drills)} families)")

            # 2. Responses bit-identical to one-shot CLI runs, for
            # every registered policy.
            profiles = [entry["name"] for entry in json.loads(
                subprocess.run(
                    [sys.executable, "-m", "repro", "profiles", "--json"],
                    capture_output=True, text=True, env=env,
                    cwd=REPO_ROOT).stdout)]
            source_path = os.path.join(scratch, "parity.c")
            with open(source_path, "w") as handle:
                handle.write(SERVE_SMOKE_CLEAN)
            for profile in profiles:
                status, served, _ = _serve_post(
                    base, "/run", {"source": SERVE_SMOKE_CLEAN,
                                   "profile": profile,
                                   "name": source_path})
                cli = subprocess.run(
                    [sys.executable, "-m", "repro", "run", source_path,
                     "--profile", profile, "--json"],
                    capture_output=True, text=True, env=env, cwd=REPO_ROOT)
                if cli.returncode != 0 or status != 200:
                    print(f"SERVE SMOKE FAILURE: profile {profile} "
                          f"(http {status}, cli exit {cli.returncode})")
                    return 1
                one_shot = json.loads(cli.stdout)
                for row in (served, one_shot):
                    for key in SERVE_ROW_NOISE:
                        row.pop(key, None)
                if served != one_shot:
                    diff = {key for key in set(served) | set(one_shot)
                            if served.get(key) != one_shot.get(key)}
                    print(f"SERVE SMOKE FAILURE: profile {profile} "
                          f"diverged from the CLI on {sorted(diff)}")
                    return 1
            print(f"  CLI parity ok: bit-identical reports across all "
                  f"{len(profiles)} registered profiles")

            # 3. QoS degradation: two hung requests pin both workers
            # (each must resolve 504 via deadline kill + respawn); a
            # third queues; with the queue bound at 1 a fourth must be
            # shed 503; and a clean request after the storm is 200.
            results = {}

            def fire(tag, doc):
                results[tag] = _serve_post(base, "/run", doc)

            hangs = [threading.Thread(
                target=fire, args=(f"hang{n}", {
                    "source": SERVE_SMOKE_CLEAN, "profile": "none",
                    "test_fault": "hang"})) for n in range(2)]
            for thread in hangs:
                thread.start()
            time.sleep(1.0)  # both workers now wedged
            queued = threading.Thread(target=fire, args=("queued", {
                "source": SERVE_SMOKE_CLEAN, "profile": "spatial"}))
            queued.start()
            time.sleep(0.3)  # it is sitting in the admission queue
            status, body, _ = _serve_post(
                base, "/run",
                {"source": SERVE_SMOKE_CLEAN, "profile": "spatial"})
            if status != 503:
                print(f"SERVE SMOKE FAILURE: burst past the queue bound "
                      f"-> {status}, expected 503 shed")
                return 1
            for thread in hangs:
                thread.join(timeout=60)
            queued.join(timeout=60)
            for tag in ("hang0", "hang1"):
                if results[tag][0] != 504:
                    print(f"SERVE SMOKE FAILURE: {tag} -> "
                          f"{results[tag][0]}, expected 504 deadline kill")
                    return 1
            if results["queued"][0] != 200:
                print(f"SERVE SMOKE FAILURE: queued request behind the "
                      f"hang storm -> {results['queued'][0]}, expected "
                      f"200 after worker respawn")
                return 1
            print("  QoS degradation ok: 2x504 deadline kills, 503 "
                  "shed at the bound, queued request answered after "
                  "respawn")

            # 4. Worker SIGKILL mid-run: fire a request, kill every
            # live worker while it is in flight; respawn + one retry
            # must still answer it 200.
            health = _serve_get(base, "/healthz")
            if len(health["worker_pids"]) != 2:
                print(f"SERVE SMOKE FAILURE: healthz reports "
                      f"{health['worker_pids']} after respawns")
                return 1
            victim = threading.Thread(target=fire, args=("victim", {
                "source": SERVE_SMOKE_CLEAN, "profile": "full"}))
            victim.start()
            time.sleep(0.05)
            for pid in health["worker_pids"]:
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass
            victim.join(timeout=60)
            if results["victim"][0] != 200:
                print(f"SERVE SMOKE FAILURE: request in flight during "
                      f"worker SIGKILL -> {results['victim'][0]}, "
                      f"expected 200 via respawn+retry")
                return 1
            status, _, _ = _serve_post(
                base, "/run",
                {"source": SERVE_SMOKE_CLEAN, "profile": "spatial"})
            if status != 200:
                print(f"SERVE SMOKE FAILURE: first request after the "
                      f"massacre -> {status}")
                return 1
            print("  worker SIGKILL drill ok: in-flight request "
                  "answered via respawn+retry")

            # 5. /metrics tells the same story.
            series = _serve_get(base, "/metrics")["series"]
            checks = (
                ("repro_serve_requests_total{outcome=ok}", 17),
                ("repro_serve_requests_total{outcome=spatial}", 2),
                ("repro_serve_requests_total{outcome=compile_error}", 1),
                ("repro_serve_requests_total{outcome=deadline}", 2),
                ("repro_serve_worker_respawns_total", 2),
                ("repro_serve_request_seconds_count", 10),
            )
            for name, floor in checks:
                if series.get(name, 0) < floor:
                    print(f"SERVE SMOKE FAILURE: metric {name} = "
                          f"{series.get(name)} < {floor}")
                    return 1
            print(f"  metrics ok ({len(series)} series; "
                  f"{series['repro_serve_requests_total{outcome=ok}']} ok "
                  f"requests, "
                  f"{series['repro_serve_worker_respawns_total']} "
                  f"respawns)")

            # 6. Graceful drain: SIGINT → exit 130.
            daemon.send_signal(signal.SIGINT)
            code = daemon.wait(timeout=30)
            if code != 130:
                print(f"SERVE SMOKE FAILURE: SIGINT drain exited {code}, "
                      f"expected 130")
                return 1
            print("  SIGINT drain ok (exit 130)")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=10)
    print("serve-smoke ok")
    return 0


def main(argv):
    if "--serve-smoke" in argv:
        return run_serve_smoke()
    if "--prove-smoke" in argv:
        return run_prove_smoke()
    if "--obs-smoke" in argv:
        return run_obs_smoke()
    if "--store-smoke" in argv:
        return run_store_smoke()
    if "--fuzz-smoke" in argv:
        return run_fuzz_smoke()
    if "--policy-smoke" in argv:
        return run_policy_smoke()
    if "--api-smoke" in argv:
        return run_api_smoke()
    if "--skip-tests" not in argv:
        code = run_tier1()
        if code != 0:
            return code
    code = run_perf_gate()
    if code != 0:
        return code
    code = run_opt_matrix_gate()
    if code != 0:
        return code
    code = run_temporal_gate()
    if code != 0:
        return code
    code = run_prove_smoke()
    if code != 0:
        return code
    code = run_api_smoke()
    if code != 0:
        return code
    code = run_policy_smoke()
    if code != 0:
        return code
    code = run_fuzz_smoke()
    if code != 0:
        return code
    code = run_store_smoke()
    if code != 0:
        return code
    code = run_obs_smoke()
    if code != 0:
        return code
    return run_serve_smoke()


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
