#!/usr/bin/env python3
"""Diff any BENCH_*.json reports through the shared bench-v2 schema.

Every recorded benchmark report carries the same top-level keys —
``benchmark``, ``metric``, ``config``, ``geomean`` and a ``workloads``
map whose rows carry a normalized ``value`` — so one script can compare
any of them: two revisions of the same benchmark, or several
benchmarks side by side over the common workload set.

Usage:
    python scripts/bench_diff.py BENCH_a.json [BENCH_b.json ...]

With one report: print its normalized view.  With several: one row per
workload, one column per report, plus the geomean line; when exactly
two reports share a metric, a delta column is added.
"""

import json
import pathlib
import sys


def load(path):
    with open(path) as handle:
        report = json.load(handle)
    if "workloads" not in report:
        raise SystemExit(f"{path}: not a benchmark report (no workloads)")
    return report


def normalized_values(report):
    """{workload: value} through the bench-v2 ``value`` key, with a
    best-effort fallback for pre-v2 reports."""
    out = {}
    for name, row in report["workloads"].items():
        if isinstance(row, dict):
            value = row.get("value")
            if value is None:  # pre-v2 fallbacks
                value = row.get("speedup", row.get("overhead_on_pct"))
        else:
            value = row
        if value is not None:
            out[name] = float(value)
    return out


def main(argv):
    if not argv:
        print(__doc__.strip())
        return 64
    reports = []
    for arg in argv:
        path = pathlib.Path(arg)
        report = load(path)
        reports.append((path.name, report, normalized_values(report)))

    headers = [f"{name} [{report.get('metric', '?')}]"
               for name, report, _ in reports]
    for name, report, _ in reports:
        print(f"{name}: benchmark={report.get('benchmark', '?')} "
              f"metric={report.get('metric', '?')} "
              f"config={report.get('config', '?')} "
              f"geomean={report.get('geomean', report.get('geomean_speedup', '?'))}")
    print()

    names = []
    for _, _, values in reports:
        for workload in values:
            if workload not in names:
                names.append(workload)
    metrics = {report.get("metric") for _, report, _ in reports}
    show_delta = len(reports) == 2 and len(metrics) == 1

    width = max([len(n) for n in names] + [8])
    cols = [max(len(h), 10) for h in headers]
    line = f"{'workload':<{width}}  " + "  ".join(
        f"{h:>{c}}" for h, c in zip(headers, cols))
    if show_delta:
        line += f"  {'delta':>9}"
    print(line)
    print("-" * len(line))
    for workload in names:
        cells = []
        row_vals = []
        for _, _, values in reports:
            value = values.get(workload)
            row_vals.append(value)
            cells.append("-" if value is None else f"{value:.3f}")
        out = f"{workload:<{width}}  " + "  ".join(
            f"{cell:>{c}}" for cell, c in zip(cells, cols))
        if show_delta and None not in row_vals:
            out += f"  {row_vals[1] - row_vals[0]:>+9.3f}"
        print(out)

    geo_cells = []
    for _, report, _ in reports:
        geomean = report.get("geomean", report.get("geomean_speedup"))
        geo_cells.append("-" if geomean is None else f"{float(geomean):.3f}")
    out = f"{'geomean':<{width}}  " + "  ".join(
        f"{cell:>{c}}" for cell, c in zip(geo_cells, cols))
    print(out)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
