#!/usr/bin/env python3
"""Diff benchmark reports (bench-v2) or check-site profiles
(obs-profile-v1).

Every recorded ``BENCH_*.json`` carries the same top-level keys —
``benchmark``, ``metric``, ``config``, ``geomean`` and a ``workloads``
map whose rows carry a normalized ``value`` — so one script can compare
any of them: two revisions of the same benchmark, or several
benchmarks side by side over the common workload set.

``python -m repro profile --json`` reports (schema ``obs-profile-v1``)
are diffed *per site*, not per aggregate: one row per ``(function,
line, seq)`` check site, one column per report with that site's
executed-check total, plus a delta column for pairs.  A site that
stopped executing because the ``-O2`` prove pass deleted it shows its
``proved`` annotation instead of silently vanishing into a geomean.

Usage:
    python scripts/bench_diff.py BENCH_a.json [BENCH_b.json ...]
    python scripts/bench_diff.py profile_O1.json profile_O2.json
"""

import json
import pathlib
import sys


def load(path):
    with open(path) as handle:
        report = json.load(handle)
    if report.get("schema") == "obs-profile-v1":
        return report
    if "workloads" not in report:
        raise SystemExit(f"{path}: neither a bench-v2 report (no "
                         f"workloads) nor an obs-profile-v1 profile")
    return report


def normalized_values(report):
    """{workload: value} through the bench-v2 ``value`` key, with a
    best-effort fallback for pre-v2 reports."""
    out = {}
    for name, row in report["workloads"].items():
        if isinstance(row, dict):
            value = row.get("value")
            if value is None:  # pre-v2 fallbacks
                value = row.get("speedup", row.get("overhead_on_pct"))
        else:
            value = row
        if value is not None:
            out[name] = float(value)
    return out


# -- per-site profile diffing ------------------------------------------------


def site_rows(report):
    """{(function, line, seq): site row} for an obs-profile-v1 report."""
    out = {}
    for row in report.get("sites", ()):
        out[(row["function"], row["line"], row["seq"])] = row
    return out


def _site_label(key):
    function, line, seq = key
    return f"{function}#{seq}@{line if line is not None else '?'}"


def diff_profiles(reports):
    """Per-site table across obs-profile-v1 reports (the profiler's
    ``total`` per site), with a delta column for pairs and the
    static/dynamic elimination summaries underneath."""
    for name, report, _ in reports:
        static = report.get("eliminated_static", {})
        proof = static.get("by_proof", {})
        print(f"{name}: program={report.get('program', '?')} "
              f"profile={report.get('profile', '?')} "
              f"engine={report.get('engine', '?')} "
              f"static={static.get('sb_check', 0)}+"
              f"{static.get('sb_temporal_check', 0)} "
              f"(proved {proof.get('sb_check', 0)}+"
              f"{proof.get('sb_temporal_check', 0)}, "
              f"{report.get('certificates', 0)} certificates)")
    print()

    tables = [site_rows(report) for _, report, _ in reports]
    keys = []
    for table in tables:
        for key in table:
            if key not in keys:
                keys.append(key)
    # Hottest first, by the maximum total any report attributes.
    keys.sort(key=lambda key: -max(
        table.get(key, {}).get("total", 0) for table in tables))

    headers = [name for name, _, _ in reports]
    show_delta = len(reports) == 2
    width = max([len(_site_label(key)) for key in keys] + [8])
    cols = [max(len(h), 10) for h in headers]
    line = f"{'site':<{width}}  " + "  ".join(
        f"{h:>{c}}" for h, c in zip(headers, cols))
    if show_delta:
        line += f"  {'delta':>9}  note"
    print(line)
    print("-" * max(len(line), 40))
    for key in keys:
        cells = []
        row_vals = []
        proved = 0
        for table in tables:
            row = table.get(key)
            value = row.get("total") if row is not None else None
            proved = max(proved, (row or {}).get("proved", 0) or 0)
            row_vals.append(value)
            cells.append("-" if value is None else str(value))
        out = f"{_site_label(key):<{width}}  " + "  ".join(
            f"{cell:>{c}}" for cell, c in zip(cells, cols))
        if show_delta:
            left, right = row_vals
            delta = ((right or 0) - (left or 0))
            out += f"  {delta:>+9d}"
            if proved:
                out += f"  proved({proved})"
            elif left is None:
                out += "  new"
            elif right is None:
                out += "  gone"
        print(out)

    totals = []
    for table in tables:
        totals.append(sum(row.get("total", 0) for row in table.values()))
    out = f"{'TOTAL':<{width}}  " + "  ".join(
        f"{total:>{c}}" for total, c in zip(totals, cols))
    if show_delta:
        out += f"  {totals[1] - totals[0]:>+9d}"
        if totals[0]:
            pct = 100.0 * (totals[1] - totals[0]) / totals[0]
            out += f"  ({pct:+.1f}%)"
    print(out)
    return 0


def diff_benches(reports):
    headers = [f"{name} [{report.get('metric', '?')}]"
               for name, report, _ in reports]
    for name, report, _ in reports:
        print(f"{name}: benchmark={report.get('benchmark', '?')} "
              f"metric={report.get('metric', '?')} "
              f"config={report.get('config', '?')} "
              f"geomean={report.get('geomean', report.get('geomean_speedup', '?'))}")
    print()

    names = []
    for _, _, values in reports:
        for workload in values:
            if workload not in names:
                names.append(workload)
    metrics = {report.get("metric") for _, report, _ in reports}
    show_delta = len(reports) == 2 and len(metrics) == 1

    width = max([len(n) for n in names] + [8])
    cols = [max(len(h), 10) for h in headers]
    line = f"{'workload':<{width}}  " + "  ".join(
        f"{h:>{c}}" for h, c in zip(headers, cols))
    if show_delta:
        line += f"  {'delta':>9}"
    print(line)
    print("-" * len(line))
    for workload in names:
        cells = []
        row_vals = []
        for _, _, values in reports:
            value = values.get(workload)
            row_vals.append(value)
            cells.append("-" if value is None else f"{value:.3f}")
        out = f"{workload:<{width}}  " + "  ".join(
            f"{cell:>{c}}" for cell, c in zip(cells, cols))
        if show_delta and None not in row_vals:
            out += f"  {row_vals[1] - row_vals[0]:>+9.3f}"
        print(out)

    geo_cells = []
    for _, report, _ in reports:
        geomean = report.get("geomean", report.get("geomean_speedup"))
        geo_cells.append("-" if geomean is None else f"{float(geomean):.3f}")
    out = f"{'geomean':<{width}}  " + "  ".join(
        f"{cell:>{c}}" for cell, c in zip(geo_cells, cols))
    print(out)
    return 0


def main(argv):
    if not argv:
        print(__doc__.strip())
        return 64
    reports = []
    for arg in argv:
        path = pathlib.Path(arg)
        report = load(path)
        values = (None if report.get("schema") == "obs-profile-v1"
                  else normalized_values(report))
        reports.append((path.name, report, values))

    profile_like = [r for r in reports
                    if r[1].get("schema") == "obs-profile-v1"]
    if profile_like and len(profile_like) != len(reports):
        raise SystemExit("cannot mix bench-v2 and obs-profile-v1 "
                         "reports in one diff")
    if profile_like:
        return diff_profiles(reports)
    return diff_benches(reports)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
