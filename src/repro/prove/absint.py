"""Intra-procedural value-range analysis over the instrumented IR.

The abstract domain is *region-relative intervals*: an abstract value
``AbsVal(region, iv)`` denotes ``addr(region) + o`` for some offset
``o ∈ iv``, where a *region* is an allocation site the analysis can
name statically — an ``alloca`` instruction (frame slots have a fixed
layout per activation, :mod:`repro.vm.machine`) or a global symbol.
``region=None`` means a plain integer whose value itself lies in the
interval.  The representation is what makes a pointer comparable to its
``(base, bound)`` companions: when all three share a region, the region
cancels and the in-bounds obligation becomes a linear *difference*
constraint over the offset intervals (:mod:`repro.prove.solver`).

Loops are handled two ways:

* plain widening at loop headers (after ``ProveConfig.widen_delay``
  visits), with a short narrowing phase and per-edge branch refinement
  to recover bounds the widening threw away;
* a *counted-loop recurrence*: when a loop's header test bounds its
  induction variable's trip count ``T`` (≤ ``case_split_limit``), every
  register with a single in-loop ``r += c`` update gets the exact span
  ``entry ⊕ [0, c·T]`` at the header instead of a widened join — the
  latch contribution is ignored, justified by the induction
  ``r_k = r_0 + k·c, k ≤ T``.  On the loop-entry edge the span tightens
  to ``k ≤ T-1`` (the body only runs when the test passed, and every
  candidate updates at most once per iteration, so its update count
  never exceeds the IV's).

Soundness against machine arithmetic: results of pure-integer binops
are clamped to the destination type's value range (a possible wrap goes
to TOP); region-carrying arithmetic is tracked as exact offsets, which
compose as residues mod 2^64 — the solver's proof obligations pin the
final checked value inside a genuine ``[base, bound)`` window, which
rules the wrap out (the full argument is in ``docs/PROVE.md``).
"""

from dataclasses import dataclass, field

from ..ir.cfg import CFG
from ..ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    CBr,
    Cmp,
    Gep,
    Load,
    Mov,
    SbCheck,
    SbMetaLoad,
    SbTemporalCheck,
)
from ..ir.loops import find_loops
from ..ir.values import Const, Register, SymbolRef
from .intervals import NEG_INF, POS_INF, TOP, Interval


@dataclass(frozen=True)
class AbsVal:
    """``addr(region) + o, o ∈ iv`` (or the plain integer ``o`` when
    ``region`` is None).  ``recur`` marks values whose interval rests on
    a counted-loop recurrence bound — it rides through arithmetic so
    certificates can name their proof method."""

    region: object
    iv: Interval
    recur: bool = False


TOP_AV = AbsVal(None, TOP)

#: Offset-magnitude gate for same-region comparison refinement: beyond
#: this the "no wrap between the compared values" axiom is not obviously
#: justified, so the refinement abstains (see docs/PROVE.md).
_REFINE_CAP = 1 << 40

_NEGATE = {"eq": "ne", "ne": "eq", "slt": "sge", "sle": "sgt",
           "sgt": "sle", "sge": "slt", "ult": "uge", "ule": "ugt",
           "ugt": "ule", "uge": "ult"}
_SWAP = {"eq": "eq", "ne": "ne", "slt": "sgt", "sle": "sge",
         "sgt": "slt", "sge": "sle", "ult": "ugt", "ule": "uge",
         "ugt": "ult", "uge": "ule"}


def _type_range(irtype):
    bits = irtype.size * 8
    if irtype.kind == "ptr":
        return Interval(0, (1 << bits) - 1)
    return Interval(-(1 << (bits - 1)), (1 << (bits - 1)) - 1)


def _clamp(av, irtype):
    """Pure-integer results must fit the destination type or the wrap
    makes the abstract value a lie; region offsets are exempt (residue
    composition, module docstring)."""
    if av.region is not None:
        return av
    if av.iv.issubset(_type_range(irtype)):
        return av
    return TOP_AV


def _join_av(a, b):
    if a.region != b.region:
        return TOP_AV
    return AbsVal(a.region, a.iv.join(b.iv), a.recur or b.recur)


def _meet_av(a, b):
    """Meet, or None for a contradiction (infeasible path)."""
    if a.region != b.region:
        # Incomparable claims; keep the first (sound: both over-approx).
        return a
    met = a.iv.meet(b.iv)
    if met is None:
        return None
    return AbsVal(a.region, met, a.recur or b.recur)


def _join_states(states):
    """Pointwise join; a register missing from any input is TOP and
    drops out.  ``states`` must be non-empty."""
    first, rest = states[0], states[1:]
    if not rest:
        return dict(first)
    out = {}
    for uid, av in first.items():
        for state in rest:
            other = state.get(uid)
            if other is None:
                av = None
                break
            av = _join_av(av, other)
            if av.region is None and av.iv.is_top:
                av = None
                break
        if av is not None:
            out[uid] = av
    return out


@dataclass
class CheckEnv:
    """One check instruction plus the abstract values of its operands at
    that program point — what the VC generator consumes."""

    instr: object
    block: str
    function: str
    operands: dict = field(default_factory=dict)


@dataclass
class _LoopInfo:
    loop: object
    #: uid -> constant step of the single in-loop ``r += c`` update.
    updates: dict = field(default_factory=dict)
    #: (iv_uid, continue_pred, limit, body_label) for a header test
    #: ``iv <pred> limit`` whose pass-direction stays in the loop.
    header_test: object = None


def _const_int(value):
    if isinstance(value, Const) and isinstance(value.value, int):
        return value.value
    return None


class Analyzer:
    """Run the fixpoint over one function and record check environments.

    ``analyzer.converged`` is False when the round budget ran out — the
    caller must then prove nothing (environments may be unsound
    mid-flight)."""

    def __init__(self, func, config):
        self.func = func
        self.config = config
        self.cfg = CFG(func)
        self.loops = find_loops(self.cfg)
        self.block_cmps = {b.label: self._collect_cmps(b)
                           for b in func.blocks}
        self.header_info = self._collect_loop_info()
        #: (header_label, succ_label) -> {uid: AbsVal} recurrence
        #: tightenings for the loop-entry edge (k ≤ T-1).
        self._loop_edge_refine = {}
        self.in_states = {}
        self.visits = {}
        self.converged = False
        self.check_envs = []

    # -- syntactic precomputation --------------------------------------

    def _collect_cmps(self, block):
        """uid -> Cmp whose result is still that Cmp's at block end
        (operands and destination not redefined afterwards)."""
        live = {}
        for instr in block.instructions:
            dst = getattr(instr, "dst", None)
            if isinstance(dst, Register):
                for uid, cmp_instr in list(live.items()):
                    used = [cmp_instr.a, cmp_instr.b]
                    if any(isinstance(v, Register) and v.uid == dst.uid
                           for v in used):
                        del live[uid]
                live.pop(dst.uid, None)
                if isinstance(instr, Cmp):
                    live[dst.uid] = instr
        return live

    def _collect_loop_info(self):
        infos = {}
        for loop in self.loops:
            if loop.header in infos:
                # Two loops sharing a header: abstain from recurrences.
                infos[loop.header] = _LoopInfo(loop)
                continue
            infos[loop.header] = self._loop_info(loop)
        return infos

    def _loop_info(self, loop):
        info = _LoopInfo(loop)
        child_blocks = set()
        for child in loop.children:
            child_blocks |= child.blocks
        defs_in_loop = {}
        def_sites = {}
        all_defs = {}
        for block in self.func.blocks:
            for index, instr in enumerate(block.instructions):
                for dst in self._dsts(instr):
                    all_defs.setdefault(dst.uid, []).append(
                        (block, index, instr))
                    if block.label in loop.blocks:
                        defs_in_loop[dst.uid] = \
                            defs_in_loop.get(dst.uid, 0) + 1
                        def_sites[dst.uid] = (block, index, instr)
        for uid, count in defs_in_loop.items():
            if count != 1:
                continue
            block, index, instr = def_sites[uid]
            if block.label in child_blocks:
                continue
            step = self._update_step(instr, uid, block, index, all_defs,
                                     loop)
            if step is not None:
                info.updates[uid] = step
        info.header_test = self._header_test(loop, info)
        return info

    @staticmethod
    def _dsts(instr):
        out = []
        dst = getattr(instr, "dst", None)
        if isinstance(dst, Register):
            out.append(dst)
        if isinstance(instr, SbMetaLoad):
            for reg in (instr.dst_base, instr.dst_bound, instr.dst_key,
                        instr.dst_lock):
                if isinstance(reg, Register):
                    out.append(reg)
        return out

    def _update_step(self, instr, uid, block, index, all_defs, loop):
        """The constant step when ``instr`` is ``r += c`` for r=uid
        (directly, or through a one-hop copy of a single-def temp)."""
        step = self._addsub_step(instr, uid)
        if step is not None:
            return step
        if isinstance(instr, Mov) and isinstance(instr.src, Register):
            temp_defs = all_defs.get(instr.src.uid, [])
            if len(temp_defs) == 1:
                def_block, def_index, def_instr = temp_defs[0]
                if def_block is block and def_index < index:
                    return self._addsub_step(def_instr, uid)
        return None

    @staticmethod
    def _addsub_step(instr, uid):
        if isinstance(instr, Gep):
            if isinstance(instr.base, Register) and instr.base.uid == uid:
                return _const_int(instr.offset)
            return None
        if not isinstance(instr, BinOp) or instr.op not in ("add", "sub"):
            return None
        a, b = instr.a, instr.b
        if isinstance(a, Register) and a.uid == uid:
            c = _const_int(b)
            if c is not None:
                return c if instr.op == "add" else -c
        if instr.op == "add" and isinstance(b, Register) and b.uid == uid:
            return _const_int(a)
        return None

    def _header_test(self, loop, info):
        header = self.func.block_map[loop.header]
        term = header.terminator
        if not isinstance(term, CBr) or not isinstance(term.cond, Register):
            return None
        cmp_instr = self._resolve_cmp(header.label, term.cond.uid)
        if cmp_instr is None:
            return None
        cmp_instr, polarity = cmp_instr
        in_true = term.true_label in loop.blocks
        in_false = term.false_label in loop.blocks
        if in_true == in_false:
            return None
        body = term.true_label if in_true else term.false_label
        pred = cmp_instr.pred
        if pred not in _NEGATE:
            return None
        # Continue condition: the branch direction that stays in-loop.
        if in_true != polarity:
            pred = _NEGATE[pred]
        a, b = cmp_instr.a, cmp_instr.b
        limit = _const_int(b)
        if limit is not None and isinstance(a, Register) \
                and a.uid in info.updates:
            return (a.uid, pred, limit, body)
        limit = _const_int(a)
        if limit is not None and isinstance(b, Register) \
                and b.uid in info.updates:
            return (b.uid, _SWAP[pred], limit, body)
        return None

    def _resolve_cmp(self, label, uid, depth=0):
        """The Cmp governing register ``uid`` at the end of ``label``,
        with one level of ``ne(x, 0)`` / ``eq(x, 0)`` unwrapping.
        Returns ``(cmp, polarity)`` — polarity False means the governing
        truth value is the cmp's negation."""
        cmp_instr = self.block_cmps.get(label, {}).get(uid)
        if cmp_instr is None:
            return None
        if depth < 1 and isinstance(cmp_instr.a, Register) \
                and _const_int(cmp_instr.b) == 0 \
                and cmp_instr.pred in ("ne", "eq"):
            inner = self._resolve_cmp(label, cmp_instr.a.uid, depth + 1)
            if inner is not None:
                inner_cmp, inner_pol = inner
                return (inner_cmp,
                        inner_pol if cmp_instr.pred == "ne"
                        else not inner_pol)
        return (cmp_instr, True)

    # -- evaluation ----------------------------------------------------

    def _eval(self, state, value):
        if isinstance(value, Const):
            if isinstance(value.value, int) and not value.type.is_float:
                return AbsVal(None, Interval.const(value.value))
            return TOP_AV
        if isinstance(value, SymbolRef):
            return AbsVal(("sym", value.name), Interval.const(value.addend))
        if isinstance(value, Register):
            return state.get(value.uid, TOP_AV)
        return TOP_AV

    def _transfer(self, state, instr):
        """Apply one instruction to ``state`` in place."""
        if isinstance(instr, Alloca):
            state[instr.dst.uid] = AbsVal(("alloca", instr.dst.uid),
                                          Interval.const(0))
            return
        if isinstance(instr, Mov):
            self._set(state, instr.dst, self._eval(state, instr.src))
            return
        if isinstance(instr, Gep):
            base = self._eval(state, instr.base)
            offset = self._eval(state, instr.offset)
            if offset.region is None:
                self._set(state, instr.dst,
                          AbsVal(base.region, base.iv.add(offset.iv),
                                 base.recur or offset.recur))
            else:
                self._set(state, instr.dst, TOP_AV)
            return
        if isinstance(instr, BinOp):
            self._set(state, instr.dst, self._binop(state, instr))
            return
        if isinstance(instr, Cmp):
            self._set(state, instr.dst, AbsVal(None, Interval(0, 1)))
            return
        if isinstance(instr, Cast):
            self._set(state, instr.dst, self._cast(state, instr))
            return
        if isinstance(instr, SbMetaLoad):
            for reg in (instr.dst_base, instr.dst_bound, instr.dst_key,
                        instr.dst_lock):
                if isinstance(reg, Register):
                    state.pop(reg.uid, None)
            return
        if isinstance(instr, (SbCheck, SbTemporalCheck)):
            return  # no register effects
        dst = getattr(instr, "dst", None)
        if isinstance(dst, Register):
            # Load, Call, anything not modelled: unknown result.
            state.pop(dst.uid, None)

    @staticmethod
    def _set(state, dst, av):
        if av.region is None and av.iv.is_top:
            state.pop(dst.uid, None)
        else:
            state[dst.uid] = av

    def _binop(self, state, instr):
        a = self._eval(state, instr.a)
        b = self._eval(state, instr.b)
        op = instr.op
        dst_type = instr.dst.type
        recur = a.recur or b.recur
        if op == "add":
            if a.region is not None and b.region is not None:
                return TOP_AV
            region = a.region or b.region
            return _clamp(AbsVal(region, a.iv.add(b.iv), recur), dst_type)
        if op == "sub":
            if b.region is None:
                return _clamp(AbsVal(a.region, a.iv.sub(b.iv), recur),
                              dst_type)
            if a.region is not None and a.region == b.region:
                # Same-region difference: the regions cancel exactly.
                return _clamp(AbsVal(None, a.iv.sub(b.iv), recur), dst_type)
            return TOP_AV
        if a.region is not None or b.region is not None:
            return TOP_AV
        if op == "mul":
            return _clamp(AbsVal(None, a.iv.mul(b.iv), recur), dst_type)
        if op == "and":
            mask = _const_int(instr.b)
            if mask is None:
                mask = _const_int(instr.a)
            if mask is not None and mask >= 0:
                # x & m with m >= 0 lands in [0, m] on two's complement.
                return _clamp(AbsVal(None, Interval(0, mask), recur),
                              dst_type)
            return TOP_AV
        if op == "urem":
            divisor = _const_int(instr.b)
            if divisor is not None and divisor > 0:
                return _clamp(AbsVal(None, Interval(0, divisor - 1), recur),
                              dst_type)
            return TOP_AV
        if op == "shl":
            shift = _const_int(instr.b)
            if shift is not None and 0 <= shift <= 63:
                scaled = a.iv.mul(Interval.const(1 << shift))
                return _clamp(AbsVal(None, scaled, recur), dst_type)
            return TOP_AV
        if op in ("lshr", "ashr"):
            shift = _const_int(instr.b)
            if shift is not None and 0 <= shift <= 63 \
                    and a.iv.issubset(Interval(0, POS_INF)):
                lo = a.iv.lo >> shift
                hi = a.iv.hi if a.iv.hi == POS_INF else a.iv.hi >> shift
                return _clamp(AbsVal(None, Interval(lo, hi), recur),
                              dst_type)
            return TOP_AV
        return TOP_AV

    def _cast(self, state, instr):
        src = self._eval(state, instr.src)
        kind = instr.kind
        dst_type = instr.dst.type
        src_type = instr.src.type if isinstance(instr.src,
                                                (Register, Const)) else None
        if kind in ("bitcast", "ptrtoint", "inttoptr"):
            if src.region is not None:
                return src  # residues; address-space axiom
            if src.iv.issubset(Interval(0, (1 << 63) - 1)):
                return src  # signed and unsigned representations agree
            if src.iv.issubset(_type_range(dst_type)) \
                    and src_type is not None \
                    and src.iv.issubset(_type_range(src_type)) \
                    and src_type.kind != "ptr" and dst_type.kind != "ptr":
                return src
            return TOP_AV
        if kind == "sext":
            if src.region is None and src_type is not None \
                    and dst_type.size >= src_type.size:
                return src
            return TOP_AV
        if kind == "zext":
            if src.region is not None or src_type is None:
                return TOP_AV
            if src.iv.issubset(Interval(0, (1 << (src_type.size * 8 - 1))
                                        - 1)):
                return src
            if dst_type.size > src_type.size:
                return AbsVal(None,
                              Interval(0, (1 << (src_type.size * 8)) - 1),
                              src.recur)
            return TOP_AV
        if kind == "trunc":
            if src.region is None and src.iv.issubset(_type_range(dst_type)):
                return src
            return TOP_AV
        return TOP_AV

    # -- branch refinement ---------------------------------------------

    def _edge_state(self, pred_block, succ_label, out_state):
        """The out-state of ``pred_block`` restricted to the edge to
        ``succ_label`` (branch + loop-entry refinement).  None means the
        edge is infeasible."""
        state = out_state
        term = pred_block.terminator
        if isinstance(term, CBr) and isinstance(term.cond, Register) \
                and term.true_label != term.false_label:
            resolved = self._resolve_cmp(pred_block.label, term.cond.uid)
            if resolved is not None:
                cmp_instr, polarity = resolved
                taken_true = (succ_label == term.true_label)
                state = self._refine(dict(state), cmp_instr,
                                     taken_true == polarity)
                if state is None:
                    return None
        tighten = self._loop_edge_refine.get((pred_block.label, succ_label))
        if tighten:
            state = dict(state)
            for uid, av in tighten.items():
                current = state.get(uid, TOP_AV)
                met = _meet_av(current, av)
                if met is None:
                    return None
                state[uid] = met
        return state

    def _refine(self, state, cmp_instr, truth):
        pred = cmp_instr.pred if truth else _NEGATE.get(cmp_instr.pred)
        if pred is None:
            return state
        a_av = self._eval(state, cmp_instr.a)
        b_av = self._eval(state, cmp_instr.b)
        if a_av.region != b_av.region:
            return state
        if pred in ("ult", "ule", "ugt", "uge"):
            nonneg = Interval(0, POS_INF)
            if not (a_av.iv.issubset(nonneg) and b_av.iv.issubset(nonneg)):
                return state
            pred = {"ult": "slt", "ule": "sle",
                    "ugt": "sgt", "uge": "sge"}[pred]
        if a_av.region is not None:
            cap = Interval(-_REFINE_CAP, _REFINE_CAP)
            if not (a_av.iv.issubset(cap) and b_av.iv.issubset(cap)):
                return state
        if pred in ("sgt", "sge"):
            a_av, b_av = b_av, a_av
            swap = True
            pred = {"sgt": "slt", "sge": "sle"}[pred]
        else:
            swap = False
        if pred == "slt":
            new_a = a_av.iv.meet(Interval(NEG_INF, _dec(b_av.iv.hi)))
            new_b = b_av.iv.meet(Interval(_inc(a_av.iv.lo), POS_INF))
        elif pred == "sle":
            new_a = a_av.iv.meet(Interval(NEG_INF, b_av.iv.hi))
            new_b = b_av.iv.meet(Interval(a_av.iv.lo, POS_INF))
        elif pred == "eq":
            met = a_av.iv.meet(b_av.iv)
            new_a = new_b = met
        elif pred == "ne":
            new_a = _exclude(a_av.iv, b_av.iv)
            new_b = _exclude(b_av.iv, a_av.iv)
        else:
            return state
        if new_a is None or new_b is None:
            return None  # contradiction: edge infeasible
        if swap:
            a_av, b_av = b_av, a_av
            new_a, new_b = new_b, new_a
        for operand, iv, old in ((cmp_instr.a, new_a, a_av),
                                 (cmp_instr.b, new_b, b_av)):
            if isinstance(operand, Register):
                state[operand.uid] = AbsVal(old.region, iv, old.recur)
        return state

    # -- counted-loop trip bounds --------------------------------------

    def _trip_bound(self, entry_iv, step, pred, limit):
        """Max number of body executions, or None when unbounded /
        over the case-split ceiling."""
        if step == 0:
            return None
        if step > 0:
            start = entry_iv.lo
            if start == NEG_INF:
                return None
            if pred == "slt" or (pred == "ult" and start >= 0
                                 and limit >= 0):
                trips = max(0, -((start - limit) // step))
            elif pred == "sle" or (pred == "ule" and start >= 0
                                   and limit >= 0):
                trips = max(0, (limit - start) // step + 1)
            elif pred == "ne":
                if not entry_iv.is_const or start > limit \
                        or (limit - start) % step != 0:
                    return None
                trips = (limit - start) // step
            else:
                return None
        else:
            start = entry_iv.hi
            if start == POS_INF:
                return None
            if pred == "sgt" or (pred == "ugt" and limit >= 0
                                 and entry_iv.lo >= 0):
                trips = max(0, -((limit - start) // (-step)))
            elif pred == "sge" or (pred == "uge" and limit >= 0
                                   and entry_iv.lo >= 0):
                trips = max(0, (start - limit) // (-step) + 1)
            elif pred == "ne":
                if not entry_iv.is_const or start < limit \
                        or (start - limit) % (-step) != 0:
                    return None
                trips = (start - limit) // (-step)
            else:
                return None
        if trips > self.config.case_split_limit:
            return None
        return trips

    def _header_in(self, block, info, edge_states):
        """Header in-state: recurrence-certified registers come from the
        entry join ⊕ span; everything else joins every predecessor."""
        latches = set(info.loop.latches)
        entry_states = [state for label, state in edge_states
                        if label not in latches]
        all_states = [state for _, state in edge_states]
        joined = _join_states(all_states)
        if not entry_states or not info.updates:
            return joined
        entry = _join_states(entry_states)
        trips = None
        if info.header_test is not None:
            iv_uid, pred, limit, body = info.header_test
            iv_entry = entry.get(iv_uid, TOP_AV)
            if iv_entry.region is None:
                trips = self._trip_bound(iv_entry.iv,
                                         info.updates[iv_uid], pred, limit)
        if trips is None:
            return joined
        body_refine = {}
        for uid, step in info.updates.items():
            base = entry.get(uid, TOP_AV)
            if base.region is None and base.iv.is_top:
                joined.pop(uid, None)
                continue
            joined[uid] = AbsVal(base.region,
                                 base.iv.shift_span(step, trips), True)
            body_refine[uid] = AbsVal(
                base.region, base.iv.shift_span(step, max(trips - 1, 0)),
                True)
        self._loop_edge_refine[(block.label, body)] = body_refine
        return joined

    # -- the fixpoint --------------------------------------------------

    def run(self):
        func = self.func
        if len(func.blocks) > self.config.max_blocks:
            return self
        rpo = self.cfg.rpo
        out_states = {}
        self.in_states = {func.entry.label: {}}
        for round_index in range(self.config.max_rounds):
            changed = False
            for block in rpo:
                in_state = self._compute_in(block, out_states)
                if in_state is None:
                    continue
                info = self.header_info.get(block.label)
                if info is not None:
                    visits = self.visits.get(block.label, 0) + 1
                    self.visits[block.label] = visits
                    previous = self.in_states.get(block.label)
                    if previous is not None \
                            and visits > self.config.widen_delay:
                        in_state = self._widen(previous, in_state,
                                               info)
                if in_state != self.in_states.get(block.label):
                    self.in_states[block.label] = in_state
                    changed = True
                out = dict(in_state)
                for instr in block.instructions:
                    self._transfer(out, instr)
                if out != out_states.get(block.label):
                    out_states[block.label] = out
                    changed = True
            if not changed:
                self.converged = True
                break
        if not self.converged:
            return self
        # Narrowing: two decreasing sweeps recover post-loop precision
        # (meet with the old state keeps every step above the fixpoint).
        for _ in range(2):
            for block in rpo:
                fresh = self._compute_in(block, out_states)
                if fresh is None:
                    continue
                old = self.in_states.get(block.label)
                self.in_states[block.label] = \
                    fresh if old is None else self._narrow(old, fresh)
                out = dict(self.in_states[block.label])
                for instr in block.instructions:
                    self._transfer(out, instr)
                out_states[block.label] = out
        self._record_envs()
        return self

    def _compute_in(self, block, out_states):
        if block is self.func.entry:
            return dict(self.in_states.get(block.label, {}))
        edge_states = []
        for pred in self.cfg.preds.get(block.label, ()):
            out = out_states.get(pred.label)
            if out is None:
                continue
            state = self._edge_state(pred, block.label, out)
            if state is not None:
                edge_states.append((pred.label, state))
        if not edge_states:
            return None
        info = self.header_info.get(block.label)
        if info is not None:
            return self._header_in(block, info, edge_states)
        return _join_states([state for _, state in edge_states])

    def _widen(self, previous, newer, info):
        recur_uids = set(info.updates) if info is not None else set()
        out = {}
        for uid, new_av in newer.items():
            if uid in recur_uids and new_av.recur:
                out[uid] = new_av  # recurrence bound: no feedback loop
                continue
            old_av = previous.get(uid)
            if old_av is None:
                continue  # was TOP: stays TOP
            if old_av.region != new_av.region:
                continue
            widened = old_av.iv.widen(new_av.iv)
            if not (new_av.region is None and widened.is_top):
                out[uid] = AbsVal(new_av.region, widened,
                                  old_av.recur or new_av.recur)
        return out

    @staticmethod
    def _narrow(old, fresh):
        out = {}
        for uid, old_av in old.items():
            fresh_av = fresh.get(uid)
            if fresh_av is None:
                out[uid] = old_av
                continue
            met = _meet_av(old_av, fresh_av)
            out[uid] = old_av if met is None else met
        for uid, fresh_av in fresh.items():
            out.setdefault(uid, fresh_av)
        return out

    def _record_envs(self):
        for block in self.func.blocks:
            in_state = self.in_states.get(block.label)
            if in_state is None:
                continue  # unreachable: its checks never execute
            state = dict(in_state)
            for instr in block.instructions:
                if isinstance(instr, SbCheck):
                    self.check_envs.append(CheckEnv(
                        instr, block.label, self.func.name, {
                            "ptr": self._eval(state, instr.ptr),
                            "base": self._eval(state, instr.base),
                            "bound": self._eval(state, instr.bound),
                            "size": self._eval(state, instr.size),
                        }))
                elif isinstance(instr, SbTemporalCheck):
                    self.check_envs.append(CheckEnv(
                        instr, block.label, self.func.name, {
                            "key": self._eval(state, instr.key),
                            "lock": self._eval(state, instr.lock),
                        }))
                self._transfer(state, instr)


def _dec(value):
    return value if value in (NEG_INF, POS_INF) else value - 1


def _inc(value):
    return value if value in (NEG_INF, POS_INF) else value + 1


def _exclude(iv, other):
    """Refine ``iv`` by ``!= other`` when other is a singleton touching
    an endpoint; None when the result is empty."""
    if not other.is_const:
        return iv
    point = other.lo
    if iv.is_const and iv.lo == point:
        return None
    if iv.lo == point:
        return Interval(point + 1, iv.hi)
    if iv.hi == point:
        return Interval(iv.lo, point - 1)
    return iv


def analyze(func, config):
    """Convenience wrapper: a finished :class:`Analyzer`."""
    return Analyzer(func, config).run()
