"""``repro.prove`` — solver-backed static check elimination.

The dynamic optimizer (:mod:`repro.opt`) dedupes, hoists and widens
checks; this subsystem goes one step further and *deletes* checks it can
prove will never trap, at the new optimization level ``-O2``:

1. :mod:`repro.prove.absint` — an intra-procedural value-range /
   abstract-interpretation engine over the IR.  Pointers are tracked as
   symbolic offsets from an allocation *region* (an ``alloca``
   instruction or a global symbol) so a pointer and its ``(base,
   bound)`` companions stay comparable; loop heads widen, counted loops
   get recurrence-bounded spans instead.
2. :mod:`repro.prove.vcgen` — turns every ``sb_check`` /
   ``sb_temporal_check`` reached by the analysis into a verification
   condition ("provably in-bounds" / "provably lock-live").
3. :mod:`repro.prove.solver` — a small built-in SMT-lite decision
   procedure over linear integer difference constraints, escalating to
   a bounded case-split (the counted-loop trip bound, capped by
   ``ProveConfig.case_split_limit``).  No external solver dependency.
4. :mod:`repro.prove.certificate` — every deletion records a
   :class:`~repro.prove.certificate.Certificate` that
   :func:`~repro.prove.certificate.replay_certificate` re-validates
   against the formal semantics (:mod:`repro.formal`): the certified
   worst-case accesses must evaluate to ``Outcome.OK`` in the model.

The pass itself lives in :mod:`repro.prove.passes` and is wired into
:func:`repro.opt.pipeline.optimize_after_instrumentation`; the
toolchain accepts ``optimize=2`` (or a :class:`ProveConfig`) and gates
the level on the policy's ``provable`` capability flag
(:mod:`repro.policy`).
"""

from dataclasses import dataclass

from ..api.profiles import UsageError


class ProveNotSupportedError(UsageError):
    """``-O2`` requested for a policy that does not declare the
    ``provable`` capability.  A typed usage error (CLI exit code 64):
    proving a check redundant requires the policy's metadata discipline
    to match the solver's model, and silently downgrading the level
    would misreport what ran."""


@dataclass(frozen=True)
class ProveConfig:
    """Tuning knobs for the ``-O2`` prove pass.

    Frozen so it can ride in store cache keys (its ``repr`` is part of
    the artifact identity) and in frozen run requests.
    """

    #: Counted-loop trip-count ceiling for the bounded case-split: a
    #: loop whose trip bound exceeds this keeps plain widening.
    case_split_limit: int = 4096
    #: Loop-header visits before widening kicks in (a little delay
    #: keeps small constant loops exact).
    widen_delay: int = 2
    #: Hard cap on fixpoint sweeps per function (a safety valve; the
    #: widened analysis converges long before this).
    max_rounds: int = 64
    #: Functions with more blocks than this are skipped (analysis cost
    #: is superlinear in pathological CFGs; skipping is always sound —
    #: the checks simply stay dynamic).
    max_blocks: int = 512


def opt_level(optimize):
    """Normalize every accepted ``optimize`` spelling to a level.

    ``False``/``None``/``0`` → 0, ``True``/``1`` → 1, ``2`` or a
    :class:`ProveConfig` → 2.  (``True == 1`` in Python, so the int
    spellings and the historical bools coincide.)
    """
    if isinstance(optimize, ProveConfig):
        return 2
    if optimize is None or optimize is False:
        return 0
    if optimize is True:
        return 1
    level = int(optimize)
    if level not in (0, 1, 2):
        raise UsageError(f"unknown optimization level {optimize!r}; "
                         f"expected 0, 1, 2 or a ProveConfig")
    return level


def prove_config_of(optimize):
    """The :class:`ProveConfig` for an ``optimize`` spelling — the
    instance itself, a default one for level 2, else ``None``."""
    if isinstance(optimize, ProveConfig):
        return optimize
    return ProveConfig() if opt_level(optimize) == 2 else None


from .certificate import Certificate, replay_certificate  # noqa: E402
from .passes import ProveResult, run  # noqa: E402

__all__ = [
    "Certificate",
    "ProveConfig",
    "ProveNotSupportedError",
    "ProveResult",
    "opt_level",
    "prove_config_of",
    "replay_certificate",
    "run",
]
