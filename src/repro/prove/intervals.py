"""The interval half of the abstract domain: integer ranges with
infinite endpoints.

Endpoints are Python ints or ``float("±inf")``; arithmetic is exact
(Python ints never overflow), so the only approximation the domain
itself introduces is at joins and widenings.  Machine-level wrap-around
is *not* modelled here — the transfer functions in
:mod:`repro.prove.absint` clamp results to the destination type's value
range (going to TOP when a wrap is possible), and pointer arithmetic is
tracked as exact offsets whose mod-2^64 composition the solver's
soundness argument discharges (see ``docs/PROVE.md``).
"""

from dataclasses import dataclass

NEG_INF = float("-inf")
POS_INF = float("inf")


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` (endpoints may be ±inf).

    Invariant: ``lo <= hi`` — empty intervals are represented as
    ``None`` at the call sites that can produce them (``meet``).
    """

    lo: object
    hi: object

    def __post_init__(self):
        assert self.lo <= self.hi, f"bad interval [{self.lo}, {self.hi}]"

    # -- constructors --------------------------------------------------

    @staticmethod
    def const(value):
        value = int(value)
        return Interval(value, value)

    @staticmethod
    def range(lo, hi):
        return Interval(lo, hi)

    # -- predicates ----------------------------------------------------

    @property
    def is_top(self):
        return self.lo == NEG_INF and self.hi == POS_INF

    @property
    def is_const(self):
        return self.lo == self.hi

    @property
    def is_finite(self):
        return self.lo != NEG_INF and self.hi != POS_INF

    def contains(self, value):
        return self.lo <= value <= self.hi

    def within(self, lo, hi):
        return self.lo >= lo and self.hi <= hi

    # -- lattice -------------------------------------------------------

    def join(self, other):
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other):
        """Intersection, or ``None`` when the intervals are disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def widen(self, newer):
        """Standard interval widening: an endpoint that moved outward
        jumps to infinity, so ascending chains stabilize."""
        lo = self.lo if newer.lo >= self.lo else NEG_INF
        hi = self.hi if newer.hi <= self.hi else POS_INF
        return Interval(lo, hi)

    def issubset(self, other):
        return self.lo >= other.lo and self.hi <= other.hi

    # -- arithmetic ----------------------------------------------------

    def add(self, other):
        return Interval(_add(self.lo, other.lo), _add(self.hi, other.hi))

    def sub(self, other):
        return Interval(_add(self.lo, -other.hi), _add(self.hi, -other.lo))

    def neg(self):
        return Interval(-self.hi, -self.lo)

    def mul(self, other):
        products = [_mul(a, b) for a in (self.lo, self.hi)
                    for b in (other.lo, other.hi)]
        return Interval(min(products), max(products))

    def shift_span(self, step, count):
        """The interval this one covers after up to ``count``
        applications of ``+= step`` (the counted-loop recurrence span):
        ``self ⊕ [min(0, step*count), max(0, step*count)]``."""
        total = step * count
        return Interval(_add(self.lo, min(0, total)),
                        _add(self.hi, max(0, total)))


TOP = Interval(NEG_INF, POS_INF)


def _add(a, b):
    # inf + finite and inf + same-sign inf are fine; the opposite-sign
    # case cannot arise (interval invariants keep lo <= hi and the
    # callers pair lows with lows / highs with highs).
    if a in (NEG_INF, POS_INF):
        return a
    if b in (NEG_INF, POS_INF):
        return b
    return a + b


def _mul(a, b):
    if a == 0 or b == 0:
        return 0
    if a in (NEG_INF, POS_INF) or b in (NEG_INF, POS_INF):
        return POS_INF if (a > 0) == (b > 0) else NEG_INF
    return a * b
