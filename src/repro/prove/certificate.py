"""Deletion certificates and their replay against the formal semantics.

Every check the prove pass deletes leaves a :class:`Certificate` on the
compiled program: a self-contained, picklable record of *why* the check
can never trap — the proof method, the interval endpoints the solver's
inequalities rested on, and the inequalities themselves.

:func:`replay_certificate` is the machine-checkable half.  It
re-validates a certificate in two independent layers:

1. **Arithmetic** — the difference constraints are re-evaluated from the
   recorded endpoints (a tampered or miscopied certificate fails here).
2. **Formal model** — the certified worst cases are executed under the
   instrumented semantics of :mod:`repro.formal`: allocate an object of
   the *minimum extent the certificate guarantees* (``bound.lo -
   base.hi``), then dereference at the extreme offsets the pointer
   interval admits (both ends of the access, both ends of the
   interval).  Every dereference must evaluate to ``Outcome.OK``; an
   ``ABORT`` is a counterexample — the deleted check could have fired.

Extent scaling: the formal memory is small, so extents beyond
``_MAX_REPLAY_EXTENT`` are replayed at a scaled extent that preserves
each sampled offset's distance to whichever boundary it is nearest —
the margins the proof is actually about.

Temporal certificates replay the *immortal lock* claim: the runtime
axiom is asserted directly against a fresh
:class:`~repro.temporal.locks.LockSpace` (the global slot survives a
release attempt), and the model side runs an allocate-dereference
sequence under the temporal semantics — plus a built-in negative
control (freeing must make the same dereference abort) so a vacuous
harness cannot pass.
"""

from dataclasses import dataclass

#: Extents above this replay at scaled geometry (the formal memory's
#: default capacity is 4096 words).
_MAX_REPLAY_EXTENT = 2048


@dataclass(frozen=True)
class Certificate:
    """One deleted check's non-trapping certificate (primitive fields
    only: certificates ride in pickled artifacts and JSON reports)."""

    kind: str            # "spatial" | "temporal"
    function: str
    block: str
    site: tuple          # (function, line, seq) obs_site triple
    access_kind: str
    method: str          # solver proof method
    region: str          # allocation-region label the offsets relate to
    facts: tuple         # the discharged inequalities, human-readable
    # Spatial endpoints (offsets relative to the region base):
    size: int = 0
    ptr_lo: int = 0
    ptr_hi: int = 0
    base_hi: int = 0
    bound_lo: int = 0
    # Temporal claim:
    key: int = 0
    lock: int = 0

    def to_json(self):
        return {
            "kind": self.kind,
            "function": self.function,
            "block": self.block,
            "site": list(self.site),
            "access_kind": self.access_kind,
            "method": self.method,
            "region": self.region,
            "facts": list(self.facts),
            "size": self.size,
            "ptr_lo": self.ptr_lo,
            "ptr_hi": self.ptr_hi,
            "base_hi": self.base_hi,
            "bound_lo": self.bound_lo,
            "key": self.key,
            "lock": self.lock,
        }

    @classmethod
    def from_json(cls, data):
        data = dict(data)
        data["site"] = tuple(data.get("site") or ())
        data["facts"] = tuple(data.get("facts") or ())
        return cls(**data)


def certificate_for(obligation, proof):
    """Build the certificate for a discharged obligation."""
    ops = obligation.operands
    if obligation.kind == "spatial":
        return Certificate(
            kind="spatial",
            function=obligation.function,
            block=obligation.block,
            site=obligation.site,
            access_kind=obligation.instr.access_kind,
            method=proof.method,
            region=_region_label(ops["ptr"].region),
            facts=proof.facts,
            size=int(ops["size"].iv.hi),
            ptr_lo=int(ops["ptr"].iv.lo),
            ptr_hi=int(ops["ptr"].iv.hi),
            base_hi=int(ops["base"].iv.hi),
            bound_lo=int(ops["bound"].iv.lo),
        )
    return Certificate(
        kind="temporal",
        function=obligation.function,
        block=obligation.block,
        site=obligation.site,
        access_kind=obligation.instr.access_kind,
        method=proof.method,
        region="lockspace",
        facts=proof.facts,
        key=int(ops["key"].iv.lo),
        lock=int(ops["lock"].iv.lo),
    )


def _region_label(region):
    if region is None:
        return "absolute"
    kind, name = region
    return f"{kind}:{name}"


# -- replay ------------------------------------------------------------------


def replay_certificate(cert):
    """Re-validate one certificate; returns ``(ok, reason)``.

    ``reason`` names the failing layer ("arithmetic: ...",
    "formal: ...") — a failure is a *counterexample to the deletion* and
    must fail any build that carries the certificate.
    """
    if cert.kind == "spatial":
        return _replay_spatial(cert)
    if cert.kind == "temporal":
        return _replay_temporal(cert)
    return False, f"unknown certificate kind {cert.kind!r}"


def _replay_spatial(cert):
    # Layer 1: the difference constraints, from the recorded endpoints.
    if cert.size < 1:
        return False, f"arithmetic: access size {cert.size} < 1"
    if cert.ptr_lo > cert.ptr_hi:
        return False, "arithmetic: empty pointer interval"
    if cert.ptr_lo - cert.base_hi < 0:
        return False, (f"arithmetic: ptr.lo({cert.ptr_lo}) < "
                       f"base.hi({cert.base_hi})")
    if cert.bound_lo - cert.ptr_hi < cert.size:
        return False, (f"arithmetic: bound.lo({cert.bound_lo}) - "
                       f"ptr.hi({cert.ptr_hi}) < size({cert.size})")

    # Layer 2: worst cases under the instrumented formal semantics.
    extent = cert.bound_lo - cert.base_hi
    low = cert.ptr_lo - cert.base_hi     # smallest admitted offset
    high = cert.ptr_hi - cert.base_hi    # largest admitted offset
    offsets = sorted({low, (low + high) // 2, high})
    # Each access covers [o, o + size): sample its first and last word.
    words = set()
    for offset in offsets:
        words.add(offset)
        words.add(offset + cert.size - 1)
    extent, words = _scale(extent, sorted(words))
    outcome = _run_spatial_model(extent, words)
    from ..formal.semantics import Outcome

    if outcome != Outcome.OK:
        return False, (f"formal: worst-case access replay returned "
                       f"{outcome.name} (extent={extent}, "
                       f"offsets={words})")
    return True, "ok"


def _scale(extent, words):
    """Shrink a huge extent while preserving each sampled word's
    distance to its nearest boundary (the proof's actual margins)."""
    if extent <= _MAX_REPLAY_EXTENT:
        return extent, words
    scaled_extent = _MAX_REPLAY_EXTENT
    half = scaled_extent // 2
    scaled = []
    for word in words:
        if word <= half:
            scaled.append(word)             # near base: keep offset
        elif extent - word <= half:
            scaled.append(scaled_extent - (extent - word))
        else:
            scaled.append(half)             # deep interior
    return scaled_extent, scaled


def _run_spatial_model(extent, words):
    from ..formal import syntax as syn
    from ..formal.semantics import Environment, Evaluator, Outcome

    if extent < 1:
        return Outcome.ABORT
    int_ptr = syn.TPtr(syn.TInt())
    env = Environment(capacity=extent + 64)
    try:
        env.declare("p", int_ptr)
        env.declare("q", int_ptr)
        env.declare("x", syn.TInt())
    except Exception:  # noqa: BLE001 - out of formal memory
        return Outcome.OUT_OF_MEM
    steps = [syn.Assign(syn.Var("p"), syn.Malloc(syn.IntLit(extent)))]
    for word in words:
        steps.append(syn.Assign(
            syn.Var("q"),
            syn.CastTo(int_ptr, syn.Add(syn.Read(syn.Var("p")),
                                        syn.IntLit(word)))))
        # Write before read: formal memory is undefined until written.
        steps.append(syn.Assign(syn.Deref(syn.Var("q")), syn.IntLit(1)))
        steps.append(syn.Assign(syn.Var("x"),
                                syn.Read(syn.Deref(syn.Var("q")))))
    command = steps[0]
    for step in steps[1:]:
        command = syn.Seq(command, step)
    fuel = 1000 + 20 * len(words)
    return Evaluator(env, instrumented=True,
                     fuel=fuel).run_command(command)


def _replay_temporal(cert):
    from ..temporal.locks import GLOBAL_KEY, GLOBAL_LOCK, LockSpace

    # Layer 1: the claim must be the immortal pair.
    if (cert.key, cert.lock) != (GLOBAL_KEY, GLOBAL_LOCK):
        return False, (f"arithmetic: ({cert.key}, {cert.lock}) is not "
                       f"the immortal (GLOBAL_KEY, GLOBAL_LOCK) pair")
    # Runtime axiom: the global lock survives a release attempt.
    space = LockSpace()
    if not space.live(GLOBAL_KEY, GLOBAL_LOCK):
        return False, "axiom: fresh lock space has a dead global lock"
    space.release(GLOBAL_LOCK)
    if not space.live(GLOBAL_KEY, GLOBAL_LOCK):
        return False, "axiom: global lock did not survive release"

    # Layer 2: live-allocation dereference is OK in the temporal model,
    # and (negative control) dies after free — a harness that cannot
    # distinguish the two proves nothing.
    from ..formal import syntax as syn
    from ..formal.semantics import Environment, Evaluator, Outcome

    int_ptr = syn.TPtr(syn.TInt())

    def run(with_free):
        env = Environment(capacity=256)
        env.declare("p", int_ptr)
        env.declare("x", syn.TInt())
        steps = [
            syn.Assign(syn.Var("p"), syn.Malloc(syn.IntLit(4))),
            syn.Assign(syn.Deref(syn.Var("p")), syn.IntLit(1)),
        ]
        if with_free:
            steps.append(syn.Free(syn.Read(syn.Var("p"))))
        steps.append(syn.Assign(syn.Var("x"),
                                syn.Read(syn.Deref(syn.Var("p")))))
        command = steps[0]
        for step in steps[1:]:
            command = syn.Seq(command, step)
        return Evaluator(env, instrumented=True, temporal=True,
                         fuel=1000).run_command(command)

    if run(with_free=False) != Outcome.OK:
        return False, "formal: live-lock dereference did not evaluate OK"
    if run(with_free=True) == Outcome.OK:
        return False, ("formal: negative control failed — the model "
                       "accepted a use-after-free")
    return True, "ok"
