"""Verification-condition generation: one obligation per check.

Each ``sb_check`` reached by the analysis becomes a *spatial* obligation
("for every concrete state the abstract environment admits, ``base <=
ptr`` and ``ptr + size <= bound``"); each ``sb_temporal_check`` becomes
a *temporal* one ("the (key, lock) pair is provably live").  The
function-pointer encoding check (``is_fnptr_check``) is excluded: its
contract is ``base == bound`` equality, not an interval fact, and it is
cheap enough that deleting it buys nothing.

Obligations are pure data — the solver (:mod:`repro.prove.solver`)
decides them, and nothing here mutates the IR.
"""

from dataclasses import dataclass

from ..ir.instructions import SbCheck, SbTemporalCheck
from ..obs.profiler import site_of


@dataclass
class Obligation:
    """One provability question about one check instruction."""

    kind: str                 # "spatial" | "temporal"
    instr: object
    function: str
    block: str
    site: tuple               # the check's obs_site triple
    operands: dict            # name -> AbsVal at the check


def obligations(check_envs):
    """Turn the analyzer's recorded check environments into obligations
    (skipping the checks the subsystem does not model)."""
    out = []
    for env in check_envs:
        instr = env.instr
        if isinstance(instr, SbCheck):
            if instr.is_fnptr_check:
                continue
            out.append(Obligation("spatial", instr, env.function,
                                  env.block, tuple(site_of(instr)),
                                  env.operands))
        elif isinstance(instr, SbTemporalCheck):
            out.append(Obligation("temporal", instr, env.function,
                                  env.block, tuple(site_of(instr)),
                                  env.operands))
    return out
