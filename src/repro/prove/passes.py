"""The ``-O2`` prove pass: analyze, discharge, delete, certify.

Runs per function after the dynamic check optimizations (dedup/elim)
and before LICM/widening — a check that is provably redundant should be
*deleted*, not hoisted or versioned.  For each function:

1. :func:`repro.prove.absint.analyze` computes abstract environments.
2. :func:`repro.prove.vcgen.obligations` turns every reached check into
   a verification condition.
3. :func:`repro.prove.solver.solve` decides each one; a positive answer
   yields a :class:`~repro.prove.certificate.Certificate`.
4. Proved check instructions are removed from their blocks.  Their
   companion metadata movs become dead and fall to the later DCE pass.

An analysis that did not converge (or was skipped for size) proves
nothing — every check simply stays dynamic, which is always sound.
"""

from dataclasses import dataclass, field

from .absint import analyze
from .certificate import certificate_for
from .solver import solve
from .vcgen import obligations


@dataclass
class ProveResult:
    """One function's prove-pass outcome."""

    proved_checks: int = 0            # deleted sb_check instructions
    proved_temporal_checks: int = 0   # deleted sb_temporal_check instrs
    obligations: int = 0              # VCs generated (incl. undischarged)
    certificates: list = field(default_factory=list)


def run(func, module=None, config=None):
    """Prove and delete redundant checks in ``func``; returns a
    :class:`ProveResult` (empty when nothing could be proved)."""
    del module  # same signature as the other opt passes
    result = ProveResult()
    analysis = analyze(func, config)
    if not analysis.converged or not analysis.check_envs:
        return result
    vcs = obligations(analysis.check_envs)
    result.obligations = len(vcs)
    proved = {}  # id(instr) -> Certificate
    for obligation in vcs:
        proof = solve(obligation)
        if proof is None:
            continue
        proved[id(obligation.instr)] = certificate_for(obligation, proof)
    if not proved:
        return result
    for block in func.blocks:
        kept = []
        for instr in block.instructions:
            cert = proved.get(id(instr))
            if cert is None:
                kept.append(instr)
                continue
            result.certificates.append(cert)
            if cert.kind == "temporal":
                result.proved_temporal_checks += 1
            else:
                result.proved_checks += 1
        if len(kept) != len(block.instructions):
            block.instructions = kept
            block.invalidate_compiled()
    return result
