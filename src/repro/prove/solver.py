"""The built-in SMT-lite decision procedure.

Obligations arrive as abstract operand environments
(:class:`~repro.prove.absint.AbsVal`); the solver decides them over
*linear integer difference constraints*: when the pointer and its
``(base, bound)`` companions share an allocation region, the region
address cancels and "in bounds for every admitted state" reduces to two
inequalities over interval endpoints::

    ptr.lo - base.hi  >= 0           (never below base)
    bound.lo - ptr.hi >= size.hi     (never past bound)

Intervals produced by the counted-loop recurrence (the analyzer's
bounded case-split over the trip count) carry a ``recur`` mark; a proof
resting on one is labelled ``counted-loop-recurrence``, otherwise
``difference-interval``.  Temporal obligations are decided by the
*immortal lock* rule: a ``(key, lock)`` pair that is literally the
global allocation's ``(GLOBAL_KEY, GLOBAL_LOCK)`` can never die — the
lock space pins slot ``GLOBAL_LOCK`` to ``GLOBAL_KEY`` and refuses to
release it (:mod:`repro.temporal.locks`).

Every positive answer returns a :class:`Proof` whose ``facts`` are the
discharged inequalities; the certificate layer re-checks them and
replays the worst cases against the formal semantics.
"""

from dataclasses import dataclass

from ..temporal.locks import GLOBAL_KEY, GLOBAL_LOCK

#: The lock slot a certificate's temporal claim is allowed to rest on.
IMMORTAL = (GLOBAL_KEY, GLOBAL_LOCK)


@dataclass(frozen=True)
class Proof:
    """A discharged obligation: the method that closed it and the
    concrete inequalities (over interval endpoints) that did the work."""

    method: str       # "difference-interval" | "counted-loop-recurrence"
                      # | "immortal-lock"
    facts: tuple


def _region_label(region):
    if region is None:
        return "absolute"
    kind, name = region
    return f"{kind}:{name}"


def solve(obligation):
    """Decide one obligation; returns a :class:`Proof` or None."""
    if obligation.kind == "spatial":
        return _solve_spatial(obligation)
    if obligation.kind == "temporal":
        return _solve_temporal(obligation)
    return None


def _solve_spatial(obligation):
    ptr = obligation.operands["ptr"]
    base = obligation.operands["base"]
    bound = obligation.operands["bound"]
    size = obligation.operands["size"]
    if ptr.region != base.region or ptr.region != bound.region:
        return None
    if size.region is not None or size.iv.hi == float("inf"):
        return None
    size_hi = size.iv.hi
    if size_hi <= 0:
        return None  # a degenerate size never reaches the prover
    low_slack = _finite(ptr.iv.lo) and _finite(base.iv.hi) \
        and ptr.iv.lo - base.iv.hi >= 0
    high_slack = _finite(bound.iv.lo) and _finite(ptr.iv.hi) \
        and bound.iv.lo - ptr.iv.hi >= size_hi
    if not (low_slack and high_slack):
        return None
    region = _region_label(ptr.region)
    method = ("counted-loop-recurrence"
              if (ptr.recur or base.recur or bound.recur)
              else "difference-interval")
    facts = (
        f"region({region}): ptr.lo({ptr.iv.lo}) - base.hi({base.iv.hi})"
        f" >= 0",
        f"region({region}): bound.lo({bound.iv.lo}) - ptr.hi({ptr.iv.hi})"
        f" >= size({size_hi})",
    )
    return Proof(method, facts)


def _solve_temporal(obligation):
    key = obligation.operands["key"]
    lock = obligation.operands["lock"]
    if key.region is not None or lock.region is not None:
        return None
    if not (key.iv.is_const and lock.iv.is_const):
        return None
    if (key.iv.lo, lock.iv.lo) != IMMORTAL:
        return None
    facts = (
        f"key == GLOBAL_KEY({GLOBAL_KEY})",
        f"lock == GLOBAL_LOCK({GLOBAL_LOCK}); "
        f"the global lock slot is never released",
    )
    return Proof("immortal-lock", facts)


def _finite(value):
    return value not in (float("-inf"), float("inf"))
