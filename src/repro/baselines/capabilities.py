"""Table 1 capability matrix: probe programs plus per-scheme adapters.

The paper's Table 1 compares six schemes on five attributes.  For the
schemes this repository implements (SoftBound, JKRLDA/Jones-Kelly, MSCC)
every cell is *measured* by running a probe program; for the schemes
whose defining property is a source-incompatibility (SafeC's and
CCured's fat pointers, CCured's whole-program inference), the cells are
*derived*: a static analysis detects the constructs that trip the scheme
(wild casts, pointer-layout dependence), which is exactly how those
incompatibilities manifest to a user.  EXPERIMENTS.md records which
cells are measured vs derived.
"""

from dataclasses import dataclass, field

from ..api import run_source
from ..softbound.config import FULL_SHADOW
from ..vm.errors import TrapKind
from .mscc import find_wild_casts

# -- probe programs -------------------------------------------------------

#: Sub-object overflow (paper Section 2.1's example): a complete scheme
#: detects the strcpy escaping node.str; object-granularity schemes miss.
SUBOBJECT_PROBE = r'''
struct rec { char str[8]; long tail; };
struct rec node;
int main(void) {
    node.tail = 7;
    char *p = node.str;
    strcpy(p, "overflow...");
    return node.tail == 7;
}
'''

#: Wild casts: int<->pointer traffic plus reinterpreting casts.  A
#: cast-tolerant scheme runs it unmodified (exit 1, no trap).
WILD_CAST_PROBE = r'''
int main(void) {
    double d = 4.0;
    long bits = *(long *)&d;
    int *ip = (int *)&d;
    long addr = (long)ip;
    int *again = (int *)addr;
    setbound(again, sizeof(double));
    return bits != 0 && *again == *ip;
}
'''

#: Memory-layout dependence: the program inspects sizeof(ptr) and copies
#: a struct with embedded pointers bytewise.  Fat-pointer layouts break
#: both assumptions.
LAYOUT_PROBE = r'''
struct holder { int *p; int tag; };
int main(void) {
    if (sizeof(int *) != 8) return 0;
    struct holder a; struct holder b;
    int x = 5;
    a.p = &x; a.tag = 9;
    memcpy(&b, &a, sizeof(struct holder));
    return *b.p == 5 && b.tag == 9;
}
'''

#: Separate compilation / incomplete prototypes: call-site-driven
#: transformation must survive calling a function with no prototype.
SEPARATE_COMPILATION_PROBE = r'''
int helper(int *p) { return p[0] + 1; }
int main(void) {
    int a[2];
    a[0] = 41;
    return helper(a);
}
'''


@dataclass
class CapabilityRow:
    scheme: str
    no_source_change: bool
    complete_subobject: bool
    layout_compatible: bool
    arbitrary_casts: bool
    dynamic_linking: bool
    measured: bool  # True when every cell came from running probes

    def cells(self):
        def mark(flag):
            return "Yes" if flag else "No"

        return [self.scheme, mark(self.no_source_change), mark(self.complete_subobject),
                mark(self.layout_compatible), mark(self.arbitrary_casts),
                mark(self.dynamic_linking)]


def _detected(result):
    return result.trap is not None and result.trap.kind is TrapKind.SPATIAL_VIOLATION


def _runs_clean(result):
    return result.trap is None and result.exit_code == 1


def measure_softbound():
    """Every cell measured by running the probes under SoftBound."""
    sub = run_source(SUBOBJECT_PROBE, profile=FULL_SHADOW)
    wild = run_source(WILD_CAST_PROBE, profile=FULL_SHADOW)
    layout = run_source(LAYOUT_PROBE, profile=FULL_SHADOW)
    sep = run_source(SEPARATE_COMPILATION_PROBE, profile=FULL_SHADOW)
    return CapabilityRow(
        scheme="SoftBound",
        no_source_change=sep.trap is None and sep.exit_code == 42,
        complete_subobject=_detected(sub),
        layout_compatible=_runs_clean(layout),
        arbitrary_casts=_runs_clean(wild),
        dynamic_linking=True,  # demonstrated by the renaming mechanism
        measured=True,
    )


def measure_jones_kelly():
    sub = run_source(SUBOBJECT_PROBE, profile="jones-kelly")
    wild = run_source(WILD_CAST_PROBE, profile="jones-kelly")
    layout = run_source(LAYOUT_PROBE, profile="jones-kelly")
    sep = run_source(SEPARATE_COMPILATION_PROBE, profile="jones-kelly")
    return CapabilityRow(
        scheme="JKRLDA",
        no_source_change=sep.trap is None and sep.exit_code == 42,
        complete_subobject=_detected(sub),  # measured: False (missed)
        layout_compatible=_runs_clean(layout),
        arbitrary_casts=_runs_clean(wild),
        dynamic_linking=True,
        measured=True,
    )


def measure_mscc():
    sub = run_source(SUBOBJECT_PROBE, profile="mscc")
    layout = run_source(LAYOUT_PROBE, profile="mscc")
    sep = run_source(SEPARATE_COMPILATION_PROBE, profile="mscc")
    wild_casts = find_wild_casts(WILD_CAST_PROBE)
    return CapabilityRow(
        scheme="MSCC",
        no_source_change=sep.trap is None and sep.exit_code == 42,
        complete_subobject=_detected(sub),  # shrinking disabled -> missed
        layout_compatible=_runs_clean(layout),
        arbitrary_casts=len(wild_casts) == 0,  # detector flags them -> No
        dynamic_linking=True,
        measured=True,
    )


def derive_safec():
    """SafeC (Austin et al.): fat pointers -> layout change, but complete
    per-pointer bounds and no source edits for supported programs."""
    return CapabilityRow("SafeC", no_source_change=True, complete_subobject=True,
                         layout_compatible=False, arbitrary_casts=True,
                         dynamic_linking=False, measured=False)


def derive_ccured_safeseq():
    """CCured Safe/Seq: whole-program inference; wild casts force source
    modifications, SEQ pointers are fat."""
    wild = find_wild_casts(WILD_CAST_PROBE)
    return CapabilityRow("CCured-Safe/Seq",
                         no_source_change=len(wild) == 0,  # probe has them -> No
                         complete_subobject=True,
                         layout_compatible=False, arbitrary_casts=False,
                         dynamic_linking=False, measured=False)


def derive_ccured_wild():
    return CapabilityRow("CCured-Wild", no_source_change=True,
                         complete_subobject=True, layout_compatible=False,
                         arbitrary_casts=True, dynamic_linking=False,
                         measured=False)


def measure_policy_row(policy, scheme=None):
    """A fully measured row for one registered checker policy: run the
    four probes under its profile and report what actually happened.
    This is how extension policies (plugins) earn a Table 1 row —
    :meth:`repro.policy.base.CheckerPolicy.capability_row` typically
    delegates here."""
    sub = run_source(SUBOBJECT_PROBE, profile=policy.name)
    wild = run_source(WILD_CAST_PROBE, profile=policy.name)
    layout = run_source(LAYOUT_PROBE, profile=policy.name)
    sep = run_source(SEPARATE_COMPILATION_PROBE, profile=policy.name)
    return CapabilityRow(
        scheme=scheme or policy.name,
        no_source_change=sep.trap is None and sep.exit_code == 42,
        complete_subobject=_detected(sub),
        layout_compatible=_runs_clean(layout),
        arbitrary_casts=_runs_clean(wild),
        dynamic_linking=True,  # nothing renames symbols in these schemes
        measured=True,
    )


def extension_rows():
    """Capability rows contributed by registered checker policies (the
    plugin door into Table 1); deterministic registration order."""
    from ..policy import all_policies

    rows = []
    for policy in all_policies():
        row = policy.capability_row()
        if row is not None:
            rows.append(row)
    return rows


def capability_matrix(include_extensions=True):
    """All six rows of Table 1, SoftBound last (paper order), then any
    extension rows registered checker policies contribute."""
    rows = [
        derive_safec(),
        measure_jones_kelly(),
        derive_ccured_safeseq(),
        derive_ccured_wild(),
        measure_mscc(),
        measure_softbound(),
    ]
    if include_extensions:
        rows.extend(extension_rows())
    return rows

#: Expected cell values straight from the paper's Table 1, used by tests
#: to pin the reproduction.
PAPER_TABLE1 = {
    "SafeC": (True, True, False, True, False),
    "JKRLDA": (True, False, True, True, True),
    "CCured-Safe/Seq": (False, True, False, False, False),
    "CCured-Wild": (True, True, False, True, False),
    "MSCC": (True, False, True, False, True),
    "SoftBound": (True, True, True, True, True),
}
