"""MSCC baseline (Xu, DuVarney & Sekar, FSE 2004; paper Sections 2.2 & 6.5).

MSCC is the pointer-based scheme closest to SoftBound: it also eschews
whole-program analysis and also splits metadata away from the pointer.
Its differences, each modelled here:

* metadata lives in *linked shadow structures* that mirror program data,
  costing more per access than SoftBound's flat tables
  (:class:`MsccMetadata`, ~8-9 instructions plus pointer chasing);
* its best-performing configuration cannot express sub-object bounds
  (``MSCC_CONFIG`` disables bound shrinking), so struct-internal
  overflows are missed — the Table 1 "Complete (subfield access): No";
* it "does not handle arbitrary casts" — :func:`find_wild_casts` is the
  static detector the capability matrix uses to decide whether a program
  would require source changes under MSCC/CCured.
"""

from ..frontend import ast_nodes as ast
from ..frontend.typecheck import parse_and_check
from ..softbound.config import CheckMode, MetadataScheme, SoftBoundConfig
from ..softbound.metadata import MetadataFacility

MSCC_CONFIG = SoftBoundConfig(
    mode=CheckMode.FULL,
    scheme=MetadataScheme.SHADOW_SPACE,  # ignored; variant picks facility
    shrink_bounds=False,
    variant="mscc",
)


class MsccMetadata(MetadataFacility):
    """Linked shadow structures mirroring program data (Section 2.2:
    "such techniques can increase overhead by introducing linked shadow
    structures that mirror entire existing data structures")."""

    name = "mscc_linked_shadow"
    ENTRY_BYTES = 32  # shadow node: link + base + bound + key

    # Linked shadow nodes are heap-allocated; the cache model scatters
    # them through their own arena.
    SHADOW_NODE_BASE = 0x2000_0000_0000

    def __init__(self):
        super().__init__()
        self.table = {}
        self.peak_live = 0

    def _trace_entry(self, key):
        if self._trace is not None:
            slot = ((key * 0x9E3779B1) >> 4) & 0x3FFFFF
            self._trace(self.SHADOW_NODE_BASE + slot * self.ENTRY_BYTES,
                        self.ENTRY_BYTES)

    def load(self, addr, stats):
        stats.charge("mscc.meta.load")
        self._trace_entry(addr >> 3)
        return self.table.get(addr >> 3, (0, 0))

    def store(self, addr, base, bound, stats):
        stats.charge("mscc.meta.store")
        self._trace_entry(addr >> 3)
        self.table[addr >> 3] = (base, bound)
        if len(self.table) > self.peak_live:
            self.peak_live = len(self.table)

    def clear_range(self, addr, size, stats):
        start = addr >> 3
        end = (addr + size + 7) >> 3
        for key in range(start, end):
            self.table.pop(key, None)
        stats.charge_units(max(end - start, 1) * 2)

    def metadata_bytes(self):
        return self.peak_live * self.ENTRY_BYTES

    def entry_count(self):
        return len(self.table)


def compile_with_mscc(source, optimize=True):
    """Compile a program under the MSCC model."""
    from ..api import compile_source

    return compile_source(source, profile="mscc", optimize=optimize)


def find_wild_casts(source):
    """Statically find the casts MSCC (and CCured without WILD pointers)
    cannot handle: non-NULL integer-to-pointer casts and pointer casts
    that reinterpret incompatible object shapes which are then usable
    for dereference.  Returns a list of (line, description)."""
    program = parse_and_check(source)
    findings = []

    def is_null_constant(node):
        return isinstance(node, ast.IntLiteral) and node.value == 0

    def walk(node):
        if node is None or not hasattr(node, "__dict__"):
            return
        if isinstance(node, ast.Cast):
            target = node.target_type
            source_t = node.operand.ctype if node.operand is not None else None
            if target is not None and target.is_pointer and source_t is not None:
                if source_t.is_integer and not is_null_constant(node.operand):
                    findings.append((node.line, "integer-to-pointer cast"))
                elif source_t.is_pointer and not target.pointee.is_void \
                        and not source_t.pointee.is_void:
                    a, b = source_t.pointee, target.pointee
                    # Down-casting to a *larger* pointee shape means a
                    # dereference reads/writes beyond what the source
                    # type accounts for — the classic wild cast.
                    if a.size and b.size and b.size > a.size:
                        findings.append(
                            (node.line, f"cast reinterprets {a} as {b}"))
        for value in vars(node).values():
            if isinstance(value, list):
                for item in value:
                    walk(item)
            elif isinstance(value, ast.Node):
                walk(value)

    for decl in program.unit.decls:
        walk(decl)
    return findings
