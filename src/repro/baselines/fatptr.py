"""Inline fat-pointer metadata baselines (paper Sections 2.2 and 3.4).

SafeC and CCured's WILD pointers keep base/bound *inline*, adjacent to
the pointer in program-accessible memory.  Section 3.4 dissects the
consequences — and motivates SoftBound's disjoint metadata — through two
facts these facilities make measurable:

* **Naive inline metadata is manufacturable.**  A store through a
  legally-bounded pointer that spans the pointer's own slot (the classic
  wild-cast overwrite) rewrites the pointer *and its adjacent base*
  together, so the attacker chooses the bounds and the dereference check
  waves the forged pointer through.  :class:`InlineFatPointerMetadata`
  with ``tagged=False`` models this: a non-pointer store overlapping a
  registered pointer slot replaces its entry with attacker-controlled
  (permissive) bounds.

* **WILD tag bits close the hole at a per-store price.**  CCured writes
  a tag on *every* store to a WILD object (one when a valid pointer is
  stored, zero otherwise) and checks it on every pointer load, so
  metadata clobbered by data stores reads back as "not a pointer" (NULL
  bounds).  ``tagged=True`` models this, charging the paper's tag-update
  cost on every program store and the tag check on every pointer load.

SoftBound's disjoint facilities need neither: program stores cannot
reach the metadata at all, which ``bench_ablation_disjoint.py`` verifies
against both variants here.
"""

from ..softbound.config import CheckMode, MetadataScheme, SoftBoundConfig
from ..softbound.metadata import MetadataFacility

_WORD_SHIFT = 3
_PERMISSIVE = (0, 1 << 63)

#: Fat pointers cannot express sub-object bounds (the base must point at
#: the start of an allocation, Section 3.4), so shrink_bounds is off.
NAIVE_FATPTR_CONFIG = SoftBoundConfig(
    mode=CheckMode.FULL,
    scheme=MetadataScheme.SHADOW_SPACE,  # ignored; variant picks facility
    shrink_bounds=False,
    variant="fatptr_naive",
)

WILD_FATPTR_CONFIG = SoftBoundConfig(
    mode=CheckMode.FULL,
    scheme=MetadataScheme.SHADOW_SPACE,
    shrink_bounds=False,
    variant="fatptr_wild",
)


class InlineFatPointerMetadata(MetadataFacility):
    """Metadata living inline with the data, hence reachable by stores.

    The mapping (pointer-slot address -> entry) is the same as the
    disjoint facilities'; the difference is the ``on_program_store``
    hook, which the machine invokes for every non-pointer store so the
    facility can model what data traffic does to in-band metadata.
    """

    ENTRY_BYTES = 24  # value + base + bound live in the object

    def __init__(self, tagged):
        super().__init__()
        self.tagged = tagged
        self.name = "fatptr_wild" if tagged else "fatptr_naive"
        self.table = {}  # slot key -> [base, bound, tag]
        self.peak_live = 0
        self.corrupted_slots = 0

    # -- the MetadataFacility interface ------------------------------------

    def load(self, addr, stats):
        stats.charge("fatptr.load")
        entry = self.table.get(addr >> _WORD_SHIFT)
        if entry is None:
            return (0, 0)
        if self.tagged:
            # Tag check on every pointer load: a cleared tag means the
            # slot was overwritten by data; its metadata is void.
            if not entry[2]:
                return (0, 0)
        return (entry[0], entry[1])

    def store(self, addr, base, bound, stats):
        stats.charge("fatptr.store")
        key = addr >> _WORD_SHIFT
        self.table[key] = [base, bound, 1]
        if len(self.table) > self.peak_live:
            self.peak_live = len(self.table)

    def clear_range(self, addr, size, stats):
        start = addr >> _WORD_SHIFT
        end = (addr + size + 7) >> _WORD_SHIFT
        for key in range(start, end):
            self.table.pop(key, None)
        stats.charge_units(max(end - start, 1))

    def metadata_bytes(self):
        return self.peak_live * self.ENTRY_BYTES

    def entry_count(self):
        return len(self.table)

    # -- the inline-metadata hazard ------------------------------------------

    def on_program_store(self, addr, size, stats):
        """A non-pointer store hit [addr, addr+size).

        Inline layout means the bytes of any pointer slot in that range
        — and of its adjacent base/bound words — belong to the object
        being written.  Tagged (WILD) entries survive safely: the store
        also cleared their tag.  Untagged entries are corrupted: the
        attacker's bytes are now the base, modelled as the most
        permissive (worst-case, and typical-exploit) outcome.
        """
        if self.tagged:
            # "All stores to a WILD object must update the metadata
            # bits" (Section 3.4) — charged whether or not a pointer
            # slot was hit.
            stats.charge("fatptr.wild.tag_update")
        start = addr >> _WORD_SHIFT
        end = (addr + max(size, 1) + 7) >> _WORD_SHIFT
        for key in range(start, end):
            entry = self.table.get(key)
            if entry is None:
                continue
            if self.tagged:
                entry[2] = 0
            else:
                entry[0], entry[1] = _PERMISSIVE
                self.corrupted_slots += 1


def make_fatptr_facility(variant):
    return InlineFatPointerMetadata(tagged=(variant == "fatptr_wild"))


def compile_with_fatptr(source, tagged, optimize=True):
    """Compile a program under an inline-metadata (fat pointer) model."""
    from ..api import compile_source

    config = WILD_FATPTR_CONFIG if tagged else NAIVE_FATPTR_CONFIG
    return compile_source(source, profile=config, optimize=optimize)
