"""GCC Mudflap-style checker (Eigler 2003; paper Table 4 comparator).

Mudflap also keeps an object database, fronted by a small direct-mapped
lookup cache; accesses that miss the cache pay a database search.  Like
every object-granularity scheme it cannot see sub-object overflows —
which is why it misses the ``go`` bug in Table 4 while catching the
whole-object heap/stack overflows of the other three BugBench programs.
"""

from .objecttable import ObjectTableChecker

_CACHE_SIZE = 512


class MudflapChecker(ObjectTableChecker):
    source_name = "mudflap"

    def __init__(self):
        super().__init__()
        self.cache = {}  # cache line -> (start, end)
        self.cache_hits = 0
        self.cache_misses = 0

    def charge_lookup(self):
        pass  # charged inline in _check

    def _check(self, addr, size, is_write):
        stats = self.machine.stats
        stats.checks += 1
        line = (addr >> 6) % _CACHE_SIZE
        cached = self.cache.get(line)
        if cached is not None and cached[0] <= addr and addr + size <= cached[1]:
            self.cache_hits += 1
            stats.charge_units(4)  # cache-hit fast path
            return
        self.cache_misses += 1
        stats.charge("mudflap.lookup")
        node = self.tree.find(addr)
        stats.charge_units(2 * max(self.tree.last_depth, 1))
        if node is None or addr + size > node.end:
            self.violations += 1
            self._report(addr, size, is_write)
        self.cache[line] = (node.start, node.end)

    def on_heap_free(self, addr, size):
        super().on_heap_free(addr, size)
        self.cache.clear()

    def on_stack_free(self, addr, size):
        super().on_stack_free(addr, size)
        self.cache.clear()
