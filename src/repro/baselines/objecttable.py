"""Shared object-table core for the object-based baseline checkers.

Jones-Kelly-style systems (JKRLDA, Mudflap) track every allocation —
global, stack and heap — in a lookup structure and check that each
memory access falls entirely inside *some* live object.  Their defining
incompleteness (paper Section 2.1): an overflow from one field of a
struct into the next stays inside the object and is invisible, because
"pointers to node and node.str are indistinguishable as they have the
same address".
"""

from ..vm.errors import Trap, TrapKind
from ..vm.machine import Observer
from .splay import RangeSplayTree


class ObjectTableChecker(Observer):
    """Base observer: registers objects, checks accesses against them."""

    source_name = "object_table"
    check_reads = True
    check_writes = True

    def __init__(self):
        self.tree = RangeSplayTree()
        self.violations = 0

    # -- allocation tracking ------------------------------------------------

    def on_global(self, addr, size, name, ctype):
        self.tree.insert(addr, size, ("global", name))

    def on_heap_alloc(self, addr, size):
        self.tree.insert(addr, size, ("heap", None))

    def on_heap_free(self, addr, size):
        self.tree.remove(addr)

    def on_stack_alloc(self, addr, size, name, ctype):
        # Frames are reused at identical addresses; replace stale entries.
        self.tree.remove(addr)
        self.tree.insert(addr, size, ("stack", name))

    def on_stack_free(self, addr, size):
        self.tree.remove(addr)

    # -- access checking -------------------------------------------------------

    def charge_lookup(self):
        raise NotImplementedError

    def _check(self, addr, size, is_write):
        self.charge_lookup()
        node = self.tree.find(addr)
        if node is None or addr + size > node.end:
            self.violations += 1
            self._report(addr, size, is_write)

    def _report(self, addr, size, is_write):
        kind = "write" if is_write else "read"
        raise Trap(
            TrapKind.SPATIAL_VIOLATION,
            f"{kind} of {size} bytes outside every live object",
            address=addr,
            source=self.source_name,
        )

    def on_load(self, addr, size):
        if self.check_reads:
            self._check(addr, size, is_write=False)

    def on_store(self, addr, size):
        if self.check_writes:
            self._check(addr, size, is_write=True)
