"""A from-scratch top-down splay tree over address ranges.

The substrate for the Jones-Kelly object-table baseline: object-based
bounds checkers keep every live object in "a splay tree, which can be a
performance bottleneck" (paper Section 2.1).  The tree keys are range
start addresses; lookups find the range containing an address and splay
it to the root, so repeated lookups of hot objects are cheap while cold
lookups pay the tree depth — the access pattern that drives the 5x
overheads the paper cites for early object-table systems.

``last_depth`` exposes the number of links traversed by the most recent
operation so callers can charge a realistic per-level cost.
"""


class _Node:
    __slots__ = ("start", "size", "tag", "left", "right")

    def __init__(self, start, size, tag=None):
        self.start = start
        self.size = size
        self.tag = tag
        self.left = None
        self.right = None

    @property
    def end(self):
        return self.start + self.size

    def contains(self, addr):
        return self.start <= addr < self.end


class RangeSplayTree:
    """Maps disjoint [start, start+size) ranges to tags."""

    def __init__(self):
        self.root = None
        self.count = 0
        self.last_depth = 0

    # -- core splay ----------------------------------------------------

    def _splay(self, key):
        """Top-down splay: bring the node whose range is nearest ``key``
        to the root.  Counts traversed links in ``last_depth``."""
        root = self.root
        if root is None:
            self.last_depth = 0
            return
        header = _Node(0, 0)
        left = right = header
        depth = 0
        while True:
            if key < root.start:
                if root.left is None:
                    break
                if key < root.left.start:  # zig-zig: rotate right
                    child = root.left
                    root.left = child.right
                    child.right = root
                    root = child
                    depth += 1
                    if root.left is None:
                        break
                right.left = root
                right = root
                root = root.left
                depth += 1
            elif key >= root.end:
                if root.right is None:
                    break
                if key >= root.right.end and root.right.right is not None:
                    child = root.right
                    root.right = child.left
                    child.left = root
                    root = child
                    depth += 1
                right_child = root.right
                if right_child is None:
                    break
                left.right = root
                left = root
                root = right_child
                depth += 1
            else:
                break
        left.right = root.left
        right.left = root.right
        root.left = header.right
        root.right = header.left
        self.root = root
        self.last_depth = depth

    # -- operations -------------------------------------------------------

    def insert(self, start, size, tag=None):
        """Insert a range (must not overlap an existing one)."""
        node = _Node(start, size, tag)
        if self.root is None:
            self.root = node
            self.count += 1
            self.last_depth = 0
            return
        self._splay(start)
        root = self.root
        if root.contains(start) or node.end > root.start and start < root.end:
            # Overlap: replace in place (stack slot reuse produces this).
            if root.start == start and root.size == size:
                root.tag = tag
                return
        if start < root.start:
            node.left = root.left
            node.right = root
            root.left = None
        else:
            node.right = root.right
            node.left = root
            root.right = None
        self.root = node
        self.count += 1

    def remove(self, start):
        """Remove the range starting at ``start``; returns its tag."""
        if self.root is None:
            return None
        self._splay(start)
        root = self.root
        if root.start != start:
            return None
        tag = root.tag
        if root.left is None:
            self.root = root.right
        else:
            right = root.right
            self.root = root.left
            self._splay(start)
            self.root.right = right
        self.count -= 1
        return tag

    def find(self, addr):
        """The node whose range contains ``addr``, or None (splays)."""
        if self.root is None:
            self.last_depth = 0
            return None
        self._splay(addr)
        return self.root if self.root.contains(addr) else None

    def find_range(self, addr):
        """(start, size, tag) for the range containing addr, or None."""
        node = self.find(addr)
        if node is None:
            return None
        return (node.start, node.size, node.tag)

    def __len__(self):
        return self.count

    def __contains__(self, addr):
        return self.find(addr) is not None

    def items(self):
        """All (start, size, tag) in key order (for tests/debugging)."""
        out = []

        def walk(node):
            if node is None:
                return
            walk(node.left)
            out.append((node.start, node.size, node.tag))
            walk(node.right)

        walk(self.root)
        return out

    def depth(self):
        """Current tree height (for invariant tests)."""

        def height(node):
            if node is None:
                return 0
            return 1 + max(height(node.left), height(node.right))

        return height(self.root)
