"""Valgrind/Memcheck-style checker (paper Table 4 comparator).

Memcheck is dynamic binary instrumentation tracking per-byte
*addressability*: heap allocations are addressable, the redzones between
them and freed blocks are not.  Its documented blind spots — which
Table 4 exercises — are the stack and global segments: "Valgrind does
not detect overflows on the stack" (Section 6.2), because stack/global
memory is always addressable at byte granularity.

The simulation marks heap payload bytes addressable on malloc and
unaddressable on free, treats the inter-block allocator headers as
redzones, and considers every stack/global access fine.  Every access
pays a flat DBI shadow-memory cost (Valgrind's ~10-50x slowdowns come
from the binary-translation machinery this constant stands in for).
"""

from ..vm.errors import Trap, TrapKind
from ..vm.machine import Observer


class ValgrindChecker(Observer):
    source_name = "valgrind"

    def __init__(self):
        self.heap_ranges = {}  # start -> end (live allocations)
        self.sorted_starts = []
        self.violations = 0

    def on_heap_alloc(self, addr, size):
        self.heap_ranges[addr] = addr + size
        self._dirty = True

    def on_heap_free(self, addr, size):
        self.heap_ranges.pop(addr, None)
        self._dirty = True

    def _in_live_heap_block(self, addr, size):
        for start, end in self.heap_ranges.items():
            if start <= addr and addr + size <= end:
                return True
        return False

    def _check(self, addr, size, is_write):
        machine = self.machine
        machine.stats.charge("valgrind.per_access")
        machine.stats.checks += 1
        heap = machine.memory.heap
        if not (heap.base <= addr < heap.end):
            return  # stack/global accesses are always "addressable"
        if self._in_live_heap_block(addr, size):
            return
        self.violations += 1
        kind = "write" if is_write else "read"
        raise Trap(
            TrapKind.SPATIAL_VIOLATION,
            f"invalid {kind} of {size} bytes (unaddressable heap)",
            address=addr,
            source=self.source_name,
        )

    def on_load(self, addr, size):
        self._check(addr, size, is_write=False)

    def on_store(self, addr, size):
        self._check(addr, size, is_write=True)
