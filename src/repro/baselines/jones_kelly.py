"""Jones-Kelly / JKRLDA-style object-based checker (paper Section 2.1).

Tracks every object in a splay tree and validates that each access lands
inside a live object.  Faithful in its two signature properties:

* **Compatible**: no change to pointer representation or memory layout —
  it is a pure observer over the unmodified program.
* **Incomplete**: sub-object overflows (array inside a struct) stay
  inside the registered object and are missed — the weakness Table 1
  records and the ``go`` BugBench analogue exercises.

Costs are charged per lookup plus per splay level traversed, modelling
the splay-tree bottleneck the paper attributes 5x overheads to.
"""

from .objecttable import ObjectTableChecker


class JonesKellyChecker(ObjectTableChecker):
    source_name = "jones_kelly"

    def charge_lookup(self):
        stats = self.machine.stats
        stats.charge("jk.check")
        stats.charge("jk.splay.per_level", max(self.tree.last_depth, 1))
        stats.checks += 1

    def _check(self, addr, size, is_write):
        stats = self.machine.stats
        stats.charge("jk.check")
        stats.checks += 1
        node = self.tree.find(addr)
        stats.charge("jk.splay.per_level", max(self.tree.last_depth, 1))
        if node is None or addr + size > node.end:
            self.violations += 1
            self._report(addr, size, is_write)
