"""Baseline checkers the paper compares against (Sections 2, 6.2, 6.5)."""

from .jones_kelly import JonesKellyChecker
from .mscc import MSCC_CONFIG, MsccMetadata, compile_with_mscc, find_wild_casts
from .mudflap_sim import MudflapChecker
from .splay import RangeSplayTree
from .valgrind_sim import ValgrindChecker

__all__ = ["JonesKellyChecker", "MudflapChecker", "ValgrindChecker",
           "RangeSplayTree", "MsccMetadata", "MSCC_CONFIG",
           "compile_with_mscc", "find_wild_casts"]
