"""Big-step operational semantics of the Section 4 fragment.

Two modes, mirroring the paper's development:

* **plain** — the non-standard *partial* semantics of C: it is undefined
  (result ``STUCK``) whenever a bad program would cause a spatial-safety
  violation; "for programs without spatial memory errors, this semantics
  agrees with C".
* **instrumented** — the semantics augmented with metadata propagation
  and bounds-check assertions, "abort[ing] the program upon assertion
  failure".  This abstractly models SoftBound instrumentation.

Values are triples ``(v, b, e)`` — the paper's ``v_(b,e)`` notation:
the underlying word plus its base and bound metadata.  The evaluation
judgments follow the paper's three forms:

* ``(E, lhs)  ⇒l  r : a``   (addresses; no environment effects)
* ``(E, rhs)  ⇒r  (r : a, E')``
* ``(E, c)    ⇒c  (r, E')`` with r ∈ {OK, Abort, OutOfMem}

The two dereference rules shown in the paper (check success → value,
check failure → Abort) appear verbatim in :meth:`_lhs_Deref`.
"""

import enum
from dataclasses import dataclass

from . import syntax as syn
from .machine_axioms import FormalMemory


class Outcome(enum.Enum):
    OK = "ok"
    ABORT = "abort"          # instrumented check failed
    OUT_OF_MEM = "out_of_mem"
    STUCK = "stuck"          # plain semantics undefined (memory violation)


@dataclass
class _Signal(Exception):
    outcome: Outcome


class Environment:
    """E = (S, M): stack frame and memory, plus the named-struct table."""

    def __init__(self, structs=None, capacity=4096):
        self.structs = dict(structs or {})
        self.memory = FormalMemory(capacity=capacity)
        self.stack = {}  # name -> (address, atomic FType)

    def declare(self, name, ftype):
        """Allocate a stack slot for a variable (models frame setup)."""
        assert syn.is_atomic(ftype), f"variables hold atomic types, not {ftype}"
        addr = self.memory.malloc(ftype.sizeof(self.structs))
        if addr is None:
            raise _Signal(Outcome.OUT_OF_MEM)
        self.stack[name] = (addr, ftype)
        return addr

    def resolve_struct(self, ftype):
        if isinstance(ftype, syn.TNamed):
            return ftype.resolve(self.structs)
        return ftype


class Evaluator:
    """Executes commands under one of the two semantics."""

    def __init__(self, env, instrumented=True, fuel=100_000):
        self.env = env
        self.instrumented = instrumented
        self.fuel = fuel

    # -- public API ----------------------------------------------------------

    def run_command(self, command):
        """(E, c) ⇒c (r, E'): returns an Outcome; E is updated in place."""
        try:
            for assign in syn.commands_of(command):
                self._exec_assign(assign)
        except _Signal as signal:
            return signal.outcome
        return Outcome.OK

    # -- commands ----------------------------------------------------------------

    def _exec_assign(self, assign):
        self._burn()
        loc, ltype = self._eval_lhs(assign.lhs)
        value = self._eval_rhs(assign.rhs)
        if self.env.memory.write(loc, value) is None:
            # lhs evaluation yielded an unallocated address: the plain
            # semantics is undefined; the instrumented semantics cannot
            # reach here from a well-formed state (progress), but a raw
            # unchecked write in plain mode gets stuck.
            raise _Signal(Outcome.STUCK)

    # -- lhs: (E, lhs) ⇒l l : a ----------------------------------------------------

    def _eval_lhs(self, lhs):
        self._burn()
        if isinstance(lhs, syn.Var):
            entry = self.env.stack.get(lhs.name)
            if entry is None:
                raise _Signal(Outcome.STUCK)
            return entry  # (address, atomic type)
        if isinstance(lhs, syn.Deref):
            return self._lhs_Deref(lhs)
        if isinstance(lhs, syn.FieldDot):
            loc, ftype = self._eval_lhs(lhs.inner)
            return self._field(loc, ftype, lhs.field)
        if isinstance(lhs, syn.FieldArrow):
            loc, ftype = self._lhs_Deref(syn.Deref(lhs.inner))
            return self._field(loc, ftype, lhs.field)
        raise TypeError(f"not an lhs: {lhs!r}")

    def _lhs_Deref(self, lhs):
        """The paper's two displayed rules.

        (E, lhs) ⇒l l : a*          (E, lhs) ⇒l l : a*
        read (E.M) l = some v(b,e)   read (E.M) l = some v(b,e)
        b ≤ v ∧ v + sizeof(a) ≤ e    ¬(b ≤ v ∧ v + sizeof(a) ≤ e)
        --------------------------   ---------------------------
        (E, *lhs) ⇒l v : a           (E, *lhs) ⇒l Abort : a
        """
        loc, ftype = self._eval_lhs(lhs.inner)
        if not isinstance(ftype, syn.TPtr):
            raise _Signal(Outcome.STUCK)
        data = self.env.memory.read(loc)
        if data is None:
            raise _Signal(Outcome.STUCK)
        value, base, bound = data
        pointee = self.env.resolve_struct(ftype.pointee)
        size = pointee.sizeof(self.env.structs)
        if self.instrumented:
            if not (base <= value and value + size <= bound):
                raise _Signal(Outcome.ABORT)
        else:
            # Partial semantics: undefined unless the access stays
            # inside the object the pointer points into.  Provenance is
            # what C's object model keys on — per-byte (or even
            # per-block) allocation is not enough, since an access
            # overflowing into an *adjacent* allocated object (a
            # one-past-the-end dereference, a too-small malloc cast to
            # a struct) would then count as defined, and the
            # no-false-positives corollary would wrongly blame the
            # instrumented semantics for aborting exactly the overflows
            # SoftBound exists to detect.  The machine stores every
            # pointer with its bounds, so the pointed-into object is
            # known here even without checks; the block-extent test is
            # kept as a belt against any bounds/allocation mismatch.
            if not (base <= value and value + size <= bound
                    and self.env.memory.in_one_object(value, size)):
                raise _Signal(Outcome.STUCK)
        return value, pointee

    def _field(self, loc, ftype, field_name):
        struct = self.env.resolve_struct(ftype)
        if not isinstance(struct, syn.TStruct):
            raise _Signal(Outcome.STUCK)
        entry = struct.field_offset(field_name, self.env.structs)
        if entry is None:
            raise _Signal(Outcome.STUCK)
        offset, field_type = entry
        return loc + offset, field_type

    # -- rhs: (E, rhs) ⇒r (v(b,e) : a, E') ---------------------------------------------

    def _eval_rhs(self, rhs):
        self._burn()
        if isinstance(rhs, syn.IntLit):
            return (rhs.value, 0, 0)
        if isinstance(rhs, syn.Add):
            lv, lb, le = self._eval_rhs(rhs.left)
            rv, rb, re_ = self._eval_rhs(rhs.right)
            # Pointer arithmetic inherits the pointer's metadata
            # (Section 3.1); int+int has null metadata.
            if (lb, le) != (0, 0):
                return (lv + rv, lb, le)
            if (rb, re_) != (0, 0):
                return (lv + rv, rb, re_)
            return (lv + rv, 0, 0)
        if isinstance(rhs, syn.Read):
            loc, ftype = self._eval_lhs(rhs.lhs)
            data = self.env.memory.read(loc)
            if data is None:
                raise _Signal(Outcome.STUCK)
            return data
        if isinstance(rhs, syn.AddrOf):
            loc, ftype = self._eval_lhs(rhs.lhs)
            size = self.env.resolve_struct(ftype).sizeof(self.env.structs)
            # &lhs gets the bounds of the object it names — including
            # *shrunk* bounds for &(lhs.field) (Section 3.1).
            return (loc, loc, loc + size)
        if isinstance(rhs, syn.CastTo):
            value, base, bound = self._eval_rhs(rhs.rhs)
            # Casts preserve the value and the (incorruptible) metadata;
            # this is what makes arbitrary casts safe (Section 5.2).
            return (value, base, bound)
        if isinstance(rhs, syn.SizeOf):
            return (self.env.resolve_struct(rhs.ftype).sizeof(self.env.structs), 0, 0)
        if isinstance(rhs, syn.Malloc):
            size_value, _, _ = self._eval_rhs(rhs.size)
            if size_value <= 0:
                return (0, 0, 0)
            base = self.env.memory.malloc(size_value)
            if base is None:
                raise _Signal(Outcome.OUT_OF_MEM)
            return (base, base, base + size_value)
        raise TypeError(f"not an rhs: {rhs!r}")

    def _burn(self):
        self.fuel -= 1
        if self.fuel <= 0:
            raise _Signal(Outcome.OUT_OF_MEM)


def run(env, command, instrumented=True):
    """Convenience: execute ``command`` in ``env``; returns an Outcome."""
    return Evaluator(env, instrumented=instrumented).run_command(command)
