"""Big-step operational semantics of the Section 4 fragment.

Two modes, mirroring the paper's development:

* **plain** — the non-standard *partial* semantics of C: it is undefined
  (result ``STUCK``) whenever a bad program would cause a spatial-safety
  violation; "for programs without spatial memory errors, this semantics
  agrees with C".
* **instrumented** — the semantics augmented with metadata propagation
  and bounds-check assertions, "abort[ing] the program upon assertion
  failure".  This abstractly models SoftBound instrumentation.

Values are triples ``(v, b, e)`` — the paper's ``v_(b,e)`` notation:
the underlying word plus its base and bound metadata.  The evaluation
judgments follow the paper's three forms:

* ``(E, lhs)  ⇒l  r : a``   (addresses; no environment effects)
* ``(E, rhs)  ⇒r  (r : a, E')``
* ``(E, c)    ⇒c  (r, E')`` with r ∈ {OK, Abort, OutOfMem}

The two dereference rules shown in the paper (check success → value,
check failure → Abort) appear verbatim in :meth:`_lhs_Deref`.

**Temporal extension** (``temporal=True``): values widen to quintuples
``(v, b, e, k, l)`` — the word, its bounds, and its allocation's key
and lock — and the fragment gains a ``free`` command
(:class:`repro.formal.syntax.Free`).  The dereference rules acquire a
third premise: definedness also requires a *live lock*,
``lock_live(k, l)``.  In the instrumented semantics a dead lock is an
``Abort`` (the temporal check fires); in the plain partial semantics it
is ``STUCK`` — a use-after-free is undefined C even when the memory
happens to be re-allocated and readable, which is exactly the case the
spatial premises alone cannot rule out once ``free`` exists.
"""

import enum
from dataclasses import dataclass

from . import syntax as syn
from .machine_axioms import FormalMemory


class Outcome(enum.Enum):
    OK = "ok"
    ABORT = "abort"          # instrumented check failed
    OUT_OF_MEM = "out_of_mem"
    STUCK = "stuck"          # plain semantics undefined (memory violation)


@dataclass
class _Signal(Exception):
    outcome: Outcome


class Environment:
    """E = (S, M): stack frame and memory, plus the named-struct table."""

    def __init__(self, structs=None, capacity=4096, reuse=False):
        self.structs = dict(structs or {})
        self.memory = FormalMemory(capacity=capacity, reuse=reuse)
        self.stack = {}  # name -> (address, atomic FType)

    def declare(self, name, ftype):
        """Allocate a stack slot for a variable (models frame setup)."""
        assert syn.is_atomic(ftype), f"variables hold atomic types, not {ftype}"
        addr = self.memory.malloc(ftype.sizeof(self.structs))
        if addr is None:
            raise _Signal(Outcome.OUT_OF_MEM)
        self.stack[name] = (addr, ftype)
        return addr

    def resolve_struct(self, ftype):
        if isinstance(ftype, syn.TNamed):
            return ftype.resolve(self.structs)
        return ftype


class Evaluator:
    """Executes commands under one of the two semantics.

    ``temporal`` widens values with (key, lock) metadata and makes
    definedness require a live lock (the lock-and-key extension).
    """

    def __init__(self, env, instrumented=True, fuel=100_000, temporal=False):
        self.env = env
        self.instrumented = instrumented
        self.temporal = temporal
        self.fuel = fuel

    # -- value helpers -------------------------------------------------------

    def _null(self, value=0):
        if self.temporal:
            return (value, 0, 0, 0, 0)
        return (value, 0, 0)

    def _norm(self, data):
        """Normalize stored data to this evaluator's value arity (a
        fresh slot holds the spatial zero triple)."""
        if self.temporal and len(data) < 5:
            return tuple(data) + (0,) * (5 - len(data))
        return data

    # -- public API ----------------------------------------------------------

    def run_command(self, command):
        """(E, c) ⇒c (r, E'): returns an Outcome; E is updated in place."""
        try:
            for step in syn.commands_of(command):
                if isinstance(step, syn.Free):
                    self._exec_free(step)
                else:
                    self._exec_assign(step)
        except _Signal as signal:
            return signal.outcome
        return Outcome.OK

    # -- commands ----------------------------------------------------------------

    def _exec_assign(self, assign):
        self._burn()
        loc, ltype = self._eval_lhs(assign.lhs)
        value = self._eval_rhs(assign.rhs)
        if self.env.memory.write(loc, value) is None:
            # lhs evaluation yielded an unallocated address: the plain
            # semantics is undefined; the instrumented semantics cannot
            # reach here from a well-formed state (progress), but a raw
            # unchecked write in plain mode gets stuck.
            raise _Signal(Outcome.STUCK)

    def _exec_free(self, command):
        """free(rhs): the block dies and its lock with it.

        Instrumented: a dead or foreign (key, lock) is an Abort — the
        double-free detector.  Plain: undefined (STUCK).
        """
        self._burn()
        data = self._norm(self._eval_rhs(command.rhs))
        value = data[0]
        if self.temporal:
            key, lock = data[3], data[4]
            if not self.env.memory.lock_live(key, lock):
                raise _Signal(Outcome.ABORT if self.instrumented
                              else Outcome.STUCK)
        if self.env.memory.free(value) is None:
            # Not a live block base: double free of a value whose lock
            # somehow still matched cannot happen (the lock died with
            # the block); this is the non-temporal undefined case.
            raise _Signal(Outcome.ABORT if self.instrumented and self.temporal
                          else Outcome.STUCK)

    # -- lhs: (E, lhs) ⇒l l : a ----------------------------------------------------

    def _eval_lhs(self, lhs):
        self._burn()
        if isinstance(lhs, syn.Var):
            entry = self.env.stack.get(lhs.name)
            if entry is None:
                raise _Signal(Outcome.STUCK)
            return entry  # (address, atomic type)
        if isinstance(lhs, syn.Deref):
            return self._lhs_Deref(lhs)
        if isinstance(lhs, syn.FieldDot):
            loc, ftype = self._eval_lhs(lhs.inner)
            return self._field(loc, ftype, lhs.field)
        if isinstance(lhs, syn.FieldArrow):
            loc, ftype = self._lhs_Deref(syn.Deref(lhs.inner))
            return self._field(loc, ftype, lhs.field)
        raise TypeError(f"not an lhs: {lhs!r}")

    def _lhs_Deref(self, lhs):
        """The paper's two displayed rules (temporal premise added).

        (E, lhs) ⇒l l : a*          (E, lhs) ⇒l l : a*
        read (E.M) l = some v(b,e)   read (E.M) l = some v(b,e)
        b ≤ v ∧ v + sizeof(a) ≤ e    ¬(b ≤ v ∧ v + sizeof(a) ≤ e
        [∧ lock_live(k, l)]            [∧ lock_live(k, l)])
        --------------------------   ---------------------------
        (E, *lhs) ⇒l v : a           (E, *lhs) ⇒l Abort : a
        """
        loc, ftype = self._eval_lhs(lhs.inner)
        if not isinstance(ftype, syn.TPtr):
            raise _Signal(Outcome.STUCK)
        data = self.env.memory.read(loc)
        if data is None:
            raise _Signal(Outcome.STUCK)
        data = self._norm(data)
        value, base, bound = data[0], data[1], data[2]
        pointee = self.env.resolve_struct(ftype.pointee)
        size = pointee.sizeof(self.env.structs)
        spatially_ok = base <= value and value + size <= bound
        temporally_ok = True
        if self.temporal:
            temporally_ok = self.env.memory.lock_live(data[3], data[4])
        if self.instrumented:
            if not (spatially_ok and temporally_ok):
                raise _Signal(Outcome.ABORT)
        else:
            # Partial semantics: undefined unless the access stays
            # inside the object the pointer points into.  Provenance is
            # what C's object model keys on — per-byte (or even
            # per-block) allocation is not enough, since an access
            # overflowing into an *adjacent* allocated object (a
            # one-past-the-end dereference, a too-small malloc cast to
            # a struct) would then count as defined, and the
            # no-false-positives corollary would wrongly blame the
            # instrumented semantics for aborting exactly the overflows
            # SoftBound exists to detect.  The machine stores every
            # pointer with its bounds, so the pointed-into object is
            # known here even without checks; the block-extent test is
            # kept as a belt against any bounds/allocation mismatch.
            # The temporal premise is the same story one axis over: a
            # freed-then-reused location is readable, but the object
            # the pointer points into no longer exists.
            if not (spatially_ok and temporally_ok
                    and self.env.memory.in_one_object(value, size)):
                raise _Signal(Outcome.STUCK)
        return value, pointee

    def _field(self, loc, ftype, field_name):
        struct = self.env.resolve_struct(ftype)
        if not isinstance(struct, syn.TStruct):
            raise _Signal(Outcome.STUCK)
        entry = struct.field_offset(field_name, self.env.structs)
        if entry is None:
            raise _Signal(Outcome.STUCK)
        offset, field_type = entry
        return loc + offset, field_type

    # -- rhs: (E, rhs) ⇒r (v(b,e) : a, E') ---------------------------------------------

    def _eval_rhs(self, rhs):
        self._burn()
        if isinstance(rhs, syn.IntLit):
            return self._null(rhs.value)
        if isinstance(rhs, syn.Add):
            left = self._norm(self._eval_rhs(rhs.left))
            right = self._norm(self._eval_rhs(rhs.right))
            total = left[0] + right[0]
            # Pointer arithmetic inherits the pointer's metadata
            # (Section 3.1) — bounds and, temporally, (key, lock);
            # int+int has null metadata.
            if tuple(left[1:3]) != (0, 0):
                return (total,) + tuple(left[1:])
            if tuple(right[1:3]) != (0, 0):
                return (total,) + tuple(right[1:])
            return self._null(total)
        if isinstance(rhs, syn.Read):
            loc, ftype = self._eval_lhs(rhs.lhs)
            data = self.env.memory.read(loc)
            if data is None:
                raise _Signal(Outcome.STUCK)
            return self._norm(data)
        if isinstance(rhs, syn.AddrOf):
            loc, ftype = self._eval_lhs(rhs.lhs)
            size = self.env.resolve_struct(ftype).sizeof(self.env.structs)
            # &lhs gets the bounds of the object it names — including
            # *shrunk* bounds for &(lhs.field) (Section 3.1) — and,
            # temporally, the containing block's (key, lock).
            if self.temporal:
                key, lock = self.env.memory.lock_of(loc)
                return (loc, loc, loc + size, key, lock)
            return (loc, loc, loc + size)
        if isinstance(rhs, syn.CastTo):
            # Casts preserve the value and the (incorruptible) metadata;
            # this is what makes arbitrary casts safe (Section 5.2).
            return self._eval_rhs(rhs.rhs)
        if isinstance(rhs, syn.SizeOf):
            return self._null(
                self.env.resolve_struct(rhs.ftype).sizeof(self.env.structs))
        if isinstance(rhs, syn.Malloc):
            size_value = self._eval_rhs(rhs.size)[0]
            if size_value <= 0:
                return self._null(0)
            base = self.env.memory.malloc(size_value)
            if base is None:
                raise _Signal(Outcome.OUT_OF_MEM)
            if self.temporal:
                key, lock = self.env.memory.lock_of(base)
                return (base, base, base + size_value, key, lock)
            return (base, base, base + size_value)
        raise TypeError(f"not an rhs: {rhs!r}")

    def _burn(self):
        self.fuel -= 1
        if self.fuel <= 0:
            raise _Signal(Outcome.OUT_OF_MEM)


def run(env, command, instrumented=True, temporal=False):
    """Convenience: execute ``command`` in ``env``; returns an Outcome."""
    return Evaluator(env, instrumented=instrumented,
                     temporal=temporal).run_command(command)
