"""Executable formal semantics of the paper's Section 4 fragment."""

from . import syntax
from .machine_axioms import FormalMemory
from .semantics import Environment, Evaluator, Outcome, run
from .wellformed import (command_welltyped, datum_wellformed, env_wellformed,
                         memory_wellformed, stack_wellformed)

__all__ = ["syntax", "FormalMemory", "Environment", "Evaluator", "Outcome",
           "run", "datum_wellformed", "memory_wellformed", "stack_wellformed",
           "env_wellformed", "command_welltyped"]
