"""Abstract syntax of the paper's formal C fragment (Section 4.1).

The grammar, verbatim from the paper:

.. code-block:: text

    Atomic Types  a   ::= int | p*
    Pointer Types p   ::= a | s | n | void
    Struct Types  s   ::= struct { ...; id_i : a_i; ... }
    LHS           lhs ::= x | *lhs | lhs.id | lhs->id
    RHS           rhs ::= i | rhs + rhs | lhs | &lhs | (a) rhs
                        | sizeof(a) | malloc(rhs)
    Commands      c   ::= c ; c | lhs = rhs

Named structs (``n``) permit recursive data structures; the environment
carries a named-struct table resolving them.
"""

from dataclasses import dataclass

# -- types -----------------------------------------------------------------


class FType:
    """Base class for the fragment's types."""

    def sizeof(self, structs):
        raise NotImplementedError


@dataclass(frozen=True)
class TInt(FType):
    def sizeof(self, structs):
        return 1  # sizes are in words: the fragment needs no sub-word layout

    def __str__(self):
        return "int"


@dataclass(frozen=True)
class TPtr(FType):
    """Pointer to a pointer-type (atomic, struct, named or void)."""

    pointee: object

    def sizeof(self, structs):
        return 1

    def __str__(self):
        return f"{self.pointee}*"


@dataclass(frozen=True)
class TVoid(FType):
    def sizeof(self, structs):
        return 0

    def __str__(self):
        return "void"


@dataclass(frozen=True)
class TStruct(FType):
    """Anonymous struct: ordered (field-name, atomic-type) pairs."""

    fields: tuple  # tuple of (name, FType)

    def sizeof(self, structs):
        return sum(t.sizeof(structs) for _, t in self.fields)

    def field_offset(self, name, structs):
        offset = 0
        for fname, ftype in self.fields:
            if fname == name:
                return offset, ftype
            offset += ftype.sizeof(structs)
        return None

    def __str__(self):
        inner = "; ".join(f"{n}:{t}" for n, t in self.fields)
        return f"struct{{{inner}}}"


@dataclass(frozen=True)
class TNamed(FType):
    """A named struct reference, resolved through the struct table."""

    name: str

    def sizeof(self, structs):
        return structs[self.name].sizeof(structs)

    def resolve(self, structs):
        return structs[self.name]

    def __str__(self):
        return self.name


def is_atomic(ftype):
    """Atomic types a ::= int | p* (what variables and fields hold)."""
    return isinstance(ftype, (TInt, TPtr))


# -- expressions --------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """lhs: a variable x."""

    name: str


@dataclass(frozen=True)
class Deref:
    """lhs: *lhs."""

    inner: object


@dataclass(frozen=True)
class FieldDot:
    """lhs: lhs.id."""

    inner: object
    field: str


@dataclass(frozen=True)
class FieldArrow:
    """lhs: lhs->id (sugar for (*lhs).id, kept distinct as in the paper)."""

    inner: object
    field: str


@dataclass(frozen=True)
class IntLit:
    """rhs: integer constant i."""

    value: int


@dataclass(frozen=True)
class Add:
    """rhs: rhs + rhs (also expresses pointer arithmetic after a cast)."""

    left: object
    right: object


@dataclass(frozen=True)
class Read:
    """rhs: an lhs in value position."""

    lhs: object


@dataclass(frozen=True)
class AddrOf:
    """rhs: &lhs."""

    lhs: object


@dataclass(frozen=True)
class CastTo:
    """rhs: (a) rhs — casts to an atomic type, including wild ones."""

    ftype: object
    rhs: object


@dataclass(frozen=True)
class SizeOf:
    """rhs: sizeof(a)."""

    ftype: object


@dataclass(frozen=True)
class Malloc:
    """rhs: malloc(rhs)."""

    size: object


@dataclass(frozen=True)
class Assign:
    """c: lhs = rhs."""

    lhs: object
    rhs: object


@dataclass(frozen=True)
class Free:
    """c: free(rhs) — the temporal extension's deallocation command.

    The spatial fragment of Section 4 has no ``free`` (spatial safety
    is preserved without one); the lock-and-key extension adds it, and
    with it the obligation that definedness require a *live* lock.
    """

    rhs: object


@dataclass(frozen=True)
class Seq:
    """c: c ; c."""

    first: object
    second: object


def commands_of(command):
    """Flatten a command tree into assignment order."""
    if isinstance(command, Seq):
        return commands_of(command.first) + commands_of(command.second)
    return [command]
