"""Random well-typed program generation for the soundness properties.

Hypothesis strategies producing (environment-setup, command) pairs in
the Section 4 fragment.  Generation is type-directed over a fixed
variable pool that covers every interesting construct: plain ints,
pointers to ints, pointers to a recursive named struct, address-of
(including sub-object address-of through fields), malloc, pointer
arithmetic and *wild casts* (int literals cast to pointers) — the
programs are well-typed but by no means safe, which is the point: the
theorems quantify over all well-typed programs, including aborting ones.
"""

from hypothesis import strategies as st

from . import syntax as syn
from .semantics import Environment

NODE = syn.TStruct((("v", syn.TInt()), ("next", syn.TPtr(syn.TNamed("node")))))
STRUCTS = {"node": NODE}

INT = syn.TInt()
INT_PTR = syn.TPtr(syn.TInt())
NODE_PTR = syn.TPtr(syn.TNamed("node"))

#: The variable pool every generated program draws from.
VARIABLES = {
    "i1": INT,
    "i2": INT,
    "p1": INT_PTR,
    "p2": INT_PTR,
    "q1": NODE_PTR,
    "q2": NODE_PTR,
}


def make_environment(capacity=512):
    """A fresh environment with the standard pool declared."""
    env = Environment(structs=STRUCTS, capacity=capacity)
    for name, ftype in VARIABLES.items():
        env.declare(name, ftype)
    return env


# -- lvalue strategies ------------------------------------------------------

def int_lvalues():
    return st.one_of(
        st.sampled_from([syn.Var("i1"), syn.Var("i2")]),
        st.sampled_from([syn.Deref(syn.Var("p1")), syn.Deref(syn.Var("p2"))]),
        st.sampled_from([syn.FieldArrow(syn.Var("q1"), "v"),
                         syn.FieldArrow(syn.Var("q2"), "v")]),
    )


def int_ptr_lvalues():
    return st.sampled_from([syn.Var("p1"), syn.Var("p2")])


def node_ptr_lvalues():
    return st.one_of(
        st.sampled_from([syn.Var("q1"), syn.Var("q2")]),
        st.sampled_from([syn.FieldArrow(syn.Var("q1"), "next"),
                         syn.FieldArrow(syn.Var("q2"), "next")]),
    )


# -- rhs strategies ------------------------------------------------------------

def int_rhs(depth=2):
    base = st.one_of(
        st.integers(min_value=-8, max_value=64).map(syn.IntLit),
        st.builds(syn.SizeOf, st.sampled_from([INT, NODE, syn.TNamed("node")])),
        int_lvalues().map(syn.Read),
    )
    if depth <= 0:
        return base
    recur = int_rhs(depth - 1)
    return st.one_of(base, st.builds(syn.Add, recur, recur))


def int_ptr_rhs(depth=2):
    base = st.one_of(
        int_ptr_lvalues().map(syn.Read),
        int_lvalues().map(syn.AddrOf),           # incl. &(q->v): shrunk bounds
        st.builds(lambda n: syn.CastTo(INT_PTR, syn.Malloc(syn.IntLit(n))),
                  st.integers(min_value=0, max_value=8)),
        # Wild cast: integer forged into a pointer (gets null bounds).
        st.builds(lambda n: syn.CastTo(INT_PTR, syn.IntLit(n)),
                  st.integers(min_value=0, max_value=600)),
    )
    if depth <= 0:
        return base
    return st.one_of(
        base,
        st.builds(syn.Add, int_ptr_rhs(depth - 1), int_rhs(0)),  # pointer arith
        st.builds(lambda r: syn.CastTo(INT_PTR, r), node_ptr_rhs(depth - 1)),
    )


def node_ptr_rhs(depth=2):
    base = st.one_of(
        node_ptr_lvalues().map(syn.Read),
        st.builds(lambda n: syn.CastTo(NODE_PTR, syn.Malloc(syn.IntLit(n))),
                  st.integers(min_value=0, max_value=6)),
        st.builds(lambda n: syn.CastTo(NODE_PTR, syn.IntLit(n)),
                  st.integers(min_value=0, max_value=600)),
    )
    if depth <= 0:
        return base
    return st.one_of(
        base,
        st.builds(lambda r: syn.CastTo(NODE_PTR, r), int_ptr_rhs(depth - 1)),
    )


# -- command strategies -------------------------------------------------------------

def assignments():
    return st.one_of(
        st.builds(syn.Assign, int_lvalues(), int_rhs()),
        st.builds(syn.Assign, int_ptr_lvalues(), int_ptr_rhs()),
        st.builds(syn.Assign, node_ptr_lvalues(), node_ptr_rhs()),
    )


def commands(max_length=12):
    """A straight-line command: 1..max_length assignments."""

    def fold(assigns):
        command = assigns[0]
        for item in assigns[1:]:
            command = syn.Seq(command, item)
        return command

    return st.lists(assignments(), min_size=1, max_size=max_length).map(fold)
