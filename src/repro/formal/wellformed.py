"""Well-formedness predicates (paper Section 4.3).

* ``⊢D d(b,e)`` — datum well-formedness: either ``b = 0`` (null-bounded;
  any dereference aborts) or ``b ≠ 0`` and every location in ``[b, e)``
  is allocated and ``minAddr ≤ b ≤ e < maxAddr``.
* ``⊢M M`` — memory well-formedness: every readable location's datum is
  well formed.
* ``⊢E E`` — environment well-formedness: well-formed stack frame (every
  variable maps to an allocated slot with an atomic type) plus ⊢M.

These are executable predicates: the soundness tests check Preservation
(⊢E is invariant under instrumented execution) and Progress (from ⊢E the
instrumented semantics never gets STUCK) over randomly generated
programs — the executable counterpart of the paper's Coq theorems.
"""

from . import syntax as syn


def datum_wellformed(memory, datum):
    """⊢D d(b,e) (paper Section 4.3, displayed definition)."""
    value, base, bound = datum
    if base == 0:
        return True
    if not (memory.min_addr <= base <= bound < memory.max_addr + 1):
        return False
    return all(memory.val(loc) for loc in range(base, bound))


def memory_wellformed(memory):
    """⊢M M: every accessible location holds a well-formed datum."""
    for loc in memory.allocated:
        datum = memory.read(loc)
        if datum is None:
            return False
        if not datum_wellformed(memory, datum):
            return False
    return True


def stack_wellformed(env):
    """Every variable is bound to an allocated address of atomic type."""
    for name, (addr, ftype) in env.stack.items():
        if not syn.is_atomic(ftype):
            return False
        size = ftype.sizeof(env.structs)
        if not all(env.memory.val(addr + i) for i in range(size)):
            return False
    return True


def env_wellformed(env):
    """⊢E E: well-formed stack frame and well-formed memory."""
    return stack_wellformed(env) and memory_wellformed(env.memory)


def command_welltyped(env, command):
    """S ⊢c c: the command typechecks under the stack frame's types.

    Standard C typing, specialized to the fragment: assignments require
    the lhs and rhs types to agree up to pointer/integer conflation
    introduced by casts (the rhs type is computed syntactically).
    """
    try:
        for assign in syn.commands_of(command):
            lhs_type = _type_lhs(env, assign.lhs)
            if lhs_type is None or not syn.is_atomic(lhs_type):
                return False
            rhs_type = _type_rhs(env, assign.rhs)
            if rhs_type is None:
                return False
            if not _compatible(lhs_type, rhs_type):
                return False
    except (KeyError, AttributeError):
        return False
    return True


def _compatible(a, b):
    if isinstance(a, syn.TInt) and isinstance(b, syn.TInt):
        return True
    if isinstance(a, syn.TPtr) and isinstance(b, syn.TPtr):
        return True  # pointer casts are free in the fragment
    return False


def _type_lhs(env, lhs):
    if isinstance(lhs, syn.Var):
        entry = env.stack.get(lhs.name)
        return entry[1] if entry else None
    if isinstance(lhs, syn.Deref):
        inner = _type_lhs(env, lhs.inner)
        if not isinstance(inner, syn.TPtr):
            return None
        return env.resolve_struct(inner.pointee)
    if isinstance(lhs, syn.FieldDot):
        inner = _type_lhs(env, lhs.inner)
        return _field_type(env, inner, lhs.field)
    if isinstance(lhs, syn.FieldArrow):
        inner = _type_lhs(env, lhs.inner)
        if not isinstance(inner, syn.TPtr):
            return None
        return _field_type(env, env.resolve_struct(inner.pointee), lhs.field)
    return None


def _field_type(env, struct_type, name):
    struct = env.resolve_struct(struct_type) if struct_type else None
    if not isinstance(struct, syn.TStruct):
        return None
    entry = struct.field_offset(name, env.structs)
    return entry[1] if entry else None


def _type_rhs(env, rhs):
    if isinstance(rhs, syn.IntLit):
        return syn.TInt()
    if isinstance(rhs, syn.Add):
        left = _type_rhs(env, rhs.left)
        right = _type_rhs(env, rhs.right)
        if left is None or right is None:
            return None
        if isinstance(left, syn.TPtr) and isinstance(right, syn.TInt):
            return left
        if isinstance(left, syn.TInt) and isinstance(right, syn.TPtr):
            return right
        if isinstance(left, syn.TInt) and isinstance(right, syn.TInt):
            return syn.TInt()
        return None
    if isinstance(rhs, syn.Read):
        return _type_lhs(env, rhs.lhs)
    if isinstance(rhs, syn.AddrOf):
        inner = _type_lhs(env, rhs.lhs)
        return syn.TPtr(inner) if inner is not None else None
    if isinstance(rhs, syn.CastTo):
        if _type_rhs(env, rhs.rhs) is None:
            return None
        return rhs.ftype
    if isinstance(rhs, syn.SizeOf):
        return syn.TInt()
    if isinstance(rhs, syn.Malloc):
        if not isinstance(_type_rhs(env, rhs.size), syn.TInt):
            return None
        return syn.TPtr(syn.TVoid())
    return None
