"""The axiomatized memory primitives (paper Table 2 / Section 4.2).

The paper does not commit to a memory implementation; it axiomatizes
``read``, ``write`` and ``malloc``.  :class:`FormalMemory` is one
reasonable implementation; the axioms themselves are runtime-checkable
predicates exercised by hypothesis tests in
``tests/formal/test_axioms.py``:

* reading a location after storing to it returns the stored value;
* storing to ℓ doesn't affect any other location;
* malloc returns a pointer to previously-unallocated memory;
* malloc doesn't alter the contents of already-allocated locations;
* read and write fail (return none) on unallocated memory;
* malloc fails when there is not enough space.
"""


class FormalMemory:
    """Word-addressed partial memory with an allocation set.

    Values stored are opaque to the memory (the semantics stores
    metadata-carrying triples).  Addresses start at ``min_addr`` > 0 so
    that 0 is never a valid location (NULL).
    """

    def __init__(self, capacity=4096, min_addr=16):
        self.capacity = capacity
        self.min_addr = min_addr
        self.next_free = min_addr
        self.allocated = set()
        self.contents = {}
        self.block_base = {}  # location -> base of its allocation block
        self.block_size = {}  # block base -> block size

    @property
    def max_addr(self):
        return self.min_addr + self.capacity

    # -- Table 2 operations ------------------------------------------------

    def read(self, loc):
        """``read M l``: some data if l is accessible, none otherwise."""
        if loc not in self.allocated:
            return None
        return self.contents.get(loc, (0, 0, 0))

    def write(self, loc, data):
        """``write M l d``: True on success, None (failure) otherwise."""
        if loc not in self.allocated:
            return None
        self.contents[loc] = data
        return True

    def malloc(self, size):
        """``malloc M i``: base of a fresh block, or None when exhausted.

        Fresh means: no address in the block was previously allocated —
        this implementation never reuses addresses, which trivially
        satisfies the freshness axiom (the paper's axioms permit this).
        """
        if size <= 0:
            return None
        if self.next_free + size > self.max_addr:
            return None
        base = self.next_free
        self.next_free += size
        self.block_size[base] = size
        for offset in range(size):
            self.allocated.add(base + offset)
            self.contents[base + offset] = (0, 0, 0)
            self.block_base[base + offset] = base
        return base

    # -- predicates used by well-formedness ------------------------------------

    def val(self, loc):
        """``val M i``: location i is allocated."""
        return loc in self.allocated

    def in_one_object(self, loc, size):
        """Whether ``[loc, loc+size)`` lies inside a *single* allocation
        block.  The partial semantics' definedness predicate: C leaves
        an access undefined when it crosses out of the object it points
        into, even if the neighbouring addresses happen to be allocated
        (adjacent blocks are not one object)."""
        base = self.block_base.get(loc)
        if base is None or size <= 0:
            return False
        return loc + size <= base + self.block_size[base]

    def snapshot(self):
        """Immutable view of current contents (for frame axioms)."""
        return dict(self.contents), set(self.allocated)
