"""The axiomatized memory primitives (paper Table 2 / Section 4.2).

The paper does not commit to a memory implementation; it axiomatizes
``read``, ``write`` and ``malloc``.  :class:`FormalMemory` is one
reasonable implementation; the axioms themselves are runtime-checkable
predicates exercised by hypothesis tests in
``tests/formal/test_axioms.py``:

* reading a location after storing to it returns the stored value;
* storing to ℓ doesn't affect any other location;
* malloc returns a pointer to previously-unallocated memory;
* malloc doesn't alter the contents of already-allocated locations;
* read and write fail (return none) on unallocated memory;
* malloc fails when there is not enough space.

The temporal extension (the lock-and-key companion mechanism the paper
defers dangling-pointer detection to) adds ``free`` and a lock store,
with its own axioms (``tests/formal/test_temporal_axioms.py``):

* every malloc'd block carries a fresh key — keys are never reused;
* while the block is live, ``lock_live(key, lock)`` holds;
* after ``free``, read/write on the block fail and its (key, lock)
  pair is dead *forever* — even when a later malloc recycles the lock
  slot (it holds a different key) or, with ``reuse=True``, the
  addresses themselves;
* freeing anything but a live block base fails (double free).
"""

#: Key/lock of never-deallocated objects (mirrors repro.temporal).
GLOBAL_KEY = 1
GLOBAL_LOCK = 0


class FormalMemory:
    """Word-addressed partial memory with an allocation set and a
    lock-and-key store.

    Values stored are opaque to the memory (the semantics stores
    metadata-carrying tuples).  Addresses start at ``min_addr`` > 0 so
    that 0 is never a valid location (NULL).  By default freed
    addresses are never re-issued (which trivially satisfies the
    freshness axiom); ``reuse=True`` lets malloc recycle freed ranges —
    the scenario that makes dangling pointers exploitable and the
    lock-and-key discipline necessary.
    """

    def __init__(self, capacity=4096, min_addr=16, reuse=False):
        self.capacity = capacity
        self.min_addr = min_addr
        self.reuse = reuse
        self.next_free = min_addr
        self.allocated = set()
        self.contents = {}
        self.block_base = {}  # location -> base of its allocation block
        self.block_size = {}  # block base -> block size
        # Lock-and-key state: one lock slot per live block; slot 0 is
        # the immortal global lock.
        self.locks = {GLOBAL_LOCK: GLOBAL_KEY}  # slot -> current key
        self.block_lock = {}   # live block base -> (key, slot)
        self._free_slots = []
        self._free_ranges = []  # (base, size) pools for reuse mode
        self._next_key = GLOBAL_KEY + 1
        self._next_slot = 1

    @property
    def max_addr(self):
        return self.min_addr + self.capacity

    # -- Table 2 operations ------------------------------------------------

    def read(self, loc):
        """``read M l``: some data if l is accessible, none otherwise."""
        if loc not in self.allocated:
            return None
        return self.contents.get(loc, (0, 0, 0))

    def write(self, loc, data):
        """``write M l d``: True on success, None (failure) otherwise."""
        if loc not in self.allocated:
            return None
        self.contents[loc] = data
        return True

    def malloc(self, size):
        """``malloc M i``: base of a fresh block, or None when exhausted.

        Fresh means: no address in the block is *currently* allocated.
        Without ``reuse`` no address is ever re-issued; with it, freed
        ranges may be recycled — block identity is then carried by the
        (key, lock) pair, never by the address.
        """
        if size <= 0:
            return None
        base = None
        if self.reuse:
            for i, (start, avail) in enumerate(self._free_ranges):
                if avail >= size:
                    base = start
                    if avail == size:
                        del self._free_ranges[i]
                    else:
                        self._free_ranges[i] = (start + size, avail - size)
                    break
        if base is None:
            if self.next_free + size > self.max_addr:
                return None
            base = self.next_free
            self.next_free += size
        self.block_size[base] = size
        for offset in range(size):
            self.allocated.add(base + offset)
            self.contents[base + offset] = (0, 0, 0)
            self.block_base[base + offset] = base
        # Key the block: a fresh key (never reused), a possibly
        # recycled lock slot.
        key = self._next_key
        self._next_key += 1
        if self._free_slots:
            slot = self._free_slots.pop()
        else:
            slot = self._next_slot
            self._next_slot += 1
        self.locks[slot] = key
        self.block_lock[base] = (key, slot)
        return base

    def free(self, base):
        """``free M l``: True when l is a live block base — the block's
        addresses become unallocated and its lock dies; None otherwise
        (double free, or a pointer malloc never returned)."""
        entry = self.block_lock.pop(base, None)
        if entry is None:
            return None
        _key, slot = entry
        if slot != GLOBAL_LOCK:
            self.locks.pop(slot, None)
            self._free_slots.append(slot)
        size = self.block_size[base]
        for offset in range(size):
            self.allocated.discard(base + offset)
            self.contents.pop(base + offset, None)
            self.block_base.pop(base + offset, None)
        if self.reuse:
            self._free_ranges.append((base, size))
        return True

    # -- predicates used by well-formedness ------------------------------------

    def val(self, loc):
        """``val M i``: location i is allocated."""
        return loc in self.allocated

    def lock_live(self, key, slot):
        """The temporal definedness predicate: the lock slot currently
        holds exactly this key (dead keys can never match — keys are
        never reused)."""
        return key != 0 and self.locks.get(slot) == key

    def lock_of(self, loc):
        """The (key, lock) pair of the block containing ``loc``, or
        (0, 0) when the location is not inside a live block."""
        base = self.block_base.get(loc)
        if base is None:
            return (0, 0)
        return self.block_lock.get(base, (0, 0))

    def in_one_object(self, loc, size):
        """Whether ``[loc, loc+size)`` lies inside a *single* allocation
        block.  The partial semantics' definedness predicate: C leaves
        an access undefined when it crosses out of the object it points
        into, even if the neighbouring addresses happen to be allocated
        (adjacent blocks are not one object)."""
        base = self.block_base.get(loc)
        if base is None or size <= 0:
            return False
        return loc + size <= base + self.block_size[base]

    def snapshot(self):
        """Immutable view of current contents (for frame axioms)."""
        return dict(self.contents), set(self.allocated)
