"""``repro.fuzz`` — the self-sustaining differential fuzzing campaign.

The scenario-diversity flywheel: generate random pointer-heavy programs
(clean, or with one injected defect of known violation class — see
:mod:`repro.workloads.randprog`), run each through every registered
checker policy × both VM engines × both optimization levels, and treat
any cross-configuration disagreement as a bug to be minimized and
archived.

The pieces:

* :mod:`repro.fuzz.pool` — the robustness layer: crash-isolated
  subprocess workers with per-task wallclock timeouts, worker-death
  detection and retry-once-with-backoff, so a hung or crashing
  generated program becomes a ``TIMEOUT``/``CRASH`` verdict instead of
  wedging the campaign.
* :mod:`repro.fuzz.oracle` — the differential oracle: plans the config
  matrix for a program, executes it (in workers under instruction
  budgets), and judges transparency, detection ground truth (both
  directions against ``CheckerPolicy.detects``), engine/opt-level
  agreement and serial==parallel batch equality.
* :mod:`repro.fuzz.corpus` — the content-addressed corpus directory:
  judged-seed checkpoints (atomically rewritten, so a ``kill -9``'d
  campaign resumes gracefully) and minimized findings registered as
  bugbench-style cases with JSON metadata.
* :mod:`repro.fuzz.minimize` — statement-level delta debugging that
  shrinks every discrepancy to a minimal reproducer (every accepted
  step re-verified by the oracle; size monotonically non-increasing).
* :mod:`repro.fuzz.campaign` — the long-running driver behind
  ``python -m repro fuzz run`` with ``--time-budget``/``--seeds``/
  ``--resume`` and deterministic exit codes.

See ``docs/FUZZING.md`` for the campaign model, the verdict taxonomy
and how to triage a minimized case.
"""

from .campaign import Campaign, CampaignConfig
from .corpus import Corpus
from .minimize import MinimizeResult, minimize
from .oracle import ConfigMatrix, judge_program, plan_program
from .pool import IsolatedPool, PoolTask, TaskOutcome

__all__ = [
    "Campaign",
    "CampaignConfig",
    "ConfigMatrix",
    "Corpus",
    "IsolatedPool",
    "MinimizeResult",
    "PoolTask",
    "TaskOutcome",
    "judge_program",
    "minimize",
    "plan_program",
]
