"""Worker-process entry point: ``python -m repro.fuzz.worker``.

Speaks the :mod:`repro.fuzz.pool` frame protocol: reads
``(task_id, call, args, kwargs)`` pickle frames from stdin, resolves
``call`` (a ``module:function`` path), and writes
``(task_id, "ok"|"error", payload)`` frames to the *original* stdout.
``sys.stdout`` itself is re-routed onto stderr before any task runs, so
nothing a task prints can corrupt the framing.

Exceptions a task function lets escape are pickled and returned
in-band; only process death (the parent sees pipe EOF) or a missed
deadline (the parent kills us) are out-of-band failures.
"""

import importlib
import os
import pickle
import struct
import sys

_HEADER = struct.Struct(">Q")


def _resolve(path):
    module_name, _, attr = path.partition(":")
    if not attr:
        raise ValueError(f"task call {path!r} is not 'module:function'")
    obj = importlib.import_module(module_name)
    for part in attr.split("."):
        obj = getattr(obj, part)
    return obj


def _read_exact(stream, count):
    chunks = bytearray()
    while len(chunks) < count:
        chunk = stream.read(count - len(chunks))
        if not chunk:
            return None
        chunks += chunk
    return bytes(chunks)


def _picklable_error(error):
    try:
        pickle.dumps(error)
        return error
    except Exception:
        return RuntimeError(f"{type(error).__name__}: {error}")


def main():
    stdin = sys.stdin.buffer
    # Claim the frame channel, then point fd 1 (and sys.stdout) at
    # stderr so stray prints from task code go somewhere harmless.
    frames = os.fdopen(os.dup(sys.stdout.fileno()), "wb")
    os.dup2(sys.stderr.fileno(), sys.stdout.fileno())
    sys.stdout = sys.stderr

    while True:
        header = _read_exact(stdin, _HEADER.size)
        if header is None:
            return 0
        (length,) = _HEADER.unpack(header)
        blob = _read_exact(stdin, length)
        if blob is None:
            return 0
        task_id, call, args, kwargs = pickle.loads(blob)
        try:
            value = _resolve(call)(*args, **kwargs)
            reply = (task_id, "ok", value)
        except BaseException as error:  # noqa: BLE001 — isolation boundary
            reply = (task_id, "error", _picklable_error(error))
        try:
            payload = pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as error:
            payload = pickle.dumps(
                (task_id, "error",
                 RuntimeError(f"unpicklable task result: {error}")),
                protocol=pickle.HIGHEST_PROTOCOL)
        frames.write(_HEADER.pack(len(payload)) + payload)
        frames.flush()


if __name__ == "__main__":
    sys.exit(main())
