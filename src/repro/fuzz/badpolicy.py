"""A deliberately broken checker policy for exercising the campaign.

``fuzz-bad`` *declares* that it detects heap overflows but installs no
instrumentation and no observers — the canonical "checker with a silent
hole" the differential oracle exists to catch.  Loading it and fuzzing
must produce ``missed_detection`` findings on every ``heap_overflow``
seed, and the campaign must minimize one; ``scripts/ci.py --fuzz-smoke``
asserts exactly that.

Never list this module in a default environment: the conformance suite
(rightly) fails any registered policy whose ``detects`` declaration is
a lie.  It is loaded only on demand, via::

    REPRO_PLUGINS=repro.fuzz.badpolicy python -m repro fuzz run ...
"""

from ..policy import CheckerPolicy, register_policy


class FuzzBadPolicy(CheckerPolicy):
    name = "fuzz-bad"
    description = ("intentionally broken: declares heap_overflow "
                   "detection, checks nothing (fuzz-smoke fixture)")
    family = "plugin"
    config = None
    observer_factory = None
    detects = frozenset({"heap_overflow"})


register_policy(FuzzBadPolicy)
