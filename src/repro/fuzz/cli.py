"""``python -m repro fuzz`` — drive, re-minimize and inspect campaigns.

Subcommands::

    fuzz run       run a campaign (exit 0 = clean, 1 = discrepancies
                   or infra failures)
    fuzz minimize  re-run delta minimization for an archived finding
    fuzz corpus    summarize a corpus directory and list its findings

The argparse wiring lives here (not in :mod:`repro.cli`) so the
top-level CLI only pays for fuzzing imports when the subcommand is
actually used.
"""

import json
import os

EX_OK = 0
EX_FINDINGS = 1
EX_USAGE = 64


def add_fuzz_parser(sub):
    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing campaign: generate random "
                     "(and defect-seeded) programs, diff every policy × "
                     "engine × opt level, minimize discrepancies")
    fsub = fuzz.add_subparsers(dest="fuzz_command", required=True)

    run = fsub.add_parser(
        "run", help="run a campaign (exit 0 clean / 1 discrepancies)")
    run.add_argument("--corpus", metavar="DIR", default=".fuzz-corpus",
                     help="corpus directory (checkpoint + programs + "
                          "findings); created if missing")
    run.add_argument("--seeds", type=int, default=25, metavar="N",
                     help="seed indices to fuzz; each yields one clean "
                          "and one defect-seeded program (default 25)")
    run.add_argument("--start-seed", type=int, default=0, metavar="N")
    run.add_argument("--time-budget", type=float, default=None, metavar="S",
                     help="stop starting new seeds after S wallclock "
                          "seconds (judged seeds are checkpointed)")
    run.add_argument("--jobs", type=int, default=2, metavar="N",
                     help="crash-isolated worker processes (default 2)")
    run.add_argument("--task-timeout", type=float, default=60.0, metavar="S",
                     help="per-task wallclock deadline; a worker past it "
                          "is killed and the run becomes a timeout "
                          "verdict (default 60)")
    run.add_argument("--policies", metavar="A,B,...", default=None,
                     help="restrict the matrix to these policies "
                          "(default: every registered policy)")
    run.add_argument("--quick", action="store_true",
                     help="single engine/opt cell per policy instead of "
                          "the full engine × opt matrix")
    run.add_argument("--max-statements", type=int, default=10, metavar="N")
    run.add_argument("--no-minimize", action="store_true",
                     help="archive findings without delta minimization")
    run.add_argument("--chaos", action="store_true",
                     help="front-load fault-injection tasks (hang, "
                          "worker kill, flake) to drill the robustness "
                          "layer before fuzzing")
    run.add_argument("--resume", action="store_true",
                     help="skip seeds already judged in the corpus "
                          "checkpoint (how a killed campaign continues)")
    run.add_argument("--json", action="store_true",
                     help="emit the campaign result as JSON")

    mini = fsub.add_parser(
        "minimize", help="re-run minimization for an archived finding")
    mini.add_argument("case", metavar="CASE_DIR",
                      help="a findings/<id>/ directory (case.json + "
                           "original.c)")
    mini.add_argument("--max-tests", type=int, default=500, metavar="N")
    mini.add_argument("--jobs", type=int, default=1, metavar="N")
    mini.add_argument("--task-timeout", type=float, default=60.0,
                      metavar="S")

    corpus = fsub.add_parser(
        "corpus", help="summarize a corpus directory")
    corpus.add_argument("--corpus", metavar="DIR", default=".fuzz-corpus")
    corpus.add_argument("--json", action="store_true")
    return fuzz


def run_fuzz(args, stdout, stderr):
    if args.fuzz_command == "run":
        return _cmd_run(args, stdout, stderr)
    if args.fuzz_command == "minimize":
        return _cmd_minimize(args, stdout, stderr)
    if args.fuzz_command == "corpus":
        return _cmd_corpus(args, stdout, stderr)
    return EX_USAGE


def _cmd_run(args, stdout, stderr):
    from .campaign import Campaign, CampaignConfig
    from .oracle import ConfigMatrix

    policies = None
    if args.policies:
        from ..policy import get_policy

        policies = tuple(name.strip() for name in args.policies.split(",")
                         if name.strip())
        for name in policies:
            try:
                get_policy(name)
            except KeyError as error:
                stderr.write(f"{error.args[0]}\n")
                return EX_USAGE
    matrix_cls = ConfigMatrix.quick if args.quick else ConfigMatrix.full
    matrix = matrix_cls(policies=policies)
    config = CampaignConfig(
        corpus=args.corpus, seeds=args.seeds, start_seed=args.start_seed,
        time_budget=args.time_budget, jobs=args.jobs,
        task_timeout=args.task_timeout, max_statements=args.max_statements,
        matrix=matrix, minimize=not args.no_minimize, chaos=args.chaos,
        resume=args.resume)
    campaign = Campaign(config, log=lambda message:
                        stdout.write(message + "\n"))
    result = campaign.run()
    if args.json:
        stdout.write(json.dumps(result.to_json(), indent=2, sort_keys=True)
                     + "\n")
    else:
        summary = campaign.corpus.summary()
        stdout.write(
            f"judged {result.judged} seed(s) "
            f"(+{result.skipped} resumed) in {result.elapsed:.1f}s "
            f"[{result.stopped}]: {result.clean} clean, "
            f"{result.discrepancy_seeds} discrepancy, "
            f"{result.infra_seeds} infra; corpus now holds "
            f"{summary['judged']} judged / {summary['findings']} "
            f"finding(s) at {os.path.abspath(args.corpus)}\n")
    return result.exit_code


def _cmd_minimize(args, stdout, stderr):
    from .minimize import minimize, predicate_for
    from .oracle import Discrepancy
    from .pool import IsolatedPool

    case_path = os.path.join(args.case, "case.json")
    original_path = os.path.join(args.case, "original.c")
    if not (os.path.exists(case_path) and os.path.exists(original_path)):
        stderr.write(f"{args.case}: not a finding directory "
                     f"(case.json/original.c missing)\n")
        return EX_USAGE
    with open(case_path) as handle:
        case = json.load(handle)
    with open(original_path) as handle:
        original = handle.read()
    discrepancy = Discrepancy(
        kind=case["kind"], detail=case.get("detail", ""),
        configs=tuple(case.get("configs") or ()),
        policy=case.get("policy"),
        expected_class=case.get("expected_class"),
        reference_policy=case.get("reference_policy"))
    with IsolatedPool(jobs=args.jobs,
                      task_timeout=args.task_timeout) as pool:
        predicate = predicate_for(discrepancy, pool=pool,
                                  timeout=args.task_timeout)
        if predicate is None:
            stderr.write(f"finding kind {case['kind']!r} has no shrink "
                         f"predicate\n")
            return EX_FINDINGS
        result = minimize(original, predicate, max_tests=args.max_tests)
    if not result.reproduced:
        stderr.write("original no longer reproduces the discrepancy "
                     "(fixed since it was archived?)\n")
        return EX_FINDINGS
    with open(os.path.join(args.case, "minimized.c"), "w") as handle:
        handle.write(result.source)
    stdout.write(f"minimized {result.original_lines} -> "
                 f"{result.minimized_lines} lines in {result.steps} "
                 f"step(s) / {result.tests} test(s)\n")
    return EX_OK


def _cmd_corpus(args, stdout, stderr):
    from .corpus import Corpus

    if not os.path.isdir(args.corpus):
        stderr.write(f"{args.corpus}: no such corpus directory\n")
        return EX_USAGE
    corpus = Corpus(args.corpus)
    findings = list(corpus.iter_findings())
    if args.json:
        stdout.write(json.dumps({
            "summary": corpus.summary(),
            "findings": findings,
        }, indent=2, sort_keys=True) + "\n")
        return EX_OK
    summary = corpus.summary()
    stdout.write(f"{os.path.abspath(args.corpus)}: "
                 f"{summary['judged']} judged "
                 f"({summary['clean']} clean, "
                 f"{summary['discrepancy']} discrepancy, "
                 f"{summary['infra']} infra), "
                 f"{summary['findings']} finding(s)\n")
    for case in findings:
        stdout.write(f"  {case.get('id')}: {case.get('kind')} "
                     f"[{case.get('policy')}] "
                     f"{case.get('original_lines')}->"
                     f"{case.get('minimized_lines')} lines — "
                     f"{case.get('detail', '')[:80]}\n")
    return EX_OK
