"""Statement-level delta debugging for discrepancy reproducers.

``minimize(source, predicate)`` shrinks a program while the predicate
keeps returning True ("still reproduces").  The loop is a ddmin-style
greedy line remover: try dropping chunks of contiguous lines, halving
the chunk size down to single lines, and repeat until a whole sweep
removes nothing.  Invariants (property-tested in ``tests/fuzz``):

* every *accepted* step reproduces — a candidate is only kept after the
  predicate confirms it;
* size is monotonically non-increasing, measured in lines;
* structural breakage is self-rejecting — a removal that makes the
  program unparseable fails to compile, the predicate returns False,
  and the removal is discarded.  No grammar knowledge needed.

``predicate_for`` builds the reproduction predicate from an oracle
:class:`~repro.fuzz.oracle.Discrepancy`: "policy X still misses the
violation the reference policy still sees", "these two configurations
still disagree", "this configuration still exhausts its instruction
budget", and so on.  Candidates run under a small VM instruction budget
(and inside a crash-isolated pool when the finding is a host crash), so
minimizing a hang cannot hang the minimizer.
"""

from dataclasses import dataclass

from .oracle import RUN_CALL, run_config

#: Instruction budget for minimization runs — far smaller than the
#: campaign budget; reproducers are tiny.
MINIMIZE_MAX_INSTRUCTIONS = 5_000_000


@dataclass
class MinimizeResult:
    """Outcome of one minimization."""

    source: str
    original: str
    reproduced: bool        # did the *original* satisfy the predicate?
    steps: int = 0          # accepted removals
    tests: int = 0          # predicate invocations

    @property
    def original_lines(self):
        return self.original.count("\n")

    @property
    def minimized_lines(self):
        return self.source.count("\n")


def minimize(source, predicate, max_tests=2000):
    """Shrink ``source`` while ``predicate(candidate)`` stays True.

    Returns a :class:`MinimizeResult`; if the original itself does not
    reproduce (``reproduced=False``) the source comes back unchanged —
    the caller archives it unminimized rather than minimizing noise.
    ``max_tests`` bounds predicate invocations so a pathological
    predicate cannot stall the campaign.
    """
    result = MinimizeResult(source=source, original=source, reproduced=False)
    result.tests += 1
    if not predicate(source):
        return result
    result.reproduced = True

    lines = source.splitlines()
    changed = True
    while changed and result.tests < max_tests:
        changed = False
        chunk = max(len(lines) // 2, 1)
        while chunk >= 1 and result.tests < max_tests:
            index = 0
            while index < len(lines) and result.tests < max_tests:
                candidate = lines[:index] + lines[index + chunk:]
                if not candidate:
                    index += chunk
                    continue
                result.tests += 1
                if predicate(_join(candidate)):
                    lines = candidate
                    result.steps += 1
                    changed = True
                    # keep index: the next chunk slid into place
                else:
                    index += chunk
            chunk //= 2
    result.source = _join(lines)
    return result


def _join(lines):
    return "\n".join(lines) + "\n"


# -- reproduction predicates ------------------------------------------------


def parse_config_key(key):
    """``"spatial/compiled/O1"`` -> ``("spatial", "compiled", 1)``.

    The opt component comes back as the integer level (0, 1 or 2), which
    every run entry point accepts directly."""
    policy, engine, opt = key.split("/")
    return policy, engine, int(opt[1:] or 0)


def _make_runner(pool=None, max_instructions=MINIMIZE_MAX_INSTRUCTIONS,
                 timeout=None):
    """A ``run(source, policy, engine, optimize)`` callable returning
    oracle run-value dicts, in-process by default or via a crash-
    isolated pool when candidates may kill the host process."""
    if pool is None:
        def run(source, policy, engine, optimize):
            return run_config(source, policy, engine, optimize,
                              max_instructions=max_instructions)
        return run

    from .pool import PoolTask

    def run(source, policy, engine, optimize):
        task = PoolTask(RUN_CALL, (source, policy, engine, optimize),
                        {"max_instructions": max_instructions},
                        timeout=timeout)
        (outcome,) = pool.run([task])
        if outcome.status != "ok":
            return {"status": outcome.status}
        return outcome.value

    return run


def _reference_for(discrepancy):
    """A policy that *should* still detect the class — the positive
    anchor that stops a missed-detection predicate from accepting the
    empty program."""
    if discrepancy.reference_policy:
        return discrepancy.reference_policy
    from ..policy import all_policies

    for policy in all_policies():
        if (policy.name != discrepancy.policy
                and discrepancy.expected_class in policy.detects):
            return policy.name
    return None


def predicate_for(discrepancy, pool=None,
                  max_instructions=MINIMIZE_MAX_INSTRUCTIONS, timeout=None):
    """Build ``predicate(source) -> bool`` reproducing ``discrepancy``.

    Returns None when the discrepancy kind has no meaningful shrink
    predicate (e.g. ``infra``) — the caller archives it unminimized.
    """
    kind = discrepancy.kind
    # crash candidates must run isolated (they can kill their process);
    # everything else runs in-process — cheaper per step, and the VM
    # instruction budget already defangs hangs.
    if kind == "crash" and pool is None:
        return None
    run = _make_runner(pool if kind == "crash" else None,
                       max_instructions, timeout)

    if not discrepancy.configs:
        return None
    primary = discrepancy.configs[0]

    if kind == "missed_detection":
        reference = _reference_for(discrepancy)
        if reference is None:
            return None
        policy, engine, optimize = parse_config_key(primary)

        def predicate(source):
            seen = run(source, reference, engine, optimize)
            if seen.get("status") != "ok" or not seen.get("detected"):
                return False
            missed = run(source, policy, engine, optimize)
            return missed.get("status") == "ok" and not missed.get("detected")

        return predicate

    if kind in ("undeclared_detection", "transparency"):
        policy, engine, optimize = parse_config_key(primary)

        def predicate(source):
            value = run(source, policy, engine, optimize)
            if value.get("status") != "ok":
                return False
            if value.get("detected"):
                return True
            # Baseline-divergence transparency findings reproduce as
            # "still disagrees with the unprotected run".
            if (kind == "transparency"
                    and len(discrepancy.configs) > 1):
                base_policy, base_engine, base_opt = parse_config_key(
                    discrepancy.configs[1])
                base = run(source, base_policy, base_engine, base_opt)
                return (base.get("status") == "ok"
                        and not base.get("trap_kind")
                        and not value.get("trap_kind")
                        and ((value["exit_code"], value["output"])
                             != (base["exit_code"], base["output"])))
            return False

        return predicate

    if kind in ("divergence", "parallel_divergence"):
        if kind == "parallel_divergence" or len(discrepancy.configs) < 2:
            return None  # batch-level findings don't shrink per-config

        def predicate(source):
            signatures = set()
            for key in discrepancy.configs[:4]:
                policy, engine, optimize = parse_config_key(key)
                value = run(source, policy, engine, optimize)
                if value.get("status") != "ok":
                    return False
                if value.get("trap_kind"):
                    signatures.add(("trap", value["trap_kind"],
                                    value["detected"]))
                else:
                    signatures.add(("clean", value["exit_code"],
                                    value["output"]))
            return len(signatures) > 1

        return predicate

    if kind == "hang":
        policy, engine, optimize = parse_config_key(primary)

        def predicate(source):
            value = run(source, policy, engine, optimize)
            return (value.get("status") == "ok"
                    and value.get("trap_kind") == "resource_limit") \
                or value.get("status") == "timeout"

        return predicate

    if kind == "crash":
        policy, engine, optimize = parse_config_key(primary)

        def predicate(source):
            value = run(source, policy, engine, optimize)
            return value.get("status") == "crash"

        return predicate

    return None
