"""Crash-isolated worker pool: the campaign's robustness layer.

``ProcessPoolExecutor`` shares one result pipe across workers, which
makes "this exact task hung/died" unattributable.  The fuzzing campaign
needs that attribution — a generated program that wedges or kills its
interpreter must become a per-task ``TIMEOUT``/``CRASH`` verdict, not a
wedged campaign — so this pool runs one task at a time per worker over
private pipes:

* each worker is a ``python -m repro.fuzz.worker`` subprocess speaking
  length-prefixed pickle frames on stdin/stdout (its own ``sys.stdout``
  is re-routed to stderr so stray prints can never corrupt framing);
* every task has a wallclock deadline; a worker that misses it is
  SIGKILLed and the task records ``timeout`` (hung programs also burn
  the VM instruction budget first, which is much cheaper — the
  wallclock deadline is the backstop for hangs outside the VM);
* a worker that dies mid-task (segfault, OOM kill, ``kill -9``) is
  detected by pipe EOF; the task is requeued once with backoff (the
  infra-flake heal) and records ``crash`` if it kills its worker again;
* in-band worker exceptions (anything the task function did not catch)
  are likewise retried once, then record ``error`` carrying the
  exception.

Workers are respawned on demand, so one poisonous task never takes the
pool down; results are index-aligned with the submitted tasks.
"""

import os
import pickle
import select
import struct
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from queue import Empty, Queue

_HEADER = struct.Struct(">Q")

#: Statuses a task outcome can carry.
OK = "ok"
TIMEOUT = "timeout"
CRASH = "crash"
ERROR = "error"


@dataclass(frozen=True)
class PoolTask:
    """One unit of isolated work: ``call`` is a ``module:function``
    path resolved inside the worker; args/kwargs must be picklable."""

    call: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    #: Per-task wallclock deadline override (seconds), else pool default.
    timeout: float = None


@dataclass
class TaskOutcome:
    """What happened to one task, with the robustness verdicts
    first-class: ``ok``/``timeout``/``crash``/``error``."""

    status: str
    value: object = None
    #: The worker-side exception (or a string describing the failure).
    error: object = None
    attempts: int = 1
    elapsed: float = 0.0

    @property
    def ok(self):
        return self.status == OK


def write_frame(stream, payload):
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    stream.write(_HEADER.pack(len(blob)) + blob)
    stream.flush()


class _WorkerDied(Exception):
    pass


class _Deadline(Exception):
    pass


class _Worker:
    """One subprocess + its read buffer.  Not thread-safe; owned by a
    single pool thread."""

    def __init__(self, cmd, env):
        self.proc = subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, env=env, close_fds=True)
        self._buffer = bytearray()

    @property
    def alive(self):
        return self.proc.poll() is None

    def kill(self):
        try:
            self.proc.kill()
        except OSError:
            pass
        try:
            self.proc.wait(timeout=5)
        except Exception:
            pass

    def send(self, payload):
        try:
            write_frame(self.proc.stdin, payload)
        except (BrokenPipeError, OSError):
            raise _WorkerDied from None

    def _read_exact(self, count, deadline):
        fd = self.proc.stdout.fileno()
        while len(self._buffer) < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _Deadline
            ready, _, _ = select.select([fd], [], [], remaining)
            if not ready:
                raise _Deadline
            chunk = os.read(fd, 1 << 16)
            if not chunk:
                raise _WorkerDied
            self._buffer += chunk
        blob = bytes(self._buffer[:count])
        del self._buffer[:count]
        return blob

    def receive(self, deadline):
        (length,) = _HEADER.unpack(self._read_exact(_HEADER.size, deadline))
        return pickle.loads(self._read_exact(length, deadline))


def default_worker_command():
    return [sys.executable, "-m", "repro.fuzz.worker"]


class IsolatedPool:
    """A fixed-size pool of crash-isolated workers.

    ``run(tasks)`` executes :class:`PoolTask`\\ s (or bare
    ``(call, args)`` tuples) and returns index-aligned
    :class:`TaskOutcome`\\ s; the pool survives — and attributes —
    hangs, worker deaths and worker exceptions.  Workers stay warm
    across ``run`` calls; use as a context manager to close them.
    """

    def __init__(self, jobs=2, task_timeout=30.0, retries=1, backoff=0.1,
                 worker_cmd=None, env=None):
        self.jobs = max(int(jobs), 1)
        self.task_timeout = task_timeout
        self.retries = max(int(retries), 0)
        self.backoff = backoff
        self._cmd = list(worker_cmd) if worker_cmd else default_worker_command()
        self._env = dict(env) if env is not None else self._default_env()
        self._workers = [None] * self.jobs
        self._closed = False

    @staticmethod
    def _default_env():
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH")
        if not existing:
            env["PYTHONPATH"] = src_root
        elif src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = src_root + os.pathsep + existing
        return env

    # -- lifecycle -----------------------------------------------------

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def close(self):
        self._closed = True
        for slot, worker in enumerate(self._workers):
            if worker is not None:
                worker.kill()
                self._workers[slot] = None

    # -- execution -----------------------------------------------------

    @staticmethod
    def _as_task(item):
        if isinstance(item, PoolTask):
            return item
        if isinstance(item, dict):
            return PoolTask(**item)
        return PoolTask(*item)

    def run(self, tasks):
        """Execute ``tasks``; returns index-aligned
        :class:`TaskOutcome`\\ s.  Never raises for task-level failures
        — those are statuses."""
        if self._closed:
            raise RuntimeError("pool is closed")
        tasks = [self._as_task(item) for item in tasks]
        outcomes = [None] * len(tasks)
        if not tasks:
            return outcomes
        queue = Queue()
        for index, task in enumerate(tasks):
            queue.put((index, task, 0))
        done = threading.Semaphore(0)
        remaining = [len(tasks)]
        lock = threading.Lock()

        def finish(index, outcome):
            outcomes[index] = outcome
            with lock:
                remaining[0] -= 1
            done.release()

        def requeue(index, task, attempt):
            time.sleep(self.backoff * (attempt + 1))
            queue.put((index, task, attempt + 1))

        threads = [
            threading.Thread(target=self._drain, name=f"fuzz-pool-{slot}",
                             args=(slot, queue, finish, requeue),
                             daemon=True)
            for slot in range(min(self.jobs, len(tasks)))
        ]
        for thread in threads:
            thread.start()
        while remaining[0] > 0:
            done.acquire()
        # Unblock and retire the drain threads.
        for _ in threads:
            queue.put(None)
        for thread in threads:
            thread.join(timeout=5)
        return outcomes

    def _worker_for(self, slot):
        worker = self._workers[slot]
        if worker is None or not worker.alive:
            worker = _Worker(self._cmd, self._env)
            self._workers[slot] = worker
        return worker

    def _retire(self, slot):
        worker = self._workers[slot]
        if worker is not None:
            worker.kill()
        self._workers[slot] = None

    def _drain(self, slot, queue, finish, requeue):
        while True:
            try:
                item = queue.get(timeout=1.0)
            except Empty:
                continue
            if item is None:
                return
            index, task, attempt = item
            started = time.monotonic()
            timeout = task.timeout if task.timeout is not None \
                else self.task_timeout
            deadline = started + timeout
            try:
                worker = self._worker_for(slot)
                worker.send((index, task.call, task.args, task.kwargs))
                reply_id, status, payload = worker.receive(deadline)
                while reply_id != index:  # stale reply from a past task
                    reply_id, status, payload = worker.receive(deadline)
            except _Deadline:
                self._retire(slot)
                finish(index, TaskOutcome(
                    TIMEOUT, error=f"no result within {timeout:.1f}s "
                                   f"(worker killed)",
                    attempts=attempt + 1,
                    elapsed=time.monotonic() - started))
                continue
            except _WorkerDied:
                self._retire(slot)
                if attempt < self.retries:
                    requeue(index, task, attempt)
                else:
                    finish(index, TaskOutcome(
                        CRASH, error="worker process died",
                        attempts=attempt + 1,
                        elapsed=time.monotonic() - started))
                continue
            elapsed = time.monotonic() - started
            if status == "ok":
                finish(index, TaskOutcome(OK, value=payload,
                                          attempts=attempt + 1,
                                          elapsed=elapsed))
            elif attempt < self.retries:
                requeue(index, task, attempt)
            else:
                finish(index, TaskOutcome(ERROR, error=payload,
                                          attempts=attempt + 1,
                                          elapsed=elapsed))
