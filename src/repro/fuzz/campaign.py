"""The campaign driver: generate → execute → judge → checkpoint →
minimize, under a wallclock budget, surviving everything.

A campaign walks a deterministic seed plan — each seed index yields one
clean program and one mutated program (defect classes cycle) — and for
each un-judged seed runs the full differential matrix inside the
crash-isolated pool, judges the outcomes, checkpoints the verdict to
the corpus (atomically, per seed), and delta-minimizes any discrepancy
into a findings case.  Because every judged seed hits disk before the
next one starts, ``kill -9`` at any point loses at most the in-flight
seed; ``--resume`` skips everything already judged.

Chaos mode front-loads fault-injection tasks (a hung task, a worker
SIGKILL that heals on retry, an in-band flake) through the same pool to
prove the robustness layer end-to-end before any real fuzzing happens.
"""

import itertools
import os
import time
from dataclasses import dataclass, field

from ..obs import obs_enabled
from ..obs.metrics import default_registry
from ..obs.trace import tracer
from ..workloads import randprog
from .corpus import Corpus
from .minimize import minimize, predicate_for
from .oracle import ConfigMatrix, judge_program, plan_program
from .pool import IsolatedPool, PoolTask

#: Minimize at most this many discrepancies per seed — one reproducer
#: per root cause is plenty; the rest are recorded in the checkpoint.
MAX_MINIMIZE_PER_SEED = 2


@dataclass
class CampaignConfig:
    """Knobs for one campaign run."""

    corpus: str
    seeds: int = 25                  # seed indices; each yields 2 programs
    start_seed: int = 0
    time_budget: float = None        # wallclock seconds, None = unbounded
    jobs: int = 2
    task_timeout: float = 60.0
    max_statements: int = 10
    matrix: ConfigMatrix = None      # default: ConfigMatrix.full()
    minimize: bool = True
    minimize_tests: int = 300
    chaos: bool = False
    resume: bool = True              # skip seeds already in the corpus


@dataclass
class CampaignResult:
    """What a campaign did, for reporting and exit codes."""

    #: The count fields below are derived from the shared obs metrics
    #: registry at the end of :meth:`Campaign.run` (the registry is the
    #: source of truth); they are kept as compatibility aliases.
    judged: int = 0
    skipped: int = 0
    clean: int = 0
    discrepancy_seeds: int = 0
    infra_seeds: int = 0
    findings: list = field(default_factory=list)   # case.json paths
    chaos: dict = field(default_factory=dict)
    stopped: str = "seeds_exhausted"               # or "time_budget"
    elapsed: float = 0.0
    #: The repro_fuzz_* registry delta for this run (only populated —
    #: and only emitted by to_json — when observability is enabled).
    metrics: dict = None

    @property
    def exit_code(self):
        return 1 if (self.discrepancy_seeds or self.infra_seeds
                     or self.chaos.get("failed")) else 0

    def to_json(self):
        row = {
            "judged": self.judged,
            "skipped": self.skipped,
            "clean": self.clean,
            "discrepancy_seeds": self.discrepancy_seeds,
            "infra_seeds": self.infra_seeds,
            "findings": list(self.findings),
            "chaos": self.chaos,
            "stopped": self.stopped,
            "elapsed": round(self.elapsed, 2),
            "exit_code": self.exit_code,
        }
        if self.metrics is not None:
            row["metrics"] = self.metrics
        return row


def seed_plan(config):
    """The deterministic (seed_key, builder) schedule: for each index,
    one clean program then one mutated program with a cycling defect."""
    defect_names = list(randprog.DEFECTS)
    for offset in range(config.seeds):
        index = config.start_seed + offset
        yield (f"clean:{index}",
               lambda index=index: randprog.generate(
                   index, max_statements=config.max_statements))
        defect = defect_names[index % len(defect_names)]
        yield (f"{defect}:{index}",
               lambda index=index, defect=defect: randprog.generate_mutated(
                   index, defect=defect,
                   max_statements=config.max_statements))


class Campaign:
    """One fuzzing campaign over a corpus directory."""

    def __init__(self, config, log=None):
        self.config = config
        self.matrix = config.matrix or ConfigMatrix.full()
        self.corpus = Corpus(config.corpus)
        self.log = log or (lambda message: None)

    def run(self):
        config = self.config
        result = CampaignResult()
        started = time.monotonic()
        # The shared obs registry is the campaign's single source of
        # truth for seed tallies; the CampaignResult count fields are
        # derived from its delta at the end (compat aliases).
        registry = default_registry()
        before = self._fuzz_series(registry)

        def out_of_time():
            return (config.time_budget is not None
                    and time.monotonic() - started >= config.time_budget)

        with IsolatedPool(jobs=config.jobs,
                          task_timeout=config.task_timeout) as pool:
            if config.chaos:
                result.chaos = self._run_chaos(pool)
                status = "ok" if not result.chaos.get("failed") else "FAILED"
                self.log(f"chaos drill: {status} {result.chaos}")

            clean_counter = itertools.count()
            for seed_key, build in seed_plan(config):
                if out_of_time():
                    result.stopped = "time_budget"
                    break
                if config.resume and self.corpus.is_judged(seed_key):
                    registry.counter("repro_fuzz_skipped_total").inc()
                    continue
                span = tracer().start_span("fuzz.seed", seed=seed_key)
                program = build()
                sha = self.corpus.add_program(program.source)
                is_clean = seed_key.startswith("clean:")
                parallel_check = (
                    is_clean and self.matrix.parallel_every
                    and next(clean_counter) % self.matrix.parallel_every == 0)
                plan = plan_program(program, self.matrix,
                                    parallel_check=parallel_check)
                outcomes = pool.run([task for _, task in plan])
                judgment = judge_program(
                    program,
                    list(zip((cfg for cfg, _ in plan), outcomes)),
                    self.matrix)
                self.corpus.record(seed_key, judgment, sha, extra={
                    "defect": getattr(program, "defect", None),
                    "expected_class": getattr(program, "expected_class",
                                              None),
                })
                if judgment.verdict == "clean":
                    verdict = "clean"
                elif judgment.verdict == "infra":
                    verdict = "infra"
                    self.log(f"{seed_key}: INFRA {judgment.infra}")
                else:
                    verdict = "discrepancy"
                    kinds = sorted({d.kind
                                    for d in judgment.discrepancies})
                    self.log(f"{seed_key}: DISCREPANCY {kinds} "
                             f"({len(judgment.discrepancies)} total)")
                    if config.minimize:
                        self._minimize_findings(
                            pool, seed_key, program, judgment, result)
                registry.counter("repro_fuzz_seeds_total",
                                 {"verdict": verdict}).inc()
                span.finish(verdict=verdict)

        result.elapsed = time.monotonic() - started
        delta = {}
        after = self._fuzz_series(registry)
        for key, value in after.items():
            grown = value - before.get(key, 0)
            if grown:
                delta[key] = grown
        result.clean = delta.get(
            "repro_fuzz_seeds_total{verdict=clean}", 0)
        result.infra_seeds = delta.get(
            "repro_fuzz_seeds_total{verdict=infra}", 0)
        result.discrepancy_seeds = delta.get(
            "repro_fuzz_seeds_total{verdict=discrepancy}", 0)
        result.judged = (result.clean + result.infra_seeds
                         + result.discrepancy_seeds)
        result.skipped = delta.get("repro_fuzz_skipped_total", 0)
        if obs_enabled():
            result.metrics = delta
        return result

    @staticmethod
    def _fuzz_series(registry):
        return {key: value for key, value in registry.snapshot().items()
                if key.startswith("repro_fuzz_")}

    # -- minimization --------------------------------------------------

    def _minimize_findings(self, pool, seed_key, program, judgment, result):
        for discrepancy in judgment.discrepancies[:MAX_MINIMIZE_PER_SEED]:
            predicate = predicate_for(
                discrepancy, pool=pool,
                timeout=self.config.task_timeout)
            if predicate is None:
                minimized = program.source  # archived unshrunk
                shrunk = None
            else:
                shrunk = minimize(program.source, predicate,
                                  max_tests=self.config.minimize_tests)
                minimized = shrunk.source
            finding_id = "-".join(filter(None, (
                discrepancy.kind, discrepancy.policy,
                seed_key.replace(":", "-"))))
            case_dir = self.corpus.add_finding(
                finding_id, discrepancy, program.source, minimized,
                seed_key, extra={
                    "defect": getattr(program, "defect", None),
                    "minimize_steps": shrunk.steps if shrunk else 0,
                    "minimize_tests": shrunk.tests if shrunk else 0,
                    "reproduced": shrunk.reproduced if shrunk else False,
                })
            result.findings.append(case_dir)
            default_registry().counter("repro_fuzz_findings_total").inc()
            lines = minimized.count("\n")
            self.log(f"  minimized -> {os.path.basename(case_dir)} "
                     f"({program.source.count(chr(10))} -> {lines} lines)")

    # -- chaos ---------------------------------------------------------

    def _run_chaos(self, pool):
        """Push the robustness layer through its three failure modes
        with fault-injection tasks; returns a summary dict with
        ``failed`` listing any verdict that came back wrong."""
        import tempfile

        marker_dir = tempfile.mkdtemp(prefix="repro-fuzz-chaos-")
        kill_marker = os.path.join(marker_dir, "kill-once")
        flake_marker = os.path.join(marker_dir, "flaky-once")
        tasks = [
            PoolTask("repro.fuzz._testhooks:hang", (3600.0,), timeout=1.5),
            PoolTask("repro.fuzz._testhooks:kill_self_once", (kill_marker,)),
            PoolTask("repro.fuzz._testhooks:flaky_once", (flake_marker,)),
            PoolTask("repro.fuzz._testhooks:echo", ("alive",)),
        ]
        outcomes = pool.run(tasks)
        expectations = [
            ("hung task", outcomes[0].status == "timeout"),
            ("killed worker retried",
             outcomes[1].ok and outcomes[1].value == "recovered"
             and outcomes[1].attempts == 2),
            ("in-band flake retried",
             outcomes[2].ok and outcomes[2].value == "recovered"
             and outcomes[2].attempts == 2),
            ("pool still serving", outcomes[3].ok
             and outcomes[3].value == "alive"),
        ]
        failed = [name for name, held in expectations if not held]
        return {
            "verdicts": [outcome.status for outcome in outcomes],
            "attempts": [outcome.attempts for outcome in outcomes],
            "failed": failed,
        }
