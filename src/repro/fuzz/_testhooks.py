"""Fault-injection hooks for exercising the robustness layer.

These run *inside* pool workers (addressed by ``module:function`` task
paths) and simulate the failure modes the campaign must survive: a hung
task, a worker killed out from under the pool, and an infra flake that
heals on retry.  Used by ``tests/fuzz`` and the chaos legs of
``python -m repro fuzz run --chaos`` / ``scripts/ci.py --fuzz-smoke``.
"""

import os
import signal
import time


def echo(value):
    """Round-trip check."""
    return value


def hang(seconds=3600.0):
    """Simulate a wedged task: sleep far past any sane deadline."""
    time.sleep(seconds)
    return "woke"


def kill_self():
    """Simulate a segfaulting/OOM-killed worker: die without a reply."""
    os.kill(os.getpid(), signal.SIGKILL)


def kill_self_once(marker_path):
    """Die the first time, succeed on the retry — the infra-flake shape
    the requeue-once policy exists for."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return "recovered"


def flaky_once(marker_path):
    """Raise in-band the first time, succeed on the retry."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write(str(os.getpid()))
        raise RuntimeError("injected flake (first attempt)")
    return "recovered"


def write_pid(path):
    """Report the worker's pid so a test can SIGKILL it externally."""
    with open(path, "w") as handle:
        handle.write(str(os.getpid()))
    return os.getpid()
