"""Compatibility alias for :mod:`repro.harness.faults`.

The fault-injection hooks the fuzz campaign drills with started life
here; PR 7 moved them to :mod:`repro.harness.faults` so the fuzz pool
and the artifact store share one chaos toolbox.  This module remains so
``module:function`` task paths recorded in corpora, tests and docs
(``repro.fuzz._testhooks:hang``) keep resolving.
"""

from ..harness.faults import (  # noqa: F401
    echo,
    flaky_once,
    hang,
    kill_self,
    kill_self_once,
    write_pid,
)
