"""The campaign's on-disk state: corpus checkpoint + minimized findings.

Layout of a corpus directory::

    corpus.json             checkpoint (atomically replaced, never torn)
    programs/<sha12>.c      content-addressed program sources
    findings/<id>/
        case.json           bugbench-style metadata for the finding
        original.c          the full reproducer as generated
        minimized.c         the delta-debugged minimal reproducer

``corpus.json`` maps every judged seed key (``clean:17``,
``use_after_free:42``, ...) to its verdict, so a campaign that is
``kill -9``'d mid-run resumes exactly where it stopped: already-judged
seeds are skipped, the in-flight seed is re-run.  The checkpoint is
written with ``tmpfile + os.replace`` — a reader never observes a
half-written file — and an unreadable checkpoint (disk torn some other
way) degrades to an empty corpus instead of wedging the campaign.
"""

import hashlib
import json
import os
import time

SCHEMA = "fuzz-corpus-v1"
CASE_SCHEMA = "fuzz-case-v1"


def source_sha(source):
    return hashlib.sha256(source.encode()).hexdigest()[:12]


def _atomic_write_json(path, document):
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class Corpus:
    """A corpus directory.  Creating one loads any existing checkpoint;
    ``record`` + ``save`` keep it current."""

    def __init__(self, root):
        self.root = os.path.abspath(root)
        self.programs_dir = os.path.join(self.root, "programs")
        self.findings_dir = os.path.join(self.root, "findings")
        os.makedirs(self.programs_dir, exist_ok=True)
        os.makedirs(self.findings_dir, exist_ok=True)
        self.checkpoint_path = os.path.join(self.root, "corpus.json")
        #: seed key -> judged record (verdict, sha, runs, discrepancies).
        self.judged = {}
        self.meta = {}
        self._load()

    def _load(self):
        if not os.path.exists(self.checkpoint_path):
            return
        try:
            with open(self.checkpoint_path) as handle:
                document = json.load(handle)
            if document.get("schema") != SCHEMA:
                raise ValueError(f"unknown schema {document.get('schema')!r}")
            self.judged = dict(document.get("judged", {}))
            self.meta = dict(document.get("meta", {}))
        except (OSError, ValueError, KeyError) as error:
            # A torn/foreign checkpoint must not wedge the campaign.
            self.judged = {}
            self.meta = {"recovered_from": f"{type(error).__name__}: {error}"}

    # -- programs ------------------------------------------------------

    def add_program(self, source):
        """Store ``source`` content-addressed; returns its sha12."""
        sha = source_sha(source)
        path = os.path.join(self.programs_dir, f"{sha}.c")
        if not os.path.exists(path):
            with open(path, "w") as handle:
                handle.write(source)
        return sha

    def program_path(self, sha):
        return os.path.join(self.programs_dir, f"{sha}.c")

    # -- judged seeds --------------------------------------------------

    def is_judged(self, seed_key):
        return seed_key in self.judged

    def record(self, seed_key, judgment, sha, extra=None):
        """Record one seed's judgment and checkpoint immediately — the
        crash-consistency contract is "every judged seed survives"."""
        entry = {
            "sha": sha,
            "verdict": judgment.verdict,
            "runs": judgment.runs,
            "discrepancies": [d.to_json() for d in judgment.discrepancies],
            "infra": list(judgment.infra),
        }
        if extra:
            entry.update(extra)
        self.judged[seed_key] = entry
        self.save()
        return entry

    def save(self):
        _atomic_write_json(self.checkpoint_path, {
            "schema": SCHEMA,
            "meta": self.meta,
            "judged": self.judged,
        })

    # -- findings ------------------------------------------------------

    def add_finding(self, finding_id, discrepancy, original, minimized,
                    seed_key, extra=None):
        """Register a minimized reproducer as a bugbench-style case
        directory; returns its path.  ``finding_id`` collisions get a
        numeric suffix rather than clobbering an older case."""
        case_id = finding_id
        counter = 1
        while os.path.exists(os.path.join(self.findings_dir, case_id)):
            counter += 1
            case_id = f"{finding_id}-{counter}"
        case_dir = os.path.join(self.findings_dir, case_id)
        os.makedirs(case_dir)
        with open(os.path.join(case_dir, "original.c"), "w") as handle:
            handle.write(original)
        with open(os.path.join(case_dir, "minimized.c"), "w") as handle:
            handle.write(minimized)
        case = {
            "schema": CASE_SCHEMA,
            "id": case_id,
            "seed": seed_key,
            "kind": discrepancy.kind,
            "policy": discrepancy.policy,
            "expected_class": discrepancy.expected_class,
            "reference_policy": discrepancy.reference_policy,
            "configs": list(discrepancy.configs),
            "detail": discrepancy.detail,
            "original_sha": source_sha(original),
            "minimized_sha": source_sha(minimized),
            "original_lines": original.count("\n"),
            "minimized_lines": minimized.count("\n"),
            "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        }
        if extra:
            case.update(extra)
        _atomic_write_json(os.path.join(case_dir, "case.json"), case)
        return case_dir

    def iter_findings(self):
        """Yield every finding's ``case.json`` document, sorted by id."""
        if not os.path.isdir(self.findings_dir):
            return
        for name in sorted(os.listdir(self.findings_dir)):
            case_path = os.path.join(self.findings_dir, name, "case.json")
            if os.path.exists(case_path):
                try:
                    with open(case_path) as handle:
                        yield json.load(handle)
                except (OSError, ValueError):
                    yield {"id": name, "error": "unreadable case.json"}

    # -- reporting -----------------------------------------------------

    def summary(self):
        counts = {"clean": 0, "discrepancy": 0, "infra": 0}
        for entry in self.judged.values():
            counts[entry.get("verdict", "infra")] = \
                counts.get(entry.get("verdict", "infra"), 0) + 1
        counts["judged"] = len(self.judged)
        counts["findings"] = sum(1 for _ in self.iter_findings())
        return counts
