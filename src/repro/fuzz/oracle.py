"""The differential oracle: plan a config matrix, judge the outcomes.

For one generated program the oracle runs every registered
:class:`~repro.policy.CheckerPolicy` × both VM engines (the reference
interpreter and the closure-compiled engine) × every optimization
level — including ``-O2`` (solver-backed static check elimination) for
policies declaring ``provable`` — then diffs:

* **transparency** on clean programs — identical exit code and output
  everywhere, and no checker may claim a violation (the paper's
  "no false positives" claim, continuously);
* **detection** on mutated programs — each policy must detect the
  injected defect's violation class exactly when its ``detects``
  declaration claims it (both directions), and every configuration of
  one policy must agree on the outcome;
* **serial == parallel** — a sampled ``Session.run_many`` batch must be
  identical at ``jobs=1`` and ``jobs=2``.

The ``-O2`` cells are the prove subsystem's adversary: a wrong proof
deletes a check that should have fired, which surfaces here as a
``missed_detection`` (mutated seed, O2 ran past the defect while O0/O1
trapped) or a per-policy ``divergence`` finding — never silently.

Execution happens inside :mod:`repro.fuzz.pool` workers under a VM
instruction budget (the cost model's ``RESOURCE_LIMIT`` trap) plus the
pool's wallclock deadline, so the judge also sees ``timeout``/``crash``
verdicts and turns them into findings instead of infra failures.

Comparison rule: clean (non-trapping) runs are compared on the full
``(exit code, output)``; trapping runs are compared on the trap kind
only — check-motion passes may legitimately move *where* an expected
trap fires, never *whether* or *what kind*.
"""

from dataclasses import dataclass, field

#: Default per-run VM instruction budget.  Generated programs execute a
#: few thousand instructions; anything nearing this is wedged.
DEFAULT_MAX_INSTRUCTIONS = 20_000_000

RUN_CALL = "repro.fuzz.oracle:run_config"
PARALLEL_CALL = "repro.fuzz.oracle:run_parallel_check"


@dataclass(frozen=True)
class RunConfig:
    """One cell of the differential matrix."""

    policy: str
    engine: str
    optimize: object  # an opt level: False/True/0/1/2 (see repro.prove)
    kind: str = "run"  # "run" | "parallel" | "chaos"

    @property
    def key(self):
        if self.kind != "run":
            return f"{self.kind}:{self.policy}"
        from ..prove import opt_level

        return f"{self.policy}/{self.engine}/O{opt_level(self.optimize)}"


@dataclass(frozen=True)
class ConfigMatrix:
    """Which configurations a campaign sweeps."""

    policies: tuple
    engines: tuple = ("compiled", "interp")
    opt_levels: tuple = (True, False)
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
    #: Run the serial==parallel batch check on every Nth clean seed
    #: (0 disables it).
    parallel_every: int = 8

    def __post_init__(self):
        # The unprotected baseline anchors clean-run transparency
        # judging — every matrix carries it.
        if "none" not in self.policies:
            object.__setattr__(self, "policies",
                               ("none",) + tuple(self.policies))

    @classmethod
    def full(cls, policies=None, **kwargs):
        """Every registered policy × both engines × every opt level
        (O2 cells run only for policies declaring ``provable``)."""
        kwargs.setdefault("opt_levels", (True, False, 2))
        return cls(policies=_policy_names(policies), **kwargs)

    @classmethod
    def quick(cls, policies=None, **kwargs):
        """Every registered policy on the default engine/opt cell, with
        the cross-engine and cross-opt diffs carried by the reference
        ``spatial`` policy — the time-boxed CI shape."""
        names = _policy_names(policies)
        kwargs.setdefault("engines", ("compiled",))
        kwargs.setdefault("opt_levels", (True,))
        return cls(policies=names, **kwargs)

    def configs(self):
        from ..prove import opt_level

        for policy in self.policies:
            provable = _policy_provable(policy)
            for engine in self.engines:
                for optimize in self.opt_levels:
                    if opt_level(optimize) >= 2 and not provable:
                        # -O2 is a typed refusal for these policies (by
                        # design); not a differential cell.
                        continue
                    yield RunConfig(policy, engine, optimize)

    @property
    def baseline(self):
        return RunConfig("none", self.engines[0], self.opt_levels[0])


def _policy_provable(name):
    from ..policy import get_policy

    try:
        return bool(getattr(get_policy(name), "provable", False))
    except KeyError:
        return False


def _policy_names(policies=None):
    if policies is not None:
        names = tuple(policies)
    else:
        from ..policy import all_policies

        names = tuple(policy.name for policy in all_policies())
    if "none" not in names:
        names = ("none",) + names
    return names


# -- worker-side task functions ---------------------------------------------


def run_config(source, policy, engine, optimize,
               max_instructions=DEFAULT_MAX_INSTRUCTIONS):
    """Compile and run ``source`` under one configuration (executed
    inside a pool worker).  Expected compile-stage failures come back
    in-band as a ``compile_error`` record, not an exception."""
    from ..api import run_source
    from ..frontend.errors import FrontendError
    from ..harness.linker import LinkError

    try:
        report = run_source(source, profile=policy, engine=engine,
                            optimize=optimize,
                            max_instructions=max_instructions)
    except (FrontendError, LinkError) as error:
        return {"status": "compile_error", "detail": str(error)}
    return {
        "status": "ok",
        "exit_code": report.exit_code,
        "output": report.output,
        "trap_kind": report.trap_kind,
        "trap": str(report.trap) if report.trap is not None else None,
        "detected": report.detected_violation,
        "cost": report.stats.cost if report.stats is not None else 0,
    }


def run_parallel_check(source, policies, optimize=True):
    """``Session.run_many`` serial vs two-worker batch over ``policies``
    (executed inside a pool worker; the nested fan-out uses the harness
    process pool)."""
    from ..api import Session

    items = [(name, source, name) for name in policies]
    serial = Session(jobs=1).run_many(items, jobs=1)
    parallel = Session(jobs=2).run_many(items, jobs=2)
    diffs = []
    for name in serial.reports:
        a, b = serial.reports[name], parallel.reports[name]
        left = (a.exit_code, a.output, a.trap_kind,
                a.stats.cost if a.stats else None)
        right = (b.exit_code, b.output, b.trap_kind,
                 b.stats.cost if b.stats else None)
        if left != right:
            diffs.append(f"{name}: serial={left} parallel={right}")
    return {"status": "ok", "equal": not diffs, "detail": "; ".join(diffs)}


# -- planning ---------------------------------------------------------------


def plan_program(program, matrix, parallel_check=False):
    """The task plan for one program: an ordered list of
    ``(RunConfig, PoolTask)`` pairs."""
    from .pool import PoolTask

    plan = []
    for config in matrix.configs():
        plan.append((config, PoolTask(
            RUN_CALL,
            (program.source, config.policy, config.engine, config.optimize),
            {"max_instructions": matrix.max_instructions})))
    if parallel_check:
        config = RunConfig("batch", matrix.engines[0], True, kind="parallel")
        plan.append((config, PoolTask(
            PARALLEL_CALL, (program.source, matrix.policies))))
    return plan


# -- judging ----------------------------------------------------------------


@dataclass
class Discrepancy:
    """One cross-configuration disagreement, carrying everything the
    minimizer needs to rebuild its reproduction predicate."""

    kind: str           # missed_detection | undeclared_detection |
                        # transparency | divergence | parallel_divergence |
                        # hang | crash | compile_error | infra
    detail: str
    configs: tuple = ()
    policy: str = None
    expected_class: str = None
    #: A policy observed detecting the class in this very seed — the
    #: minimizer's positive reference for missed detections.
    reference_policy: str = None

    def to_json(self):
        return {
            "kind": self.kind,
            "detail": self.detail,
            "configs": list(self.configs),
            "policy": self.policy,
            "expected_class": self.expected_class,
            "reference_policy": self.reference_policy,
        }

    @classmethod
    def from_json(cls, data):
        data = dict(data)
        data["configs"] = tuple(data.get("configs") or ())
        return cls(**data)


@dataclass
class SeedJudgment:
    """The oracle's verdict on one seed."""

    verdict: str  # clean | discrepancy | infra
    discrepancies: list = field(default_factory=list)
    infra: list = field(default_factory=list)
    #: config key -> short per-run verdict string ("ok", "trap:...",
    #: "timeout", ...), for the corpus record.
    runs: dict = field(default_factory=dict)

    @property
    def ok(self):
        return self.verdict == "clean"


def _run_verdict(outcome):
    if outcome.status != "ok":
        return outcome.status
    value = outcome.value
    if value["status"] == "compile_error":
        return "compile_error"
    if value["status"] == "ok" and value.get("trap_kind"):
        return f"trap:{value['trap_kind']}"
    if value["status"] == "ok":
        return "ok"
    return value["status"]


def judge_program(program, results, matrix):
    """Judge one program's matrix ``results`` (``(RunConfig,
    TaskOutcome)`` pairs).  ``program`` is a
    :class:`~repro.workloads.randprog.RandomProgram` (clean) or
    :class:`~repro.workloads.randprog.MutatedProgram` (defect with
    ground truth)."""
    from ..policy import get_policy

    expected_class = getattr(program, "expected_class", None)
    judgment = SeedJudgment(verdict="clean")
    usable = {}
    for config, outcome in results:
        judgment.runs[config.key] = _run_verdict(outcome)
        if config.kind == "chaos":
            continue  # injected faults: recorded, never judged
        if outcome.status == "timeout":
            judgment.discrepancies.append(Discrepancy(
                "hang", f"{config.key}: {outcome.error}",
                configs=(config.key,), policy=config.policy,
                expected_class=expected_class))
        elif outcome.status == "crash":
            judgment.discrepancies.append(Discrepancy(
                "crash", f"{config.key}: {outcome.error}",
                configs=(config.key,), policy=config.policy,
                expected_class=expected_class))
        elif outcome.status == "error":
            judgment.infra.append(f"{config.key}: {outcome.error!r}")
        elif outcome.value["status"] == "compile_error":
            judgment.discrepancies.append(Discrepancy(
                "compile_error",
                f"{config.key}: {outcome.value['detail']}",
                configs=(config.key,), policy=config.policy,
                expected_class=expected_class))
        else:
            value = outcome.value
            if value.get("trap_kind") == "resource_limit":
                judgment.discrepancies.append(Discrepancy(
                    "hang", f"{config.key}: VM instruction budget "
                            f"exhausted", configs=(config.key,),
                    policy=config.policy, expected_class=expected_class))
            elif config.kind == "parallel":
                if not value["equal"]:
                    judgment.discrepancies.append(Discrepancy(
                        "parallel_divergence", value["detail"],
                        configs=(config.key,)))
            else:
                usable[config] = value

    by_policy = {}
    for config, value in usable.items():
        by_policy.setdefault(config.policy, []).append((config, value))

    if expected_class is None:
        _judge_clean(judgment, usable, matrix)
    else:
        _judge_mutated(judgment, by_policy, expected_class, get_policy)
    _judge_consistency(judgment, by_policy)

    if judgment.discrepancies:
        judgment.verdict = "discrepancy"
    elif judgment.infra:
        judgment.verdict = "infra"
    return judgment


def _judge_clean(judgment, usable, matrix):
    baseline = usable.get(matrix.baseline)
    if baseline is None:
        return  # baseline itself hung/crashed: already a discrepancy
    expected = (baseline["exit_code"], baseline["output"])
    for config, value in usable.items():
        if value["detected"]:
            judgment.discrepancies.append(Discrepancy(
                "transparency",
                f"{config.key} claimed a violation on a safe-by-"
                f"construction program: {value['trap']}",
                configs=(config.key,), policy=config.policy))
        elif value["trap_kind"]:
            judgment.discrepancies.append(Discrepancy(
                "transparency",
                f"{config.key} trapped on a safe-by-construction "
                f"program: {value['trap']}",
                configs=(config.key,), policy=config.policy))
        elif (value["exit_code"], value["output"]) != expected:
            judgment.discrepancies.append(Discrepancy(
                "transparency",
                f"{config.key} diverged from the unprotected baseline: "
                f"exit {value['exit_code']} != {expected[0]} or output "
                f"differs", configs=(config.key, matrix.baseline.key),
                policy=config.policy))


def _judge_mutated(judgment, by_policy, expected_class, get_policy):
    detecting = sorted(
        policy for policy, runs in by_policy.items()
        if any(value["detected"] for _, value in runs))
    for policy_name, runs in by_policy.items():
        try:
            declared = expected_class in get_policy(policy_name).detects
        except KeyError:
            continue  # policy vanished from the registry mid-campaign
        for config, value in runs:
            if declared and not value["detected"]:
                reference = next((p for p in detecting
                                  if p != policy_name), None)
                judgment.discrepancies.append(Discrepancy(
                    "missed_detection",
                    f"{config.key} declares {expected_class} but ran "
                    f"past the injected defect "
                    f"(outcome: {_value_summary(value)})",
                    configs=(config.key,), policy=policy_name,
                    expected_class=expected_class,
                    reference_policy=reference))
            elif not declared and value["detected"]:
                judgment.discrepancies.append(Discrepancy(
                    "undeclared_detection",
                    f"{config.key} detected {expected_class} but does "
                    f"not declare it: {value['trap']}",
                    configs=(config.key,), policy=policy_name,
                    expected_class=expected_class))


def _judge_consistency(judgment, by_policy):
    """Every configuration of one policy must agree: full
    (exit, output) equality among clean runs, trap-kind equality among
    trapping runs, and no clean/trapping split."""
    for policy_name, runs in by_policy.items():
        if len(runs) < 2:
            continue
        signatures = set()
        for _, value in runs:
            if value["trap_kind"]:
                signatures.add(("trap", value["trap_kind"],
                                value["detected"]))
            else:
                signatures.add(("clean", value["exit_code"],
                                value["output"]))
        if len(signatures) > 1:
            keys = tuple(config.key for config, _ in runs)
            judgment.discrepancies.append(Discrepancy(
                "divergence",
                f"{policy_name}: configurations disagree: "
                + "; ".join(f"{config.key}={_value_summary(value)}"
                            for config, value in runs),
                configs=keys, policy=policy_name))


def _value_summary(value):
    if value["trap_kind"]:
        return f"trap:{value['trap_kind']}"
    return f"exit={value['exit_code']}"
