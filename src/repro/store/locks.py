"""Advisory file locking with a timeout → degrade contract.

The store serializes writers with POSIX ``fcntl.flock`` advisory locks:
per-entry locks so two processes compiling the same key don't redo each
other's index bookkeeping, and one index lock guarding the LRU
checkpoint.  Locks are *advisory by design* — a reader never takes one
(atomic ``os.replace`` plus payload digests make reads safe lock-free),
and a writer that cannot acquire one within its timeout **degrades**
(skips the disk write, keeps the in-process result) instead of hanging.

``flock`` locks die with their holder, so a lock-holder SIGKILL'd
mid-write releases the lock automatically — the chaos drill pins that.
On platforms without ``fcntl`` the lock is a no-op that always
"acquires": single-process correctness is unaffected and the store
still never corrupts (writes stay atomic), only cross-process LRU
bookkeeping loses its serialization.
"""

import os
import time

try:
    import fcntl
except ImportError:  # non-POSIX: degrade to no inter-process locking
    fcntl = None


class FileLock:
    """One advisory lock file, usable as a context manager.

    ``acquire`` polls ``flock(LOCK_EX | LOCK_NB)`` until ``timeout``
    elapses and returns whether the lock was obtained — it never raises
    on contention and never blocks past the deadline.  The ``with``
    form exposes the outcome as the context value::

        with FileLock(path, timeout=2.0) as acquired:
            if acquired: ...   # serialized
            else: ...          # degrade
    """

    def __init__(self, path, timeout=5.0, poll_interval=0.02):
        self.path = path
        self.timeout = timeout
        self.poll_interval = poll_interval
        self._handle = None

    @property
    def held(self):
        return self._handle is not None

    def acquire(self):
        if self._handle is not None:
            return True
        handle = open(self.path, "a+b")
        if fcntl is None:
            self._handle = handle
            return True
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                self._handle = handle
                return True
            except OSError:
                if time.monotonic() >= deadline:
                    handle.close()
                    return False
                time.sleep(self.poll_interval)

    def release(self):
        handle, self._handle = self._handle, None
        if handle is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()

    def __enter__(self):
        return self.acquire()

    def __exit__(self, *exc_info):
        self.release()
        return False
