"""``repro.store`` — the crash-safe persistent compiled-artifact store.

A versioned, content-addressed on-disk cache for
:class:`~repro.api.toolchain.CompiledProgram`, built so that compiled
and instrumented programs survive process restarts, concurrent writers
and dirty crashes without ever serving a corrupted artifact: entries
are self-verifying (:mod:`repro.store.format`), writes are atomic and
advisory-locked with timeout → degrade (:mod:`repro.store.locks`), the
LRU bookkeeping checkpoints atomically and rebuilds from a scan when
torn, and every detected corruption quarantines + recompiles instead
of crashing (:mod:`repro.store.store`).

Wired in via ``Session(store_dir=...)`` / the ``REPRO_STORE``
environment variable, and operated with ``python -m repro cache
stats|verify|gc``.  See ``docs/STORE.md``.
"""

from .format import (
    FORMAT_VERSION,
    MAGIC,
    StoreFormatError,
    cache_key_text,
    compute_key,
    decode_entry,
    encode_entry,
)
from .lru import LRUCache
from .locks import FileLock
from .store import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_ENTRIES,
    ArtifactStore,
    StoreStats,
    StoreWarning,
    VerifyReport,
)

__all__ = [
    "FORMAT_VERSION", "MAGIC", "StoreFormatError", "cache_key_text",
    "compute_key", "decode_entry", "encode_entry",
    "LRUCache", "FileLock",
    "DEFAULT_MAX_BYTES", "DEFAULT_MAX_ENTRIES", "ArtifactStore",
    "StoreStats", "StoreWarning", "VerifyReport",
]
