"""``python -m repro cache`` — operate the persistent artifact store.

Subcommands::

    cache stats    contents, bounds and counters of a store directory
    cache verify   re-validate every entry; quarantine corrupt ones
    cache gc       sweep tmp orphans, re-sync the index, enforce bounds

Exit status is deterministic: 0 on success, 1 when ``verify`` found (and
quarantined) corrupt entries, 64 for usage errors (no store directory).
The store directory comes from ``--store`` or the ``REPRO_STORE``
environment variable — the same resolution every other entry point uses
(``repro.api.resolve_store``).

The argparse wiring lives here (not in :mod:`repro.cli`) so the
top-level CLI only pays for store imports when the subcommand is used.
"""

import json

EX_OK = 0
EX_CORRUPT = 1
EX_USAGE = 64


def add_cache_parser(sub):
    cache = sub.add_parser(
        "cache", help="operate the persistent compiled-artifact store "
                      "(REPRO_STORE): stats, integrity verification, gc")
    csub = cache.add_subparsers(dest="cache_command", required=True)

    def common(parser):
        parser.add_argument("--store", metavar="DIR", default=None,
                            help="store directory (default: the "
                                 "REPRO_STORE environment variable)")
        parser.add_argument("--json", action="store_true",
                            help="emit the report as JSON")

    stats = csub.add_parser(
        "stats", help="show store contents, bounds and counters")
    common(stats)

    verify = csub.add_parser(
        "verify", help="re-validate every entry (magic, version, digest, "
                       "payload); quarantine corrupt ones (exit 1 when "
                       "any are found)")
    common(verify)
    verify.add_argument("--shallow", action="store_true",
                        help="skip unpickling each payload (digest and "
                             "framing checks only)")

    gc = csub.add_parser(
        "gc", help="sweep stale tmp files, re-sync the index with the "
                   "filesystem and enforce the size bounds")
    common(gc)
    gc.add_argument("--max-bytes", type=int, default=None, metavar="N",
                    help="evict LRU entries past this total size "
                         "(default: the store's standing bound)")
    gc.add_argument("--max-entries", type=int, default=None, metavar="N",
                    help="evict LRU entries past this count")
    gc.add_argument("--sweep-corrupt", action="store_true",
                    help="also delete quarantined entries")
    return cache


def _open(args, stderr):
    from ..api import open_store

    store = open_store(args.store)
    if store is None:
        stderr.write("error: no store directory: pass --store DIR or set "
                     "REPRO_STORE\n")
    return store


def run_cache(args, stdout, stderr):
    store = _open(args, stderr)
    if store is None:
        return EX_USAGE
    if args.cache_command == "stats":
        return _cmd_stats(store, args, stdout)
    if args.cache_command == "verify":
        return _cmd_verify(store, args, stdout)
    if args.cache_command == "gc":
        return _cmd_gc(store, args, stdout)
    return EX_USAGE


def _cmd_stats(store, args, stdout):
    report = store.stats_report()
    if args.json:
        stdout.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
        return EX_OK
    stdout.write(
        f"{report['root']}: {report['entries']} entr"
        f"{'y' if report['entries'] == 1 else 'ies'}, "
        f"{report['total_bytes']:,} bytes "
        f"(bounds: {report['max_entries']} entries / "
        f"{report['max_bytes']:,} bytes), "
        f"{report['quarantined']} quarantined\n")
    if report["recovered_index"]:
        stdout.write("  index was rebuilt from a directory scan "
                     "(torn checkpoint recovered)\n")
    counters = report["counters"]
    stdout.write("  counters: " + ", ".join(
        f"{name} {value}" for name, value in counters.items()) + "\n")
    return EX_OK


def _cmd_verify(store, args, stdout):
    report = store.verify(deep=not args.shallow)
    if args.json:
        stdout.write(json.dumps(report.as_dict(), indent=2, sort_keys=True)
                     + "\n")
    else:
        stdout.write(f"checked {report.checked} entr"
                     f"{'y' if report.checked == 1 else 'ies'}: "
                     f"{report.ok} ok, {len(report.corrupt)} corrupt\n")
        for key, reason, detail in report.corrupt:
            stdout.write(f"  {key[:12]}: {reason} — {detail} "
                         f"(quarantined)\n")
    return EX_CORRUPT if report.corrupt else EX_OK


def _cmd_gc(store, args, stdout):
    report = store.gc(max_bytes=args.max_bytes,
                      max_entries=args.max_entries,
                      sweep_corrupt=args.sweep_corrupt)
    status = store.stats_report()
    if args.json:
        stdout.write(json.dumps({"gc": report, "stats": status},
                                indent=2, sort_keys=True) + "\n")
        return EX_OK
    stdout.write(
        f"gc: swept {report['tmp_swept']} tmp file(s), adopted "
        f"{report['adopted']} unindexed entr"
        f"{'y' if report['adopted'] == 1 else 'ies'}, dropped "
        f"{report['dropped']} stale record(s), evicted "
        f"{report['evicted']} entr"
        f"{'y' if report['evicted'] == 1 else 'ies'}"
        + (f", deleted {report['corrupt_swept']} quarantined"
           if args.sweep_corrupt else "") + "\n")
    stdout.write(f"store now holds {status['entries']} entr"
                 f"{'y' if status['entries'] == 1 else 'ies'}, "
                 f"{status['total_bytes']:,} bytes\n")
    return EX_OK
