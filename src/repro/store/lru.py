"""A small counting LRU map.

Used twice with one policy: :class:`repro.api.Session` bounds its
in-process compiled-program cache with it, and the disk store's index
uses the same recency discipline (there keyed by a persistent logical
clock, since file metadata must survive restarts).  Counters are public
so both layers surface hit/miss/eviction numbers side by side.
"""

from collections import OrderedDict


class LRUCache:
    """An ``OrderedDict``-backed LRU bounded by entry count.

    ``max_entries=None`` means unbounded (counting only).  ``get``
    refreshes recency; ``put`` evicts the least-recently-used entries
    to stay within the bound and reports them to ``on_evict`` (so a
    caller can log or cascade).
    """

    def __init__(self, max_entries=None, on_evict=None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None)")
        self.max_entries = max_entries
        self.on_evict = on_evict
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def get(self, key, default=None):
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value):
        self._entries[key] = value
        self._entries.move_to_end(key)
        while self.max_entries is not None \
                and len(self._entries) > self.max_entries:
            evicted_key, evicted_value = self._entries.popitem(last=False)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(evicted_key, evicted_value)
        return value

    def clear(self):
        self._entries.clear()

    def counters(self):
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "evictions": self.evictions,
                "max_entries": self.max_entries}
