"""The crash-safe persistent artifact store.

Layout of a store directory::

    index.json               LRU/size bookkeeping (atomically replaced)
    objects/<key>.rpa        one self-verifying entry per cache key
    corrupt/<name>           quarantined entries awaiting autopsy
    locks/<...>.lock         advisory lock files (per entry + index)

Robustness contract, in order of importance:

1. **Never serve a corrupted artifact.**  Reads re-validate everything
   (:mod:`repro.store.format`); any mismatch quarantines the entry into
   ``corrupt/`` and reports a miss, so the caller recompiles.
2. **Never tear an entry.**  Writes go tmp file → ``fsync`` → atomic
   ``os.replace``; a crash at any instant leaves either the old state
   or the new state, plus at most one orphan tmp file ``gc`` sweeps.
3. **Never hang, never wedge.**  Writers take advisory ``flock`` locks
   with a timeout; on contention past the deadline they *degrade* —
   skip the disk write, keep the in-process result, count it — rather
   than block.  Readers take no locks at all.
4. **The index is bookkeeping, not truth.**  ``get`` goes straight to
   the object file, so a lost index update (crash between object write
   and checkpoint, or a degraded writer) costs recency accuracy, never
   correctness; a torn/foreign ``index.json`` degrades to a
   rebuild-from-scan.

Fault points for the chaos drills (:mod:`repro.harness.faults`) are
compiled in: payload mangling (torn write / bit flip), injected
EPERM/ENOSPC on open, and SIGKILL at the two nastiest instants (holding
the entry lock; between tmp write and replace).
"""

import json
import os
import time
import warnings
from dataclasses import asdict, dataclass, field

from ..harness import faults
from ..obs.metrics import default_registry
from ..obs.trace import tracer
from .format import (
    StoreFormatError,
    cache_key_text,
    compute_key,
    decode_entry,
    dumps_program,
    encode_entry,
    loads_program,
)
from .locks import FileLock

INDEX_SCHEMA = "store-index-v1"
ENTRY_SUFFIX = ".rpa"

DEFAULT_MAX_BYTES = 256 * 1024 * 1024
DEFAULT_MAX_ENTRIES = 4096
DEFAULT_LOCK_TIMEOUT = 5.0

#: Orphan tmp files older than this are swept by ``gc`` (a younger tmp
#: may belong to an in-flight writer).
TMP_SWEEP_AGE_SECONDS = 300.0


class StoreWarning(RuntimeWarning):
    """A store degradation the run survived (lock timeout, write
    failure, recovered index) — surfaced, never fatal."""


@dataclass
class StoreStats:
    """Per-process counters for one :class:`ArtifactStore` instance."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    puts: int = 0
    evictions: int = 0
    lock_timeouts: int = 0
    write_errors: int = 0
    #: Degradations taken (lock timeout or write error): the entry kept
    #: working from the in-process cache but the disk was skipped.
    degraded: int = 0

    def as_dict(self):
        return asdict(self)


@dataclass
class VerifyReport:
    """Result of a full-store integrity pass."""

    checked: int = 0
    ok: int = 0
    #: ``(key, reason, detail)`` per quarantined entry.
    corrupt: list = field(default_factory=list)

    def as_dict(self):
        return {"checked": self.checked, "ok": self.ok,
                "corrupt": [list(item) for item in self.corrupt]}


class ArtifactStore:
    """A content-addressed, size-bounded compiled-program store.

    ``max_bytes``/``max_entries`` bound the store (LRU eviction on
    ``put``); ``lock_timeout`` is the degrade deadline for advisory
    locks; ``log`` receives degradation messages (default: a
    :class:`StoreWarning`).
    """

    def __init__(self, root, max_bytes=DEFAULT_MAX_BYTES,
                 max_entries=DEFAULT_MAX_ENTRIES,
                 lock_timeout=DEFAULT_LOCK_TIMEOUT, log=None):
        self.root = os.path.abspath(root)
        self.objects_dir = os.path.join(self.root, "objects")
        self.corrupt_dir = os.path.join(self.root, "corrupt")
        self.locks_dir = os.path.join(self.root, "locks")
        for path in (self.objects_dir, self.corrupt_dir, self.locks_dir):
            os.makedirs(path, exist_ok=True)
        self.index_path = os.path.join(self.root, "index.json")
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.lock_timeout = lock_timeout
        self._log = log
        self.stats = StoreStats()
        # Publish the counters as repro_store_* series for as long as
        # this store is alive; the obs registry holds only a weakref.
        default_registry().register_source("repro_store_", self.stats,
                                           StoreStats.as_dict)
        self.recovered_index = False
        self._clock = 0
        self._index = {}
        self._load_index()

    # -- logging -------------------------------------------------------

    def _warn(self, message):
        if self._log is not None:
            self._log(message)
        else:
            warnings.warn(message, StoreWarning, stacklevel=3)

    # -- paths ---------------------------------------------------------

    def entry_path(self, key):
        return os.path.join(self.objects_dir, key + ENTRY_SUFFIX)

    def _entry_lock(self, key):
        return FileLock(os.path.join(self.locks_dir, key[:32] + ".lock"),
                        timeout=self.lock_timeout)

    def _index_lock(self):
        return FileLock(os.path.join(self.locks_dir, "index.lock"),
                        timeout=self.lock_timeout)

    # -- index ---------------------------------------------------------

    def _load_index(self):
        try:
            with open(self.index_path) as handle:
                document = json.load(handle)
            if document.get("schema") != INDEX_SCHEMA:
                raise ValueError(
                    f"unknown index schema {document.get('schema')!r}")
            self._index = dict(document.get("entries", {}))
            self._clock = int(document.get("clock", 0))
        except FileNotFoundError:
            self._index = {}
            self._clock = 0
        except (OSError, ValueError, KeyError, TypeError) as error:
            # A torn/foreign index must not wedge the store: rebuild
            # the bookkeeping from the object files themselves.
            self.recovered_index = True
            self._warn(f"store index unreadable "
                       f"({type(error).__name__}: {error}); rebuilding "
                       f"from a directory scan")
            self._index = self._scan_objects()
            self._clock = len(self._index)

    def _scan_objects(self):
        entries = {}
        clock = 0
        try:
            names = sorted(os.listdir(self.objects_dir))
        except OSError:
            return entries
        for name in names:
            if not name.endswith(ENTRY_SUFFIX):
                continue
            key = name[:-len(ENTRY_SUFFIX)]
            try:
                size = os.path.getsize(os.path.join(self.objects_dir, name))
            except OSError:
                continue
            clock += 1
            entries[key] = {"size": size, "used": clock, "label": "?"}
        return entries

    def _read_disk_index(self):
        """The freshest on-disk index (other processes checkpoint too),
        falling back to a scan when torn."""
        try:
            with open(self.index_path) as handle:
                document = json.load(handle)
            if document.get("schema") != INDEX_SCHEMA:
                raise ValueError("schema mismatch")
            return dict(document.get("entries", {})), \
                int(document.get("clock", 0))
        except FileNotFoundError:
            return {}, 0
        except (OSError, ValueError, KeyError, TypeError):
            return self._scan_objects(), len(self._index)

    def _checkpoint_index(self):
        document = {"schema": INDEX_SCHEMA, "clock": self._clock,
                    "entries": self._index}
        tmp = f"{self.index_path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.index_path)

    def _merge_and_checkpoint(self, mutate):
        """Under the index lock: re-read the disk index, merge our
        recency knowledge, apply ``mutate``, evict to bounds, write the
        checkpoint atomically.  On lock timeout: apply ``mutate`` to
        the in-memory view only (degrade) and report ``False``."""
        with self._index_lock() as acquired:
            if not acquired:
                self.stats.lock_timeouts += 1
                self.stats.degraded += 1
                self._warn(f"store index lock not acquired within "
                           f"{self.lock_timeout:.1f}s; skipping index "
                           f"checkpoint (bookkeeping degrades, entries "
                           f"stay correct)")
                mutate(self._index)
                self._evict_to_bounds(persist=False)
                return False
            disk, disk_clock = self._read_disk_index()
            for key, entry in self._index.items():
                known = disk.get(key)
                if known is None:
                    if os.path.exists(self.entry_path(key)):
                        disk[key] = entry
                elif entry.get("used", 0) > known.get("used", 0):
                    known["used"] = entry["used"]
            self._clock = max(self._clock, disk_clock)
            self._index = disk
            mutate(self._index)
            self._evict_to_bounds(persist=False)
            self._checkpoint_index()
            return True

    def _evict_to_bounds(self, persist=True, max_bytes=None,
                         max_entries=None):
        """Drop least-recently-used entries until within bounds;
        returns the evicted keys."""
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        max_entries = self.max_entries if max_entries is None else max_entries
        evicted = []

        def over_bounds():
            if max_entries is not None and len(self._index) > max_entries:
                return True
            if max_bytes is not None:
                total = sum(e.get("size", 0) for e in self._index.values())
                return total > max_bytes
            return False

        while self._index and over_bounds():
            key = min(self._index, key=lambda k: self._index[k].get("used", 0))
            self._index.pop(key)
            try:
                os.remove(self.entry_path(key))
            except OSError:
                pass  # already gone / transient: gc re-syncs
            self.stats.evictions += 1
            evicted.append(key)
        if evicted and persist:
            self._checkpoint_index()
        return evicted

    # -- quarantine ----------------------------------------------------

    def _quarantine(self, key, reason):
        """Move a bad entry into ``corrupt/`` (atomic rename; never
        raises — a quarantine failure still ends in a miss)."""
        with tracer().span("store.quarantine", key=key[:12], reason=reason):
            return self._quarantine_entry(key, reason)

    def _quarantine_entry(self, key, reason):
        source = self.entry_path(key)
        stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
        counter = 0
        while True:
            suffix = f".{counter}" if counter else ""
            target = os.path.join(
                self.corrupt_dir, f"{key}.{reason}.{stamp}{suffix}{ENTRY_SUFFIX}")
            if not os.path.exists(target):
                break
            counter += 1
        try:
            os.replace(source, target)
        except OSError:
            try:
                os.remove(source)
            except OSError:
                pass
        self.stats.corrupt += 1
        self._index.pop(key, None)
        return target

    def quarantined(self):
        """Names of quarantined entries (autopsy queue)."""
        try:
            return sorted(name for name in os.listdir(self.corrupt_dir)
                          if name.endswith(ENTRY_SUFFIX))
        except OSError:
            return []

    # -- the core API --------------------------------------------------

    def get(self, key, key_text=None):
        """The stored :class:`CompiledProgram` for ``key``, or ``None``.

        Lock-free: the entry file is atomic-replaced and self-verifying.
        Every failure mode — missing, truncated, flipped, foreign,
        version-skewed, unpicklable — is a miss; validation failures
        additionally quarantine the file.
        """
        with tracer().span("store.get", key=key[:12]) as span:
            program = self._get(key, key_text)
            span.set(hit=program is not None)
            return program

    def _get(self, key, key_text):
        path = self.entry_path(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError as error:
            self.stats.misses += 1
            self._warn(f"store entry {key[:12]} unreadable ({error}); "
                       f"treating as a miss")
            return None
        try:
            _, payload = decode_entry(blob, expected_key=key,
                                      expected_key_text=key_text)
            program = loads_program(payload)
        except StoreFormatError as error:
            target = self._quarantine(key, error.reason)
            self._warn(f"store entry {key[:12]} failed verification "
                       f"({error}); quarantined to {target} and "
                       f"recompiling")
            return None
        self.stats.hits += 1
        self._clock += 1
        entry = self._index.get(key)
        if entry is not None:
            entry["used"] = self._clock
        return program

    def put(self, key, compiled, key_text="", label=""):
        """Persist ``compiled`` under ``key``; returns True when the
        entry landed on disk.  Any failure — unpicklable payload,
        filesystem error, lock timeout — degrades (warn + False),
        never raises."""
        with tracer().span("store.put", key=key[:12], label=label) as span:
            landed = self._put(key, compiled, key_text, label)
            span.set(landed=landed)
            return landed

    def _put(self, key, compiled, key_text, label):
        try:
            payload = dumps_program(compiled)
        except Exception as error:
            self.stats.write_errors += 1
            self.stats.degraded += 1
            self._warn(f"store entry {key[:12]} not persisted: payload "
                       f"does not pickle ({type(error).__name__}: {error})")
            return False
        blob = encode_entry(key, key_text, label, payload)
        path = self.entry_path(key)
        with self._entry_lock(key) as acquired:
            if not acquired:
                self.stats.lock_timeouts += 1
                self.stats.degraded += 1
                self._warn(f"store entry {key[:12]} lock not acquired "
                           f"within {self.lock_timeout:.1f}s; keeping the "
                           f"in-process copy only")
                return False
            faults.maybe_die("locked")
            tmp = f"{path}.tmp.{os.getpid()}"
            try:
                faults.check_write_open()
                with open(tmp, "wb") as handle:
                    handle.write(faults.mangle_payload(blob))
                    handle.flush()
                    os.fsync(handle.fileno())
                faults.maybe_die("replace")
                os.replace(tmp, path)
            except OSError as error:
                self.stats.write_errors += 1
                self.stats.degraded += 1
                self._warn(f"store entry {key[:12]} not persisted "
                           f"({type(error).__name__}: {error}); keeping "
                           f"the in-process copy only")
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                return False
        self.stats.puts += 1
        self._clock += 1
        size = len(blob)

        def mutate(index):
            index[key] = {"size": size, "used": self._clock,
                          "label": label or "?"}

        self._merge_and_checkpoint(mutate)
        return True

    # -- the compile-cache convenience layer ---------------------------

    def load(self, source, profile, optimize=True):
        """Look up the artifact for one (source, profile, optimize)
        compile, verifying the key derivation matches this build."""
        key_text = cache_key_text(profile, optimize)
        return self.get(compute_key(source, profile, optimize),
                        key_text=key_text)

    def save(self, source, profile, optimize, compiled):
        """Persist one compile under its content address."""
        key_text = cache_key_text(profile, optimize)
        return self.put(compute_key(source, profile, optimize), compiled,
                        key_text=key_text, label=profile.label)

    def payload_sha256(self, key):
        """The stored payload digest from the entry header, or ``None``.

        This is the digest of the exact bytes ``get`` unpickles, so two
        processes that loaded the same entry — or the process that wrote
        it — can prove they hold bit-identical artifacts without
        re-pickling (re-pickling a program that has since been
        instantiated is neither possible nor canonical)."""
        try:
            with open(self.entry_path(key), "rb") as handle:
                blob = handle.read()
        except OSError:
            return None
        try:
            header, _ = decode_entry(blob, expected_key=key)
        except StoreFormatError:
            return None
        return header.get("payload_sha256")

    # -- maintenance ops ----------------------------------------------

    def verify(self, deep=True):
        """Validate every entry; quarantine the bad ones.  ``deep``
        additionally unpickles each payload (catching entries whose
        digest is fine but whose classes moved)."""
        report = VerifyReport()
        for name in sorted(os.listdir(self.objects_dir)):
            if not name.endswith(ENTRY_SUFFIX):
                continue
            key = name[:-len(ENTRY_SUFFIX)]
            report.checked += 1
            try:
                with open(os.path.join(self.objects_dir, name), "rb") as handle:
                    blob = handle.read()
                _, payload = decode_entry(blob, expected_key=key)
                if deep:
                    loads_program(payload)
            except StoreFormatError as error:
                self._quarantine(key, error.reason)
                report.corrupt.append((key, error.reason, error.detail))
                continue
            except OSError as error:
                report.corrupt.append((key, "io", str(error)))
                continue
            report.ok += 1
        if report.corrupt:
            self._merge_and_checkpoint(lambda index: None)
        return report

    def gc(self, max_bytes=None, max_entries=None, sweep_corrupt=False):
        """Re-sync bookkeeping with the filesystem and enforce bounds:
        sweep stale tmp files, index entries written by writers that
        died before their checkpoint, drop records whose files are
        gone, evict LRU past the (optionally overridden) bounds, and
        optionally empty the quarantine."""
        report = {"tmp_swept": 0, "adopted": 0, "dropped": 0,
                  "evicted": 0, "corrupt_swept": 0}
        now = time.time()
        for name in sorted(os.listdir(self.objects_dir)):
            path = os.path.join(self.objects_dir, name)
            if ".tmp." in name:
                try:
                    if now - os.path.getmtime(path) > TMP_SWEEP_AGE_SECONDS:
                        os.remove(path)
                        report["tmp_swept"] += 1
                except OSError:
                    pass
        if sweep_corrupt:
            for name in self.quarantined():
                try:
                    os.remove(os.path.join(self.corrupt_dir, name))
                    report["corrupt_swept"] += 1
                except OSError:
                    pass

        def mutate(index):
            on_disk = {name[:-len(ENTRY_SUFFIX)]
                       for name in os.listdir(self.objects_dir)
                       if name.endswith(ENTRY_SUFFIX)}
            for key in on_disk - set(index):
                self._clock += 1
                try:
                    size = os.path.getsize(self.entry_path(key))
                except OSError:
                    continue
                index[key] = {"size": size, "used": self._clock,
                              "label": "?"}
                report["adopted"] += 1
            for key in set(index) - on_disk:
                del index[key]
                report["dropped"] += 1

        self._merge_and_checkpoint(mutate)
        report["evicted"] = len(self._evict_to_bounds(
            max_bytes=max_bytes, max_entries=max_entries))
        return report

    def stats_report(self):
        """One JSON-able snapshot: contents, bounds, counters.

        The counters are this instance's live :class:`StoreStats` (the
        ``repro_store_*`` registry source) plus the ``repro_store_*``
        deltas merged into the shared obs registry from worker
        processes — the registry's merged side table only, so other
        store instances alive in the process never leak in.
        """
        entries = len(self._index)
        total = sum(e.get("size", 0) for e in self._index.values())
        counters = self.stats.as_dict()
        prefix = "repro_store_"
        for name, value in default_registry().merged(prefix).items():
            key = name[len(prefix):]
            counters[key] = counters.get(key, 0) + value
        return {
            "root": self.root,
            "entries": entries,
            "total_bytes": total,
            "max_bytes": self.max_bytes,
            "max_entries": self.max_entries,
            "quarantined": len(self.quarantined()),
            "recovered_index": self.recovered_index,
            "counters": counters,
        }
