"""The on-disk artifact entry format: detect *everything*, trust nothing.

An entry file is::

    magic (8 bytes, b"RPROSTOR")
    header length (4 bytes, big-endian)
    header (JSON, UTF-8): format version, cache key + its derivation
        text, profile label, payload sha256 + length, creation time
    payload (pickle of the CompiledProgram)

Every field exists so a *mismatch is detectable*: the magic rejects
foreign files, the format version rejects entries written by an
incompatible layout, the header digest/length reject truncation and bit
flips anywhere in the payload, and the key text — the exact derivation
of the cache key, including the full ``SoftBoundConfig`` repr and a
format-version salt — rejects entries whose instrumentation semantics
have drifted (a stale policy registry changes the config repr, which
changes the key, which orphans the old entry instead of serving it).

Decoding raises a typed :class:`StoreFormatError` naming what failed;
callers (the store) quarantine and recompile — corruption is never a
crash and never a wrong program.
"""

import hashlib
import json
import pickle
import struct
import time

MAGIC = b"RPROSTOR"
FORMAT_VERSION = 1
_HEADER_LEN = struct.Struct(">I")

#: Sanity ceiling for the header length field: a corrupted length must
#: not make a reader allocate gigabytes.
MAX_HEADER_BYTES = 1 << 20


class StoreFormatError(ValueError):
    """An entry failed validation; ``reason`` is a short machine-usable
    tag (``"magic"``, ``"version"``, ``"truncated"``, ``"digest"``,
    ``"header"``, ``"key"``, ``"payload"``)."""

    def __init__(self, reason, detail):
        self.reason = reason
        self.detail = detail
        super().__init__(f"{reason}: {detail}")


def cache_key_text(profile, optimize):
    """The exact derivation of an entry's identity.

    The compiled module is a pure function of (source, instrumentation
    config, optimization level); the VM engine is chosen at
    instantiation time and never baked into the artifact, so it is
    deliberately *not* part of the key — one entry serves both engines.
    Observer-based profiles (config ``None``) all share the
    uninstrumented build, exactly like the in-process cache.
    ``FORMAT_VERSION`` salts the key so a layout bump orphans old
    entries wholesale.
    """
    return (f"format={FORMAT_VERSION}|config={profile.config!r}|"
            f"optimize={_opt_token(optimize)}")


def _opt_token(optimize):
    """Key token for the optimize spelling.  The historical bool levels
    keep their exact token (existing store entries stay addressable);
    -O2 spellings (``2`` / a ``ProveConfig``) get a distinct token so a
    proved build never aliases an -O1 artifact."""
    if optimize in (True, False, None, 0, 1):
        return str(bool(optimize))
    return f"O2:{optimize!r}"


def compute_key(source, profile, optimize):
    """Content address of one compile: sha256 hex over the key text and
    the source."""
    text = cache_key_text(profile, optimize)
    digest = hashlib.sha256()
    digest.update(text.encode())
    digest.update(b"\x00")
    digest.update(source.encode())
    return digest.hexdigest()


def encode_entry(key, key_text, label, payload):
    """Serialize ``payload`` bytes (an already-pickled program) into a
    self-verifying entry blob."""
    header = {
        "format": FORMAT_VERSION,
        "key": key,
        "key_text": key_text,
        "label": label,
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "payload_len": len(payload),
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode()
    return (MAGIC + _HEADER_LEN.pack(len(header_bytes)) + header_bytes
            + payload)


def decode_entry(blob, expected_key=None, expected_key_text=None):
    """Validate ``blob`` and return ``(header, payload_bytes)``.

    Raises :class:`StoreFormatError` on any mismatch: wrong magic, wrong
    format version, truncation anywhere, payload digest mismatch (bit
    flips), or — when the caller supplies expectations — an entry whose
    key or key derivation does not match the request (a hash collision
    or a stale/renamed entry file).
    """
    if len(blob) < len(MAGIC) + _HEADER_LEN.size:
        raise StoreFormatError("truncated",
                               f"{len(blob)} bytes is shorter than the "
                               f"fixed preamble")
    if blob[:len(MAGIC)] != MAGIC:
        raise StoreFormatError("magic",
                               f"leading bytes {blob[:len(MAGIC)]!r} are "
                               f"not {MAGIC!r}")
    (header_len,) = _HEADER_LEN.unpack(
        blob[len(MAGIC):len(MAGIC) + _HEADER_LEN.size])
    if header_len > MAX_HEADER_BYTES:
        raise StoreFormatError("header",
                               f"header length {header_len} exceeds the "
                               f"{MAX_HEADER_BYTES}-byte ceiling")
    header_start = len(MAGIC) + _HEADER_LEN.size
    header_end = header_start + header_len
    if len(blob) < header_end:
        raise StoreFormatError("truncated",
                               f"header runs past the end of the entry "
                               f"({header_end} > {len(blob)})")
    try:
        header = json.loads(blob[header_start:header_end].decode())
    except (ValueError, UnicodeDecodeError) as error:
        raise StoreFormatError("header", f"unreadable header: {error}") \
            from None
    if not isinstance(header, dict):
        raise StoreFormatError("header",
                               f"header is {type(header).__name__}, "
                               f"not an object")
    if header.get("format") != FORMAT_VERSION:
        raise StoreFormatError("version",
                               f"entry format {header.get('format')!r}, "
                               f"this build reads {FORMAT_VERSION}")
    payload = blob[header_end:]
    if len(payload) != header.get("payload_len"):
        raise StoreFormatError("truncated",
                               f"payload is {len(payload)} bytes, header "
                               f"promises {header.get('payload_len')}")
    if hashlib.sha256(payload).hexdigest() != header.get("payload_sha256"):
        raise StoreFormatError("digest",
                               "payload sha256 does not match the header")
    if expected_key is not None and header.get("key") != expected_key:
        raise StoreFormatError("key",
                               f"entry holds key {header.get('key')!r}, "
                               f"caller asked for {expected_key!r}")
    if expected_key_text is not None \
            and header.get("key_text") != expected_key_text:
        raise StoreFormatError("key",
                               "entry key derivation does not match this "
                               "build (stale policy registry or config "
                               "drift)")
    return header, payload


def dumps_program(compiled):
    """Pickle a :class:`~repro.api.toolchain.CompiledProgram`."""
    return pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL)


def loads_program(payload):
    """Unpickle a stored program; any failure — even with a valid
    digest, e.g. a class renamed between releases — is a typed format
    error the store quarantines rather than a crash."""
    try:
        return pickle.loads(payload)
    except Exception as error:
        raise StoreFormatError("payload",
                               f"payload does not unpickle: "
                               f"{type(error).__name__}: {error}") from None
