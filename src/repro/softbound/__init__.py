"""The SoftBound transformation and its runtime (the paper's contribution)."""

from .config import (CheckMode, FIGURE2_CONFIGS, FULL_HASH, FULL_SHADOW,
                     MetadataScheme, STORE_HASH, STORE_SHADOW, SoftBoundConfig)

__all__ = ["CheckMode", "MetadataScheme", "SoftBoundConfig", "FULL_SHADOW",
           "FULL_HASH", "STORE_SHADOW", "STORE_HASH", "FIGURE2_CONFIGS"]
