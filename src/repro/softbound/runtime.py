"""The SoftBound runtime attached to a VM.

Holds the metadata facility and implements the runtime services that are
not per-instruction: global metadata initialization (paper Section 5.2,
"Global variables"), metadata copying for memcpy/struct assignment, and
stack-frame metadata clearing on return ("Memory reuse and stale
metadata").

With ``config.temporal`` the runtime additionally owns the lock-and-key
state (:class:`repro.temporal.LockSpace`): it hands out (key, lock)
pairs at ``malloc`` and stack-frame entry, invalidates them at ``free``
and frame teardown, and exposes the liveness predicate the
``sb_temporal_check`` instruction evaluates.  Metadata copying and
global initialization carry the widened (base, bound, key, lock)
entries through the same disjoint facility.
"""

from ..temporal import GLOBAL_KEY, GLOBAL_LOCK, LockSpace
from ..vm.errors import temporal_violation


class SoftBoundRuntime:
    def __init__(self, config, policy=None):
        self.config = config
        # The checker policy owns the runtime's shape: which metadata
        # facility backs the table, what one check costs, and how many
        # companion values ride with each pointer.  Resolved through
        # the policy registry (ad-hoc ablation configs resolve to the
        # policy of their variant) unless the caller injects one.
        if policy is None:
            from ..policy import policy_for_config

            try:
                policy = policy_for_config(config)
            except KeyError:
                if getattr(config, "temporal", False) \
                        and config.variant != "softbound":
                    raise ValueError(
                        f"temporal checking requires the softbound "
                        f"variant, not {config.variant!r}") from None
                raise
        self.policy = policy
        self.facility = policy.make_facility(config)
        self.check_cost_key = policy.check_cost_key
        self.machine = None
        # Inline-metadata facilities observe every non-pointer store
        # (Section 3.4's corruption channel); disjoint ones cannot be
        # reached by program stores at all.
        self.observes_stores = hasattr(self.facility, "on_program_store")
        # Lock-and-key temporal state (repro.temporal): only the
        # paper's own variant carries the widened metadata discipline.
        self.temporal = bool(getattr(config, "temporal", False))
        if self.temporal and config.variant != "softbound":
            raise ValueError(
                f"temporal checking requires the softbound variant, "
                f"not {config.variant!r}")
        self.lockspace = LockSpace() if self.temporal else None
        #: Per-pointer metadata arity through calls/returns/varargs:
        #: (base, bound) spatially, (base, bound, key, lock) temporally.
        self.meta_arity = policy.meta_arity
        self.null_meta = (0,) * self.meta_arity
        #: payload address -> (key, lock slot) of every live heap
        #: allocation; consulted by free() so double/invalid frees trap
        #: without trusting the caller-provided metadata.
        self.heap_locks = {}

    def on_program_store(self, addr, size):
        self.facility.on_program_store(addr, size, self.machine.stats)

    def attach(self, machine):
        machine.sb_runtime = self
        self.machine = machine
        if getattr(machine, "_engine", None) is not None:
            # Compiled closures specialize away absent-runtime branches;
            # re-translate if the machine already executed (mirrors
            # Machine.attach_observer).
            machine._engine.invalidate()
        return self

    # -- temporal services ----------------------------------------------------

    def heap_acquire(self, ptr, stats):
        """Key a fresh heap allocation; returns its (key, lock) pair."""
        key, lock = self.lockspace.acquire(stats)
        self.heap_locks[ptr] = (key, lock)
        return key, lock

    def heap_release(self, ptr, stats, access_kind="free"):
        """Invalidate a heap allocation's lock.  Raises a temporal trap
        for a pointer that is not a live allocation (double free, or
        free of something malloc never returned)."""
        entry = self.heap_locks.pop(ptr, None)
        if entry is None:
            stats.temporal_checks += 1
            stats.charge("sb.temporal.check")
            raise temporal_violation(access_kind, ptr, 0, 0)
        self.lockspace.release(entry[1], stats)
        return entry

    def check_live(self, access_kind, ptr, key, lock, stats):
        """The wrapper-level temporal check (libc routines check the
        whole operation once, up front, like the spatial wrapper
        check)."""
        stats.temporal_checks += 1
        stats.charge("sb.temporal.check")
        if not self.lockspace.live(key, lock):
            raise temporal_violation(access_kind, ptr, key, lock)

    # -- global initialization ------------------------------------------------

    def initialize_globals(self, machine):
        """Seed in-memory metadata for initialized global pointers.

        The paper implements this "using the same hooks C++ uses to run
        code for constructing global objects"; here the runtime walks the
        relocation records the lowerer produced for every pointer-valued
        global initializer.
        """
        module = machine.module
        for name, gvar in module.globals.items():
            base_addr = machine.symbol_addrs[name]
            for offset, sym, addend in gvar.relocs:
                target_base, target_bound = self.symbol_bounds(machine, sym)
                self.facility.store(base_addr + offset, target_base, target_bound,
                                    machine.stats)
                machine.stats.charge("sb.global.init.per_ptr")
                if self.temporal:
                    # Globals and functions live forever under the
                    # immortal global lock.
                    self.facility.store_temporal(
                        base_addr + offset, GLOBAL_KEY, GLOBAL_LOCK,
                        machine.stats)
                    machine.stats.charge("sb.temporal.global.init.per_ptr")

    def symbol_bounds(self, machine, sym):
        """Static bounds for a symbol: globals span their image; functions
        use the base==bound encoding (paper Section 5.2)."""
        addr = machine.symbol_addrs[sym]
        gvar = machine.module.globals.get(sym)
        if gvar is not None:
            return addr, addr + max(gvar.size, 1)
        return addr, addr  # function pointer encoding

    # -- metadata copying ---------------------------------------------------------

    def copy_metadata(self, src, dst, size, ctype=None):
        """Copy metadata for an aggregate copy (struct assignment)."""
        if ctype is not None and not ctype.contains_pointer():
            return
        self._copy_range(src, dst, size)

    def memcpy_metadata(self, src, dst, size, src_ctype=None):
        """memcpy's metadata handling (paper Section 5.2): safe default is
        to always copy; the inference option skips copies whose source
        type provably contains no pointers."""
        if self.config.infer_memcpy and src_ctype is not None and src_ctype.is_pointer:
            pointee = src_ctype.pointee
            if not pointee.is_void and not pointee.contains_pointer():
                return
        self._copy_range(src, dst, size)

    def _copy_range(self, src, dst, size):
        stats = self.machine.stats
        facility = self.facility
        for off in range(0, size, 8):
            base, bound = facility.load(src + off, stats)
            facility.store(dst + off, base, bound, stats)
            if self.temporal:
                key, lock = facility.load_temporal(src + off, stats)
                facility.store_temporal(dst + off, key, lock, stats)

    # -- stack frame teardown ---------------------------------------------------------

    def on_frame_teardown(self, machine, frame):
        """Clear metadata for pointer-bearing stack slots before the frame
        is reused (paper Section 5.2's heuristic: only variables that
        likely had pointer metadata set), and kill the frame's lock so
        every pointer into it becomes permanently dead."""
        for offset, size, name, ctype in frame.alloca_ctypes:
            if ctype is not None and ctype.contains_pointer():
                self.facility.clear_range(frame.base + offset, size, machine.stats)
        if self.temporal:
            slot = getattr(frame, "lock_slot", 0)
            if slot:
                self.lockspace.release(slot, machine.stats)
