"""The SoftBound compile-time transformation (paper Sections 3 and 5).

A strictly intra-procedural IR pass.  For every pointer-typed value it
maintains base/bound companion values; it inserts:

* a dereference check before every memory operation (or only before
  stores, in store-only mode) — ``(p < base || p + size > bound)`` with
  the access size included (Section 3.1);
* a disjoint-metadata table *lookup* after every load of a pointer and a
  table *update* after every store of a pointer (Section 3.2);
* bound creation at ``malloc`` call sites and address-taken objects
  (allocas, globals, string literals) (Section 3.1);
* bound inheritance through pointer arithmetic, assignment and casts,
  with sub-object *shrinking* at struct-field address computations
  (Section 3.1, "Shrinking Pointer Bounds");
* extra base/bound parameters on every function with pointer arguments,
  renaming the function ``_sb_<name>`` (Section 3.3) — the renaming is
  what makes separate compilation work, since the linker matches caller
  and callee by name;
* pointer returns annotated with their metadata (the paper's
  three-element return struct, modelled as a multi-value return);
* the base==bound function-pointer encoding check before indirect calls
  (Section 5.2);
* ``setbound()`` rewriting (Section 5.2, programmer escape hatch).

With ``config.temporal`` every pointer additionally carries a
``(key, lock)`` pair — the lock-and-key temporal discipline
(:mod:`repro.temporal`) — through exactly the same channels: companion
registers/aliases, widened disjoint-table entries (the same
``sb_meta_load``/``sb_meta_store`` instructions gain key/lock slots),
extra call arguments and return values, and an ``sb_temporal_check``
emitted immediately after each spatial check.  Stack pointers key on a
per-frame lock materialized in two function-level registers
(``func.sb_frame_meta``) that the VM binds at frame entry; globals and
functions carry the immortal global key/lock as constants.

Metadata propagation for values that never touch memory is *compile
time* work: single-assignment registers simply alias their source's
companion values (no code emitted), mirroring how LLVM register renaming
makes SSA metadata propagation free; only multiply-assigned registers
(loop-carried pointers after register promotion) get materialized
companion registers updated with register-register moves.
"""

from ..frontend.builtins import BUILTIN_SIGNATURES
from ..ir import instructions as ins
from ..ir.irtypes import I64, PTR
from ..ir.module import Param
from ..ir.values import Const, Register, SymbolRef
from ..temporal import GLOBAL_KEY, GLOBAL_LOCK

_NULL_META = (Const(0, PTR), Const(0, PTR))
#: Temporal metadata of pointers without provenance (integers cast to
#: pointers, wild loads): an invalid key that can never match a live
#: lock — but such pointers carry NULL spatial bounds and trap
#: spatially first, since the spatial check precedes the temporal one.
_NULL_TMETA = (Const(0, I64), Const(0, I64))
#: Temporal metadata of objects that are never deallocated: globals,
#: functions, and setbound-blessed pointers.
_GLOBAL_TMETA = (Const(GLOBAL_KEY, I64), Const(GLOBAL_LOCK, I64))

#: Opcodes the obs check-site profiler attributes to source sites.
_PROFILED_OPS = frozenset(("sb_check", "sb_temporal_check", "sb_meta_load"))


class SoftBoundTransform:
    def __init__(self, config, plan=None):
        self.config = config
        # The checker policy's instrumentation plan owns what is
        # *emitted* at each dereference site and how wide the
        # per-pointer metadata is; the transform below owns the
        # propagation mechanics.  Resolved through the policy registry
        # unless the caller injects one (tests, ad-hoc plans).
        if plan is None:
            from ..policy.instrumentation import plan_for_config

            plan = plan_for_config(config)
        self.plan = plan

    # -- module level ------------------------------------------------------

    def run(self, module):
        """Transform every function in ``module`` in place."""
        original = dict(module.functions)
        module.sb_aliases = {}
        for name, func in original.items():
            if func.sb_transformed:
                continue
            _FunctionTransform(self, module, func).run()
            new_name = f"_sb_{name}"
            func.name = new_name
            func.sb_transformed = True
            # Pointer/non-pointer argument signature, verified dynamically
            # at indirect calls when encode_fnptr_signature is on (the
            # paper's Section 5.2 "ultimate solution" extension).
            func.sb_signature = (
                tuple(bool(p.ctype is not None and p.ctype.is_pointer)
                      for p in func.params),
                func.varargs,
            )
            module.sb_aliases[name] = new_name
        module.functions = {f.name: f for f in original.values()}
        from ..ir.module import invalidate_compiled

        invalidate_compiled(module)  # blocks were rewritten in place
        return module


class _FunctionTransform:
    def __init__(self, parent, module, func):
        self.config = parent.config
        self.plan = parent.plan
        self.temporal = parent.plan.temporal
        self.module = module
        self.func = func
        self.meta = {}   # register uid -> (base Value, bound Value)
        self.tmeta = {}  # register uid -> (key Value, lock Value)
        self.multi_def = self._find_multi_def()
        self.copy_sources = {}  # pointer Mov dst uid -> source Register
        self.copy_dests = {}    # source uid -> [pointer Mov dst Registers]
        self.load_sources = {}  # pointer Load dst uid -> address operand
        self.out = None  # current output instruction list
        # Per-frame lock registers, created on first alloca (temporal).
        self._frame_meta = None
        # Block-local metadata availability: pointer-slot address key ->
        # the slot's full entry — (base, bound) spatially, widened to
        # (base, bound, key, lock) temporally — already in registers.
        # Emitting one canonical SbMetaLoad per slot per block (instead
        # of one per pointer load) is what makes the shapes hoist- and
        # dedup-friendly downstream (checkelim, licm), and it is only
        # sound for *disjoint* metadata facilities, where program stores
        # cannot touch the table: the inline-metadata baselines
        # (fatptr_*) observe every store and must re-read.
        self._meta_cache = {}
        self._meta_cache_enabled = parent.plan.disjoint_metadata
        # Per-function emission sequence for obs_site stamps (keeps
        # distinct checks on one source line apart in the profiler).
        self._site_seq = 0

    # -- definition-count prepass --------------------------------------------

    def _find_multi_def(self):
        counts = {}
        for instr in self.func.instructions():
            dst = getattr(instr, "dst", None)
            if dst is not None:
                counts[dst.uid] = counts.get(dst.uid, 0) + 1
        return {uid for uid, count in counts.items() if count > 1}

    # -- metadata helpers -----------------------------------------------------------

    def _meta_of(self, value):
        """The (base, bound) for a pointer-typed operand."""
        if isinstance(value, Const):
            return _NULL_META  # integers-as-pointers get NULL bounds (§5.2)
        if isinstance(value, SymbolRef):
            return self._symbol_meta(value)
        if isinstance(value, Register):
            return self.meta.get(value.uid, _NULL_META)
        return _NULL_META

    def _tmeta_of(self, value):
        """The (key, lock) for a pointer-typed operand."""
        if isinstance(value, SymbolRef):
            return _GLOBAL_TMETA  # globals and functions never die
        if isinstance(value, Register):
            return self.tmeta.get(value.uid, _NULL_TMETA)
        return _NULL_TMETA

    def _symbol_meta(self, symref):
        name = symref.name
        gvar = self.module.globals.get(name)
        if gvar is not None:
            return (SymbolRef(name), SymbolRef(name, addend=max(gvar.size, 1)))
        # Function symbol: base == bound encoding (paper Section 5.2).
        return (SymbolRef(name), SymbolRef(name))

    def _set_meta(self, dst_reg, base, bound):
        """Record metadata for a freshly defined pointer register.

        Single-assignment registers alias the values (free, compile-time
        propagation).  Multiply-assigned registers write through fixed
        companion registers.
        """
        if dst_reg.uid in self.multi_def:
            companions = self.meta.get(dst_reg.uid)
            if not (companions and isinstance(companions[0], Register)
                    and companions[0].hint.endswith(".sbb")):
                companions = (
                    self.func.new_reg(PTR, f"{dst_reg.uid}.sbb"),
                    self.func.new_reg(PTR, f"{dst_reg.uid}.sbe"),
                )
                self.meta[dst_reg.uid] = companions
            self.out.append(ins.Mov(dst=companions[0], src=base))
            self.out.append(ins.Mov(dst=companions[1], src=bound))
        else:
            self.meta[dst_reg.uid] = (base, bound)

    def _set_tmeta(self, dst_reg, key, lock):
        """Record temporal metadata, mirroring :meth:`_set_meta`."""
        if not self.temporal:
            return
        if dst_reg.uid in self.multi_def:
            companions = self.tmeta.get(dst_reg.uid)
            if not (companions and isinstance(companions[0], Register)
                    and companions[0].hint.endswith(".sbk")):
                companions = (
                    self.func.new_reg(I64, f"{dst_reg.uid}.sbk"),
                    self.func.new_reg(I64, f"{dst_reg.uid}.sbl"),
                )
                self.tmeta[dst_reg.uid] = companions
            self.out.append(ins.Mov(dst=companions[0], src=key))
            self.out.append(ins.Mov(dst=companions[1], src=lock))
        else:
            self.tmeta[dst_reg.uid] = (key, lock)

    def _fresh_meta_regs(self, tag):
        return self.func.new_reg(PTR, tag + ".sbb"), self.func.new_reg(PTR, tag + ".sbe")

    def _fresh_tmeta_regs(self, tag):
        return self.func.new_reg(I64, tag + ".sbk"), self.func.new_reg(I64, tag + ".sbl")

    def _frame_tmeta(self):
        """The function's per-frame (key, lock) registers, created once
        and recorded on the function for the VM to bind at frame entry
        (``Machine._push_frame`` acquires the frame's lock)."""
        if self._frame_meta is None:
            key = self.func.new_reg(I64, "frame.sbk")
            lock = self.func.new_reg(I64, "frame.sbl")
            self._frame_meta = (key, lock)
            self.func.sb_frame_meta = self._frame_meta
        return self._frame_meta

    # -- block-local metadata availability --------------------------------

    def _slot_key(self, addr):
        """A stable within-block identity for a pointer-slot address, or
        None when the address may be redefined mid-block."""
        if isinstance(addr, Register):
            if addr.uid in self.multi_def:
                return None
            return ("r", addr.uid)
        if isinstance(addr, SymbolRef):
            return ("s", addr.name, getattr(addr, "addend", 0))
        if isinstance(addr, Const):
            return ("c", addr.value)
        return None

    def _meta_value_stable(self, value):
        """True when a cached companion value cannot be overwritten
        later in the block (constants, symbols, single-assignment
        registers)."""
        if isinstance(value, (Const, SymbolRef)):
            return True
        return isinstance(value, Register) and value.uid not in self.multi_def

    def _meta_cache_lookup(self, addr):
        if not self._meta_cache_enabled:
            return None
        key = self._slot_key(addr)
        if key is None:
            return None
        return self._meta_cache.get(key)

    def _meta_cache_record(self, addr, entry):
        """Record a slot's freshly *read* entry (no table write).
        ``entry`` is the full companion tuple — (base, bound) spatially,
        (base, bound, key, lock) temporally."""
        if not self._meta_cache_enabled:
            return
        key = self._slot_key(addr)
        if key is not None and all(self._meta_value_stable(v) for v in entry):
            self._meta_cache[key] = entry

    def _meta_cache_written(self, addr, entry):
        """A table *write* happened: two distinct keys may alias the
        same runtime slot, so everything cached is invalid except the
        entry just written."""
        if not self._meta_cache_enabled:
            return
        self._meta_cache.clear()
        self._meta_cache_record(addr, entry)

    def _meta_cache_clear(self):
        self._meta_cache.clear()

    # -- checks ------------------------------------------------------------------------

    # Public aliases for the instrumentation plan: a plan's
    # ``emit_access_checks`` resolves companion values through these and
    # appends its check instruction(s) to ``self.out``.
    def meta_of(self, value):
        return self._meta_of(value)

    def tmeta_of(self, value):
        return self._tmeta_of(value)

    def _emit_check(self, addr_value, size, access_kind):
        """One dereference site: the policy's plan decides what checks
        to emit (spatial, spatial+temporal, a plugin's own opcode) and
        under which modes (store-only skips loads)."""
        self.plan.emit_access_checks(self, addr_value, size, access_kind)

    # -- the pass ------------------------------------------------------------------------

    def run(self):
        func = self.func
        # Extra parameters for pointer arguments (paper Section 3.3): for
        # each pointer parameter, in order, append a base and a bound —
        # and under temporal checking a key and a lock.
        for param in func.params:
            if param.ctype is not None and param.ctype.is_pointer:
                base = func.new_reg(PTR, f"{param.name}.base")
                bound = func.new_reg(PTR, f"{param.name}.bound")
                func.sb_extra_params.append(Param(register=base, ctype=None, name=f"{param.name}.base"))
                func.sb_extra_params.append(Param(register=bound, ctype=None, name=f"{param.name}.bound"))
                self.meta[param.register.uid] = (base, bound)
                if self.temporal:
                    key = func.new_reg(I64, f"{param.name}.key")
                    lock = func.new_reg(I64, f"{param.name}.lock")
                    func.sb_extra_params.append(
                        Param(register=key, ctype=None, name=f"{param.name}.key"))
                    func.sb_extra_params.append(
                        Param(register=lock, ctype=None, name=f"{param.name}.lock"))
                    self.tmeta[param.register.uid] = (key, lock)
        for block in func.blocks:
            self.out = []
            self._meta_cache_clear()  # availability is block-local
            for instr in block.instructions:
                self._visit(instr)
            block.instructions = self.out
        func._frame_layout = None

    def _visit(self, instr):
        handler = getattr(self, "_visit_" + instr.opcode, None)
        if handler is None:
            self.out.append(instr)
            return
        start = len(self.out)
        handler(instr)
        # Stamp every check/metadata-load this visit emitted with its
        # site identity: (pre-rename function, source line of the
        # guarded instruction, per-function sequence).  The obs
        # profiler keys execution counts on these; copy-based cloning
        # downstream (hoist/widen) preserves them.
        line = getattr(instr, "src_line", None)
        name = self.func.name
        for emitted in self.out[start:]:
            if emitted.opcode in _PROFILED_OPS and not hasattr(emitted, "obs_site"):
                emitted.obs_site = (name, line, self._site_seq)
                self._site_seq += 1

    # -- pointer-creating instructions -------------------------------------------------------

    def _visit_alloca(self, instr):
        self.out.append(instr)
        bound = self.func.new_reg(PTR, f"{instr.name}.sbe")
        self.out.append(ins.Gep(dst=bound, base=instr.dst, offset=Const(instr.size, I64)))
        self._set_meta(instr.dst, instr.dst, bound)
        if self.temporal:
            # Stack pointers key on the frame's lock: the VM acquires it
            # at frame entry and kills it at teardown, so dangling stack
            # pointers trap exactly like dangling heap pointers.
            self._set_tmeta(instr.dst, *self._frame_tmeta())

    def _visit_gep(self, instr):
        self.out.append(instr)
        if instr.field_extent is not None and self.config.shrink_bounds:
            # Sub-object bound shrinking (paper Section 3.1): the pointer
            # to a struct field gets the field's bounds, not the whole
            # object's.
            bound = self.func.new_reg(PTR, "field.sbe")
            self.out.append(ins.Gep(dst=bound, base=instr.dst,
                                    offset=Const(instr.field_extent, I64)))
            self._set_meta(instr.dst, instr.dst, bound)
        else:
            base, bound = self._meta_of(instr.base)
            self._set_meta(instr.dst, base, bound)
        # Pointer arithmetic never changes which allocation a pointer
        # belongs to: the (key, lock) pair is inherited unchanged.
        self._set_tmeta(instr.dst, *self._tmeta_of(instr.base))

    def _visit_cast(self, instr):
        self.out.append(instr)
        if instr.dst.type.is_ptr:
            if instr.kind == "inttoptr":
                # Creating pointers from integers: NULL bounds (§5.2).
                self._set_meta(instr.dst, *_NULL_META)
                self._set_tmeta(instr.dst, *_NULL_TMETA)
            else:
                self._set_meta(instr.dst, *self._meta_of(instr.src))
                self._set_tmeta(instr.dst, *self._tmeta_of(instr.src))

    def _visit_mov(self, instr):
        self.out.append(instr)
        if instr.dst.type.is_ptr:
            if isinstance(instr.src, Register):
                self.copy_sources[instr.dst.uid] = instr.src
                self.copy_dests.setdefault(instr.src.uid, []).append(instr.dst)
            self._set_meta(instr.dst, *self._meta_of(instr.src))
            self._set_tmeta(instr.dst, *self._tmeta_of(instr.src))

    # -- memory operations ---------------------------------------------------------------------

    def _visit_load(self, instr):
        self._emit_check(instr.addr, instr.type.size, "load")
        self.out.append(instr)
        if instr.is_pointer_value:
            cached = self._meta_cache_lookup(instr.addr)
            if cached is not None:
                # The slot's table entry is already in registers:
                # re-reading the table would return the same tuple
                # (program stores cannot write a disjoint table).
                self._set_meta(instr.dst, cached[0], cached[1])
                if self.temporal:
                    self._set_tmeta(instr.dst, cached[2], cached[3])
                self.load_sources[instr.dst.uid] = instr.addr
                return
            base, bound = self._fresh_meta_regs("ld")
            key = lock = None
            if self.temporal:
                key, lock = self._fresh_tmeta_regs("ld")
            self.out.append(ins.SbMetaLoad(addr=instr.addr, dst_base=base,
                                           dst_bound=bound, dst_key=key,
                                           dst_lock=lock))
            self._set_meta(instr.dst, base, bound)
            if self.temporal:
                self._set_tmeta(instr.dst, key, lock)
                self._meta_cache_record(instr.addr, (base, bound, key, lock))
            else:
                self._meta_cache_record(instr.addr, (base, bound))
            self.load_sources[instr.dst.uid] = instr.addr
        elif instr.dst.type.is_ptr:
            # A pointer-shaped value loaded through a non-pointer type
            # (wild cast): no table access, NULL bounds.
            self._set_meta(instr.dst, *_NULL_META)
            self._set_tmeta(instr.dst, *_NULL_TMETA)

    def _visit_store(self, instr):
        self._emit_check(instr.addr, instr.type.size, "store")
        self.out.append(instr)
        if instr.is_pointer_value:
            base, bound = self._meta_of(instr.value)
            if self.temporal:
                key, lock = self._tmeta_of(instr.value)
                self.out.append(ins.SbMetaStore(addr=instr.addr, base=base,
                                                bound=bound, key=key, lock=lock))
                entry = (base, bound, key, lock)
            else:
                self.out.append(ins.SbMetaStore(addr=instr.addr, base=base, bound=bound))
                entry = (base, bound)
            # Forward the stored entry: a reload of this slot later in
            # the block needs no table read.
            self._meta_cache_written(instr.addr, entry)

    def _visit_memcopy(self, instr):
        self._meta_cache_clear()  # the runtime copies table entries
        self._emit_check(instr.src_addr, instr.size, "load")
        self._emit_check(instr.dst_addr, instr.size, "store")
        self.out.append(instr)

    # -- calls and returns ------------------------------------------------------------------------

    def _visit_call(self, instr):
        self._meta_cache_clear()  # the callee may write the table
        if instr.callee == "setbound":
            self._rewrite_setbound(instr)
            return
        # Indirect calls: check the base==bound function-pointer encoding
        # before transferring control (paper Section 5.2).
        if instr.callee is None and instr.callee_reg is not None:
            base, bound = self._meta_of(instr.callee_reg)
            self.out.append(ins.SbCheck(ptr=instr.callee_reg, base=base, bound=bound,
                                        size=Const(0, I64), access_kind="load",
                                        is_fnptr_check=True))
            if self.config.encode_fnptr_signature:
                # Record the call site's view of which arguments are
                # pointers; the machine compares it against the resolved
                # target's declared signature (Section 5.2 extension).
                instr.sb_call_signature = tuple(
                    bool(ct is not None and ct.is_pointer)
                    for ct in instr.arg_ctypes)
        # Append metadata arguments for every pointer argument, in
        # order (paper Section 3.3: driven entirely by the call site):
        # (base, bound) per pointer, widened with (key, lock) under
        # temporal checking.
        meta_args = []
        for i, (arg, ctype) in enumerate(zip(instr.args, instr.arg_ctypes)):
            if ctype is not None and ctype.is_pointer:
                base, bound = self._meta_of(arg)
                meta_args.extend([base, bound])
                if self.temporal:
                    key, lock = self._tmeta_of(arg)
                    meta_args.extend([key, lock])
        instr.args = list(instr.args) + meta_args
        # Direct calls to module functions are renamed to the transformed
        # version; builtin names stay (the VM's libc acts as the wrapper
        # library, paper Section 5.2).
        if instr.callee is not None and instr.callee in self.module.functions:
            instr.sb_renamed = True  # machine redirects via sb_aliases
        # Pointer-returning calls get companion destination registers.
        if instr.dst is not None and instr.dst.type.is_ptr:
            base, bound = self._fresh_meta_regs("ret")
            if self.temporal:
                key, lock = self._fresh_tmeta_regs("ret")
                instr.sb_dst_meta = (base, bound, key, lock)
                self._set_tmeta(instr.dst, key, lock)
            else:
                instr.sb_dst_meta = (base, bound)
            self._set_meta(instr.dst, base, bound)
        self.out.append(instr)

    def _rewrite_setbound(self, instr):
        """setbound(p, size): explicitly set p's bounds (paper §5.2).

        A size of 0 "unbounds" the pointer (bounds become the whole
        address space), letting the programmer bless arbitrary access.
        Blessed pointers also become temporally immortal — the escape
        hatch escapes both halves of the discipline.
        """
        ptr = instr.args[0]
        size = instr.args[1]
        if not isinstance(ptr, Register):
            return  # setbound on a constant has nothing to update
        # The call's pointer operand is usually a copy of the variable's
        # register (register promotion materializes one Mov per use).
        # Update the whole copy web — upward through the chain of sources
        # and downward through every already-made copy of those — so
        # later uses of the variable see the new bounds regardless of
        # which copy they read.
        targets = [ptr]
        seen = {ptr.uid}
        cursor = ptr
        while isinstance(cursor, Register) and cursor.uid in self.copy_sources:
            cursor = self.copy_sources[cursor.uid]
            if not isinstance(cursor, Register) or cursor.uid in seen:
                break
            seen.add(cursor.uid)
            targets.append(cursor)
        frontier = list(targets)
        while frontier:
            node = frontier.pop()
            for dest in self.copy_dests.get(node.uid, ()):
                if dest.uid not in seen:
                    seen.add(dest.uid)
                    targets.append(dest)
                    frontier.append(dest)
        if isinstance(size, Const) and size.value == 0:
            unbounded = (Const(0, PTR), Const((1 << 63), PTR))
            for target in targets:
                self._set_meta(target, *unbounded)
                self._set_tmeta(target, *_GLOBAL_TMETA)
            self._store_setbound_metadata(targets, *unbounded)
            return
        bound = self.func.new_reg(PTR, "setbound.sbe")
        offset = size
        if isinstance(size, Register) and size.type is not I64:
            widened = self.func.new_reg(I64)
            self.out.append(ins.Cast(dst=widened, kind="sext", src=size))
            offset = widened
        self.out.append(ins.Gep(dst=bound, base=ptr, offset=offset))
        for target in targets:
            self._set_meta(target, ptr, bound)
            self._set_tmeta(target, *_GLOBAL_TMETA)
        self._store_setbound_metadata(targets, ptr, bound)

    def _store_setbound_metadata(self, targets, base, bound):
        """When any register in the setbound web was loaded from memory,
        the pointer variable itself lives in memory: refresh its table
        entry too, so later loads of the variable observe the new bounds
        (this is what makes setbound work in an un-promoted build)."""
        stored = set()
        for target in targets:
            addr = self.load_sources.get(target.uid)
            key = addr.uid if isinstance(addr, Register) else repr(addr)
            if addr is not None and key not in stored:
                stored.add(key)
                if self.temporal:
                    self.out.append(ins.SbMetaStore(
                        addr=addr, base=base, bound=bound,
                        key=_GLOBAL_TMETA[0], lock=_GLOBAL_TMETA[1]))
                else:
                    self.out.append(ins.SbMetaStore(addr=addr, base=base, bound=bound))

    def _visit_ret(self, instr):
        if instr.value is not None and self.func.return_type.is_ptr:
            meta = self._meta_of(instr.value)
            if self.temporal:
                meta = meta + self._tmeta_of(instr.value)
            instr.sb_meta = meta
        self.out.append(instr)
