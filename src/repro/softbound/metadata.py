"""Disjoint metadata facilities (paper Section 5.1).

Both facilities map *the address of a pointer in memory* (not the
pointer's value) to that pointer's base and bound.  They live entirely
outside simulated program memory — the disjointness that makes the
metadata incorruptible by program stores (Section 3.4), which tests
verify directly.

* :class:`HashTableMetadata` — open-hash table of (tag, base, bound)
  entries, 24 bytes each.  A lookup costs ~9 x86 instructions (shift,
  mask, multiply, add, three loads, compare, branch); collisions walk a
  chain, costing more — faithfully modelled because the paper attributes
  the hash table's extra overhead to exactly this tag-checking work.
* :class:`ShadowSpaceMetadata` — tag-less shadow space: the table is big
  enough that collisions cannot occur, eliminating the tag field and
  check (~5 instructions: shift, mask, add, two loads).
"""

_WORD_SHIFT = 3  # metadata is keyed per 8-byte (pointer-sized) slot

# Simulated address-space placement of each facility's own storage, used
# by the cache model (repro.vm.cache).  Far above all program segments.
HASH_REGION_BASE = 0x1000_0000_0000
HASH_OVERFLOW_BASE = 0x1800_0000_0000
SHADOW_REGION_BASE = 0x4000_0000_0000


class MetadataFacility:
    """Interface: load / store / clear_range keyed by pointer address.

    Under temporal checking each entry is *widened* from (base, bound)
    to (base, bound, key, lock) — the CETS discipline of carrying the
    lock-and-key pair through the same disjoint table.  The widened
    half is shared base-class state (``_temporal``, keyed by the same
    per-8-byte slot) so both facilities — and the cost model's
    distinction between them — stay exactly as the paper describes for
    the spatial half, while ``clear_range`` invalidates both halves
    together (stale temporal metadata in a reused slot would otherwise
    resurrect a dead pointer's liveness).
    """

    name = "abstract"
    load_cost_key = None
    store_cost_key = None
    TEMPORAL_ENTRY_BYTES = 16  # key + lock alongside each widened entry

    def __init__(self):
        self._trace = None
        self._temporal = {}  # slot key (addr >> 3) -> (key, lock)
        self._temporal_peak = 0

    def set_trace(self, callback):
        """Install an access-trace callback ``callback(addr, nbytes)``
        receiving the simulated address of each metadata entry touched.
        Used by the cache model; None disables tracing."""
        self._trace = callback

    def load(self, addr, stats):
        raise NotImplementedError

    def store(self, addr, base, bound, stats):
        raise NotImplementedError

    def clear_range(self, addr, size, stats):
        raise NotImplementedError

    def metadata_bytes(self):
        raise NotImplementedError

    def entry_count(self):
        raise NotImplementedError

    # -- the widened (temporal) half of each entry ---------------------

    def load_temporal(self, addr, stats):
        """The (key, lock) half of the slot's entry; (0, 0) when the
        slot never held a pointer (an invalid key that can never match
        a live lock)."""
        stats.charge("sb.temporal.meta.load")
        return self._temporal.get(addr >> _WORD_SHIFT, (0, 0))

    def store_temporal(self, addr, key, lock, stats):
        stats.charge("sb.temporal.meta.store")
        slot = addr >> _WORD_SHIFT
        if key or lock:
            self._temporal[slot] = (key, lock)
            if len(self._temporal) > self._temporal_peak:
                self._temporal_peak = len(self._temporal)
        else:
            self._temporal.pop(slot, None)

    def _clear_temporal_range(self, addr, size):
        """Invalidate the temporal half for every slot in the range
        (called by each facility's ``clear_range``)."""
        temporal = self._temporal
        if not temporal:
            return
        start = addr >> _WORD_SHIFT
        end = (addr + size + 7) >> _WORD_SHIFT
        if end - start < len(temporal):
            for slot in range(start, end):
                temporal.pop(slot, None)
        else:
            for slot in [s for s in temporal if start <= s < end]:
                del temporal[slot]

    def temporal_metadata_bytes(self):
        return self._temporal_peak * self.TEMPORAL_ENTRY_BYTES


class HashTableMetadata(MetadataFacility):
    """Open-hash table keyed by double-word address (paper Section 5.1).

    ``log2_buckets`` sizes the table; the paper keeps "average
    utilization low" so the no-collision fast path dominates.
    """

    name = "hash_table"
    ENTRY_BYTES = 24  # tag + base + bound at 8 bytes each

    def __init__(self, log2_buckets=16):
        super().__init__()
        self.mask = (1 << log2_buckets) - 1
        self.buckets = {}  # bucket index -> list of [tag, base, bound]
        self.live = 0
        self.peak_live = 0

    def _bucket(self, addr):
        key = addr >> _WORD_SHIFT
        return key & self.mask, key

    def _trace_chain(self, index, depth):
        """Report the simulated addresses a chain walk of ``depth`` extra
        entries touches: the in-table entry plus overflow-arena entries
        (scattered by a multiplicative hash of the bucket, modelling
        heap-allocated chain nodes)."""
        if self._trace is None:
            return
        self._trace(HASH_REGION_BASE + index * self.ENTRY_BYTES, self.ENTRY_BYTES)
        for level in range(depth):
            slot = ((index * 0x9E3779B1 + level * 0x85EBCA77) >> 4) & 0xFFFFF
            self._trace(HASH_OVERFLOW_BASE + slot * self.ENTRY_BYTES,
                        self.ENTRY_BYTES)

    def load(self, addr, stats):
        index, tag = self._bucket(addr)
        chain = self.buckets.get(index)
        stats.charge("sb.meta.hash.load")
        if chain is None:
            self._trace_chain(index, 0)
            return (0, 0)
        for depth, entry in enumerate(chain):
            if entry[0] == tag:
                if depth:
                    stats.charge_units(3 * depth)  # chain walk
                self._trace_chain(index, depth)
                return (entry[1], entry[2])
        stats.charge_units(3 * len(chain))
        self._trace_chain(index, len(chain))
        return (0, 0)

    def store(self, addr, base, bound, stats):
        index, tag = self._bucket(addr)
        stats.charge("sb.meta.hash.store")
        chain = self.buckets.setdefault(index, [])
        for depth, entry in enumerate(chain):
            if entry[0] == tag:
                entry[1] = base
                entry[2] = bound
                if depth:
                    stats.charge_units(3 * depth)
                self._trace_chain(index, depth)
                return
        self._trace_chain(index, len(chain))
        chain.append([tag, base, bound])
        self.live += 1
        self.peak_live = max(self.peak_live, self.live)

    def clear_range(self, addr, size, stats):
        start = addr >> _WORD_SHIFT
        end = (addr + size + 7) >> _WORD_SHIFT
        for key in range(start, end):
            index = key & self.mask
            chain = self.buckets.get(index)
            if not chain:
                continue
            before = len(chain)
            chain[:] = [entry for entry in chain if entry[0] != key]
            self.live -= before - len(chain)
        self._clear_temporal_range(addr, size)
        stats.charge_units(max((end - start), 1))

    def metadata_bytes(self):
        return self.peak_live * self.ENTRY_BYTES + self.temporal_metadata_bytes()

    def entry_count(self):
        return self.live


class ShadowSpaceMetadata(MetadataFacility):
    """Tag-less shadow space (paper Section 5.1): a reserved region large
    enough that every pointer slot has its own metadata slot, so no tags
    and no collision handling.

    Modeled as demand-allocated *pages* of flat entry arrays — exactly
    the structure the OS's demand paging gives the real mmap'd shadow
    space.  Compared to one dict entry per slot, the paged layout keeps
    the load/store fast path to a page lookup plus an indexed read, and
    lets ``clear_range`` (frame teardown, ``free``) drop an entire page
    at once instead of popping slot keys one by one.
    """

    name = "shadow_space"
    ENTRY_BYTES = 16  # base + bound
    PAGE_SHIFT = 12   # 4096 pointer slots (32 KiB of shadow) per page
    PAGE_SLOTS = 1 << PAGE_SHIFT
    PAGE_MASK = PAGE_SLOTS - 1

    def __init__(self):
        super().__init__()
        self.pages = {}  # page index -> [entry or None] * PAGE_SLOTS
        self._page_live = {}  # page index -> live entries (O(1) teardown)
        self.live = 0
        self.peak_live = 0

    def _trace_entry(self, key):
        if self._trace is not None:
            # The shadow space mirrors the program address space at 2x
            # scale: slot key's entry sits at a fixed, locality-
            # preserving offset.
            self._trace(SHADOW_REGION_BASE + key * self.ENTRY_BYTES,
                        self.ENTRY_BYTES)

    def load(self, addr, stats):
        stats.charge("sb.meta.shadow.load")
        key = addr >> _WORD_SHIFT
        if self._trace is not None:
            self._trace_entry(key)
        page = self.pages.get(key >> self.PAGE_SHIFT)
        if page is None:
            return (0, 0)
        entry = page[key & self.PAGE_MASK]
        return entry if entry is not None else (0, 0)

    def store(self, addr, base, bound, stats):
        stats.charge("sb.meta.shadow.store")
        key = addr >> _WORD_SHIFT
        if self._trace is not None:
            self._trace_entry(key)
        pages = self.pages
        page_index = key >> self.PAGE_SHIFT
        page = pages.get(page_index)
        if page is None:
            page = pages[page_index] = [None] * self.PAGE_SLOTS
            self._page_live[page_index] = 0
        slot = key & self.PAGE_MASK
        if page[slot] is None:
            self.live += 1
            self._page_live[page_index] += 1
            if self.live > self.peak_live:
                self.peak_live = self.live
        page[slot] = (base, bound)

    def clear_range(self, addr, size, stats):
        start = addr >> _WORD_SHIFT
        end = (addr + size + 7) >> _WORD_SHIFT
        pages = self.pages
        key = start
        while key < end:
            page_index = key >> self.PAGE_SHIFT
            page_start = page_index << self.PAGE_SHIFT
            page_end = page_start + self.PAGE_SLOTS
            chunk_end = min(end, page_end)
            page = pages.get(page_index)
            if page is not None:
                if key == page_start and chunk_end == page_end:
                    # Whole page covered: unmap it in one go.
                    self.live -= self._page_live.pop(page_index)
                    del pages[page_index]
                else:
                    cleared = 0
                    for slot in range(key & self.PAGE_MASK,
                                      ((chunk_end - 1) & self.PAGE_MASK) + 1):
                        if page[slot] is not None:
                            page[slot] = None
                            cleared += 1
                    self.live -= cleared
                    self._page_live[page_index] -= cleared
            key = chunk_end
        self._clear_temporal_range(addr, size)
        stats.charge_units(max(end - start, 1))

    def metadata_bytes(self):
        return self.peak_live * self.ENTRY_BYTES + self.temporal_metadata_bytes()

    def entry_count(self):
        return self.live


def make_facility(scheme):
    from .config import MetadataScheme

    if scheme is MetadataScheme.HASH_TABLE:
        return HashTableMetadata()
    return ShadowSpaceMetadata()
