"""SoftBound configuration.

Two orthogonal axes, exactly the paper's evaluation matrix (Figure 2):

* :class:`CheckMode` — FULL checks every dereference; STORE_ONLY fully
  propagates metadata but checks only memory writes (Section 1/6.3: "In
  this mode, SoftBound fully propagates all metadata, but inserts bounds
  checks only for memory writes").
* :class:`MetadataScheme` — HASH_TABLE (tagged entries, ≈9 instructions
  per access) or SHADOW_SPACE (tag-less, ≈5 instructions; Section 5.1).
"""

import enum
from dataclasses import dataclass


class CheckMode(enum.Enum):
    FULL = "full"
    STORE_ONLY = "store_only"


class MetadataScheme(enum.Enum):
    HASH_TABLE = "hash_table"
    SHADOW_SPACE = "shadow_space"


@dataclass(frozen=True)
class SoftBoundConfig:
    """How to instrument and run a program under SoftBound."""

    mode: CheckMode = CheckMode.FULL
    scheme: MetadataScheme = MetadataScheme.SHADOW_SPACE
    #: Shrink pointer bounds to the field when creating pointers to
    #: struct fields (Section 3.1).  On by default; the ablation bench
    #: turns it off to demonstrate sub-object overflows escaping.
    shrink_bounds: bool = True
    #: Infer pointer-free memcpy from the call-site argument type and
    #: skip metadata copying when safe (Section 5.2's heuristic).
    infer_memcpy: bool = True
    #: Run the post-instrumentation optimization pipeline (redundant
    #: check elimination etc., Section 6.1).
    optimize_checks: bool = True
    #: Run the loop-aware check optimizer inside that pipeline (LICM of
    #: invariant metadata loads/checks plus guarded check widening —
    #: :mod:`repro.opt.licm`, :mod:`repro.opt.checkwiden`).  Only the
    #: ``softbound`` variant honours it; the ablation benchmarks turn
    #: it off to isolate the loop passes' contribution.
    loop_optimize: bool = True
    #: Encode each function's pointer/non-pointer argument signature and
    #: verify it dynamically at indirect calls.  This is the "ultimate
    #: solution" the paper sketches for casts between incompatible
    #: function-pointer types but leaves unimplemented in its prototype
    #: (Section 5.2, "Function pointers"); off by default to match the
    #: prototype, on in the extension tests.
    encode_fnptr_signature: bool = False
    #: Lock-and-key temporal checking (use-after-free, double free,
    #: dangling stack pointers): every allocation gets a unique key and
    #: a lock location, pointers carry (key, lock) alongside
    #: (base, bound), and a dereference additionally requires
    #: ``*lock == key`` (:mod:`repro.temporal`).  Off by default to
    #: match the paper's prototype, which defers dangling-pointer
    #: detection to a companion mechanism; only the ``softbound``
    #: variant supports it.
    temporal: bool = False
    #: Instrumentation variant: "softbound" (the paper's system) or
    #: "mscc" (the Xu et al. baseline of Section 6.5, modelled as the
    #: same pointer-based discipline with linked-shadow metadata costs
    #: and no sub-object bounds).
    variant: str = "softbound"

    @property
    def label(self):
        scheme = "ShadowSpace" if self.scheme is MetadataScheme.SHADOW_SPACE else "HashTable"
        mode = "Complete" if self.mode is CheckMode.FULL else "Stores"
        label = f"{scheme}-{mode}"
        if self.temporal:
            label += "-Temporal"
        return label


FULL_SHADOW = SoftBoundConfig(CheckMode.FULL, MetadataScheme.SHADOW_SPACE)
FULL_HASH = SoftBoundConfig(CheckMode.FULL, MetadataScheme.HASH_TABLE)
STORE_SHADOW = SoftBoundConfig(CheckMode.STORE_ONLY, MetadataScheme.SHADOW_SPACE)
STORE_HASH = SoftBoundConfig(CheckMode.STORE_ONLY, MetadataScheme.HASH_TABLE)

#: The four configurations of the paper's Figure 2, in its legend order.
FIGURE2_CONFIGS = (FULL_HASH, FULL_SHADOW, STORE_HASH, STORE_SHADOW)

#: Full spatial + lock-and-key temporal checking over the shadow space —
#: the complete-memory-safety configuration the temporal detection table
#: and ``BENCH_temporal.json`` measure.
TEMPORAL_SHADOW = SoftBoundConfig(CheckMode.FULL, MetadataScheme.SHADOW_SPACE,
                                  temporal=True)
TEMPORAL_HASH = SoftBoundConfig(CheckMode.FULL, MetadataScheme.HASH_TABLE,
                                temporal=True)
