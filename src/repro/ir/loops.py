"""Natural-loop analysis and loop-shape CFG utilities.

Built on the dominator information of :class:`repro.ir.cfg.CFG`: a back
edge is an edge ``latch -> header`` whose target dominates its source;
the natural loop of that edge is the header plus every block that can
reach the latch without passing through the header.  Loops sharing a
header are merged (the classic definition), and the resulting loops are
arranged into a forest by block-set containment.

The loop-aware check optimizer (:mod:`repro.opt.licm`,
:mod:`repro.opt.checkwiden`) consumes this analysis and the two
structural utilities here:

* :func:`ensure_preheader` — guarantee a dedicated out-of-loop block
  whose only successor is the header, the landing pad for hoisted
  metadata loads and widened checks.  A single entering critical edge
  is handled with the generic :func:`repro.ir.cfg.split_edge`; multiple
  entering edges are redirected through one fresh block
  (:func:`make_preheader`).

Both utilities mutate the function; any CFG/Loop objects computed
before the mutation are stale afterwards and must be rebuilt.
"""

from . import instructions as ins
from .cfg import (CFG, insert_block, redirect_terminator, split_edge,
                  unique_label)


class Loop:
    """One natural loop: header label, member labels, nesting links."""

    def __init__(self, header, blocks):
        self.header = header          # label
        self.blocks = set(blocks)     # labels, header included
        self.latches = []             # labels of back-edge sources
        self.parent = None            # enclosing Loop or None
        self.children = []            # immediately nested Loops
        self.depth = 1                # 1 = outermost

    @property
    def is_innermost(self):
        return not self.children

    def exit_edges(self, cfg):
        """``(from_label, to_label)`` pairs leaving the loop."""
        edges = []
        for label in self.blocks:
            for succ in cfg.succs.get(label, []):
                if succ.label not in self.blocks:
                    edges.append((label, succ.label))
        return edges

    def exiting_blocks(self, cfg):
        return sorted({src for src, _ in self.exit_edges(cfg)})

    def entering_preds(self, cfg):
        """Predecessor blocks of the header that sit outside the loop."""
        return [p for p in cfg.preds.get(self.header, [])
                if p.label not in self.blocks]

    def instructions(self, func):
        for label in self.blocks:
            yield from func.block_map[label].instructions

    def __repr__(self):
        return (f"<Loop header={self.header} blocks={len(self.blocks)} "
                f"depth={self.depth}>")


def find_loops(cfg):
    """All natural loops of ``cfg`` as a list sorted outermost-first
    (by depth, then header label for determinism), with parent/children
    links populated."""
    back_edges = []
    for block in cfg.rpo:
        for succ in cfg.succs[block.label]:
            if cfg.dominates(succ.label, block.label):
                back_edges.append((block.label, succ.label))
    by_header = {}
    for latch, header in back_edges:
        loop = by_header.setdefault(header, Loop(header, {header}))
        loop.latches.append(latch)
        # Walk backwards from the latch, stopping at the header.
        stack = [latch]
        while stack:
            label = stack.pop()
            if label in loop.blocks:
                continue
            loop.blocks.add(label)
            stack.extend(p.label for p in cfg.preds.get(label, []))
    loops = sorted(by_header.values(), key=lambda l: (len(l.blocks), l.header))
    # Containment nesting: the smallest strict superset is the parent.
    for i, loop in enumerate(loops):
        for candidate in loops[i + 1:]:
            if loop.header in candidate.blocks and loop is not candidate:
                loop.parent = candidate
                candidate.children.append(loop)
                break
    for loop in loops:
        depth = 1
        cursor = loop.parent
        while cursor is not None:
            depth += 1
            cursor = cursor.parent
        loop.depth = depth
    loops.sort(key=lambda l: (l.depth, l.header))
    return loops


def innermost_loops(cfg):
    return [loop for loop in find_loops(cfg) if loop.is_innermost]


def make_preheader(func, cfg, loop, label_hint=None):
    """Create a fresh preheader for ``loop``: a new block ending in
    ``br header`` that every entering edge (including the implicit
    function-entry edge when the header is the entry block) is
    redirected through.  Returns the new block.

    The caller's ``cfg``/``loop`` objects are stale after this call.
    """
    from .module import BasicBlock

    header = loop.header
    label = unique_label(func, label_hint or f"{header}.ph")
    pre = BasicBlock(label)
    pre.append(ins.Br(label=header))
    for pred in loop.entering_preds(cfg):
        redirect_terminator(pred, header, label)
    return insert_block(func, pre, header)


def ensure_preheader(func, cfg, loop):
    """Return the loop's preheader, creating one if needed.

    An existing block qualifies when it is the *only* entering
    predecessor, ends in an unconditional branch to the header, and the
    header is not the function entry (the entry's implicit edge cannot
    be redirected into an existing block).  A single entering *critical*
    edge (conditional predecessor) is split in place; multiple entering
    edges get a fresh block they are all redirected through.
    """
    entering = loop.entering_preds(cfg)
    header_is_entry = func.entry.label == loop.header
    if len(entering) == 1 and not header_is_entry:
        pred = entering[0]
        term = pred.terminator
        if term is not None and term.opcode == "br" and term.label == loop.header:
            return pred
        return split_edge(func, pred, loop.header,
                          label_hint=f"{loop.header}.ph")
    return make_preheader(func, cfg, loop)
