"""IR structural verifier.

Run after lowering, after each optimization pass and after the SoftBound
transform (in tests) to catch malformed IR early: missing terminators,
branches to unknown labels, type mismatches on moves/stores, operands
that are never defined, and terminators in the middle of a block.
"""

from . import instructions as ins
from .values import Const, Register, SymbolRef


class VerifierError(Exception):
    pass


def _operands(instr):
    """All Values read by an instruction."""
    reads = []
    for attr in ("addr", "value", "a", "b", "base", "offset", "src", "cond",
                 "callee_reg", "dst_addr", "src_addr", "ptr", "bound", "size"):
        val = getattr(instr, attr, None)
        if isinstance(val, (Register, Const, SymbolRef)):
            reads.append(val)
    for arg in getattr(instr, "args", []) or []:
        if isinstance(arg, (Register, Const, SymbolRef)):
            reads.append(arg)
    return reads


def verify_function(func, module=None, allow_unresolved=False):
    defined = {p.register.uid for p in func.params}
    defined.update(p.register.uid for p in getattr(func, "sb_extra_params", []))
    labels = {b.label for b in func.blocks}
    if not func.blocks:
        raise VerifierError(f"{func.name}: no blocks")

    # First pass: collect every register ever defined (the IR is not SSA,
    # so a register may be written on one path and read on another; we
    # only require that each read register is written *somewhere*).
    for instr in func.instructions():
        dst = getattr(instr, "dst", None)
        if dst is not None:
            defined.add(dst.uid)
        for attr in ("dst_base", "dst_bound"):
            reg = getattr(instr, attr, None)
            if reg is not None:
                defined.add(reg.uid)
        meta = getattr(instr, "sb_dst_meta", None)
        if meta is not None:
            defined.add(meta[0].uid)
            defined.add(meta[1].uid)

    for block in func.blocks:
        if not block.instructions:
            raise VerifierError(f"{func.name}/{block.label}: empty block")
        if block.terminator is None:
            raise VerifierError(f"{func.name}/{block.label}: missing terminator")
        for i, instr in enumerate(block.instructions):
            if instr.is_terminator and i != len(block.instructions) - 1:
                raise VerifierError(f"{func.name}/{block.label}: terminator mid-block")
            for val in _operands(instr):
                if isinstance(val, Register) and val.uid not in defined:
                    raise VerifierError(
                        f"{func.name}/{block.label}: use of undefined {val} in {instr.opcode}"
                    )
                if isinstance(val, SymbolRef) and module is not None \
                        and not allow_unresolved:
                    known = (val.name in module.globals
                             or val.name in module.functions
                             or val.name in getattr(module, "sb_aliases", {}))
                    if not known:
                        # Builtins/externals are resolved by the VM.
                        from ..frontend.builtins import is_builtin

                        if not is_builtin(val.name):
                            raise VerifierError(f"{func.name}: unresolved symbol @{val.name}")
            if instr.opcode == "br" and instr.label not in labels:
                raise VerifierError(f"{func.name}: branch to unknown label {instr.label}")
            if instr.opcode == "cbr":
                for label in (instr.true_label, instr.false_label):
                    if label not in labels:
                        raise VerifierError(f"{func.name}: branch to unknown label {label}")
            if instr.opcode == "binop" and instr.op not in ins.INT_BINOPS | ins.FLOAT_BINOPS:
                raise VerifierError(f"{func.name}: bad binop {instr.op}")
            if instr.opcode == "cmp" and instr.pred not in ins.CMP_PREDS:
                raise VerifierError(f"{func.name}: bad predicate {instr.pred}")
            if instr.opcode == "cast" and instr.kind not in ins.CAST_KINDS:
                raise VerifierError(f"{func.name}: bad cast kind {instr.kind}")
            if instr.opcode == "call" and instr.callee is None and instr.callee_reg is None:
                raise VerifierError(f"{func.name}: call with no target")
    return True


def verify_module(module, allow_unresolved=False):
    """Verify every function.  ``allow_unresolved`` defers unresolved-
    symbol errors — appropriate for a single translation unit whose
    externs will be satisfied at link time (repro.harness.linker
    re-verifies strictly after the link)."""
    for func in module.functions.values():
        verify_function(func, module, allow_unresolved=allow_unresolved)
    return True
