"""IR structural verifier.

Run after lowering, after each optimization pass and after the SoftBound
transform (in tests) to catch malformed IR early: missing terminators,
branches to unknown labels, type mismatches on moves/stores, registers
read before any definition reaches them, and terminators in the middle
of a block.

The use-before-definition check is a forward *must-define* dataflow
analysis over the CFG: a register read is legal only when every path
from the entry to that read passes a definition first.  The
closure-compiling engine (:mod:`repro.vm.engine`) relies on this
invariant — it lets compiled closures read ``frame.regs`` slots
directly instead of defaulting each access — and
:func:`repro.opt.mem2reg` consumes :func:`definite_assignment_errors`
to zero-initialize any promoted slot whose source variable was read
before its first store (the interpreter's historical read-as-0
behaviour, now made explicit in the IR).
"""

from . import instructions as ins
from .values import Const, Register, SymbolRef


class VerifierError(Exception):
    pass


def _operands(instr):
    """All Values read by an instruction."""
    reads = []
    for attr in ("addr", "value", "a", "b", "base", "offset", "src", "cond",
                 "callee_reg", "dst_addr", "src_addr", "ptr", "bound", "size",
                 "key", "lock"):
        val = getattr(instr, attr, None)
        if isinstance(val, (Register, Const, SymbolRef)):
            reads.append(val)
    for arg in getattr(instr, "args", []) or []:
        if isinstance(arg, (Register, Const, SymbolRef)):
            reads.append(arg)
    # SoftBound return metadata: ret reads its (base, bound) companions.
    meta = getattr(instr, "sb_meta", None)
    if meta is not None:
        for val in meta:
            if isinstance(val, (Register, Const, SymbolRef)):
                reads.append(val)
    return reads


def _defined_uids(instr):
    """All register uids an instruction writes."""
    uids = []
    dst = getattr(instr, "dst", None)
    if dst is not None:
        uids.append(dst.uid)
    for attr in ("dst_base", "dst_bound", "dst_key", "dst_lock"):
        reg = getattr(instr, attr, None)
        if reg is not None:
            uids.append(reg.uid)
    meta = getattr(instr, "sb_dst_meta", None)
    if meta is not None:
        uids.extend(reg.uid for reg in meta)
    return uids


def _successor_labels(block):
    term = block.instructions[-1] if block.instructions else None
    if term is None:
        return []
    if term.opcode == "br":
        return [term.label]
    if term.opcode == "cbr":
        return [term.true_label, term.false_label]
    return []


def definite_assignment_errors(func):
    """Use-before-definition reads, as ``(block_label, instr, register)``
    triples — a register read not dominated by a definition on *every*
    path from the entry.  Unreachable blocks are skipped (their reads
    never execute).  Empty result means the compiled engine may treat
    every register read as a live ``frame.regs`` slot."""
    params = {p.register.uid for p in func.params}
    params.update(p.register.uid for p in getattr(func, "sb_extra_params", []))
    # The frame's temporal (key, lock) registers are bound by the VM at
    # frame entry, exactly like parameters.
    frame_meta = getattr(func, "sb_frame_meta", None)
    if frame_meta is not None:
        params.update(reg.uid for reg in frame_meta)
    if not func.blocks:
        return []
    labels = {b.label: b for b in func.blocks}
    entry = func.blocks[0].label
    succs = {}
    preds = {label: [] for label in labels}
    gen = {}
    for block in func.blocks:
        block_succs = [s for s in _successor_labels(block) if s in labels]
        succs[block.label] = block_succs
        for succ in block_succs:
            preds[succ].append(block.label)
        defined = set()
        for instr in block.instructions:
            defined.update(_defined_uids(instr))
        gen[block.label] = defined
    # Reachability from the entry.
    reachable = set()
    stack = [entry]
    while stack:
        label = stack.pop()
        if label in reachable:
            continue
        reachable.add(label)
        stack.extend(succs[label])
    # Forward must-define fixpoint: IN[b] = ∩ OUT[p] over computed
    # predecessors (uncomputed predecessors are top and drop out of the
    # intersection); OUT[b] = IN[b] ∪ gen[b].  Sets only shrink, so the
    # iteration terminates.
    in_sets = {entry: set(params)}
    out_sets = {}
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            label = block.label
            if label not in reachable:
                continue
            if label == entry:
                in_set = set(params)
            else:
                pred_outs = [out_sets[p] for p in preds[label] if p in out_sets]
                if not pred_outs:
                    continue
                in_set = set.intersection(*pred_outs)
            out_set = in_set | gen[label]
            if out_sets.get(label) != out_set:
                out_sets[label] = out_set
                changed = True
            in_sets[label] = in_set
    errors = []
    for block in func.blocks:
        label = block.label
        if label not in reachable or label not in in_sets:
            continue
        current = set(in_sets[label])
        for instr in block.instructions:
            for val in _operands(instr):
                if isinstance(val, Register) and val.uid not in current:
                    errors.append((label, instr, val))
            current.update(_defined_uids(instr))
    return errors


def verify_function(func, module=None, allow_unresolved=False):
    defined = {p.register.uid for p in func.params}
    defined.update(p.register.uid for p in getattr(func, "sb_extra_params", []))
    frame_meta = getattr(func, "sb_frame_meta", None)
    if frame_meta is not None:
        # Bound by the VM at frame entry, exactly like parameters.
        defined.update(reg.uid for reg in frame_meta)
    labels = {b.label for b in func.blocks}
    if not func.blocks:
        raise VerifierError(f"{func.name}: no blocks")

    # First pass: collect every register ever defined (the IR is not SSA,
    # so a register may be written on one path and read on another; we
    # only require that each read register is written *somewhere*).
    for instr in func.instructions():
        dst = getattr(instr, "dst", None)
        if dst is not None:
            defined.add(dst.uid)
        for attr in ("dst_base", "dst_bound", "dst_key", "dst_lock"):
            reg = getattr(instr, attr, None)
            if reg is not None:
                defined.add(reg.uid)
        meta = getattr(instr, "sb_dst_meta", None)
        if meta is not None:
            defined.update(reg.uid for reg in meta)

    for block in func.blocks:
        if not block.instructions:
            raise VerifierError(f"{func.name}/{block.label}: empty block")
        if block.terminator is None:
            raise VerifierError(f"{func.name}/{block.label}: missing terminator")
        for i, instr in enumerate(block.instructions):
            if instr.is_terminator and i != len(block.instructions) - 1:
                raise VerifierError(f"{func.name}/{block.label}: terminator mid-block")
            for val in _operands(instr):
                if isinstance(val, Register) and val.uid not in defined:
                    raise VerifierError(
                        f"{func.name}/{block.label}: use of undefined {val} in {instr.opcode}"
                    )
                if isinstance(val, SymbolRef) and module is not None \
                        and not allow_unresolved:
                    known = (val.name in module.globals
                             or val.name in module.functions
                             or val.name in getattr(module, "sb_aliases", {}))
                    if not known:
                        # Builtins/externals are resolved by the VM.
                        from ..frontend.builtins import is_builtin

                        if not is_builtin(val.name):
                            raise VerifierError(f"{func.name}: unresolved symbol @{val.name}")
            if instr.opcode == "br" and instr.label not in labels:
                raise VerifierError(f"{func.name}: branch to unknown label {instr.label}")
            if instr.opcode == "cbr":
                for label in (instr.true_label, instr.false_label):
                    if label not in labels:
                        raise VerifierError(f"{func.name}: branch to unknown label {label}")
            if instr.opcode == "binop" and instr.op not in ins.INT_BINOPS | ins.FLOAT_BINOPS:
                raise VerifierError(f"{func.name}: bad binop {instr.op}")
            if instr.opcode == "cmp" and instr.pred not in ins.CMP_PREDS:
                raise VerifierError(f"{func.name}: bad predicate {instr.pred}")
            if instr.opcode == "cast" and instr.kind not in ins.CAST_KINDS:
                raise VerifierError(f"{func.name}: bad cast kind {instr.kind}")
            if instr.opcode == "call" and instr.callee is None and instr.callee_reg is None:
                raise VerifierError(f"{func.name}: call with no target")

    # Reject use-before-definition: every read must be preceded by a
    # definition on all paths from the entry (the closure-compiled
    # engine relies on register slots existing when read).
    for label, instr, val in definite_assignment_errors(func):
        raise VerifierError(
            f"{func.name}/{label}: use of {val} before definition in {instr.opcode}"
        )
    return True


def verify_module(module, allow_unresolved=False):
    """Verify every function.  ``allow_unresolved`` defers unresolved-
    symbol errors — appropriate for a single translation unit whose
    externs will be satisfied at link time (repro.harness.linker
    re-verifies strictly after the link)."""
    for func in module.functions.values():
        verify_function(func, module, allow_unresolved=allow_unresolved)
    return True
