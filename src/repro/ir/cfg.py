"""Control-flow graph and dominator analysis over the register IR.

Built on demand by optimization passes (notably the dominance-based
redundant-check elimination, which generalizes what the paper obtains by
re-running LLVM's pipeline over instrumented code, Section 6.1).

Dominators are computed with the Cooper–Harvey–Kennedy iterative
algorithm over a reverse-postorder numbering — simple, and linear in
practice on the small CFGs the C-subset frontend produces.
"""


class CFG:
    """Successor/predecessor maps plus orderings for one function.

    Only blocks reachable from the entry are included: unreachable
    blocks have no dominator semantics (and the lowerer occasionally
    leaves an unreachable landing block behind).
    """

    def __init__(self, func):
        self.func = func
        self.entry = func.blocks[0]
        self.succs = {}
        self.preds = {}
        self._build()
        self.rpo = self._reverse_postorder()
        self.rpo_index = {block.label: i for i, block in enumerate(self.rpo)}
        self.idom = self._dominators()

    # -- construction --------------------------------------------------------

    def _block(self, label):
        return self.func.block_map[label]

    def _successor_labels(self, block):
        term = block.terminator
        if term is None:
            return []
        if term.opcode == "br":
            return [term.label]
        if term.opcode == "cbr":
            if term.true_label == term.false_label:
                return [term.true_label]
            return [term.true_label, term.false_label]
        return []  # ret / unreachable

    def _build(self):
        worklist = [self.entry]
        seen = {self.entry.label}
        while worklist:
            block = worklist.pop()
            succs = [self._block(label) for label in self._successor_labels(block)]
            self.succs[block.label] = succs
            self.preds.setdefault(block.label, [])
            for succ in succs:
                self.preds.setdefault(succ.label, []).append(block)
                if succ.label not in seen:
                    seen.add(succ.label)
                    worklist.append(succ)

    def _reverse_postorder(self):
        order = []
        visited = set()

        def visit(block):
            visited.add(block.label)
            for succ in self.succs[block.label]:
                if succ.label not in visited:
                    visit(succ)
            order.append(block)

        visit(self.entry)
        order.reverse()
        return order

    # -- dominators ------------------------------------------------------------

    def _dominators(self):
        """Immediate dominators (Cooper–Harvey–Kennedy).  The entry's
        idom is itself."""
        idom = {self.entry.label: self.entry}
        changed = True
        while changed:
            changed = False
            for block in self.rpo[1:]:
                processed = [p for p in self.preds[block.label] if p.label in idom]
                if not processed:
                    continue
                new_idom = processed[0]
                for pred in processed[1:]:
                    new_idom = self._intersect(pred, new_idom, idom)
                if idom.get(block.label) is not new_idom:
                    idom[block.label] = new_idom
                    changed = True
        return idom

    def _intersect(self, a, b, idom):
        while a is not b:
            while self.rpo_index[a.label] > self.rpo_index[b.label]:
                a = idom[a.label]
            while self.rpo_index[b.label] > self.rpo_index[a.label]:
                b = idom[b.label]
        return a

    # -- queries ------------------------------------------------------------

    def reachable_labels(self):
        return set(self.succs)

    def dominates(self, a_label, b_label):
        """True when block ``a`` dominates block ``b`` (reflexive)."""
        if a_label == b_label:
            return True
        return any(block.label == a_label for block in self.dominator_chain(b_label))

    def dominator_chain(self, label):
        """Blocks strictly dominating ``label``, nearest first."""
        chain = []
        current = label
        while True:
            parent = self.idom.get(current)
            if parent is None or parent.label == current:
                break
            chain.append(parent)
            current = parent.label
        return chain

    def dominator_tree_children(self):
        """Map label -> children blocks in the dominator tree."""
        children = {block.label: [] for block in self.rpo}
        for block in self.rpo:
            if block is self.entry:
                continue
            parent = self.idom.get(block.label)
            if parent is not None:
                children[parent.label].append(block)
        return children


# -- structural edge utilities ----------------------------------------------
#
# Used by loop-shape transformations (repro.ir.loops): they mutate the
# function, so any CFG built beforehand is stale afterwards.


def redirect_terminator(block, old_label, new_label):
    """Rewrite every occurrence of ``old_label`` in ``block``'s
    terminator to ``new_label``.  Returns the number of labels changed."""
    term = block.terminator
    if term is None:
        return 0
    changed = 0
    if term.opcode == "br" and term.label == old_label:
        term.label = new_label
        changed += 1
    elif term.opcode == "cbr":
        if term.true_label == old_label:
            term.true_label = new_label
            changed += 1
        if term.false_label == old_label:
            term.false_label = new_label
            changed += 1
    if changed:
        block.invalidate_compiled()
    return changed


def unique_label(func, base):
    """``base``, suffixed until it collides with no existing block."""
    label = base
    while label in func.block_map:
        label += "_"
    return label


def insert_block(func, block, before_label):
    """Register ``block`` in the function, placed just before
    ``before_label`` in layout order (so a block inserted before the
    entry becomes the new entry)."""
    index = next(i for i, b in enumerate(func.blocks)
                 if b.label == before_label)
    func.blocks.insert(index, block)
    func.block_map[block.label] = block
    return block


def split_edge(func, pred_block, succ_label, label_hint=None):
    """Split the CFG edge ``pred_block -> succ_label``: insert a fresh
    block containing only ``br succ_label`` and point the predecessor's
    terminator at it.  Returns the new block."""
    from . import instructions as ins
    from .module import BasicBlock

    label = unique_label(
        func, label_hint or f"{pred_block.label}.{succ_label}.split")
    split = BasicBlock(label)
    split.append(ins.Br(label=succ_label))
    if not redirect_terminator(pred_block, succ_label, label):
        raise ValueError(
            f"no edge {pred_block.label} -> {succ_label} to split")
    return insert_block(func, split, succ_label)
