"""Human-readable IR printing, for debugging and golden tests."""

from . import instructions as ins


def format_value(value):
    return str(value) if value is not None else "<none>"


def format_instruction(instr):
    o = instr.opcode
    if o == "alloca":
        return f"{instr.dst} = alloca {instr.size} ; {instr.name}"
    if o == "load":
        tag = " !ptr" if instr.is_pointer_value else ""
        return f"{instr.dst} = load {instr.type}, {format_value(instr.addr)}{tag}"
    if o == "store":
        tag = " !ptr" if instr.is_pointer_value else ""
        return f"store {instr.type} {format_value(instr.value)}, {format_value(instr.addr)}{tag}"
    if o == "binop":
        return f"{instr.dst} = {instr.op} {format_value(instr.a)}, {format_value(instr.b)}"
    if o == "cmp":
        return f"{instr.dst} = cmp {instr.pred} {format_value(instr.a)}, {format_value(instr.b)}"
    if o == "gep":
        extent = f" !field({instr.field_extent})" if instr.field_extent is not None else ""
        return f"{instr.dst} = gep {format_value(instr.base)}, {format_value(instr.offset)}{extent}"
    if o == "cast":
        return f"{instr.dst} = {instr.kind} {format_value(instr.src)}"
    if o == "mov":
        return f"{instr.dst} = mov {format_value(instr.src)}"
    if o == "call":
        target = instr.callee if instr.callee else f"*{format_value(instr.callee_reg)}"
        args = ", ".join(format_value(a) for a in instr.args)
        prefix = f"{instr.dst} = " if instr.dst else ""
        return f"{prefix}call {target}({args})"
    if o == "ret":
        return f"ret {format_value(instr.value)}" if instr.value is not None else "ret"
    if o == "br":
        return f"br {instr.label}"
    if o == "cbr":
        return f"cbr {format_value(instr.cond)}, {instr.true_label}, {instr.false_label}"
    if o == "unreachable":
        return "unreachable"
    if o == "memcopy":
        return f"memcopy {format_value(instr.dst_addr)}, {format_value(instr.src_addr)}, {instr.size}"
    if o == "sb_check":
        tag = " !fnptr" if instr.is_fnptr_check else ""
        return (f"sb_check {instr.access_kind} {format_value(instr.ptr)} in "
                f"[{format_value(instr.base)}, {format_value(instr.bound)}) "
                f"size {format_value(instr.size)}{tag}")
    if o == "sb_temporal_check":
        return (f"sb_temporal_check {instr.access_kind} "
                f"{format_value(instr.ptr)} key {format_value(instr.key)} "
                f"lock {format_value(instr.lock)}")
    if o == "sb_meta_load":
        dsts = f"{instr.dst_base}, {instr.dst_bound}"
        if instr.dst_key is not None:
            dsts += f", {instr.dst_key}, {instr.dst_lock}"
        return f"{dsts} = sb_meta_load {format_value(instr.addr)}"
    if o == "sb_meta_store":
        vals = f"{format_value(instr.base)}, {format_value(instr.bound)}"
        if instr.key is not None:
            vals += f", {format_value(instr.key)}, {format_value(instr.lock)}"
        return f"sb_meta_store {format_value(instr.addr)}, {vals}"
    if o == "sb_meta_clear":
        return (f"sb_meta_clear {format_value(instr.addr)}, "
                f"{format_value(instr.size)}")
    return f"<{o}>"


def format_function(func):
    params = ", ".join(f"{p.register}:{p.register.type}" for p in func.params)
    lines = [f"define {func.return_type} @{func.name}({params}){' varargs' if func.varargs else ''} {{"]
    for block in func.blocks:
        lines.append(f"{block.label}:")
        for instr in block.instructions:
            lines.append(f"  {format_instruction(instr)}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module):
    parts = []
    for name, gvar in module.globals.items():
        kind = "str" if gvar.is_string_literal else "global"
        parts.append(f"@{name} = {kind} [{gvar.size} bytes]")
    for func in module.functions.values():
        parts.append(format_function(func))
    return "\n\n".join(parts)
