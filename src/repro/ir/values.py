"""IR operand values: virtual registers, constants and symbol references."""

from dataclasses import dataclass

from .irtypes import IRType, PTR


class Value:
    """Base class for anything an instruction may read."""

    type: IRType


@dataclass(frozen=True)
class Register(Value):
    """A mutable virtual register.

    The IR is *not* SSA: registers may be written multiple times (the
    interpreter treats them as per-frame slots).  ``uid`` is unique within
    a function; ``hint`` keeps a human-readable name for printing.
    """

    uid: int
    type: IRType
    hint: str = ""

    def __str__(self):
        suffix = f".{self.hint}" if self.hint else ""
        return f"%r{self.uid}{suffix}"


@dataclass(frozen=True)
class Const(Value):
    """An integer or float immediate."""

    value: object
    type: IRType

    def __str__(self):
        return f"{self.type} {self.value}"


@dataclass(frozen=True)
class SymbolRef(Value):
    """The address of a global variable or function.

    Resolved by the VM loader to a concrete simulated address.  ``addend``
    supports constant offsets into globals (e.g. string literal tails).
    """

    name: str
    addend: int = 0
    type: IRType = PTR

    def __str__(self):
        extra = f"+{self.addend}" if self.addend else ""
        return f"@{self.name}{extra}"


def const_int(value, irtype):
    return Const(int(value), irtype)


def const_float(value):
    from .irtypes import F64

    return Const(float(value), F64)


NULL = Const(0, PTR)
