"""IR instruction set.

A deliberately small, LLVM-flavoured instruction set.  Every instruction
is a dataclass; ``opcode`` is a class attribute used by the printer, the
verifier, the interpreter dispatch table and the cost model.

Conventions:

* ``dst`` is always a :class:`~repro.ir.values.Register` (or ``None``).
* Operands are :class:`Value` instances (Register/Const/SymbolRef).
* The last instruction of every basic block is a terminator
  (:class:`Br`, :class:`CBr`, :class:`Ret` or :class:`Unreachable`).
* Loads/stores carry both the IR type moved *and* ``is_pointer_value`` —
  the flag SoftBound keys on to decide whether metadata must be
  propagated through memory (paper Section 3.2: "Only loads and stores
  of pointers are annotated").
"""

from dataclasses import dataclass, field
from typing import Optional

from .irtypes import IRType
from .values import Register, Value

INT_BINOPS = frozenset(
    ["add", "sub", "mul", "sdiv", "udiv", "srem", "urem", "and", "or", "xor", "shl", "lshr", "ashr"]
)
FLOAT_BINOPS = frozenset(["fadd", "fsub", "fmul", "fdiv"])
CMP_PREDS = frozenset(
    ["eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge",
     "feq", "fne", "flt", "fle", "fgt", "fge"]
)
CAST_KINDS = frozenset(
    ["trunc", "zext", "sext", "bitcast", "ptrtoint", "inttoptr", "sitofp", "fptosi", "uitofp", "fptoui"]
)


class Instruction:
    opcode = "?"

    @property
    def is_terminator(self):
        return isinstance(self, (Br, CBr, Ret, Unreachable))


@dataclass
class Alloca(Instruction):
    """Reserve ``size`` bytes in the current frame; dst holds the address.

    ``ctype`` is the C type of the allocated object (used for SoftBound's
    stack-metadata clearing heuristic and for bounds of address-taken
    locals).  ``name`` is the source variable name for diagnostics.
    """

    opcode = "alloca"
    dst: Register = None
    size: int = 0
    align: int = 8
    ctype: object = None
    name: str = ""
    #: Parameter spill slots sit *above* body locals in the frame (as
    #: x86 argument copies do), so buffer overflows in locals can reach
    #: them — the layout Wilander's parameter-targeting attacks assume.
    is_param: bool = False


@dataclass
class Load(Instruction):
    opcode = "load"
    dst: Register = None
    addr: Value = None
    type: IRType = None
    is_pointer_value: bool = False


@dataclass
class Store(Instruction):
    opcode = "store"
    value: Value = None
    addr: Value = None
    type: IRType = None
    is_pointer_value: bool = False


@dataclass
class BinOp(Instruction):
    opcode = "binop"
    dst: Register = None
    op: str = "add"
    a: Value = None
    b: Value = None


@dataclass
class Cmp(Instruction):
    opcode = "cmp"
    dst: Register = None
    pred: str = "eq"
    a: Value = None
    b: Value = None


@dataclass
class Gep(Instruction):
    """Pointer byte-offset arithmetic: ``dst = base + offset``.

    ``field_extent`` is non-None when this GEP computes the address of a
    struct field; it holds the field's size in bytes.  SoftBound's
    sub-object bound shrinking (paper Section 3.1, "Shrinking Pointer
    Bounds") narrows [base, bound) to [dst, dst + field_extent) at such
    instructions.
    """

    opcode = "gep"
    dst: Register = None
    base: Value = None
    offset: Value = None
    field_extent: Optional[int] = None


@dataclass
class Cast(Instruction):
    opcode = "cast"
    dst: Register = None
    kind: str = "bitcast"
    src: Value = None


@dataclass
class Mov(Instruction):
    opcode = "mov"
    dst: Register = None
    src: Value = None


@dataclass
class Call(Instruction):
    """Direct (``callee`` is a name) or indirect (``callee_reg``) call.

    ``arg_ctypes`` carries the C types of the arguments as written at the
    call site — the paper's transformation is driven entirely by the call
    site's argument types (Section 3.3), which is what makes separate
    compilation and unprototyped calls work.
    """

    opcode = "call"
    dst: Optional[Register] = None
    callee: Optional[str] = None
    callee_reg: Optional[Value] = None
    args: list = field(default_factory=list)
    arg_ctypes: list = field(default_factory=list)
    ret_ctype: object = None


@dataclass
class Ret(Instruction):
    opcode = "ret"
    value: Optional[Value] = None


@dataclass
class Br(Instruction):
    opcode = "br"
    label: str = ""


@dataclass
class CBr(Instruction):
    opcode = "cbr"
    cond: Value = None
    true_label: str = ""
    false_label: str = ""


@dataclass
class Unreachable(Instruction):
    opcode = "unreachable"


# -- SoftBound runtime instructions ------------------------------------
#
# The paper's pass inserts *calls* to small C runtime routines that LLVM
# later inlines (Section 6.1).  We model the post-inlining form directly
# as dedicated instructions so the interpreter can dispatch them cheaply
# and the cost model can charge exactly the instruction counts the paper
# reports for them (check ≈ 3, hash lookup ≈ 9, shadow lookup ≈ 5).


@dataclass
class SbCheck(Instruction):
    """Spatial dereference check:
    ``if (ptr < base || ptr + size > bound) abort()`` (paper Section 3.1).

    ``access_kind`` is "load" or "store" — store-only mode emits only the
    latter.  ``is_fnptr_check`` marks the base==bound function-pointer
    encoding check (paper Section 5.2).
    """

    opcode = "sb_check"
    ptr: Value = None
    base: Value = None
    bound: Value = None
    size: Value = None
    access_kind: str = "load"
    is_fnptr_check: bool = False


@dataclass
class SbMetaLoad(Instruction):
    """Disjoint-metadata table lookup keyed by the *address of the
    pointer in memory* (paper Section 3.2): fills the base/bound
    companion registers for a pointer being loaded.

    Under temporal checking the table entry is widened to
    ``(base, bound, key, lock)``; ``dst_key``/``dst_lock`` are the
    temporal companion registers (None in spatial-only builds)."""

    opcode = "sb_meta_load"
    addr: Value = None
    dst_base: Register = None
    dst_bound: Register = None
    dst_key: Register = None
    dst_lock: Register = None


@dataclass
class SbMetaStore(Instruction):
    """Disjoint-metadata table update for a pointer being stored.
    ``key``/``lock`` carry the temporal half of the widened entry
    (None in spatial-only builds)."""

    opcode = "sb_meta_store"
    addr: Value = None
    base: Value = None
    bound: Value = None
    key: Value = None
    lock: Value = None


@dataclass
class SbTemporalCheck(Instruction):
    """Lock-and-key temporal dereference check:
    ``if (*lock != key) abort()``.

    Emitted immediately after the spatial check for the same access, so
    a pointer reaching it has in-bounds (base, bound) — what it may
    lack is a *live* allocation.  ``access_kind`` follows the spatial
    check's load/store discipline (store-only mode emits only stores).
    """

    opcode = "sb_temporal_check"
    ptr: Value = None
    key: Value = None
    lock: Value = None
    access_kind: str = "load"


@dataclass
class SbMetaClear(Instruction):
    """Clear metadata for a memory range (stack-frame teardown / free(),
    paper Section 5.2 "Memory reuse and stale metadata")."""

    opcode = "sb_meta_clear"
    addr: Value = None
    size: Value = None


#: Opcodes that may write the disjoint metadata table: the explicit
#: table instructions, aggregate copies (the runtime copies entries),
#: and calls (the callee may store pointers or free).  Program loads
#: and non-pointer stores cannot reach a *disjoint* table — the
#: incorruptibility property of paper Section 3.4 — which is exactly
#: what lets checkelim/licm deduplicate and hoist ``sb_meta_load``s
#: across them.  Inline-metadata baselines (fatptr) violate the
#: premise and are excluded from those passes at the pipeline level.
METADATA_TABLE_WRITERS = frozenset(
    ["call", "memcopy", "sb_meta_store", "sb_meta_clear"])

#: Opcodes that may *release a lock* (change temporal liveness): only
#: calls — ``free`` is a call, and a frame teardown can only happen at
#: a ``ret`` that ends the path being analyzed.  This is what lets
#: checkelim/licm deduplicate and hoist ``sb_temporal_check``s across
#: everything else: between two program points with no intervening
#: call, every lock's value is provably unchanged.
LOCK_RELEASERS = frozenset(["call"])


@dataclass
class MemCopy(Instruction):
    """Aggregate copy (struct assignment).  Distinct from the libc
    ``memcpy`` call so struct assignment can carry its static C type,
    which SoftBound's metadata-copy inference consumes."""

    opcode = "memcopy"
    dst_addr: Value = None
    src_addr: Value = None
    size: int = 0
    ctype: object = None
