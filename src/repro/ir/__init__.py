"""Typed register IR: values, instructions, containers, printer, verifier."""

from . import instructions
from .irtypes import F64, I8, I16, I32, I64, PTR, VOID, IRType, from_ctype, int_type
from .module import BasicBlock, Function, GlobalVar, Module, Param
from .printer import format_function, format_instruction, format_module
from .values import Const, Register, SymbolRef, const_float, const_int
from .verifier import VerifierError, verify_function, verify_module

__all__ = [
    "instructions",
    "IRType",
    "I8",
    "I16",
    "I32",
    "I64",
    "F64",
    "PTR",
    "VOID",
    "from_ctype",
    "int_type",
    "BasicBlock",
    "Function",
    "GlobalVar",
    "Module",
    "Param",
    "Const",
    "Register",
    "SymbolRef",
    "const_int",
    "const_float",
    "format_function",
    "format_instruction",
    "format_module",
    "VerifierError",
    "verify_function",
    "verify_module",
]
