"""IR containers: basic blocks, functions, globals and modules."""

from dataclasses import dataclass, field

from .irtypes import IRType, PTR, VOID
from .values import Register


@dataclass
class BasicBlock:
    label: str
    instructions: list = field(default_factory=list)
    #: Compiled-code cache stamp.  The closure-compiling engine
    #: (:mod:`repro.vm.engine`) caches a per-block template keyed by this
    #: value; every pass that rewrites ``instructions`` must bump it (the
    #: optimizer pipeline and the SoftBound transform call
    #: :func:`invalidate_compiled`).
    version: int = 0

    @property
    def terminator(self):
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def append(self, instruction):
        self.instructions.append(instruction)

    def invalidate_compiled(self):
        self.version += 1


@dataclass
class Param:
    """A formal parameter: its register plus its C type (SoftBound needs
    to know which parameters are pointers to append base/bound args)."""

    register: Register
    ctype: object
    name: str = ""


class Function:
    """An IR function: ordered basic blocks plus a register pool."""

    def __init__(self, name, return_irtype=VOID, return_ctype=None, varargs=False):
        self.name = name
        self.return_type = return_irtype
        self.return_ctype = return_ctype
        self.varargs = varargs
        self.params = []  # list of Param
        self.blocks = []  # ordered; blocks[0] is the entry
        self.block_map = {}
        self._next_reg = 0
        # Filled by the SoftBound transform:
        self.sb_transformed = False
        self.sb_extra_params = []  # base/bound companion Params

    def new_reg(self, irtype, hint=""):
        reg = Register(self._next_reg, irtype, hint)
        self._next_reg += 1
        return reg

    def new_block(self, label_hint="bb"):
        label = f"{label_hint}{len(self.blocks)}"
        while label in self.block_map:
            label += "_"
        block = BasicBlock(label)
        self.blocks.append(block)
        self.block_map[label] = block
        return block

    def block(self, label):
        return self.block_map[label]

    @property
    def entry(self):
        return self.blocks[0]

    def instructions(self):
        """Iterate over all instructions in block order."""
        for block in self.blocks:
            yield from block.instructions

    def __repr__(self):
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"


@dataclass
class GlobalVar:
    """A global variable image.

    ``data`` is the initialized byte image (zero-filled when there is no
    initializer).  ``relocs`` is a list of ``(offset, symbol, addend)``
    triples: at load time the VM writes the resolved address of
    ``symbol + addend`` at ``offset``.  ``pointer_fields`` lists
    ``(offset, target_symbol, addend)`` for pointer-typed initialized
    fields — SoftBound's global initialization hook (paper Section 5.2)
    consumes this to seed the in-memory metadata table.
    """

    name: str
    ctype: object
    data: bytes = b""
    relocs: list = field(default_factory=list)
    align: int = 8
    is_string_literal: bool = False

    @property
    def size(self):
        return len(self.data)


def invalidate_compiled(module):
    """Bump every block's compiled-code stamp after a pass pipeline has
    rewritten instruction lists.  This invalidates the machine-
    independent templates cached on functions (consulted when an engine
    compiles a function); an engine that already specialized a function
    must additionally call its own ``invalidate()`` — in practice all IR
    rewriting happens before any machine executes."""
    for func in module.functions.values():
        for block in func.blocks:
            block.invalidate_compiled()


class Module:
    """A translation unit in IR form."""

    def __init__(self, name="module"):
        self.name = name
        self.functions = {}
        self.globals = {}  # name -> GlobalVar
        self._string_count = 0

    def add_function(self, function):
        self.functions[function.name] = function
        return function

    def add_global(self, gvar):
        self.globals[gvar.name] = gvar
        return gvar

    def intern_string(self, data):
        """Intern a string literal as a read-only global; returns its name."""
        for name, gvar in self.globals.items():
            if gvar.is_string_literal and gvar.data == data + b"\x00":
                return name
        name = f".str{self._string_count}"
        self._string_count += 1
        self.add_global(GlobalVar(name=name, ctype=None, data=data + b"\x00", align=1, is_string_literal=True))
        return name

    def function(self, name):
        return self.functions[name]

    def __repr__(self):
        return f"<Module {self.name}: {len(self.functions)} functions, {len(self.globals)} globals>"
