"""IR-level types.

The IR uses a small fixed lattice of machine types: four integer widths,
one float width and an opaque 64-bit pointer kind.  C-level type
information needed later (e.g. pointee element sizes for GEP scaling,
whether a loaded value is a pointer — the single property the SoftBound
transformation keys on) is attached to instructions during lowering, not
to the IR types, mirroring how the paper's pass consumes LLVM's typed IR.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class IRType:
    kind: str  # "i8" | "i16" | "i32" | "i64" | "f64" | "ptr" | "void"
    size: int

    @property
    def is_int(self):
        return self.kind.startswith("i")

    @property
    def is_float(self):
        return self.kind == "f64"

    @property
    def is_ptr(self):
        return self.kind == "ptr"

    @property
    def is_void(self):
        return self.kind == "void"

    def __str__(self):
        return self.kind


I8 = IRType("i8", 1)
I16 = IRType("i16", 2)
I32 = IRType("i32", 4)
I64 = IRType("i64", 8)
F64 = IRType("f64", 8)
PTR = IRType("ptr", 8)
VOID = IRType("void", 0)

_BY_WIDTH = {1: I8, 2: I16, 4: I32, 8: I64}


def int_type(width):
    """The IR integer type of ``width`` bytes."""
    return _BY_WIDTH[width]


def from_ctype(ctype):
    """Map a C type to the IR type of its runtime representation."""
    if ctype.is_pointer or ctype.is_array or ctype.is_function:
        return PTR
    if ctype.is_float:
        return F64
    if ctype.is_integer:
        return _BY_WIDTH[ctype.width]
    if ctype.is_void:
        return VOID
    if ctype.is_struct:
        # Struct values are manipulated by address in the IR.
        return PTR
    raise ValueError(f"no IR type for {ctype}")
