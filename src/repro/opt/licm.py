"""Loop-invariant code motion for SoftBound instrumentation.

The paper's overhead analysis attributes the dominant cost to the
per-access check and metadata-lookup instructions (Sections 5.1/6.2);
re-running the optimizer after instrumentation is what "removes some
redundant checks" (Section 6.1).  Dominance-based elimination
(:mod:`repro.opt.checkelim`) removes *static* duplicates, but a loop
re-executes its surviving checks and metadata loads every iteration.
This pass hoists the loop-invariant ones into the loop preheader
(:func:`repro.ir.loops.ensure_preheader`), so they execute once per
loop *entry* instead of once per iteration.

Two candidate kinds, with different safety obligations:

* ``sb_meta_load`` — reads the disjoint metadata table; it cannot trap
  and has no effect other than defining its companion registers, so an
  occurrence whose address is loop-invariant may be hoisted whenever
  (a) the loop cannot modify the table (no call / memcopy /
  sb_meta_store / sb_meta_clear anywhere in the loop — the only
  writers, since the table is disjoint from program memory), and
  (b) its destination registers have exactly one static definition, so
  the early definition cannot clobber a value another path reads.

* ``sb_check`` — can trap, so hoisting must preserve *bit-identical*
  trap behaviour, not just the predicate.  A check is hoisted only when
  it sits in the loop **header** with nothing but trap-free, effect-free
  instructions before it: the preheader branches straight to the
  header, so on every loop entry the check was already the first
  observable event, and with invariant operands its first evaluation
  decides all later ones.  Checks elsewhere in the body are *not*
  touched here — a zero-trip entry would evaluate them when the
  original program never did; those are handled by the guarded loop
  versioning of :mod:`repro.opt.checkwiden`.

* ``sb_temporal_check`` — the lock-and-key liveness check reads mutable
  *lock* state, which only a call can change (``free`` is a call; a
  frame teardown lies past any ``ret``).  A header temporal check with
  invariant (ptr, key, lock) therefore hoists under the sb_check
  discipline **plus** one extra obligation: the loop must contain no
  calls at all — otherwise an iteration could free the object and the
  hoisted check would wrongly keep passing.  This is the "invariant key
  loads out of free-free loops" optimization: the companion
  ``sb_meta_load`` that produced the key hoists as metadata (above),
  and the check itself follows when the loop provably cannot free.
"""

from ..ir.cfg import CFG
from ..ir.loops import ensure_preheader, find_loops
from ..ir.values import Const, Register, SymbolRef
from ..policy.opcodes import lock_releaser_opcodes, table_writer_opcodes
from .checkelim import _definition_counts

#: Instructions that cannot trap, produce output, or touch memory or
#: the metadata table — safe to have a hoisted check's trap reordered
#: in front of them.
_PURE_OPCODES = frozenset(["mov", "cmp", "gep", "cast", "alloca",
                           "sb_meta_load"])
_TRAPPING_BINOPS = frozenset(["sdiv", "udiv", "srem", "urem"])


def _is_pure(instr):
    if instr.opcode == "binop":
        return instr.op not in _TRAPPING_BINOPS
    return instr.opcode in _PURE_OPCODES


def loop_def_counts(func, loop):
    """Register uid -> number of definitions inside ``loop``."""
    counts = {}
    for label in loop.blocks:
        for instr in func.block_map[label].instructions:
            dst = getattr(instr, "dst", None)
            if dst is not None:
                counts[dst.uid] = counts.get(dst.uid, 0) + 1
            for attr in ("dst_base", "dst_bound", "dst_key", "dst_lock"):
                reg = getattr(instr, attr, None)
                if reg is not None:
                    counts[reg.uid] = counts.get(reg.uid, 0) + 1
            meta = getattr(instr, "sb_dst_meta", None)
            if meta is not None:
                for reg in meta:
                    counts[reg.uid] = counts.get(reg.uid, 0) + 1
    return counts


def is_invariant(value, loop_defs):
    """A value whose runtime meaning cannot change across iterations:
    constants, symbols (fixed addresses), and registers never defined
    inside the loop."""
    if isinstance(value, (Const, SymbolRef)):
        return True
    if isinstance(value, Register):
        return loop_defs.get(value.uid, 0) == 0
    return False


def _loop_candidates(func, loop, global_defs):
    """``(meta_loads, header_checks)`` hoistable from ``loop`` right
    now, as ``(block_label, instr)`` pairs in deterministic order."""
    defs = loop_def_counts(func, loop)
    table_writers = table_writer_opcodes()
    lock_releasers = lock_releaser_opcodes()
    table_safe = not any(instr.opcode in table_writers
                         for instr in loop.instructions(func))
    meta_loads = []
    if table_safe:
        for label in sorted(loop.blocks):
            for instr in func.block_map[label].instructions:
                if instr.opcode != "sb_meta_load":
                    continue
                if (is_invariant(instr.addr, defs)
                        and global_defs.get(instr.dst_base.uid, 0) == 1
                        and global_defs.get(instr.dst_bound.uid, 0) == 1):
                    meta_loads.append((label, instr))
    call_free = not any(instr.opcode in lock_releasers
                        for instr in loop.instructions(func))
    header_checks = []
    for instr in func.block_map[loop.header].instructions:
        if instr.opcode == "sb_check" and not instr.is_fnptr_check:
            if (is_invariant(instr.ptr, defs)
                    and is_invariant(instr.base, defs)
                    and is_invariant(instr.bound, defs)
                    and is_invariant(instr.size, defs)):
                header_checks.append((loop.header, instr))
                continue  # will be hoisted: transparent to later checks
            break  # a remaining check can trap: stop scanning
        if instr.opcode == "sb_temporal_check":
            if (call_free
                    and is_invariant(instr.ptr, defs)
                    and is_invariant(instr.key, defs)
                    and is_invariant(instr.lock, defs)):
                # Free-free loop: no iteration can change any lock, so
                # the entry evaluation decides every later one.
                header_checks.append((loop.header, instr))
                continue
            break  # can trap (or the loop can free): stop scanning
        if not _is_pure(instr):
            break
    return meta_loads, header_checks


def run(func, module=None):
    """Hoist invariant metadata loads and header checks; returns the
    pair ``(hoisted_meta_loads, hoisted_checks)``."""
    hoisted_meta = 0
    hoisted_checks = 0
    if not func.blocks:
        return 0, 0
    # Iterate to a fixpoint: hoisting a metadata load can make a check's
    # operands invariant for the next round, and hoisting into an inner
    # preheader exposes the instruction to the enclosing loop.  Restart
    # whenever the block structure changes (preheader creation) so loop
    # membership and def counts are never consulted stale.
    for _ in range(64):
        cfg = CFG(func)
        loops = find_loops(cfg)
        global_defs = _definition_counts(func)
        moved = False
        structure_changed = False
        for loop in sorted(loops, key=lambda l: (-l.depth, l.header)):
            meta_loads, header_checks = _loop_candidates(func, loop, global_defs)
            if not meta_loads and not header_checks:
                continue
            before = len(func.blocks)
            pre = ensure_preheader(func, cfg, loop)
            structure_changed = len(func.blocks) != before
            for label, instr in meta_loads + header_checks:
                block = func.block_map[label]
                block.instructions.remove(instr)
                block.invalidate_compiled()
                pre.instructions.insert(len(pre.instructions) - 1, instr)
            pre.invalidate_compiled()
            hoisted_meta += len(meta_loads)
            hoisted_checks += len(header_checks)
            moved = True
            if structure_changed:
                break  # CFG/loop objects are stale; recompute
        if not moved:
            break
    if hoisted_meta or hoisted_checks:
        func._frame_layout = None
    return hoisted_meta, hoisted_checks
