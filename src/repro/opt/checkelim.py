"""Redundant bounds-check elimination.

The paper relies on re-running LLVM's optimizations after instrumentation
to "remove some redundant checks and factor out common sub-expressions"
(Section 6.1).  This pass implements the check-specific part directly,
at two scopes:

* **Block-local** (any register): within a basic block, a second
  ``sb_check`` dominated by an identical one (same pointer/base/bound
  values up to register copies, same or smaller constant access size, no
  intervening redefinition) can never fire first and is removed.

* **Global, dominance-based** (single-definition registers and symbols):
  a check whose key values each have exactly one static definition (or
  are symbols/constants) cannot change between a dominating occurrence
  and a dominated one — the single def dominates both — so the dominated
  duplicate is removed even across blocks and loop iterations.  The
  availability table is scoped by a dominator-tree walk
  (:class:`repro.ir.cfg.CFG`), the classic dominator-based value
  numbering discipline.

``sb_meta_load`` duplicates are deduplicated under the same two scopes,
with one extra obligation checks do not have: a metadata load reads the
mutable disjoint table, so the dominating occurrence must be provably
un-invalidated at the dominated one.  Cross-block dedup therefore
applies only in functions containing **no** table-writing instructions
at all (no call / memcopy / sb_meta_store / sb_meta_clear — the only
writers, the table being disjoint from program memory); otherwise the
dedup falls back to block-local scope with the availability table
killed at every potential table write.  A deduplicated load is replaced
by two ``mov``s from the dominating load's companion registers (which
the cost model prices at zero, matching register renaming).

``sb_temporal_check`` duplicates follow the metadata-load discipline
with a different invalidation set: the check reads mutable *lock*
state, which only a call can change (``free`` is a call; frame teardown
happens past any ``ret``, ending the path) — so a dominated identical
temporal check per pointer slot is removed cross-block in call-free
functions, and block-locally with the availability table killed at
every call otherwise.
"""

from ..ir import instructions as ins
from ..ir.cfg import CFG
from ..ir.values import Const, Register, SymbolRef
from ..policy.opcodes import lock_releaser_opcodes, table_writer_opcodes


def _definition_counts(func):
    counts = {}
    for instr in func.instructions():
        dst = getattr(instr, "dst", None)
        if dst is not None:
            counts[dst.uid] = counts.get(dst.uid, 0) + 1
        for attr in ("dst_base", "dst_bound", "dst_key", "dst_lock"):
            reg = getattr(instr, attr, None)
            if reg is not None:
                counts[reg.uid] = counts.get(reg.uid, 0) + 1
        meta = getattr(instr, "sb_dst_meta", None)
        if meta is not None:
            for reg in meta:
                counts[reg.uid] = counts.get(reg.uid, 0) + 1
    return counts


class _GlobalKeys:
    """Resolves check operands to stable keys when possible.

    A key part is stable when the dynamic value it denotes cannot differ
    between a dominating and a dominated occurrence: constants, symbols,
    and registers with a single static definition (resolved through
    single-def copy chains).  Multi-def registers yield None.
    """

    def __init__(self, func):
        counts = _definition_counts(func)
        self.single = {uid for uid, n in counts.items() if n == 1}
        # Parameter registers are defined exactly once, at entry, as
        # long as no instruction writes them (lowering spills params to
        # slots, so reassignment lands on the promoted copy instead).
        for param in list(func.params) + list(getattr(func, "sb_extra_params", [])):
            uid = param.register.uid
            if counts.get(uid, 0) == 0:
                self.single.add(uid)
        self.copy_of = {}
        for instr in func.instructions():
            if instr.opcode == "mov" and instr.dst.uid in self.single \
                    and isinstance(instr.src, (Register, Const, SymbolRef)):
                self.copy_of[instr.dst.uid] = instr.src

    def _resolve(self, value):
        hops = 0
        while isinstance(value, Register) and value.uid in self.copy_of \
                and hops < 64:
            value = self.copy_of[value.uid]
            hops += 1
        return value

    def part(self, value):
        value = self._resolve(value)
        if isinstance(value, Const):
            return ("c", value.value)
        if isinstance(value, SymbolRef):
            return ("s", value.name, getattr(value, "addend", 0))
        if isinstance(value, Register):
            if value.uid in self.single:
                return ("r", value.uid)
            return None
        return None

    def key(self, check):
        parts = (self.part(check.ptr), self.part(check.base),
                 self.part(check.bound))
        if any(p is None for p in parts):
            return None
        return parts


class _LocalState:
    """Per-block copy map and seen-check tables for multi-def registers
    (the original block-local discipline).  ``tseen`` holds temporal
    check keys; it is additionally cleared at every call (lock state may
    change there even though no register is redefined)."""

    def __init__(self):
        self.copies = {}
        self.seen = {}
        self.tseen = set()

    def resolve(self, value):
        if not isinstance(value, Register):
            return None
        uid = value.uid
        hops = 0
        while uid in self.copies and hops < 64:
            uid = self.copies[uid]
            hops += 1
        return uid

    def invalidate(self, uid):
        self.copies.pop(uid, None)
        self.copies = {d: s for d, s in self.copies.items() if s != uid}
        self.seen = {key: size for key, size in self.seen.items()
                     if uid not in key[:3]}
        self.tseen = {key for key in self.tseen if uid not in key}


def _written_uids(instr):
    writes = []
    dst = getattr(instr, "dst", None)
    if dst is not None:
        writes.append(dst.uid)
    for attr in ("dst_base", "dst_bound", "dst_key", "dst_lock"):
        reg = getattr(instr, attr, None)
        if reg is not None:
            writes.append(reg.uid)
    meta = getattr(instr, "sb_dst_meta", None)
    if meta is not None:
        writes.extend(reg.uid for reg in meta)
    return writes


def _addr_key(value, keys):
    """Stable key for a metadata-load address, or None."""
    return keys.part(value)


def run(func, module=None):
    """Remove dominated duplicate checks, metadata loads and temporal
    checks; returns ``(removed_checks, deduped_meta_loads,
    removed_temporal_checks)``."""
    if not func.blocks:
        return 0, 0, 0
    keys = _GlobalKeys(func)
    cfg = CFG(func)
    counts = _definition_counts(func)
    # The invalidation sets come from the policy opcode-trait registry
    # (live: a plugin's table-writing opcode extends them).
    table_writers = table_writer_opcodes()
    lock_releasers = lock_releaser_opcodes()
    # Cross-block (dominance-scoped) metadata-load dedup is sound only
    # when nothing in the function can write the table between the
    # dominating and the dominated occurrence.
    meta_global_ok = not any(instr.opcode in table_writers
                             for instr in func.instructions())
    # Cross-block temporal-check dedup is sound only when nothing in
    # the function can release a lock (no calls at all).
    temporal_global_ok = not any(instr.opcode in lock_releasers
                                 for instr in func.instructions())
    global_seen = {}   # stable key -> max constant size already checked
    global_meta = {}   # stable addr key -> (base Register, bound Register)
    global_tseen = set()  # stable (ptr, key, lock) keys already checked
    removed = 0
    deduped_meta = 0
    removed_temporal = 0

    def temporal_key(instr):
        parts = (keys.part(instr.ptr), keys.part(instr.key),
                 keys.part(instr.lock))
        if any(p is None for p in parts):
            return None
        return parts

    def process_block(block):
        nonlocal removed, deduped_meta, removed_temporal
        undo = []
        meta_undo = []
        tseen_undo = []
        local = _LocalState()
        local_meta = {}  # addr key -> (base Register, bound Register)
        kept = []
        for instr in block.instructions:
            if instr.opcode == "mov" and isinstance(instr.src, Register):
                local.invalidate(instr.dst.uid)
                _meta_kill_uid(local_meta, instr.dst.uid)
                root = local.resolve(instr.src)
                if root is not None:
                    local.copies[instr.dst.uid] = root
                kept.append(instr)
                continue
            if instr.opcode == "sb_meta_load":
                for uid in _written_uids(instr):
                    local.invalidate(uid)
                    _meta_kill_uid(local_meta, uid)
                key = _addr_key(instr.addr, keys)
                # All companion destinations — (base, bound), widened
                # with (key, lock) under temporal checking — must be
                # single-def, and a dedup must redefine every one of
                # them (a dropped key/lock would leave the following
                # sb_temporal_check reading an undefined register).
                dsts = [instr.dst_base, instr.dst_bound]
                if instr.dst_key is not None:
                    dsts.extend([instr.dst_key, instr.dst_lock])
                single_dsts = all(counts.get(reg.uid) == 1 for reg in dsts)
                if key is not None and single_dsts:
                    prev = (global_meta.get(key) if meta_global_ok
                            else local_meta.get(key))
                    if prev is not None and len(prev) == len(dsts):
                        for dst, src in zip(dsts, prev):
                            kept.append(ins.Mov(dst=dst, src=src))
                        deduped_meta += 1
                        continue
                    pair = tuple(dsts)
                    if meta_global_ok:
                        meta_undo.append(key)
                        global_meta[key] = pair
                    else:
                        local_meta[key] = pair
                kept.append(instr)
                continue
            if instr.opcode in table_writers:
                local_meta.clear()
            if instr.opcode in lock_releasers:
                local.tseen.clear()
            if instr.opcode == "sb_temporal_check":
                stable = temporal_key(instr)
                if stable is not None:
                    available = (global_tseen if temporal_global_ok
                                 else local.tseen)
                    if stable in available:
                        removed_temporal += 1
                        continue
                    if temporal_global_ok:
                        tseen_undo.append(stable)
                        global_tseen.add(stable)
                    else:
                        local.tseen.add(stable)
                    kept.append(instr)
                    continue
                # Block-local fallback for multi-def registers.
                resolved = (local.resolve(instr.ptr), local.resolve(instr.key),
                            local.resolve(instr.lock))
                if all(r is not None for r in resolved):
                    if resolved in local.tseen:
                        removed_temporal += 1
                        continue
                    local.tseen.add(resolved)
                kept.append(instr)
                continue
            if instr.opcode == "sb_check" and not instr.is_fnptr_check:
                size = instr.size.value if isinstance(instr.size, Const) else None
                if size is not None:
                    stable = keys.key(instr)
                    if stable is not None:
                        prev = global_seen.get(stable)
                        if prev is not None and size <= prev:
                            removed += 1
                            continue
                        undo.append((stable, prev))
                        global_seen[stable] = max(size, prev or 0)
                        kept.append(instr)
                        continue
                    # Fall back to the block-local discipline.
                    ptr = local.resolve(instr.ptr)
                    base = local.resolve(instr.base)
                    bound = local.resolve(instr.bound)
                    if ptr is not None:
                        key = (ptr, base, bound)
                        prev = local.seen.get(key)
                        if prev is not None and size <= prev:
                            removed += 1
                            continue
                        local.seen[key] = max(size, prev or 0)
                kept.append(instr)
                continue
            for uid in _written_uids(instr):
                local.invalidate(uid)
                _meta_kill_uid(local_meta, uid)
            kept.append(instr)
        block.instructions = kept
        return undo, meta_undo, tseen_undo

    # Dominator-tree DFS with scoped global availability.
    children = cfg.dominator_tree_children()
    stack = [("visit", cfg.entry)]
    undos = []
    while stack:
        action, block = stack.pop()
        if action == "leave":
            undo, meta_undo, tseen_undo = undos.pop()
            for stable, prev in reversed(undo):
                if prev is None:
                    global_seen.pop(stable, None)
                else:
                    global_seen[stable] = prev
            for key in reversed(meta_undo):
                global_meta.pop(key, None)
            for key in reversed(tseen_undo):
                global_tseen.discard(key)
            continue
        undos.append(process_block(block))
        stack.append(("leave", block))
        for child in reversed(children.get(block.label, [])):
            stack.append(("visit", child))
    return removed, deduped_meta, removed_temporal


def _meta_kill_uid(local_meta, uid):
    """Drop block-local metadata availability mentioning a redefined
    register (either in the address key or the cached companions)."""
    if not local_meta:
        return
    dead = [key for key, pair in local_meta.items()
            if (key[0] == "r" and key[1] == uid)
            or any(reg.uid == uid for reg in pair)]
    for key in dead:
        del local_meta[key]
