"""Local common-subexpression elimination.

Within a basic block, a pure computation (``binop``, ``cmp``, ``gep``,
``cast``) whose operands match an earlier one's — up to copy chains —
is replaced with a ``mov`` from the earlier result.  The IR is not SSA,
so availability is tracked with invalidation: redefining any operand or
the earlier result kills the expression.

Together with :mod:`repro.opt.copyprop` this reproduces the
"factor out common sub-expressions" effect the paper obtains by
re-running LLVM's optimizations over the instrumented code (Section
6.1) — the SoftBound transformation mechanically emits one bound ``gep``
per alloca/field address and repeated address arithmetic that this pass
collapses.
"""

from ..ir import instructions as ins
from ..ir.values import Const, Register

# Division can trap, so it is not freely re-orderable in principle, but
# replacing a *recomputation* with the first computation's value is
# still sound (the first instance already trapped or didn't).
_CSE_OPCODES = frozenset(["binop", "cmp", "gep", "cast"])


def _operand_key(value, copies):
    value = copies.resolve(value)
    if isinstance(value, Register):
        return ("r", value.uid)
    if isinstance(value, Const):
        return ("c", value.value, value.type.kind)
    # SymbolRefs and anything else: identify by repr (stable and precise
    # enough for availability tracking).
    return ("o", repr(value))


def _expression_key(instr, copies):
    if instr.opcode == "binop":
        return ("binop", instr.op, _operand_key(instr.a, copies),
                _operand_key(instr.b, copies))
    if instr.opcode == "cmp":
        return ("cmp", instr.pred, _operand_key(instr.a, copies),
                _operand_key(instr.b, copies))
    if instr.opcode == "gep":
        return ("gep", _operand_key(instr.base, copies),
                _operand_key(instr.offset, copies),
                getattr(instr, "field_extent", None))
    if instr.opcode == "cast":
        return ("cast", instr.kind, _operand_key(instr.src, copies),
                instr.dst.type.kind)
    return None


class _Copies:
    """Tiny local copy map (CSE needs its own, kept in lockstep)."""

    def __init__(self):
        self.copy_of = {}

    def resolve(self, value):
        hops = 0
        while isinstance(value, Register) and value.uid in self.copy_of and hops < 64:
            value = self.copy_of[value.uid]
            hops += 1
        return value

    def invalidate(self, uid):
        self.copy_of.pop(uid, None)
        self.copy_of = {d: s for d, s in self.copy_of.items()
                        if not (isinstance(s, Register) and s.uid == uid)}


def _written_registers(instr):
    written = []
    dst = getattr(instr, "dst", None)
    if dst is not None:
        written.append(dst.uid)
    for attr in ("dst_base", "dst_bound", "dst_key", "dst_lock"):
        reg = getattr(instr, attr, None)
        if reg is not None:
            written.append(reg.uid)
    meta = getattr(instr, "sb_dst_meta", None)
    if meta is not None:
        written.extend(reg.uid for reg in meta)
    return written


def run(func, module=None):
    """Eliminate block-local recomputations; returns the number replaced."""
    replaced = 0
    for block in func.blocks:
        available = {}   # expression key -> result Register
        uses = {}        # register uid -> expression keys mentioning it
        copies = _Copies()
        out = []
        for instr in block.instructions:
            key = _expression_key(instr, copies) if instr.opcode in _CSE_OPCODES else None
            if key is not None:
                prev = available.get(key)
                if prev is not None and prev.uid != instr.dst.uid \
                        and prev.type == instr.dst.type:
                    out.append(ins.Mov(dst=instr.dst, src=prev))
                    replaced += 1
                    for uid in _written_registers(instr):
                        _kill(uid, available, uses)
                        copies.invalidate(uid)
                    copies.copy_of[instr.dst.uid] = prev
                    continue
            # Ordinary path: kill everything this instruction redefines,
            # then record the new expression / copy.
            for uid in _written_registers(instr):
                _kill(uid, available, uses)
                copies.invalidate(uid)
            if instr.opcode == "mov":
                src = instr.src
                is_self = isinstance(src, Register) and src.uid == instr.dst.uid
                if not is_self and ((not isinstance(src, Register))
                                    or src.type == instr.dst.type):
                    copies.copy_of[instr.dst.uid] = src
            elif key is not None:
                available[key] = instr.dst
                for part in key:
                    if isinstance(part, tuple) and part and part[0] == "r":
                        uses.setdefault(part[1], set()).add(key)
                uses.setdefault(instr.dst.uid, set()).add(key)
            out.append(instr)
        block.instructions = out
    return replaced


def _kill(uid, available, uses):
    for key in uses.pop(uid, ()):
        available.pop(key, None)
