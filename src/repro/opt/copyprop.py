"""Local copy propagation.

Rewrites operand uses of ``mov``-copied registers to their source, so
later passes (CSE, check elimination, DCE) see through copy chains and
the interpreter executes fewer ``mov``s.  The IR is not SSA — registers
may be redefined — so propagation is per basic block with invalidation
on every redefinition, which is always safe.

This is the pass the paper gets for free from LLVM's pipeline when it
re-runs optimizations over the instrumented code (Section 6.1); it is
particularly productive there because the SoftBound transformation emits
``mov``s to materialize base/bound companions of multiply-assigned
pointers.
"""

from ..ir.values import Register

#: Instruction attributes that hold readable operands.
OPERAND_ATTRS = ("addr", "value", "a", "b", "base", "offset", "src", "cond",
                 "callee_reg", "dst_addr", "src_addr", "ptr", "bound", "size",
                 "key", "lock")


def _written_registers(instr):
    """Every register an instruction defines."""
    written = []
    dst = getattr(instr, "dst", None)
    if dst is not None:
        written.append(dst.uid)
    for attr in ("dst_base", "dst_bound", "dst_key", "dst_lock"):
        reg = getattr(instr, attr, None)
        if reg is not None:
            written.append(reg.uid)
    meta = getattr(instr, "sb_dst_meta", None)
    if meta is not None:
        written.extend(reg.uid for reg in meta)
    return written


class _CopyMap:
    def __init__(self):
        self.copy_of = {}  # dst uid -> source Register

    def resolve(self, value):
        """Follow the copy chain from ``value`` to its oldest live root."""
        hops = 0
        while isinstance(value, Register) and value.uid in self.copy_of and hops < 64:
            value = self.copy_of[value.uid]
            hops += 1
        return value

    def record(self, dst, src):
        self.copy_of[dst.uid] = src

    def invalidate(self, uid):
        self.copy_of.pop(uid, None)
        self.copy_of = {d: s for d, s in self.copy_of.items()
                        if not (isinstance(s, Register) and s.uid == uid)}


def _rewrite_operands(instr, copies):
    # setbound() consumes the *variable* (its whole copy chain), not the
    # value: the SoftBound transform walks the chain from the argument it
    # sees, so the argument must stay the most-derived copy.
    if instr.opcode == "call" and getattr(instr, "callee", None) == "setbound":
        return 0
    changed = 0
    for attr in OPERAND_ATTRS:
        operand = getattr(instr, attr, None)
        if isinstance(operand, Register):
            root = copies.resolve(operand)
            if root is not operand and (not isinstance(root, Register)
                                        or root.type == operand.type):
                setattr(instr, attr, root)
                changed += 1
    args = getattr(instr, "args", None)
    if args:
        for i, arg in enumerate(args):
            if isinstance(arg, Register):
                root = copies.resolve(arg)
                if root is not arg and (not isinstance(root, Register)
                                        or root.type == arg.type):
                    args[i] = root
                    changed += 1
    return changed


def run(func, module=None):
    """Propagate copies within each block; returns uses rewritten."""
    rewritten = 0
    for block in func.blocks:
        copies = _CopyMap()
        for instr in block.instructions:
            rewritten += _rewrite_operands(instr, copies)
            for uid in _written_registers(instr):
                copies.invalidate(uid)
            if instr.opcode == "mov":
                src = instr.src
                is_self = isinstance(src, Register) and src.uid == instr.dst.uid
                if not is_self and ((not isinstance(src, Register))
                                    or src.type == instr.dst.type):
                    copies.record(instr.dst, src)
    return rewritten
