"""Dead code elimination.

Removes pure instructions whose results are never read.  Loads are *not*
considered pure: a dead out-of-bounds load is still a bug the paper's
detection experiments must observe, and a real compiler's semantics-
preserving DCE operates before instrumentation anyway.  Division is kept
because it can trap.
"""

from ..ir.values import Register

_PURE_OPCODES = frozenset(["cmp", "gep", "cast", "mov"])
_PURE_BINOPS_EXCLUDED = frozenset(["sdiv", "udiv", "srem", "urem"])


def _collect_uses(func):
    used = set()
    for instr in func.instructions():
        for attr in ("addr", "value", "a", "b", "base", "offset", "src", "cond",
                     "callee_reg", "dst_addr", "src_addr", "ptr", "bound", "size",
                     "key", "lock"):
            operand = getattr(instr, attr, None)
            if isinstance(operand, Register):
                used.add(operand.uid)
        for arg in getattr(instr, "args", []) or []:
            if isinstance(arg, Register):
                used.add(arg.uid)
        # A pointer-returning function's metadata (Ret.sb_meta) reads its
        # base/bound registers; the caller materializes them from the
        # frame, so they are genuine uses even though no instruction
        # names them as a plain operand.
        meta = getattr(instr, "sb_meta", None)
        if meta is not None:
            for value in meta:
                if isinstance(value, Register):
                    used.add(value.uid)
    return used


def _is_removable(instr, used):
    dst = getattr(instr, "dst", None)
    if dst is None or dst.uid in used:
        return False
    if instr.opcode in _PURE_OPCODES:
        return True
    if instr.opcode == "binop" and instr.op not in _PURE_BINOPS_EXCLUDED:
        return True
    if instr.opcode == "alloca":
        return True
    return False


def run(func, module=None):
    """Iterate to a fixed point; returns total instructions removed."""
    removed_total = 0
    while True:
        used = _collect_uses(func)
        removed = 0
        for block in func.blocks:
            kept = []
            for instr in block.instructions:
                if _is_removable(instr, used):
                    removed += 1
                else:
                    kept.append(instr)
            block.instructions = kept
        removed_total += removed
        if removed == 0:
            break
    if removed_total:
        func._frame_layout = None
    return removed_total
